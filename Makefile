# Tier-1 verification and common entry points. CI (.github/workflows/ci.yml)
# runs the same commands; `make tier1` is the local equivalent.

.PHONY: tier1 build test clippy bench examples tables soak synth churn serve trace clean

tier1: build test

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Microbenchmarks + the committed machine-readable snapshot: the shim
# appends one JSON line per bench to CRITERION_JSON; bench_json merges
# those with the in-simulation message counts (plus three serve rounds
# over the quick grid — median cells/sec + MAD — and the fixed cells'
# stall attribution) into BENCH_10.json, and bench_diff then gates the
# per-variant message totals (exact) and the serve throughput
# (one-sided, MAD-banded) against the committed BENCH_9.json —
# protocol counts may only move together with golden_counts.rs.
bench:
	rm -f target/criterion.jsonl
	CRITERION_JSON=$(CURDIR)/target/criterion.jsonl cargo bench
	CRITERION_JSON=$(CURDIR)/target/criterion.jsonl cargo run --release -p bench --bin bench_json
	cargo run --release -p bench --bin bench_diff

examples:
	cargo run --release --example quickstart
	cargo run --release --example adaptive
	cargo run --release --example moldyn -- --quick
	cargo run --release --example nbf -- --quick
	cargo run --release --example synth
	cargo run --release --example umesh
	cargo run --release --example compiler_pipeline
	cargo run --release --example validate_interface

# Paper tables at quick scale (drop --quick for the paper's exact sizes).
tables:
	cargo run --release -p bench --bin table1 -- --quick
	cargo run --release -p bench --bin table2 -- --quick
	cargo run --release -p bench --bin table_adapt -- --quick
	cargo run --release -p bench --bin table_synth -- --quick
	cargo run --release -p bench --bin overhead1p -- --quick
	cargo run --release -p bench --bin figures
	cargo run --release -p bench --bin ablation -- --quick

# The full synthetic scenario grid at paper scale (minutes; the --quick
# form runs in seconds and is part of `make tables` and CI soak).
synth:
	cargo run --release -p bench --bin table_synth

# The churn harness at paper scale: the grid's six regime-break /
# rebalance cells plus the lossy-link section, each bounded by an
# in-binary assertion (probe budget, bitwise-under-loss, stall
# conservation with the Retry category). The --quick form is part of
# `make soak` and CI; nightly runs this full-scale form.
churn:
	cargo run --release -p bench --bin table_churn

# The throughput service at quick scale: 200 jobs over the 30-cell grid
# on a work-stealing pool, every job bitwise-checked against cold
# goldens (~20 s here). Drop --quick for the nightly 60 s window at
# paper scale.
serve:
	cargo run --release -p bench --bin table_serve -- --quick

# The deterministic-tracing acceptance harness: one synth cell's
# six-variant matrix traced twice, asserting in-binary that the trace
# JSON is byte-identical across passes, well-formed, and that every
# processor's stall categories sum exactly to its final simulated
# clock. Part of `make soak` and CI.
trace:
	cargo run --release -p bench --bin table_trace -- --quick

# Nightly-style depth: high-case-count property tests (failures print a
# PROPTEST_SEED for exact replay and a shrunk minimal input) + the
# adaptive, scenario-matrix, and serve acceptance smokes.
soak:
	PROPTEST_CASES=512 cargo test -q -p chaos -p dsm -p adapt
	PROPTEST_CASES=96 cargo test -q -p synth
	PROPTEST_CASES=256 cargo test -q -p serve
	cargo run --release -p bench --bin table_adapt -- --quick
	cargo run --release -p bench --bin table_synth -- --quick
	cargo run --release -p bench --bin table_churn -- --quick
	cargo run --release -p bench --bin table_serve -- --quick
	cargo run --release -p bench --bin table_trace -- --quick

clean:
	cargo clean
