//! # trace — deterministic simulated-time observability
//!
//! Every report the workspace produced before this crate was an
//! end-of-run aggregate: `NetReport` says *that* adaptive beat base by
//! N messages, not *where the simulated time went*. This crate adds
//! the missing attribution layer on top of `simnet`'s always-on stall
//! accounting and opt-in event hooks:
//!
//! * [`Tracer`] — a [`simnet::TraceSink`] made of bounded per-processor
//!   ring buffers. Recording never allocates (lanes are sized at
//!   construction) and never orders across lanes; [`Tracer::capture`]
//!   folds the lanes into an immutable [`Trace`].
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON (one "thread"
//!   per simulated processor), viewable in Perfetto or
//!   `chrome://tracing`.
//! * [`stall_json`] / [`check_conservation`] — the stall-attribution
//!   report over [`simnet::NetReport::stalls`], with the exact
//!   conservation law (category sums equal each processor's final
//!   clock to the nanosecond) checked rather than assumed.
//! * [`ServeTrace`] — job lifecycle / steal / recycle lanes for the
//!   serve throughput driver, exported into the same JSON shape.
//! * [`json_well_formed`] — a dependency-free JSON validator so the
//!   exporters can be smoke-checked in CI without a serde stack.
//!
//! Timestamps are [`simnet::SimTime`] virtual nanoseconds throughout —
//! never wall clock — so a fixed seed yields byte-identical output for
//! barrier-structured runs regardless of host load or thread schedule.

mod chrome;
mod json;
mod serve_lane;
mod sink;
mod stall;

pub use chrome::chrome_trace_json;
pub use json::json_well_formed;
pub use serve_lane::{ServeEvent, ServeTrace};
pub use sink::{ProcLane, Trace, Tracer};
pub use stall::{check_conservation, stall_json};

// The event vocabulary lives in `simnet` (the `Net` hooks speak it);
// re-export it so consumers need only this crate for tracing work.
pub use simnet::{
    with_trace_sink, FetchKind, PolicyAct, SpanTag, StallCat, StallRow, TraceEvent, TraceSink,
};
