//! A minimal JSON well-formedness checker.
//!
//! The exporters in this crate write JSON by hand (the workspace
//! vendors no serde), so CI needs an independent check that the output
//! actually parses. This is a strict RFC 8259 recognizer — structure,
//! string escapes, and number grammar — that keeps nothing in memory
//! but a recursion-depth counter.

/// Does `s` consist of exactly one well-formed JSON value (plus
/// surrounding whitespace)?
pub fn json_well_formed(s: &str) -> bool {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.ws();
    p.value() && {
        p.ws();
        p.i == p.b.len()
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> bool {
        if self.depth >= MAX_DEPTH {
            return false;
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn literal(&mut self, lit: &[u8]) -> bool {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn object(&mut self) -> bool {
        self.depth += 1;
        self.i += 1; // '{'
        self.ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return true;
        }
        loop {
            self.ws();
            if !self.string() {
                return false;
            }
            self.ws();
            if !self.eat(b':') {
                return false;
            }
            self.ws();
            if !self.value() {
                return false;
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                self.depth -= 1;
                return true;
            }
            return false;
        }
    }

    fn array(&mut self) -> bool {
        self.depth += 1;
        self.i += 1; // '['
        self.ws();
        if self.eat(b']') {
            self.depth -= 1;
            return true;
        }
        loop {
            self.ws();
            if !self.value() {
                return false;
            }
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                self.depth -= 1;
                return true;
            }
            return false;
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return true,
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                    Some(b'u') => {
                        self.i += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                },
                0x00..=0x1f => return false, // raw control character
                _ => {}
            }
        }
        false // unterminated
    }

    fn number(&mut self) -> bool {
        self.eat(b'-');
        // Integer part: a single 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return false,
        }
        if self.eat(b'.') {
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return false,
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return false,
            }
        }
        true
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"x\nyé"}],"c":true}"#,
            "  [1, 2, 3]  ",
            r#"{"ts":1.234,"s":"t"}"#,
        ] {
            assert!(json_well_formed(ok), "should accept {ok:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "\"ctrl\u{1}\"",
            "[1] []",
            "{'a':1}",
            "nul",
        ] {
            assert!(!json_well_formed(bad), "should reject {bad:?}");
        }
    }

    #[test]
    fn bounds_recursion_depth() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(!json_well_formed(&deep));
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(json_well_formed(&ok));
    }
}
