//! The stall-attribution report.
//!
//! `simnet` bills every clock mutation to exactly one [`StallCat`]
//! bucket, so attribution is an accounting identity, not a sampler:
//! for every processor, the bucket sum equals the final simulated
//! clock to the nanosecond. [`check_conservation`] verifies that
//! identity on a captured [`NetReport`]; [`stall_json`] renders the
//! breakdown (per processor and cluster totals) as JSON.

use std::fmt::Write as _;

use simnet::{NetReport, StallCat, StallRow};

/// Verify the conservation law on every row of `rep.stalls`: the
/// per-category nanoseconds must sum *exactly* to the processor's
/// captured clock. Returns the first violation as an error message.
///
/// An empty `stalls` vector is an error too — callers asking for
/// attribution on a report that never captured any (for example one
/// assembled from bare `Stats`) should hear about it rather than
/// vacuously pass.
pub fn check_conservation(rep: &NetReport) -> Result<(), String> {
    if rep.stalls.is_empty() {
        return Err("report carries no stall rows".to_string());
    }
    for (p, row) in rep.stalls.iter().enumerate() {
        let total = row.total();
        if total != row.clock {
            return Err(format!(
                "proc {p}: categories sum to {total} ns but clock is {} ns (off by {})",
                row.clock,
                row.clock.abs_diff(total)
            ));
        }
    }
    Ok(())
}

/// Render the stall breakdown of `rep` as a JSON document:
/// `{"procs":[{"proc":0,"clock_ns":…,"compute":…,…},…],"total":{…}}`.
/// Row order and key order are fixed, so equal reports render to
/// byte-identical strings.
pub fn stall_json(rep: &NetReport) -> String {
    let mut out = String::new();
    out.push_str("{\"procs\":[\n");
    let mut total = StallRow::default();
    for (p, row) in rep.stalls.iter().enumerate() {
        if p > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{{\"proc\":{p},");
        row_fields(&mut out, row);
        out.push('}');
        total.merge(row);
    }
    out.push_str("\n],\"total\":{");
    row_fields(&mut out, &total);
    out.push_str("}}\n");
    out
}

fn row_fields(out: &mut String, row: &StallRow) {
    let _ = write!(out, "\"clock_ns\":{}", row.clock);
    for cat in StallCat::ALL {
        let _ = write!(out, ",\"{}\":{}", cat.name(), row.get(cat));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json_well_formed;

    fn report(rows: Vec<StallRow>) -> NetReport {
        NetReport {
            messages: 0,
            bytes: 0,
            per_kind: Vec::new(),
            label: None,
            stalls: rows,
        }
    }

    fn row(compute: u64, barrier: u64) -> StallRow {
        let mut r = StallRow::default();
        r.cats[StallCat::Compute as usize] = compute;
        r.cats[StallCat::BarrierWait as usize] = barrier;
        r.clock = compute + barrier;
        r
    }

    #[test]
    fn conservation_holds_and_violations_are_reported() {
        let good = report(vec![row(70, 30), row(100, 0)]);
        assert_eq!(check_conservation(&good), Ok(()));

        let mut bad = good.clone();
        bad.stalls[1].clock += 5;
        let err = check_conservation(&bad).unwrap_err();
        assert!(err.contains("proc 1"), "{err}");
        assert!(err.contains("off by 5"), "{err}");

        assert!(check_conservation(&report(Vec::new())).is_err());
    }

    #[test]
    fn json_render_is_well_formed_and_totals_fold() {
        let rep = report(vec![row(70, 30), row(40, 10)]);
        let json = stall_json(&rep);
        assert!(json_well_formed(&json), "malformed:\n{json}");
        assert!(json.contains("\"total\":{\"clock_ns\":150,\"compute\":110,"));
        assert_eq!(json, stall_json(&rep.clone()), "deterministic render");
    }
}
