//! Serve-driver lanes: job lifecycle, steals, cluster recycles.
//!
//! The serve layer has no simulated clock of its own — a worker's
//! "time" is the sequence of jobs it ran — so these lanes stamp events
//! with a per-worker sequence number instead of [`simnet::SimTime`].
//! Which worker steals which job is inherently host-schedule-dependent,
//! so serve lanes are deliberately *outside* the byte-identical
//! determinism claim the simulated-proc lanes make; the aggregate
//! counters ([`ServeTrace::totals`]) are still exact.

use std::fmt::Write as _;

use parking_lot::Mutex;

/// One serve-driver event on a worker lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEvent {
    /// The worker picked up job `job` (cell index `cell` of the grid).
    JobStart { job: u32, cell: u32 },
    /// The job completed; `sim_ns` is its simulated parallel time.
    JobDone { job: u32, sim_ns: u64 },
    /// The worker stole `jobs` jobs from `victim`'s deque.
    Steal { victim: u32, jobs: u32 },
    /// The worker returned a warm cluster to the recycle pool.
    Recycle { procs: u32 },
}

impl ServeEvent {
    fn name(self) -> &'static str {
        match self {
            ServeEvent::JobStart { .. } => "job",
            ServeEvent::JobDone { .. } => "job",
            ServeEvent::Steal { .. } => "steal",
            ServeEvent::Recycle { .. } => "recycle",
        }
    }
}

#[derive(Debug, Default)]
struct WorkerLane {
    events: Vec<ServeEvent>,
    /// Events refused once the lane hit its bound.
    dropped: u64,
}

/// Bounded per-worker event lanes for the serve driver. Recording
/// appends to a preallocated lane (never reallocating), so installing
/// one does not perturb the driver's heap accounting beyond its own
/// construction.
#[derive(Debug)]
pub struct ServeTrace {
    lanes: Vec<Mutex<WorkerLane>>,
    capacity: usize,
}

impl ServeTrace {
    /// Lanes for `workers` workers, each bounded to `capacity` events
    /// (newest events beyond the bound are dropped and counted — the
    /// serve story reads from the front: warmup, then steady state).
    pub fn new(workers: usize, capacity: usize) -> Self {
        ServeTrace {
            lanes: (0..workers)
                .map(|_| {
                    Mutex::new(WorkerLane {
                        events: Vec::with_capacity(capacity),
                        dropped: 0,
                    })
                })
                .collect(),
            capacity,
        }
    }

    /// Record `ev` on `worker`'s lane.
    pub fn record(&self, worker: usize, ev: ServeEvent) {
        let Some(lane) = self.lanes.get(worker) else {
            return;
        };
        let mut l = lane.lock();
        if l.events.len() < self.capacity {
            l.events.push(ev);
        } else {
            l.dropped += 1;
        }
    }

    /// `(jobs_done, steals, recycles)` across all lanes.
    pub fn totals(&self) -> (u64, u64, u64) {
        let (mut jobs, mut steals, mut recycles) = (0, 0, 0);
        for lane in &self.lanes {
            for ev in &lane.lock().events {
                match ev {
                    ServeEvent::JobDone { .. } => jobs += 1,
                    ServeEvent::Steal { .. } => steals += 1,
                    ServeEvent::Recycle { .. } => recycles += 1,
                    ServeEvent::JobStart { .. } => {}
                }
            }
        }
        (jobs, steals, recycles)
    }

    /// Chrome trace-event JSON for the worker lanes: `pid` 1
    /// ("serve pool"), one thread per worker, `ts` = the event's index
    /// on its lane. Job start/done become `B`/`E` spans.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        for (w, _) in self.lanes.iter().enumerate() {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            );
        }
        for (w, lane) in self.lanes.iter().enumerate() {
            let l = lane.lock();
            for (seq, &ev) in l.events.iter().enumerate() {
                if !std::mem::take(&mut first) {
                    out.push_str(",\n");
                }
                let ph = match ev {
                    ServeEvent::JobStart { .. } => 'B',
                    ServeEvent::JobDone { .. } => 'E',
                    _ => 'i',
                };
                let _ = write!(
                    out,
                    "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{w},\"ts\":{seq},\"name\":\"{}\"",
                    ev.name()
                );
                if ph == 'i' {
                    out.push_str(",\"s\":\"t\"");
                }
                match ev {
                    ServeEvent::JobStart { job, cell } => {
                        let _ = write!(out, ",\"args\":{{\"job\":{job},\"cell\":{cell}}}}}");
                    }
                    ServeEvent::JobDone { job, sim_ns } => {
                        let _ = write!(out, ",\"args\":{{\"job\":{job},\"sim_ns\":{sim_ns}}}}}");
                    }
                    ServeEvent::Steal { victim, jobs } => {
                        let _ = write!(out, ",\"args\":{{\"victim\":{victim},\"jobs\":{jobs}}}}}");
                    }
                    ServeEvent::Recycle { procs } => {
                        let _ = write!(out, ",\"args\":{{\"procs\":{procs}}}}}");
                    }
                }
            }
        }
        let dropped: u64 = self.lanes.iter().map(|l| l.lock().dropped).sum();
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{dropped}}}}}\n"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json_well_formed;

    #[test]
    fn totals_count_event_classes() {
        let t = ServeTrace::new(2, 16);
        t.record(0, ServeEvent::JobStart { job: 0, cell: 3 });
        t.record(0, ServeEvent::JobDone { job: 0, sim_ns: 500 });
        t.record(1, ServeEvent::Steal { victim: 0, jobs: 4 });
        t.record(1, ServeEvent::Recycle { procs: 8 });
        assert_eq!(t.totals(), (1, 1, 1));
    }

    #[test]
    fn lanes_are_bounded_with_a_drop_count() {
        let t = ServeTrace::new(1, 2);
        for job in 0..5 {
            t.record(0, ServeEvent::JobStart { job, cell: 0 });
        }
        assert!(json_well_formed(&t.to_chrome_json()));
        assert!(t.to_chrome_json().contains("\"dropped\":3"));
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let t = ServeTrace::new(2, 16);
        t.record(0, ServeEvent::JobStart { job: 0, cell: 3 });
        t.record(0, ServeEvent::JobDone { job: 0, sim_ns: 500 });
        t.record(1, ServeEvent::Steal { victim: 0, jobs: 2 });
        let json = t.to_chrome_json();
        assert!(json_well_formed(&json), "malformed:\n{json}");
        assert!(json.contains("\"name\":\"worker 1\""));
    }
}
