//! Chrome trace-event JSON export.
//!
//! The output loads directly into Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`: one process (`pid` 0, "simulated cluster")
//! with one named thread per simulated processor. Durations use `B`/`E`
//! span pairs (faults, barriers, lock waits, inspector/executor spans);
//! everything else is a thread-scoped instant (`ph: "i"`).
//!
//! Formatting is fully deterministic — integer-only timestamp
//! rendering (`ts` is microseconds, printed as `ns/1000.ns%1000` with
//! three fixed decimals), fixed key order, one event per line — so two
//! runs with the same seed produce byte-identical files, which is the
//! contract `table_trace` asserts.

use std::fmt::Write as _;

use crate::{Trace, TraceEvent};

/// Render `trace` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for p in 0..trace.lanes.len() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"proc {p}\"}}}}"
        );
    }
    for (p, lane) in trace.lanes.iter().enumerate() {
        for &(t, ev) in &lane.events {
            sep(&mut out, &mut first);
            event_json(&mut out, p, t.as_ns(), ev);
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{},\"overflow\":{}}}}}\n",
        trace.dropped(),
        trace.overflow
    );
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// `ts` is microseconds in the trace-event format; print the simulated
/// nanoseconds as a fixed-point micro value to keep full resolution
/// without any float formatting in the output path.
fn ts(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn head(out: &mut String, ph: char, name: &str, p: usize, ns: u64) {
    let _ = write!(out, "{{\"ph\":\"{ph}\",\"pid\":0,\"tid\":{p},\"ts\":");
    ts(out, ns);
    let _ = write!(out, ",\"name\":\"{name}\"");
    if ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
}

fn event_json(out: &mut String, p: usize, ns: u64, ev: TraceEvent) {
    match ev {
        TraceEvent::FaultBegin { page, write } => {
            head(out, 'B', "fault", p, ns);
            let _ = write!(out, ",\"args\":{{\"page\":{page},\"write\":{write}}}}}");
        }
        TraceEvent::FaultEnd { page } => {
            head(out, 'E', "fault", p, ns);
            let _ = write!(out, ",\"args\":{{\"page\":{page}}}}}");
        }
        TraceEvent::TwinCreate { page } => {
            head(out, 'i', "twin", p, ns);
            let _ = write!(out, ",\"args\":{{\"page\":{page}}}}}");
        }
        TraceEvent::DiffCreate { page, bytes } => {
            head(out, 'i', "diff", p, ns);
            let _ = write!(out, ",\"args\":{{\"page\":{page},\"bytes\":{bytes}}}}}");
        }
        TraceEvent::Fetch {
            class,
            pages,
            peers,
            bytes,
        } => {
            head(out, 'i', "fetch", p, ns);
            let _ = write!(
                out,
                ",\"args\":{{\"class\":\"{}\",\"pages\":{pages},\"peers\":{peers},\
                 \"bytes\":{bytes}}}}}",
                class.name()
            );
        }
        TraceEvent::BarrierEnter { epoch, phase } => {
            head(out, 'B', "barrier", p, ns);
            let _ = write!(out, ",\"args\":{{\"epoch\":{epoch},\"phase\":{phase}}}}}");
        }
        TraceEvent::BarrierNotice { epoch, phase, bytes } => {
            head(out, 'i', "notice", p, ns);
            let _ = write!(
                out,
                ",\"args\":{{\"epoch\":{epoch},\"phase\":{phase},\"bytes\":{bytes}}}}}"
            );
        }
        TraceEvent::BarrierExit { epoch, phase } => {
            head(out, 'E', "barrier", p, ns);
            let _ = write!(out, ",\"args\":{{\"epoch\":{epoch},\"phase\":{phase}}}}}");
        }
        TraceEvent::LockAcquire { lock } => {
            head(out, 'B', "lock", p, ns);
            let _ = write!(out, ",\"args\":{{\"lock\":{lock}}}}}");
        }
        TraceEvent::LockAcquired { lock } => {
            head(out, 'E', "lock", p, ns);
            let _ = write!(out, ",\"args\":{{\"lock\":{lock}}}}}");
        }
        TraceEvent::LockRelease { lock } => {
            head(out, 'i', "unlock", p, ns);
            let _ = write!(out, ",\"args\":{{\"lock\":{lock}}}}}");
        }
        TraceEvent::Policy { page, phase, act } => {
            head(out, 'i', act.name(), p, ns);
            let _ = write!(out, ",\"args\":{{\"page\":{page},\"phase\":{phase}}}}}");
        }
        TraceEvent::PlanDefer { phase, pages } => {
            head(out, 'i', "plan_defer", p, ns);
            let _ = write!(out, ",\"args\":{{\"phase\":{phase},\"pages\":{pages}}}}}");
        }
        TraceEvent::PlanQuiesce { phase, pages } => {
            head(out, 'i', "plan_quiesce", p, ns);
            let _ = write!(out, ",\"args\":{{\"phase\":{phase},\"pages\":{pages}}}}}");
        }
        TraceEvent::SpanBegin { tag } => {
            head(out, 'B', tag.name(), p, ns);
            out.push('}');
        }
        TraceEvent::SpanEnd { tag } => {
            head(out, 'E', tag.name(), p, ns);
            out.push('}');
        }
        TraceEvent::Msg {
            kind,
            peer,
            bytes,
            out: dir_out,
        } => {
            head(out, 'i', "msg", p, ns);
            let _ = write!(
                out,
                ",\"args\":{{\"kind\":\"{}\",\"peer\":{peer},\"bytes\":{bytes},\
                 \"dir\":\"{}\"}}}}",
                kind.name(),
                if dir_out { "out" } else { "in" }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json_well_formed, FetchKind, SpanTag, Tracer};
    use simnet::{MsgKind, SimTime, TraceSink};

    fn sample() -> Trace {
        let t = Tracer::new(2, 64);
        t.record(0, SimTime(100), TraceEvent::FaultBegin { page: 3, write: true });
        t.record(0, SimTime(1234), TraceEvent::FaultEnd { page: 3 });
        t.record(
            0,
            SimTime(1500),
            TraceEvent::Fetch {
                class: FetchKind::Prefetch,
                pages: 4,
                peers: 2,
                bytes: 16384,
            },
        );
        t.record(1, SimTime(200), TraceEvent::SpanBegin { tag: SpanTag::Gather });
        t.record(
            1,
            SimTime(250),
            TraceEvent::Msg {
                kind: MsgKind::Gather,
                peer: 0,
                bytes: 512,
                out: true,
            },
        );
        t.record(1, SimTime(900), TraceEvent::SpanEnd { tag: SpanTag::Gather });
        t.capture()
    }

    #[test]
    fn export_is_well_formed_json() {
        let json = chrome_trace_json(&sample());
        assert!(json_well_formed(&json), "malformed:\n{json}");
    }

    #[test]
    fn export_is_deterministic_and_integer_formatted() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
        // 1234 ns prints as 1.234 µs — fixed-point, no float formatting.
        assert!(a.contains("\"ts\":1.234,"), "{a}");
        assert!(a.contains("\"name\":\"proc 1\""));
    }

    #[test]
    fn spans_pair_begin_and_end_on_one_tid() {
        let json = chrome_trace_json(&sample());
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e);
    }
}
