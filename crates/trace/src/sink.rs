//! The bounded per-processor ring-buffer sink.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use simnet::{ProcId, SimTime, TraceEvent, TraceSink};

/// One processor's lane: a fixed-capacity ring that drops the *oldest*
/// event when full (the tail of a run is what attribution reads, and a
/// `dropped` counter keeps the loss honest).
#[derive(Debug)]
struct Lane {
    /// Ring storage; capacity fixed at construction, never reallocated.
    buf: Vec<(u64, TraceEvent)>,
    /// Index of the oldest entry once the ring has wrapped.
    start: usize,
    /// Events overwritten (or refused, at capacity 0) on this lane.
    dropped: u64,
}

/// A [`TraceSink`] of bounded per-processor rings. `simnet` calls
/// [`TraceSink::record`] from the acting processor's own thread, so
/// each lane has a single writer in steady state and the per-lane lock
/// is uncontended; no cross-lane ordering exists or is needed —
/// determinism comes from the per-lane order plus virtual timestamps.
///
/// All memory is allocated here, at construction. The recording path
/// never allocates, which is what keeps the serve driver's
/// zero-net-heap-per-warm-job assertion meaningful even when a run is
/// traced (and trivially so when it is not: an uninstalled sink means
/// `Net` never takes the traced branch at all).
#[derive(Debug)]
pub struct Tracer {
    lanes: Vec<Mutex<Lane>>,
    /// Events recorded for a processor id beyond the constructed lane
    /// count (a misconfigured harness, not a protocol condition).
    overflow: AtomicU64,
}

impl Tracer {
    /// A tracer with `nprocs` lanes of `capacity` events each.
    pub fn new(nprocs: usize, capacity: usize) -> Self {
        Tracer {
            lanes: (0..nprocs)
                .map(|_| {
                    Mutex::new(Lane {
                        buf: Vec::with_capacity(capacity),
                        start: 0,
                        dropped: 0,
                    })
                })
                .collect(),
            overflow: AtomicU64::new(0),
        }
    }

    /// Fold the lanes into an immutable snapshot, oldest event first.
    /// The rings keep filling afterwards; capture is non-destructive.
    pub fn capture(&self) -> Trace {
        Trace {
            lanes: self
                .lanes
                .iter()
                .map(|lane| {
                    let l = lane.lock();
                    let mut events = Vec::with_capacity(l.buf.len());
                    events.extend_from_slice(&l.buf[l.start..]);
                    events.extend_from_slice(&l.buf[..l.start]);
                    ProcLane {
                        events: events
                            .into_iter()
                            .map(|(ns, ev)| (SimTime(ns), ev))
                            .collect(),
                        dropped: l.dropped,
                    }
                })
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

impl TraceSink for Tracer {
    fn record(&self, p: ProcId, t: SimTime, ev: TraceEvent) {
        let Some(lane) = self.lanes.get(p) else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut l = lane.lock();
        let cap = l.buf.capacity();
        if l.buf.len() < cap {
            l.buf.push((t.as_ns(), ev));
        } else if cap == 0 {
            l.dropped += 1;
        } else {
            let start = l.start;
            l.buf[start] = (t.as_ns(), ev);
            l.start = (start + 1) % cap;
            l.dropped += 1;
        }
    }
}

/// One processor's captured events, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcLane {
    pub events: Vec<(SimTime, TraceEvent)>,
    /// Oldest events lost to the ring bound before capture.
    pub dropped: u64,
}

/// An immutable folded snapshot of a [`Tracer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Indexed by `ProcId`.
    pub lanes: Vec<ProcLane>,
    /// Events whose processor id had no lane.
    pub overflow: u64,
}

impl Trace {
    /// Total events captured across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events lost to ring bounds (not counting [`Trace::overflow`]).
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let t = Tracer::new(1, 3);
        for page in 0..5u32 {
            t.record(0, SimTime(page as u64 * 10), TraceEvent::FaultEnd { page });
        }
        let trace = t.capture();
        assert_eq!(trace.lanes[0].dropped, 2);
        let pages: Vec<u32> = trace.lanes[0]
            .events
            .iter()
            .map(|&(_, ev)| match ev {
                TraceEvent::FaultEnd { page } => page,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(pages, vec![2, 3, 4]);
        assert_eq!(trace.lanes[0].events[0].0, SimTime(20));
    }

    #[test]
    fn lanes_are_independent_and_overflow_is_counted() {
        let t = Tracer::new(2, 4);
        t.record(0, SimTime(1), TraceEvent::TwinCreate { page: 7 });
        t.record(1, SimTime(2), TraceEvent::TwinCreate { page: 8 });
        t.record(9, SimTime(3), TraceEvent::TwinCreate { page: 9 });
        let trace = t.capture();
        assert_eq!(trace.lanes[0].events.len(), 1);
        assert_eq!(trace.lanes[1].events.len(), 1);
        assert_eq!(trace.overflow, 1);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn capture_is_non_destructive() {
        let t = Tracer::new(1, 8);
        t.record(0, SimTime(5), TraceEvent::FaultEnd { page: 1 });
        let a = t.capture();
        let b = t.capture();
        assert_eq!(a, b);
    }
}
