//! The two claims the trace layer ships on, tested end-to-end:
//!
//! 1. **Byte-identical determinism** — the same seed produces the same
//!    Chrome trace JSON, byte for byte, across runs and host thread
//!    schedules. Timestamps are virtual clocks, lanes are per-processor
//!    (no cross-lane ordering to race on), and cluster-wide events are
//!    pinned to a fixed lane, so the exporter output is a pure function
//!    of the workload seed.
//! 2. **Stall conservation** — every processor's per-category stall
//!    nanoseconds sum *exactly* to its final simulated clock. This is
//!    checked on deterministic pinned cells at 4, 8, and 64 processors
//!    and then soaked with proptest over random synthetic cells, so the
//!    accounting identity holds for every billing path the scenario
//!    space can reach, not just the ones the fixed benches exercise.
//!
//! Soak runs raise the proptest case count with `PROPTEST_CASES`;
//! failing draws replay via `PROPTEST_TEST`/`PROPTEST_SEED`.

use std::sync::Arc;

use apps::workload::run_matrix;
use proptest::prelude::*;
use synth::{Dynamics, Scenario, Structure, SynthConfig};
use trace::{check_conservation, chrome_trace_json, json_well_formed, with_trace_sink, Tracer};

/// A trace-test-sized cell, mirroring the merge-property sizing: the
/// 64-processor draw grows the element count so every processor still
/// owns ≥ 2 value pages and drops iterations to keep the case cheap.
fn cell(structure: Structure, dynamics: Dynamics, nprocs: usize, seed: u64) -> SynthConfig {
    let mut cfg = SynthConfig::quick(structure, dynamics);
    if nprocs == 64 {
        cfg.n = 1024; // 128 pages of 64 B → 2 per processor
        cfg.refs = 1536;
        cfg.iters = 2;
        cfg.page_size = 64;
    } else {
        cfg.n = 256; // 16 pages of 128 B → ≥ 2 per processor
        cfg.refs = 512;
        cfg.iters = 3;
        cfg.page_size = 128;
    }
    cfg.nprocs = nprocs;
    cfg.seed = seed;
    cfg
}

/// One traced matrix pass: every variant runs with its `Net` adopted by
/// a fresh ring-buffer sink, and the capture is exported to JSON.
fn traced_json(cfg: &SynthConfig) -> String {
    let tracer = Arc::new(Tracer::new(cfg.nprocs, 1 << 16));
    let _ = with_trace_sink(tracer.clone(), || run_matrix(&Scenario::new(cfg.clone())));
    chrome_trace_json(&tracer.capture())
}

#[test]
fn same_seed_twice_yields_byte_identical_trace() {
    let cfg = cell(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 }, 8, 42);
    let a = traced_json(&cfg);
    let b = traced_json(&cfg);
    assert!(json_well_formed(&a), "trace JSON malformed");
    assert!(a.len() > 1024, "trace suspiciously empty ({} bytes)", a.len());
    assert_eq!(a, b, "same seed, two passes: trace JSON must be byte-identical");
}

/// The conservation identity on deterministic pinned cells, including
/// the 64-processor sparse-clock regime. Checked both through
/// [`check_conservation`] and by summing the rows by hand, so a bug in
/// the checker itself cannot vacuously pass.
#[test]
fn stall_categories_sum_to_final_clock_on_pinned_cells() {
    for &nprocs in &[4usize, 8, 64] {
        let cfg = cell(Structure::Banded { width: 16 }, Dynamics::Alternating, nprocs, 7);
        let m = run_matrix(&Scenario::new(cfg));
        let mut checked = 0;
        for run in &m.runs {
            let Some(net) = &run.report.net else { continue };
            check_conservation(net).unwrap_or_else(|e| {
                panic!("{} p{nprocs} {:?}: {e}", m.label, run.variant)
            });
            for (p, row) in net.stalls.iter().enumerate() {
                assert_eq!(
                    row.total(),
                    row.clock,
                    "{} p{nprocs} {:?} proc {p}: stall rows must sum to the clock",
                    m.label,
                    run.variant
                );
            }
            checked += 1;
        }
        assert!(checked >= 5, "only {checked} variants carried stall rows at p{nprocs}");
    }
}

fn structures() -> impl Strategy<Value = Structure> {
    proptest::sample::select(vec![
        Structure::Uniform,
        Structure::PowerLaw { alpha: 2.0 },
        Structure::Banded { width: 16 },
    ])
}

fn dynamics() -> impl Strategy<Value = Dynamics> {
    proptest::sample::select(vec![
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 2 },
        Dynamics::Alternating,
    ])
}

/// {4, 8, 64}, weighted toward the cheap draws — the 64-processor case
/// spawns 64 OS threads per parallel variant, an order of magnitude
/// more wall clock, so it gets 1/16 of the draws.
fn nprocs() -> impl Strategy<Value = usize> {
    let mut pool = vec![4, 4, 4, 4, 8, 8, 8, 8];
    pool.extend([4, 4, 4, 8, 8, 8, 8, 64]);
    proptest::sample::select(pool)
}

proptest! {
    #[test]
    fn stall_conservation_holds_on_random_cells(
        structure in structures(),
        dyn_ in dynamics(),
        np in nprocs(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = cell(structure, dyn_, np, seed);
        let m = run_matrix(&Scenario::new(cfg));
        for run in &m.runs {
            if let Some(net) = &run.report.net {
                check_conservation(net).unwrap_or_else(|e| {
                    panic!("{} p{np} {:?}: {e}", m.label, run.variant)
                });
            }
        }
    }
}
