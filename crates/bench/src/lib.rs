//! # bench — experiment harnesses for every table and figure
//!
//! Binaries (run with `--release`; each prints a paper-style table and
//! the in-text numbers the paper quotes around it):
//!
//! * `table1` — moldyn, 16 384 molecules, list rebuilt every {20, 15, 11}
//!   steps (paper Table 1).
//! * `table2` — nbf at {64×1024, 64×1000, 32×1024} (paper Table 2).
//! * `table_adapt` — the four-system comparison (seq / Tmk base /
//!   Tmk+compiler / Tmk adaptive) on all three apps, with the adaptive
//!   engine's policy-decision counters and acceptance checks.
//! * `figures` — regenerates Figure 1 (input), Figure 2 (transformed
//!   source), and Figure 3 (the Validate interface, as implemented).
//! * `overhead1p` — the §5 single-processor sanity numbers.
//! * `ablation` — sweeps beyond the paper: opt levels, page size,
//!   update frequency, translation-table organization, scaling.
//!
//! Criterion benches (`cargo bench`): protocol microbenchmarks (diffs,
//! sections, inspector, barriers) and small-scale end-to-end runs.

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};
use apps::report::{table_header, RunReport};

/// Scale factors for quick runs (`--quick` on the binaries): smaller n,
/// fewer steps — same structure, minutes → seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's exact sizes.
    Paper,
    /// ~1/8 the molecules, same step counts.
    Quick,
}

impl Scale {
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}

/// The probe-budget message slack a churn cell is granted over the
/// steady-state `adaptive ≤ base` bar: every processor can hold a stale
/// plan on at most every shared value page, and each stale plan wastes
/// at most `min(probe_every, iters)` exchanges of ≤ 2 messages before
/// the probe cadence demotes it (`adapt::probe_budget`). `table_synth`
/// relaxes its per-cell bars by exactly this on churn cells, and
/// `table_churn` asserts the bound cell by cell.
pub fn churn_budget(cfg: &synth::SynthConfig) -> u64 {
    let pages = ((cfg.n * 8).div_ceil(cfg.page_size) * cfg.nprocs) as u64;
    adapt::probe_budget(cfg.adapt.probe_every, pages, cfg.iters as u64)
}

/// One Table-1 cell group: the three systems at one update interval.
pub struct MoldynRows {
    pub update_interval: usize,
    pub seq_secs: f64,
    pub chaos: RunReport,
    pub base: RunReport,
    pub opt: RunReport,
}

/// Run the three systems for one moldyn configuration.
pub fn moldyn_rows(mut cfg: MoldynConfig, scale: Scale) -> MoldynRows {
    if scale == Scale::Quick {
        cfg.n = 2048;
        cfg.cutoff_frac = 0.2;
    }
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (chaos, xc) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    let (base, xb) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (opt, xo) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    verify3(&seq.x, &xc, &xb, &xo);
    MoldynRows {
        update_interval: cfg.update_interval,
        seq_secs: seq.report.time.as_secs_f64(),
        chaos,
        base,
        opt,
    }
}

/// One Table-2 cell group.
pub struct NbfRows {
    pub n: usize,
    pub seq_secs: f64,
    pub chaos: RunReport,
    pub base: RunReport,
    pub opt: RunReport,
}

pub fn nbf_rows(mut cfg: NbfConfig, scale: Scale) -> NbfRows {
    if scale == Scale::Quick {
        cfg.n /= 8;
        cfg.partners = 50;
    }
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (chaos, xc) = nbf::run_chaos(&cfg, &world, seq.report.time);
    let (base, xb) = nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (opt, xo) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    for (label, got) in [("chaos", &xc), ("base", &xb), ("opt", &xo)] {
        for (g, w) in got.iter().zip(&seq.x) {
            assert!(
                (g - w).abs() <= 1e-9 + 1e-9 * w.abs(),
                "{label} diverged from sequential"
            );
        }
    }
    NbfRows {
        n: cfg.n,
        seq_secs: seq.report.time.as_secs_f64(),
        chaos,
        base,
        opt,
    }
}

fn verify3(seq: &[[f64; 3]], a: &[[f64; 3]], b: &[[f64; 3]], c: &[[f64; 3]]) {
    for got in [a, b, c] {
        for (g, w) in got.iter().zip(seq) {
            for d in 0..3 {
                assert!(
                    (g[d] - w[d]).abs() <= 1e-9 + 1e-9 * w[d].abs(),
                    "parallel result diverged from sequential"
                );
            }
        }
    }
}

/// Print one group as a paper-style block.
pub fn print_group(title: &str, seq_secs: f64, rows: &[&RunReport]) {
    println!("\n{title}  (seq = {seq_secs:.1} s)");
    println!("{}", table_header());
    for r in rows {
        println!("{}", r.row());
    }
}
