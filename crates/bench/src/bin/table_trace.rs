//! The observability acceptance harness: deterministic tracing and
//! stall attribution over one fixed-seed synthetic cell.
//!
//! ```text
//! cargo run --release -p bench --bin table_trace -- --quick              # CI scale
//! cargo run --release -p bench --bin table_trace                        # larger cell
//! cargo run --release -p bench --bin table_trace -- --quick --trace t.json
//! ```
//!
//! The run *is* the check — it asserts, in-binary:
//!
//! * **Determinism**: the same seed traced twice produces byte-identical
//!   Chrome trace JSON, across whatever thread schedule the host dealt
//!   each pass (events are stamped with virtual simulated time and
//!   folded from per-processor lanes in processor order).
//! * **Conservation**: on every parallel variant's report, each
//!   processor's stall categories sum *exactly* to its final simulated
//!   clock — attribution is an accounting identity, not a sampler.
//! * **Well-formedness**: the exported JSON parses (strict recognizer,
//!   no serde), so Perfetto / `chrome://tracing` will load it.
//!
//! `--trace PATH` additionally writes the first pass's Chrome trace for
//! viewing; the stall table is printed either way.

use std::sync::Arc;

use apps::workload::{run_matrix, Variant};
use simnet::{NetReport, StallCat};
use synth::{Dynamics, Scenario, Structure, SynthConfig};
use trace::{check_conservation, chrome_trace_json, json_well_formed, with_trace_sink, Tracer};

/// Ring capacity per processor lane. Large enough that the quick cell
/// loses nothing; drops on bigger cells stay deterministic (same event
/// stream → same survivors) and are reported.
const LANE_CAP: usize = 1 << 16;

fn cell(quick: bool) -> SynthConfig {
    let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 });
    if quick {
        cfg.n = 768;
        cfg.refs = 1536;
        cfg.iters = 5;
    } else {
        cfg.n = 4096;
        cfg.refs = 8192;
        cfg.iters = 10;
    }
    cfg.seed = 42;
    cfg
}

/// One traced pass: the six-variant matrix under a fresh [`Tracer`].
/// Returns the Chrome JSON plus each parallel variant's report.
fn traced_pass(cfg: &SynthConfig) -> (String, usize, u64, Vec<(Variant, NetReport)>) {
    let tracer = Arc::new(Tracer::new(cfg.nprocs, LANE_CAP));
    let matrix = with_trace_sink(tracer.clone(), || run_matrix(&Scenario::new(cfg.clone())));
    let trace = tracer.capture();
    let (events, dropped) = (trace.len(), trace.dropped());
    let json = chrome_trace_json(&trace);
    let reports = matrix
        .runs
        .iter()
        .filter_map(|r| r.report.net.clone().map(|n| (r.variant, n)))
        .collect();
    (json, events, dropped, reports)
}

fn print_stall_table(variant: Variant, rep: &NetReport) {
    println!("\nstall attribution, {variant:?} (simulated ms per processor):");
    print!("{:>5} {:>10}", "proc", "clock");
    for cat in StallCat::ALL {
        print!(" {:>10}", cat.name());
    }
    println!();
    for (p, row) in rep.stalls.iter().enumerate() {
        print!("{p:>5} {:>10.3}", row.clock as f64 / 1e6);
        for cat in StallCat::ALL {
            print!(" {:>10.3}", row.get(cat) as f64 / 1e6);
        }
        println!();
    }
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = cell(quick);
    println!("=== table_trace: deterministic tracing + stall attribution ===");
    println!(
        "(one fixed-seed synth cell, {} procs, seed {}; six variants traced twice)\n",
        cfg.nprocs, cfg.seed
    );

    let (json_a, events, dropped, reports) = traced_pass(&cfg);
    let (json_b, _, _, _) = traced_pass(&cfg);

    if json_a != json_b {
        std::fs::write("/tmp/pass_a.json", &json_a).unwrap();
        std::fs::write("/tmp/pass_b.json", &json_b).unwrap();
        panic!("same seed, two passes: trace JSON must be byte-identical (dumped to /tmp)");
    }
    assert!(json_well_formed(&json_a), "exported trace JSON is malformed");
    assert!(events > 0, "traced run recorded no events");
    println!(
        "trace: {events} events on {} lanes ({dropped} dropped to ring bounds), {} B JSON",
        cfg.nprocs,
        json_a.len()
    );
    println!("two passes byte-identical, JSON well-formed  ✓");

    assert!(!reports.is_empty(), "no parallel variant carried a report");
    for (variant, rep) in &reports {
        check_conservation(rep).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
    }
    println!(
        "conservation: Σ categories == final clock on every proc of all {} variants  ✓",
        reports.len()
    );

    // The breakdown the paper's comparison turns on: where the adaptive
    // build's processors spend their simulated time.
    if let Some((v, rep)) = reports
        .iter()
        .find(|(v, _)| *v == Variant::TmkAdaptive)
        .or(reports.first())
    {
        print_stall_table(*v, rep);
    }

    if let Some(path) = arg_value("--trace") {
        std::fs::write(&path, &json_a).expect("write --trace output");
        println!("\nwrote {path} (load it in Perfetto or chrome://tracing)");
    }
}
