//! Regenerate the paper's figures:
//!
//! * **Figure 1** — the moldyn main program and `ComputeForces` (our
//!   mini-Fortran fixture, printed through the same code generator);
//! * **Figure 2** — the compiler transformation of `ComputeForces`
//!   (produced *by running the `fcc` pipeline*, not stored);
//! * **Figure 3** — the augmented run-time interface for indirect
//!   accesses, as implemented by `sdsm_core::validate`.
//!
//! `cargo run -p bench --bin figures [-- 1|2|3]`

fn main() {
    let which: Option<u32> = std::env::args().nth(1).and_then(|a| a.parse().ok());
    if which.is_none_or(|w| w == 1) {
        figure1();
    }
    if which.is_none_or(|w| w == 2) {
        figure2();
    }
    if which.is_none_or(|w| w == 3) {
        figure3();
    }
}

fn figure1() {
    println!("=== Figure 1: Moldyn — main program and ComputeForces ===\n");
    let parsed = fcc::parse(fcc::fixtures::MOLDYN_SOURCE).expect("figure 1 parses");
    print!("{}", fcc::emit_program(&parsed));
    println!();
}

fn figure2() {
    println!("=== Figure 2: Transformations for ComputeForces ===\n");
    let result = fcc::compile(fcc::fixtures::MOLDYN_SOURCE).expect("compiles");
    // Print only the transformed subroutine, as the paper's figure does.
    let src = &result.source;
    let start = src.find("      SUBROUTINE ComputeForces()").unwrap();
    print!("{}", &src[start..]);
    println!();
    println!("(Validate sites emitted for the run-time:)");
    for site in &result.sites {
        for d in &site.descriptors {
            println!(
                "  unit={} sched={} {:?} data={} ind={:?} section={} access={}",
                site.unit, d.schedule, d.kind, d.data, d.ind, d.section, d.access
            );
        }
        for r in &site.reductions {
            println!("  reduction: {} -> {}", r.array, r.local);
        }
    }
}

fn figure3() {
    println!("=== Figure 3: Augmented run-time interface (as implemented) ===\n");
    println!("{}", FIGURE3);
}

/// The paper's Figure-3 pseudocode, annotated with where each piece
/// lives in this implementation.
const FIGURE3: &str = r#"Validate( descriptors... )          -> sdsm_core::validate
  for each access descriptor:
    type:    DIRECT | INDIRECT       -> sdsm_core::Desc::{Direct, Indirect}
    base:    shared data address     -> sdsm_core::RegionRef
    section: RSD                     -> rsd::Rsd (compiler: rsd::SymRsd)
    access:  READ | WRITE | READ&WRITE
             | WRITE_ALL | READ&WRITE_ALL -> sdsm_core::AccessType
    sch:     schedule number         -> Desc::sched

    if type == INDIRECT:
      if modified(section)           -> TmkProc::take_modified (page
                                        write-watch: local faults and
                                        remote write notices both trip it)
        pages[sch] = Read_indices()  -> validate() pass 1: scan the
                                        indirection section, map targets
                                        to pages
        Write_protect(section)       -> TmkProc::watch_pages
    else:
      pages[sch] = pages in section  -> RegionRef::pages_of

    fetch_pages += invalid pages[sch]

  Fetch_diffs(fetch_pages)           -> TmkProc::fetch_pages(Aggregated):
                                        ONE request/reply per peer
  Apply_diffs(fetch_pages)           -> applied in causal (vector-clock)
                                        order; a Full page subsumes
                                        older diffs

  for descriptors with WRITE | READ&WRITE:
    Create_twins(pages[sch])         -> TmkProc::pre_twin
  for descriptors with *_ALL:
    whole-page treatment             -> TmkProc::mark_full_write for
                                        fully-covered pages (no twin, no
                                        fetch for WRITE_ALL; whole page
                                        shipped instead of diffs);
                                        boundary pages fall back to
                                        twin/diff (false sharing)
"#;
