//! The scenario-matrix *service* harness: where `table_synth` runs each
//! grid cell once, `table_serve` keeps serving cells — every job one
//! full six-variant `run_matrix` pass — from a work-stealing pool of
//! executor threads, and reports sustained throughput (cells/sec) and
//! per-job latency percentiles (p50/p95/p99).
//!
//! ```text
//! cargo run --release -p bench --bin table_serve -- --quick   # ≥200 jobs, 24-cell grid
//! cargo run --release -p bench --bin table_serve             # 60 s window, paper scale
//! ```
//!
//! Flags: `--jobs N` serves exactly N jobs; `--window-secs S` serves for
//! S seconds of wall clock; `--workers W` sets the executor count
//! (default 4); `--json PATH` additionally writes a machine-readable
//! report including the full log-bucket latency histogram (the nightly
//! run uploads it as an artifact); `--trace PATH` records the job
//! lifecycle — starts, completions, deque steals, cluster recycles —
//! on per-worker lanes and writes a Chrome trace. Without an explicit
//! stop, `--quick` serves 200 jobs and the paper-scale run serves a
//! 60-second window (the nightly soak).
//!
//! The run doubles as the serve subsystem's acceptance check: every
//! served job re-asserts the six-way bitwise contract inside
//! `run_matrix`, and the driver compares each job's per-variant message
//! and byte totals against cold-run goldens pinned before serving began
//! — the reusable-scratch path must be *observably* identical to fresh
//! clusters, or the run aborts.

use std::sync::Arc;
use std::time::Duration;

use serve::{serve, ServeConfig, Stop};
use synth::scenario_grid;
use trace::{json_well_formed, ServeTrace};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workers: usize = arg_value("--workers")
        .map(|v| v.parse().expect("--workers takes a count"))
        .unwrap_or(4);
    let jobs: Option<usize> = arg_value("--jobs").map(|v| v.parse().expect("--jobs takes a count"));
    let window: Option<u64> = arg_value("--window-secs")
        .map(|v| v.parse().expect("--window-secs takes seconds"));

    let stop = match (jobs, window) {
        (Some(n), _) => Stop::Jobs(n),
        (None, Some(s)) => Stop::Window(Duration::from_secs(s)),
        (None, None) if quick => Stop::Jobs(200),
        (None, None) => Stop::Window(Duration::from_secs(60)),
    };

    let grid = scenario_grid(quick);
    println!("=== table_serve: scenario-matrix-as-a-service ===");
    println!(
        "({} grid, {} cells; every job = one six-variant bitwise-checked matrix,",
        if quick { "quick" } else { "paper-scale" },
        grid.len()
    );
    println!(" served warm off recycled clusters, checked against cold goldens)\n");

    // Per-worker job-lifecycle lanes, only when asked for: the `None`
    // path is the zero-overhead default the heap assertions measure.
    let trace_path = arg_value("--trace");
    let tracer = trace_path
        .as_ref()
        .map(|_| Arc::new(ServeTrace::new(workers, 1 << 14)));

    let cfg = ServeConfig {
        workers,
        stop,
        // Room for one sparse-clock scale cell (64/256 procs) plus a few
        // small cells beside it.
        thread_budget: if quick { 96 } else { 288 },
        check_allocs: false,
        trace: tracer.clone(),
    };
    let out = serve(&grid, &cfg);
    print!("{}", out.summary());

    if let (Some(path), Some(tr)) = (&trace_path, &tracer) {
        let json = tr.to_chrome_json();
        assert!(json_well_formed(&json), "serve trace JSON malformed");
        let (jobs, steals, recycles) = tr.totals();
        assert_eq!(
            jobs, out.jobs_done,
            "trace saw {jobs} JobDone events for {} served jobs",
            out.jobs_done
        );
        std::fs::write(path, &json).expect("write --trace output");
        println!("wrote {path} ({jobs} jobs, {steals} steals, {recycles} recycles traced)");
    }

    if let Some(path) = arg_value("--json") {
        let lat = |q: f64| out.latency(q).as_secs_f64() * 1e3;
        let rows: Vec<String> = out
            .per_variant
            .iter()
            .map(|t| {
                format!(
                    "    {{ \"variant\": \"{:?}\", \"messages\": {}, \"bytes\": {} }}",
                    t.variant, t.messages, t.bytes
                )
            })
            .collect();
        // The full log-bucket latency histogram: half-open [lo, hi) ns
        // edges plus counts, one row per non-empty bucket. Counts sum to
        // the job total, so downstream tooling can recompute any
        // quantile without rerunning the service.
        let hist_rows: Vec<String> = out
            .hist
            .nonzero_buckets()
            .iter()
            .map(|&(lo, hi, n)| format!("    [{lo}, {hi}, {n}]"))
            .collect();
        let report = format!(
            "{{\n  \"grid\": \"{}\",\n  \"cells\": {},\n  \"workers\": {},\n  \"jobs\": {},\n  \"wall_secs\": {:.2},\n  \"cells_per_sec\": {:.2},\n  \"latency_ms\": {{ \"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2} }},\n  \"latency_hist_ns\": [\n{}\n  ],\n  \"per_variant\": [\n{}\n  ]\n}}\n",
            if quick { "quick" } else { "paper" },
            out.cells,
            out.workers,
            out.jobs_done,
            out.wall.as_secs_f64(),
            out.cells_per_sec(),
            lat(0.50),
            lat(0.95),
            lat(0.99),
            hist_rows.join(",\n"),
            rows.join(",\n"),
        );
        assert!(json_well_formed(&report), "--json report malformed");
        let bucket_total: u64 = out.hist.nonzero_buckets().iter().map(|&(_, _, n)| n).sum();
        assert_eq!(bucket_total, out.jobs_done, "histogram buckets must cover every job");
        std::fs::write(&path, report).expect("write --json report");
        println!("wrote {path}");
    }

    if let Stop::Jobs(n) = stop {
        assert_eq!(
            out.jobs_done, n as u64,
            "driver stopped early: {} of {n} jobs",
            out.jobs_done
        );
    }
    if quick && jobs.is_none() && window.is_none() {
        assert!(
            out.jobs_done >= 200,
            "quick acceptance needs ≥ 200 jobs, served {}",
            out.jobs_done
        );
    }
    println!(
        "\n{} jobs × 6 variants: all bitwise-identical, all equal to cold goldens  ✓",
        out.jobs_done
    );
}
