//! The fourth-system comparison: sequential vs plain TreadMarks vs
//! compiler-optimized (`Validate`) vs **runtime-adaptive** on all three
//! applications. This is the table the `adapt` crate exists for — how
//! much of the compiler's aggregation win does a purely runtime policy
//! recover, with no source analysis at all?
//!
//! ```text
//! cargo run --release -p bench --bin table_adapt            # paper scale
//! cargo run --release -p bench --bin table_adapt -- --quick # reduced scale
//! cargo run --release -p bench --bin table_adapt -- --quick --trace t.json
//! ```
//!
//! `--trace PATH` additionally runs the reduced-scale moldyn adaptive
//! build once more under the structured trace sink and writes a Chrome
//! trace (faults, barriers per phase tag, policy decisions, prefetch
//! rounds) viewable in Perfetto.
//!
//! The run doubles as the acceptance check for the adaptive engine: it
//! verifies (per the `simnet` counters) that on moldyn and nbf the
//! adaptive build sends ≥ 25% fewer messages than plain Tmk and the
//! update-push build sends strictly fewer than the pull-mode adaptive
//! build — *with the explicit push-subscription cost counted* — that
//! push ≤ prefetch ≤ base holds on every application, and that the
//! phase-keyed quiesce streaks actually fire on the multi-barrier apps
//! (quiesced plans > 0 on moldyn and nbf, which a globally-keyed
//! streak provably never achieves — their alternating barrier sites
//! reset it every epoch).

use std::sync::Arc;

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};
use apps::report::RunReport;
use apps::umesh::{self, UmeshConfig};
use bench::{print_group, Scale};
use trace::{chrome_trace_json, json_well_formed, with_trace_sink, Tracer};

struct Group {
    app: &'static str,
    seq_secs: f64,
    base: RunReport,
    opt: RunReport,
    adaptive: RunReport,
    push: RunReport,
}

impl Group {
    fn reduction_vs_base(&self) -> f64 {
        100.0 * (self.base.messages.saturating_sub(self.adaptive.messages)) as f64
            / self.base.messages.max(1) as f64
    }

    fn print(&self) {
        print_group(
            self.app,
            self.seq_secs,
            &[&self.base, &self.opt, &self.adaptive, &self.push],
        );
        let pol = self.adaptive.policy.clone().expect("adaptive policy report");
        println!(
            "  adaptive vs base: {:.1}% fewer messages (opt reaches {:.1}%)",
            self.reduction_vs_base(),
            100.0 * (self.base.messages.saturating_sub(self.opt.messages)) as f64
                / self.base.messages.max(1) as f64,
        );
        println!(
            "  policy decisions: {} epochs, {} promotions, {} demotions, {} probes; \
             {} prefetch rounds covering {} pages",
            pol.epochs,
            pol.promotions,
            pol.demotions,
            pol.probes,
            pol.prefetch_rounds,
            pol.prefetch_pages
        );
        println!(
            "  phase-keyed quiesce: {} plans deferred, {} quiesced untouched across {} phases",
            pol.deferred_plans,
            pol.quiesced_plans,
            pol.per_phase.len(),
        );
        for row in pol.per_phase.iter().filter(|r| r.quiesced_plans > 0) {
            println!(
                "    phase {:>2}: {} deferred, {} quiesced ({} pages saved)",
                row.phase, row.deferred_plans, row.quiesced_plans, row.quiesced_pages
            );
        }
        let pp = self.push.policy.clone().expect("push policy report");
        println!(
            "  update-push: {:.1}% fewer messages than pull-mode adaptive \
             ({} push rounds covering {} pages, {} one-way subscription msgs counted)",
            100.0 * (self.adaptive.messages.saturating_sub(self.push.messages)) as f64
                / self.adaptive.messages.max(1) as f64,
            pp.push_rounds,
            pp.push_pages,
            pp.subscriptions,
        );
    }
}

fn moldyn_group(scale: Scale) -> Group {
    let mut cfg = MoldynConfig::paper(15);
    if scale == Scale::Quick {
        // 1/8 the molecules with 1/4 the page size keeps the paper's
        // pages-per-array regime (~dozens of coordinate pages), which
        // is what both aggregation paths feed on.
        cfg.n = 2048;
        cfg.cutoff_frac = 0.2;
        cfg.page_size = 1024;
    }
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (base, xb) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (opt, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (adaptive, xa) = moldyn::run_adaptive(&cfg, &world, seq.report.time);
    let (push, xp) = moldyn::run_push(&cfg, &world, seq.report.time);
    assert_eq!(xa, xb, "moldyn: adaptive must be bitwise identical to base");
    assert_eq!(xp, xb, "moldyn: push must be bitwise identical to base");
    Group {
        app: "moldyn (rebuild every 15 steps)",
        seq_secs: seq.report.time.as_secs_f64(),
        base,
        opt,
        adaptive,
        push,
    }
}

fn nbf_group(scale: Scale) -> Group {
    let mut cfg = NbfConfig::paper(65536);
    if scale == Scale::Quick {
        cfg.n /= 8;
        cfg.partners = 50;
        cfg.page_size = 1024; // preserve the pages-per-array regime
    }
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (base, xb) = nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (opt, _) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (adaptive, xa) = nbf::run_adaptive(&cfg, &world, seq.report.time);
    let (push, xp) = nbf::run_push(&cfg, &world, seq.report.time);
    assert_eq!(xa, xb, "nbf: adaptive must be bitwise identical to base");
    assert_eq!(xp, xb, "nbf: push must be bitwise identical to base");
    Group {
        app: "nbf (static partner list)",
        seq_secs: seq.report.time.as_secs_f64(),
        base,
        opt,
        adaptive,
        push,
    }
}

fn umesh_group(scale: Scale) -> Group {
    let cfg = if scale == Scale::Quick {
        let mut c = UmeshConfig::small();
        c.side = 64;
        c.sweeps = 8;
        c
    } else {
        UmeshConfig::medium()
    };
    let mesh = umesh::gen_mesh(&cfg);
    let seq = umesh::run_seq(&cfg, &mesh);
    let (base, xb) = umesh::run_tmk(&cfg, &mesh, TmkMode::Base, seq.report.time);
    let (opt, _) = umesh::run_tmk(&cfg, &mesh, TmkMode::Optimized, seq.report.time);
    let (adaptive, xa) = umesh::run_adaptive(&cfg, &mesh, seq.report.time);
    let (push, xp) = umesh::run_push(&cfg, &mesh, seq.report.time);
    assert_eq!(xa, xb, "umesh: adaptive must be bitwise identical to base");
    assert_eq!(xp, xb, "umesh: push must be bitwise identical to base");
    Group {
        app: "umesh (static mesh)",
        seq_secs: seq.report.time.as_secs_f64(),
        base,
        opt,
        adaptive,
        push,
    }
}

fn main() {
    let scale = Scale::from_args();
    println!("=== table_adapt: the runtime-adaptive fourth and fifth systems ===");
    println!("(seq / Tmk base / Tmk+compiler / Tmk adaptive / Tmk push; times simulated;");
    println!(" the adaptive builds use NO compiler hints and NO inspector;");
    println!(" push = same predictor, writer-initiated one-way diffs)");

    let groups = [moldyn_group(scale), nbf_group(scale), umesh_group(scale)];
    for g in &groups {
        g.print();
    }

    // Acceptance checks, per the simnet counters.
    for g in &groups {
        assert!(
            g.adaptive.messages <= g.base.messages,
            "{}: adaptive sent MORE messages than plain Tmk ({} > {})",
            g.app,
            g.adaptive.messages,
            g.base.messages
        );
        assert!(
            g.push.messages <= g.adaptive.messages,
            "{}: push sent MORE messages than pull-mode adaptive ({} > {})",
            g.app,
            g.push.messages,
            g.adaptive.messages
        );
    }
    for g in &groups {
        let pp = g.push.policy.as_ref().expect("push policy report");
        assert!(
            pp.subscriptions > 0,
            "{}: push must pay its subscription traffic (0 AdaptSub billed)",
            g.app
        );
    }
    for g in &groups[..2] {
        assert!(
            g.reduction_vs_base() >= 25.0,
            "{}: adaptive reduction {:.1}% below the 25% bar",
            g.app,
            g.reduction_vs_base()
        );
        assert!(
            g.push.messages < g.adaptive.messages,
            "{}: update-push must be strictly cheaper than prefetch ({} !< {})",
            g.app,
            g.push.messages,
            g.adaptive.messages
        );
        // The phase-keyed quiesce win: the multi-barrier apps' plans
        // build per-site streaks and the final exchanges go untriggered
        // — a globally-keyed streak never fires here, because the
        // alternating barrier sites reset it every epoch.
        let pol = g.adaptive.policy.as_ref().expect("adaptive policy report");
        assert!(
            pol.deferred_plans > 0,
            "{}: phase-keyed streaks must defer steady plans",
            g.app
        );
        assert!(
            pol.quiesced_plans > 0,
            "{}: the final-barrier exchange must quiesce (0 plans quiesced)",
            g.app
        );
    }
    println!("\nacceptance: adaptive ≥25% fewer messages on moldyn and nbf,");
    println!("            push ≤ prefetch ≤ base everywhere (subscriptions counted),");
    println!("            push strictly beats prefetch on moldyn and nbf, and the");
    println!("            phase-keyed streaks quiesce plans on both  ✓");

    if let Some(path) = arg_value("--trace") {
        write_trace(&path);
    }
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// One reduced-scale moldyn adaptive run under the structured trace
/// sink, exported as Chrome trace JSON — the phase-tagged barriers and
/// the policy's promote/demote/prefetch decisions, on a timeline.
fn write_trace(path: &str) {
    let mut cfg = MoldynConfig::paper(15);
    cfg.n = 2048;
    cfg.cutoff_frac = 0.2;
    cfg.page_size = 1024;
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let tracer = Arc::new(Tracer::new(cfg.nprocs, 1 << 16));
    let _ = with_trace_sink(tracer.clone(), || {
        moldyn::run_adaptive(&cfg, &world, seq.report.time)
    });
    let trace = tracer.capture();
    let json = chrome_trace_json(&trace);
    assert!(json_well_formed(&json), "trace JSON malformed");
    std::fs::write(path, &json).expect("write --trace output");
    println!(
        "\nwrote {path}: {} events over {} lanes from one moldyn adaptive run",
        trace.len(),
        cfg.nprocs
    );
}
