//! Regenerate **Table 1** of the paper: moldyn, 8 processors, interaction
//! list rebuilt every {20, 15, 11} steps.
//!
//! ```text
//! cargo run --release -p bench --bin table1            # paper scale
//! cargo run --release -p bench --bin table1 -- --quick # reduced scale
//! ```

use apps::moldyn::MoldynConfig;
use bench::{moldyn_rows, print_group, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("=== Table 1: Moldyn — 8 processor results ===");
    println!("(interaction list updated at varying intervals; times are");
    println!(" simulated; see EXPERIMENTS.md for paper-vs-measured)");

    for interval in [20usize, 15, 11] {
        let rows = moldyn_rows(MoldynConfig::paper(interval), scale);
        print_group(
            &format!("Update every {interval} iterations"),
            rows.seq_secs,
            &[&rows.chaos, &rows.base, &rows.opt],
        );
        println!(
            "  in-text: CHAOS inspector {:.1}s/proc timed (+{:.1}s untimed); \
             Tmk Validate indirection scan {:.2}s/proc",
            rows.chaos.inspector_s, rows.chaos.untimed_inspector_s, rows.opt.validate_scan_s
        );
        println!(
            "  shape: opt/chaos time = {:.2}, base/opt messages = {:.1}x, \
             chaos+inspector = {:.1}s",
            rows.opt.time.as_secs_f64() / rows.chaos.time.as_secs_f64(),
            rows.base.messages as f64 / rows.opt.messages.max(1) as f64,
            rows.chaos.time.as_secs_f64() + rows.chaos.untimed_inspector_s
        );
    }
}
