//! Regenerate **Table 2** of the paper: the NBF kernel at
//! {64×1024, 64×1000, 32×1024} molecules, 8 processors.
//!
//! 64×1000 is the false-sharing case: 64000/8 = 8000 doubles per
//! processor = 15.625 pages, so partition boundaries fall mid-page.
//!
//! ```text
//! cargo run --release -p bench --bin table2 [-- --quick]
//! ```

use apps::nbf::NbfConfig;
use bench::{nbf_rows, print_group, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("=== Table 2: NBF kernel — 8 processor results ===");

    for (label, n) in [("64 x 1024", 65536usize), ("64 x 1000", 64000), ("32 x 1024", 32768)] {
        let rows = nbf_rows(NbfConfig::paper(n), scale);
        print_group(&format!("Problem size {label}"), rows.seq_secs, &[
            &rows.chaos,
            &rows.base,
            &rows.opt,
        ]);
        println!(
            "  in-text: CHAOS inspector (untimed) {:.1}s/proc; \
             Tmk indirection scan {:.3}s/proc",
            rows.chaos.untimed_inspector_s, rows.opt.validate_scan_s
        );
        println!(
            "  shape: opt/chaos time = {:.2}, chaos+inspector = {:.1}s vs opt {:.1}s",
            rows.opt.time.as_secs_f64() / rows.chaos.time.as_secs_f64(),
            rows.chaos.time.as_secs_f64() + rows.chaos.untimed_inspector_s,
            rows.opt.time.as_secs_f64()
        );
    }
}
