//! The paper's §5 single-processor sanity checks:
//!
//! * "The TreadMarks execution time on a single processor is almost
//!   identical to that of the sequential program, spending only 0.4
//!   seconds to check the indirection lists."
//! * "the CHAOS program runs longer on a single processor than the
//!   sequential program, because it spends 6.2 seconds in the inspector."
//!
//! `cargo run --release -p bench --bin overhead1p [-- --quick]`

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};
use bench::Scale;

fn main() {
    let scale = Scale::from_args();

    println!("=== Single-processor overheads (paper §5.1.1 / §5.2.1) ===\n");

    // moldyn at one rebuild.
    let mut cfg = MoldynConfig::paper(20);
    cfg.nprocs = 1;
    if scale == Scale::Quick {
        cfg.n = 2048;
        cfg.cutoff_frac = 0.2;
    }
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (opt, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (chaos, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
    println!("moldyn (update every 20):");
    println!("  sequential            {:8.1} s", seq.report.time.as_secs_f64());
    println!(
        "  TreadMarks, 1 proc    {:8.1} s   (indirection check {:.2} s)",
        opt.time.as_secs_f64(),
        opt.validate_scan_s
    );
    println!(
        "  CHAOS, 1 proc         {:8.1} s   (+ inspector {:.1} s)",
        chaos.time.as_secs_f64(),
        chaos.inspector_s + chaos.untimed_inspector_s
    );

    // nbf 64×1024.
    let mut cfg = NbfConfig::paper(65536);
    cfg.nprocs = 1;
    if scale == Scale::Quick {
        cfg.n /= 8;
        cfg.partners = 50;
    }
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);
    let (opt, _) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    let (chaos, _) = nbf::run_chaos(&cfg, &world, seq.report.time);
    println!("\nnbf (64 x 1024):");
    println!("  sequential            {:8.1} s", seq.report.time.as_secs_f64());
    println!(
        "  TreadMarks, 1 proc    {:8.1} s   (indirection scan {:.3} s)",
        opt.time.as_secs_f64(),
        opt.validate_scan_s
    );
    println!(
        "  CHAOS, 1 proc         {:8.1} s   (+ inspector {:.1} s, untimed)",
        chaos.time.as_secs_f64(),
        chaos.untimed_inspector_s
    );
}
