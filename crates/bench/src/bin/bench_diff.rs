//! Diff the per-variant message totals between two committed bench
//! snapshots — the golden-count regression gate for `make bench` / CI.
//!
//! ```text
//! cargo run --release -p bench --bin bench_diff              # BENCH_9.json vs BENCH_10.json
//! cargo run --release -p bench --bin bench_diff -- OLD NEW   # explicit files
//! ```
//!
//! Message totals are counted in-simulation, so they are exactly
//! reproducible: any drift between snapshots means a protocol change.
//! That is allowed — but only *deliberately*, with `golden_counts.rs`
//! and the committed snapshot updated in the same change. This tool
//! exits non-zero when the totals moved, so an accidental protocol
//! regression cannot hide inside a benchmark refresh.
//!
//! One wall-clock number is additionally gated, one-sided:
//! `serve_quick_grid.cells_per_sec` (the end-to-end throughput the
//! parallel hot paths exist to serve) must not fall below the old
//! snapshot's median by more than a noise band — the larger of 6× the
//! old snapshot's recorded MAD and half the old median, so the gate
//! survives three-round jitter *and* a CI host slower than the machine
//! that committed the snapshot, while an actual hot-path regression
//! (serialized inspector, lost bitmap planner) still trips it.
//! Speedups always pass. Every other wall-clock section (`benches_ns`,
//! percentiles) stays machine-dependent and deliberately ignored.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// `app -> variant -> messages`, scraped from a snapshot's
/// `"message_totals"` section (format written by `bench_json`).
type Totals = BTreeMap<String, BTreeMap<String, u64>>;

fn parse_totals(text: &str) -> Totals {
    let mut totals = Totals::new();
    let Some(start) = text.find("\"message_totals\"") else {
        return totals;
    };
    let Some(end) = text[start..].find('}').map(|_| {
        // The section closes at the first line that is exactly "  },"
        // or "  }" — every app row's braces sit on one line.
        let tail = &text[start..];
        let mut depth = 0usize;
        let mut idx = 0usize;
        for (i, c) in tail.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        idx = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        start + idx
    }) else {
        return totals;
    };
    for line in text[start..end].lines() {
        let line = line.trim();
        // `"label": { "tag": N, "tag": N, ... },`
        let Some((label, rest)) = line.split_once(": {") else {
            continue;
        };
        let label = label.trim_matches(|c| c == '"' || c == ' ');
        let mut row = BTreeMap::new();
        for cell in rest.trim_end_matches(['}', ',', ' ']).split(',') {
            if let Some((tag, n)) = cell.split_once(':') {
                let tag = tag.trim().trim_matches('"');
                if let Ok(n) = n.trim().parse::<u64>() {
                    row.insert(tag.to_string(), n);
                }
            }
        }
        if !row.is_empty() {
            totals.insert(label.to_string(), row);
        }
    }
    totals
}

/// Scrape one top-level-ish numeric field (first occurrence) from a
/// snapshot. Returns `None` when the key is absent — older snapshots
/// predate `cells_per_sec_mad`, and the gate degrades gracefully.
fn parse_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The one-sided throughput gate (see module docs). Returns an error
/// line when the new snapshot's serve throughput regressed beyond the
/// noise band, `Ok(None)` when either snapshot lacks the field.
fn check_cells_per_sec(old_text: &str, new_text: &str) -> Result<Option<String>, String> {
    let (Some(was), Some(now)) = (
        parse_number(old_text, "cells_per_sec"),
        parse_number(new_text, "cells_per_sec"),
    ) else {
        return Ok(None);
    };
    let mad = parse_number(old_text, "cells_per_sec_mad").unwrap_or(0.0);
    let band = (6.0 * mad).max(0.5 * was);
    if now + band < was {
        return Err(format!(
            "cells_per_sec regressed: {was:.2} -> {now:.2} (allowed noise band {band:.2})"
        ));
    }
    Ok(Some(format!(
        "cells_per_sec {was:.2} -> {now:.2} within band {band:.2}"
    )))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match args.as_slice() {
        [] => ("BENCH_9.json".to_string(), "BENCH_10.json".to_string()),
        [old, new] => (old.clone(), new.clone()),
        _ => {
            eprintln!("usage: bench_diff [OLD.json NEW.json]");
            return ExitCode::FAILURE;
        }
    };
    let old_text = match std::fs::read_to_string(&old_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_diff: cannot read {old_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new_text = match std::fs::read_to_string(&new_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old = parse_totals(&old_text);
    let new = parse_totals(&new_text);
    if old.is_empty() || new.is_empty() {
        eprintln!("bench_diff: no message_totals section in one of the snapshots");
        return ExitCode::FAILURE;
    }

    let mut drift = 0usize;
    for (app, old_row) in &old {
        let Some(new_row) = new.get(app) else {
            println!("bench_diff: {app}: present in {old_path}, missing from {new_path}");
            drift += 1;
            continue;
        };
        for (tag, &was) in old_row {
            let now = new_row.get(tag).copied();
            if now != Some(was) {
                println!(
                    "bench_diff: {app}/{tag}: {was} -> {}",
                    now.map_or("missing".to_string(), |n| n.to_string())
                );
                drift += 1;
            }
        }
    }

    match check_cells_per_sec(&old_text, &new_text) {
        Ok(Some(line)) => println!("bench_diff: {line}  ✓"),
        Ok(None) => println!("bench_diff: no cells_per_sec in both snapshots; throughput gate skipped"),
        Err(e) => {
            println!("bench_diff: {e}");
            drift += 1;
        }
    }

    if drift == 0 {
        println!(
            "bench_diff: message totals identical across {} apps ({old_path} vs {new_path})  ✓",
            old.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nbench_diff: {drift} per-variant totals drifted. Protocol counts are\n\
             exact simulation artifacts: if this change is deliberate, update\n\
             crates/apps/tests/golden_counts.rs and commit the refreshed snapshot\n\
             in the same change; if not, a protocol regression slipped in."
        );
        ExitCode::FAILURE
    }
}
