//! The scenario-matrix harness: every cell of the synthetic grid
//! (interaction structure × indirection dynamics × nprocs) runs all
//! six system variants through the generic `Workload` runner, printing
//! a message/time matrix from the `simnet` counters.
//!
//! ```text
//! cargo run --release -p bench --bin table_synth            # paper scale
//! cargo run --release -p bench --bin table_synth -- --quick # seconds scale
//! cargo run --release -p bench --bin table_synth -- --quick --trace t.json
//! ```
//!
//! `--trace PATH` re-runs the grid's first cell under the structured
//! trace sink and writes a Chrome trace (Perfetto-viewable timeline of
//! faults, fetches, barriers, and policy decisions per processor).
//!
//! The run is also the subsystem's acceptance check. Per scenario:
//!
//! * all six variants agree **bitwise** (asserted inside
//!   `run_matrix` — the fixed-order owner-side reduction contract);
//! * the adaptive policy never sends more messages than plain Tmk, and
//!   update-push never sends more than pull-mode adaptive
//!   (push ≤ prefetch ≤ base per cell);
//! * on *static*-indirection scenarios CHAOS beats plain Tmk on both
//!   messages and time, as the paper predicts (its inspector amortizes
//!   perfectly when the list never changes).
//!
//! In `--quick` mode it additionally re-runs the three classic apps
//! through the `Workload` trait and asserts the counts equal the direct
//! per-app calls' — the refactor-safety check that the trait harness
//! changes nothing.

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};
use apps::umesh::{self, UmeshConfig};
use apps::workload::{
    run_matrix, MoldynWorkload, NbfWorkload, UmeshWorkload, Variant, WorkloadMatrix,
};
use bench::Scale;
use synth::{notice_meta_probe, scenario_grid, Dynamics, Scenario, Structure, SynthConfig};

fn print_matrix_row(m: &WorkloadMatrix) {
    let cell = |v: Variant| {
        let r = &m.get(v).report;
        format!("{:>7} {:>8.1}s", r.messages, r.time.as_secs_f64())
    };
    println!(
        "{:<24} {:>9.1}s | {} | {} | {} | {} | {}",
        m.label,
        m.get(Variant::Seq).report.time.as_secs_f64(),
        cell(Variant::TmkBase),
        cell(Variant::TmkOpt),
        cell(Variant::TmkAdaptive),
        cell(Variant::TmkPush),
        cell(Variant::Chaos),
    );
}

fn main() {
    let scale = Scale::from_args();
    let quick = scale == Scale::Quick;
    println!("=== table_synth: the synthetic scenario matrix ===");
    println!("(structure × dynamics × nprocs; six variants per cell; all cells");
    println!(" cross-checked bitwise; messages and simulated seconds per variant)\n");
    println!(
        "{:<24} {:>10} | {:^16} | {:^16} | {:^16} | {:^16} | {:^16}",
        "scenario", "seq", "Tmk base", "Tmk optimized", "Tmk adaptive", "Tmk push", "CHAOS"
    );

    let grid = scenario_grid(quick);
    let first_cell = grid.first().cloned();
    let ncells = grid.len();
    let mut static_wins = 0usize;
    for cfg in grid {
        let is_static = cfg.dynamics == Dynamics::Static;
        // On the churn cells (unannounced mid-run regime breaks and
        // partition rebalances) a learned plan is *allowed* to be
        // wrong for a bounded while — the steady-state bars relax to
        // the probe-budget bound. `table_churn` asserts the churn
        // properties in depth; here the cells just ride the grid.
        let churn_budget = cfg.dynamics.is_churn().then(|| bench::churn_budget(&cfg));
        let scenario = Scenario::new(cfg);
        let m = run_matrix(&scenario); // asserts 6-way bitwise agreement
        print_matrix_row(&m);

        let base = &m.get(Variant::TmkBase).report;
        let adaptive = &m.get(Variant::TmkAdaptive).report;
        let push = &m.get(Variant::TmkPush).report;
        let chaos = &m.get(Variant::Chaos).report;
        let slack = churn_budget.unwrap_or(0);
        assert!(
            adaptive.messages <= base.messages + slack,
            "{}: adaptive sent MORE messages than plain Tmk allows ({} > {} + {})",
            m.label,
            adaptive.messages,
            base.messages,
            slack
        );
        assert!(
            push.messages <= adaptive.messages + slack,
            "{}: push sent MORE messages than pull-mode adaptive allows ({} > {} + {})",
            m.label,
            push.messages,
            adaptive.messages,
            slack
        );
        if is_static {
            assert!(
                chaos.messages < base.messages && chaos.time < base.time,
                "{}: CHAOS must win on static indirection (msgs {} vs {}, {:.1}s vs {:.1}s)",
                m.label,
                chaos.messages,
                base.messages,
                chaos.time.as_secs_f64(),
                base.time.as_secs_f64()
            );
            static_wins += 1;
        }
    }
    println!("\n{ncells}-cell grid: all six variants bitwise-identical per scenario,");
    println!("push ≤ adaptive ≤ plain Tmk messages everywhere (probe-budget slack on");
    println!("churn cells), CHAOS won all {static_wins} static cells  ✓");

    notice_scaling_probe();

    if quick {
        classic_apps_through_trait();
    }

    if let Some(path) = arg_value("--trace") {
        let cfg = first_cell.expect("grid is never empty");
        let tracer = std::sync::Arc::new(trace::Tracer::new(cfg.nprocs, 1 << 16));
        let _ = trace::with_trace_sink(tracer.clone(), || run_matrix(&Scenario::new(cfg.clone())));
        let t = tracer.capture();
        let json = trace::chrome_trace_json(&t);
        assert!(trace::json_well_formed(&json), "trace JSON malformed");
        std::fs::write(&path, &json).expect("write --trace output");
        println!(
            "\nwrote {path}: {} events over {} lanes from the grid's first cell",
            t.len(),
            cfg.nprocs
        );
    }
}

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// The barrier-metadata scaling check: the same fixed-size workload at
/// 16 and 64 processors (both past the dense-clock cutoff, so both use
/// the sparse delta encoding). With the flat digest and delta clocks,
/// the per-barrier notice payload is ~`12·nwriters + 4·pages`: the
/// page term is constant in nprocs for a fixed problem, so quadrupling
/// the cluster must *not* quadruple the bytes. The dense O(nprocs)
/// clock-per-record encoding this replaced fails this assertion.
fn notice_scaling_probe() {
    let probe = |nprocs: usize| {
        let mut cfg = SynthConfig::quick(Structure::Uniform, synth::Dynamics::Static);
        cfg.n = 8192; // 128 pages of 512 B — ≥ 2 per proc at both sizes
        cfg.refs = 12288;
        cfg.iters = 6;
        cfg.nprocs = nprocs;
        let world = synth::gen_world(&cfg);
        notice_meta_probe(&cfg, &world)
    };
    let nb16 = probe(16);
    let nb64 = probe(64);
    println!(
        "\nbarrier notice metadata, same workload: p16 {nb16} B, p64 {nb64} B ({:.2}x for 4x procs)",
        nb64 as f64 / nb16 as f64
    );
    assert!(nb16 > 0 && nb64 > 0, "probe counted no notice metadata");
    assert!(
        nb64 < 4 * nb16,
        "barrier metadata super-linear in nprocs: p64 {nb64} B vs p16 {nb16} B"
    );
    println!("metadata cost ~linear in nprocs (64-proc < 4x the 16-proc bytes)  ✓");
}

/// The refactor-safety check: each classic app, run through the
/// `Workload` trait, must reproduce the direct per-app calls' counts
/// exactly (`run_matrix` checked physics agreement already).
fn classic_apps_through_trait() {
    println!("\n--- classic apps through the Workload trait (vs direct calls) ---");

    let cfg = MoldynConfig::small();
    let w = MoldynWorkload::new(cfg.clone());
    let m = run_matrix(&w);
    let seq = moldyn::run_seq(&cfg, &w.world);
    let direct = [
        (Variant::TmkBase, moldyn::run_tmk(&cfg, &w.world, TmkMode::Base, seq.report.time).0),
        (Variant::TmkOpt, moldyn::run_tmk(&cfg, &w.world, TmkMode::Optimized, seq.report.time).0),
        (Variant::TmkAdaptive, moldyn::run_adaptive(&cfg, &w.world, seq.report.time).0),
        (Variant::TmkPush, moldyn::run_push(&cfg, &w.world, seq.report.time).0),
        (Variant::Chaos, moldyn::run_chaos(&cfg, &w.world, seq.report.time).0),
    ];
    assert_counts_match(&m, &direct);

    let cfg = NbfConfig::small();
    let w = NbfWorkload::new(cfg.clone());
    let m = run_matrix(&w);
    let seq = nbf::run_seq(&cfg, &w.world);
    let direct = [
        (Variant::TmkBase, nbf::run_tmk(&cfg, &w.world, TmkMode::Base, seq.report.time).0),
        (Variant::TmkOpt, nbf::run_tmk(&cfg, &w.world, TmkMode::Optimized, seq.report.time).0),
        (Variant::TmkAdaptive, nbf::run_adaptive(&cfg, &w.world, seq.report.time).0),
        (Variant::TmkPush, nbf::run_push(&cfg, &w.world, seq.report.time).0),
        (Variant::Chaos, nbf::run_chaos(&cfg, &w.world, seq.report.time).0),
    ];
    assert_counts_match(&m, &direct);

    let cfg = UmeshConfig::small();
    let w = UmeshWorkload::new(cfg.clone());
    let m = run_matrix(&w);
    let seq = umesh::run_seq(&cfg, &w.mesh);
    let direct = [
        (Variant::TmkBase, umesh::run_tmk(&cfg, &w.mesh, TmkMode::Base, seq.report.time).0),
        (Variant::TmkOpt, umesh::run_tmk(&cfg, &w.mesh, TmkMode::Optimized, seq.report.time).0),
        (Variant::TmkAdaptive, umesh::run_adaptive(&cfg, &w.mesh, seq.report.time).0),
        (Variant::TmkPush, umesh::run_push(&cfg, &w.mesh, seq.report.time).0),
        (Variant::Chaos, umesh::run_chaos(&cfg, &w.mesh, seq.report.time).0),
    ];
    assert_counts_match(&m, &direct);

    println!("moldyn, nbf, umesh: trait-harness counts == direct-call counts  ✓");
}

fn assert_counts_match(m: &WorkloadMatrix, direct: &[(Variant, apps::RunReport)]) {
    for (v, d) in direct {
        let t = &m.get(*v).report;
        assert_eq!(
            (t.messages, t.bytes),
            (d.messages, d.bytes),
            "{} {:?}: trait harness diverged from direct call",
            m.label,
            v
        );
    }
    println!(
        "{:<24} base {:>6} msgs | opt {:>6} | adaptive {:>6} | push {:>6} | CHAOS {:>6}   (= direct)",
        m.label,
        m.get(Variant::TmkBase).report.messages,
        m.get(Variant::TmkOpt).report.messages,
        m.get(Variant::TmkAdaptive).report.messages,
        m.get(Variant::TmkPush).report.messages,
        m.get(Variant::Chaos).report.messages,
    );
}
