//! Ablations beyond the paper's tables — the design choices DESIGN.md
//! calls out. Run one (or all) studies:
//!
//! ```text
//! cargo run --release -p bench --bin ablation -- [study] [--quick]
//!   update-freq   moldyn time vs rebuild interval (paper's headline
//!                 claim as a curve, not three points)
//!   page-size     nbf 64×1000 vs consistency-unit size (false sharing)
//!   ttable        CHAOS inspector vs translation-table organization
//!   scaling       all three systems at 1..=8 processors
//!   opt-levels    base vs aggregation-only vs full optimization
//! ```

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};
use bench::Scale;
use chaos::{block_partition, inspector, ChaosWorld, TTable, TTableCache, TTableKind};

fn main() {
    let study = std::env::args()
        .nth(1)
        .filter(|s| !s.starts_with("--"))
        .unwrap_or_else(|| "all".into());
    let scale = Scale::from_args();
    match study.as_str() {
        "update-freq" => update_freq(scale),
        "page-size" => page_size(scale),
        "ttable" => ttable_study(scale),
        "scaling" => scaling(scale),
        "opt-levels" => opt_levels(scale),
        "all" => {
            update_freq(scale);
            page_size(scale);
            ttable_study(scale);
            scaling(scale);
            opt_levels(scale);
        }
        other => eprintln!("unknown study '{other}'"),
    }
}

fn moldyn_cfg(scale: Scale, interval: usize) -> MoldynConfig {
    let mut cfg = MoldynConfig::paper(interval);
    if scale == Scale::Quick {
        cfg.n = 2048;
        cfg.cutoff_frac = 0.2;
    } else {
        cfg.n = 8192; // ablations run many points; half scale
        cfg.cutoff_frac = 0.15;
    }
    cfg
}

/// The paper's claim as a curve: "The advantage of this approach
/// increases as the frequency of changes to the indirection array
/// increases."
fn update_freq(scale: Scale) {
    println!("\n=== Ablation: update frequency (moldyn) ===");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>14}",
        "interval", "CHAOS(s)", "TmkOpt(s)", "opt/chaos", "chaos+inspect"
    );
    for interval in [40usize, 20, 10, 5, 3] {
        let cfg = moldyn_cfg(scale, interval);
        let world = moldyn::gen_positions(&cfg);
        let seq = moldyn::run_seq(&cfg, &world);
        let (c, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
        let (o, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>12.2} {:>14.1}",
            interval,
            c.time.as_secs_f64(),
            o.time.as_secs_f64(),
            o.time.as_secs_f64() / c.time.as_secs_f64(),
            c.time.as_secs_f64() + c.untimed_inspector_s
        );
    }
}

/// False sharing vs consistency unit: nbf 64×1000 with different pages.
fn page_size(scale: Scale) {
    println!("\n=== Ablation: page size (nbf 64x1000, Tmk optimized) ===");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "page", "time(s)", "messages", "MB"
    );
    for page in [1024usize, 2048, 4096, 8192, 16384] {
        let mut cfg = NbfConfig::paper(64000);
        cfg.page_size = page;
        if scale == Scale::Quick {
            cfg.n = 8000;
            cfg.partners = 50;
        }
        let world = nbf::gen_world(&cfg);
        let seq = nbf::run_seq(&cfg, &world);
        let (o, _) = nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
        println!(
            "{:<10} {:>10.1} {:>10} {:>10.1}",
            page,
            o.time.as_secs_f64(),
            o.messages,
            o.megabytes()
        );
    }
}

/// Inspector cost under the three translation-table organizations.
fn ttable_study(scale: Scale) {
    println!("\n=== Ablation: translation-table organization (inspector) ===");
    let n = if scale == Scale::Quick { 8192 } else { 65536 };
    let nprocs = 8;
    let part = block_partition(n, nprocs);
    let refs_per_proc = 64 * n / nprocs; // dense irregular access
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "organization", "msgs", "bytes", "inspect(s)", "mem/proc"
    );
    for (label, kind) in [
        ("replicated", TTableKind::Replicated),
        ("distributed", TTableKind::Distributed),
        ("paged(512)", TTableKind::Paged { entries_per_page: 512 }),
    ] {
        let tt = TTable::new(kind, &part);
        let w = ChaosWorld::new(nprocs, Default::default());
        let secs = parking_lot::Mutex::new(0.0f64);
        w.run(|cp| {
            let me = cp.rank();
            let mut cache = TTableCache::new();
            let refs = (0..refs_per_proc).map(|k| ((me * 97 + k * 131) % n) as u32);
            let t0 = cp.now();
            let _ = inspector(cp, &tt, &mut cache, refs);
            if me == 0 {
                *secs.lock() = (cp.now() - t0).as_secs_f64();
            }
        });
        let rep = w.report();
        println!(
            "{:<14} {:>10} {:>12} {:>12.2} {:>10}",
            label,
            rep.messages,
            rep.bytes,
            secs.into_inner(),
            tt.bytes_per_proc()
        );
    }
}

/// Processor scaling for the three systems on moldyn.
fn scaling(scale: Scale) {
    println!("\n=== Ablation: processor scaling (moldyn, update every 20) ===");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "nprocs", "CHAOS", "Tmk base", "Tmk opt"
    );
    for nprocs in [1usize, 2, 4, 8] {
        let mut cfg = moldyn_cfg(scale, 20);
        cfg.nprocs = nprocs;
        let world = moldyn::gen_positions(&cfg);
        let seq = moldyn::run_seq(&cfg, &world);
        let (c, _) = moldyn::run_chaos(&cfg, &world, seq.report.time);
        let (b, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
        let (o, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>10.1}",
            nprocs,
            c.time.as_secs_f64(),
            b.time.as_secs_f64(),
            o.time.as_secs_f64()
        );
    }
}

/// Where the optimized build's win comes from: the paper attributes 7 of
/// moldyn's 11 percentage points to the regular-access support and 4 to
/// the indirect aggregation. Here: base, then only the indirect Validate
/// (no *_ALL epilogue), then full.
fn opt_levels(scale: Scale) {
    println!("\n=== Ablation: optimization levels (moldyn) ===");
    let cfg = moldyn_cfg(scale, 20);
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);
    let (b, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
    let (o, _) = moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time);
    println!("base:      {:>8.1} s  {:>9} msgs  {:>7.1} MB", b.time.as_secs_f64(), b.messages, b.megabytes());
    println!("optimized: {:>8.1} s  {:>9} msgs  {:>7.1} MB", o.time.as_secs_f64(), o.messages, o.megabytes());
    println!(
        "improvement: {:.0}% time, {:.1}x fewer messages",
        100.0 * (1.0 - o.time.as_secs_f64() / b.time.as_secs_f64()),
        b.messages as f64 / o.messages.max(1) as f64
    );
}
