//! The churn harness: the six scenario-grid cells whose indirection
//! regime *breaks mid-run* — unannounced dynamics shifts
//! (`Dynamics::RegimeShift`) and partition rebalances
//! (`Dynamics::Rebalance`) — plus an opt-in lossy-link section, each
//! bounded by a falsifiable assertion.
//!
//! ```text
//! cargo run --release -p bench --bin table_churn            # paper scale
//! cargo run --release -p bench --bin table_churn -- --quick # seconds scale
//! ```
//!
//! Three claims, asserted in-binary per run:
//!
//! 1. **Churn never perturbs results.** Every churn cell goes through
//!    `run_matrix`, which asserts all six variants bitwise-identical —
//!    a break, a rebalance, or a dropped message may cost traffic, but
//!    never changes a single output bit.
//! 2. **A stale plan is bounded by the probe budget.** On each cell,
//!    `adaptive ≤ base + probe_budget` and `push ≤ base + probe_budget`
//!    messages, with the budget computed from first principles
//!    (`adapt::probe_budget` via [`bench::churn_budget`]): per shared
//!    page and processor, a wrong plan survives at most
//!    `min(probe_every, epochs)` exchanges of ≤ 2 messages before a
//!    contradicting probe demotes it.
//! 3. **Loss degrades push no worse than request/reply.** Re-running
//!    one churn cell under `simnet::with_loss`, the extra messages the
//!    drops cost update-push stay ≤ what they cost pull-mode adaptive
//!    (each lost one-way push retries one message; each lost leg of a
//!    request/reply round trip retries too, and there are two legs to
//!    lose). The lossy runs stay bitwise-identical to the clean runs,
//!    and the per-proc stall rows still conserve simulated time with
//!    the new `Retry` category present and non-zero.
//!
//! `--quick` runs the same cells at seconds scale (this mode is wired
//! into `make soak` and CI); the default is the full nightly scale.

use apps::workload::{run_matrix, Variant, Workload, WorkloadMatrix};
use bench::{churn_budget, Scale};
use simnet::{with_loss, StallCat};
use synth::{scenario_grid, Scenario};

fn print_matrix_row(m: &WorkloadMatrix, budget: u64) {
    let cell = |v: Variant| {
        let r = &m.get(v).report;
        format!("{:>7} {:>8.1}s", r.messages, r.time.as_secs_f64())
    };
    println!(
        "{:<34} | {} | {} | {} | {} | budget {:>6}",
        m.label,
        cell(Variant::TmkBase),
        cell(Variant::TmkAdaptive),
        cell(Variant::TmkPush),
        cell(Variant::Chaos),
        budget,
    );
}

fn main() {
    let scale = Scale::from_args();
    let quick = scale == Scale::Quick;
    println!("=== table_churn: mid-run regime breaks, rebalances, lossy links ===");
    println!("(churn cells of the scenario grid; six variants per cell, bitwise-");
    println!(" checked; messages bounded by the probe budget computed in-crate)\n");
    println!(
        "{:<34} | {:^16} | {:^16} | {:^16} | {:^16} |",
        "churn scenario", "Tmk base", "Tmk adaptive", "Tmk push", "CHAOS"
    );

    let churn: Vec<_> = scenario_grid(quick)
        .into_iter()
        .filter(|cfg| cfg.dynamics.is_churn())
        .collect();
    assert_eq!(
        churn.len(),
        6,
        "the grid's churn axis is six cells (3 regime shifts, 1 multi-periodic \
         shift, 2 rebalances)"
    );

    for cfg in &churn {
        let budget = churn_budget(cfg);
        let m = run_matrix(&Scenario::new(cfg.clone())); // asserts 6-way bitwise
        print_matrix_row(&m, budget);

        let base = m.get(Variant::TmkBase).report.messages;
        for v in [Variant::TmkAdaptive, Variant::TmkPush] {
            let got = m.get(v).report.messages;
            assert!(
                got <= base + budget,
                "{}/{v:?}: a stale plan must be bounded by the probe budget \
                 ({got} > {base} + {budget})",
                m.label,
            );
        }
    }
    println!(
        "\n{} churn cells: six-way bitwise agreement across every break and",
        churn.len()
    );
    println!("rebalance, adaptive and push within the probe budget of base  ✓");

    lossy_link_probe(&churn[0]);
}

/// Deterministic loss-model seeds/rate for the probe: ~5% per-message
/// drops, heavy enough that every variant retries, light enough that
/// the quick cell still finishes in milliseconds.
const LOSS_SEED: u64 = 0x0C4A_0515;
const LOSS_PER_MILLE: u32 = 50;

/// Claim 3: re-run the first churn cell's adaptive and push variants
/// under deterministic message loss and assert (a) bitwise-unchanged
/// results, (b) push's loss-degradation ≤ adaptive's, (c) simulated
/// time still conserves across stall categories with `Retry` present.
fn lossy_link_probe(cfg: &synth::SynthConfig) {
    println!("\n--- lossy links on the first churn cell ({}‰ drops) ---", LOSS_PER_MILLE);
    let scn = Scenario::new(cfg.clone());
    let (seq_report, seq_x) = scn.run(Variant::Seq, simnet::SimTime::ZERO);
    let seq_time = seq_report.time;

    for v in [Variant::TmkAdaptive, Variant::TmkPush] {
        let (clean, clean_x) = scn.run(v, seq_time);
        let (lossy, lossy_x) = with_loss(LOSS_SEED, LOSS_PER_MILLE, || scn.run(v, seq_time));
        assert_eq!(
            lossy_x, clean_x,
            "{v:?}: dropped messages must perturb cost, never results"
        );
        assert_eq!(lossy_x, seq_x, "{v:?}: lossy run diverged from sequential");
        assert!(
            lossy.messages > clean.messages,
            "{v:?}: {LOSS_PER_MILLE}‰ loss billed no retries ({} msgs clean and lossy)",
            clean.messages
        );

        let net = lossy.net.as_ref().expect("synth kernels freeze a NetReport");
        let mut retry_stall = 0u64;
        for (rank, row) in net.stalls.iter().enumerate() {
            assert_eq!(
                row.total(),
                row.clock,
                "{v:?} p{rank}: stall categories must conserve the simulated clock"
            );
            retry_stall += row.get(StallCat::Retry);
        }
        assert!(
            retry_stall > 0,
            "{v:?}: loss run attributed no stall time to Retry"
        );
        println!(
            "{:<14} clean {:>7} msgs | lossy {:>7} (+{:>5}) | retry stall {:>9} us | bitwise ✓",
            format!("{v:?}"),
            clean.messages,
            lossy.messages,
            lossy.messages - clean.messages,
            retry_stall,
        );
    }

    // Degradation comparison needs all four counts at once.
    let adaptive_clean = scn.run(Variant::TmkAdaptive, seq_time).0.messages;
    let push_clean = scn.run(Variant::TmkPush, seq_time).0.messages;
    let (adaptive_lossy, push_lossy) = with_loss(LOSS_SEED, LOSS_PER_MILLE, || {
        (
            scn.run(Variant::TmkAdaptive, seq_time).0.messages,
            scn.run(Variant::TmkPush, seq_time).0.messages,
        )
    });
    let adaptive_extra = adaptive_lossy - adaptive_clean;
    let push_extra = push_lossy - push_clean;
    assert!(
        push_extra <= adaptive_extra,
        "push must degrade no worse than request/reply under loss \
         (push +{push_extra} vs adaptive +{adaptive_extra} msgs)"
    );
    println!(
        "loss degradation: push +{push_extra} msgs ≤ request/reply +{adaptive_extra} msgs  ✓"
    );
}
