//! Collect the machine-readable benchmark snapshot `BENCH_10.json`.
//!
//! `make bench` runs `cargo bench` with `CRITERION_JSON` pointing at a
//! JSON-lines sink (one `{"name": ..., "ns": ..., "mad_ns": ...}` per
//! microbenchmark, written by the criterion shim), then runs this
//! collector, which merges:
//!
//! * the per-benchmark median nanoseconds and their MAD (last line wins
//!   if a bench ran twice);
//! * the per-variant **message totals** of the three classic apps at
//!   their small sizes (the numbers `golden_counts.rs` pins — counted
//!   in-simulation, so they are machine-independent) plus the quick
//!   grid's six **churn cells** (regime breaks, rebalances), so a drift
//!   in what a mid-run break costs is gated exactly like a drift in the
//!   steady-state counts;
//! * the barrier notice-metadata probe at 16 and 64 processors (the
//!   scaling figure `table_synth` asserts);
//! * a `serve` section: the deterministic per-variant message totals of
//!   one round over the quick scenario grid (one job per cell, machine-
//!   independent) plus a throughput/latency snapshot (machine-dependent;
//!   `cells_per_sec` is the median of three rounds and carries its MAD so
//!   `bench_diff` can gate throughput against a noise band rather than a
//!   point sample);
//! * a `stall_attribution` section: where the fixed moldyn and nbf
//!   cells' processors spend their simulated time (compute vs fault
//!   stall vs barrier wait vs ...), from the billing `simnet` does on
//!   every clock mutation — simulated nanoseconds, so exactly
//!   reproducible, and conservation-checked here before writing.
//!
//! The output is committed so a diff of protocol counts shows up in
//! review like a golden-file change; `bench_diff` enforces that the
//! message totals moved only when the committed previous snapshot (and
//! `golden_counts.rs`) moved with them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use apps::moldyn::MoldynConfig;
use apps::nbf::NbfConfig;
use apps::umesh::UmeshConfig;
use apps::workload::{run_matrix, MoldynWorkload, NbfWorkload, UmeshWorkload, Variant};
use serve::{serve, ServeConfig, Stop};
use synth::{notice_meta_probe, scenario_grid, Dynamics, Scenario, Structure, SynthConfig};

fn main() {
    let sink = std::env::var("CRITERION_JSON")
        .unwrap_or_else(|_| "target/criterion.jsonl".to_string());
    let mut ns: BTreeMap<String, (f64, Option<f64>)> = BTreeMap::new();
    if let Ok(lines) = std::fs::read_to_string(&sink) {
        for line in lines.lines() {
            if let Some((name, v, mad)) = parse_line(line) {
                ns.insert(name, (v, mad)); // last line per name wins
            }
        }
    } else {
        eprintln!("note: no criterion sink at {sink}; emitting counts only");
    }

    let variants = [
        (Variant::TmkBase, "tmk_base"),
        (Variant::TmkOpt, "tmk_opt"),
        (Variant::TmkAdaptive, "tmk_adaptive"),
        (Variant::TmkPush, "tmk_push"),
        (Variant::Chaos, "chaos"),
    ];
    let matrices = [
        ("moldyn_small", run_matrix(&MoldynWorkload::new(MoldynConfig::small()))),
        ("nbf_small", run_matrix(&NbfWorkload::new(NbfConfig::small()))),
        ("umesh_small", run_matrix(&UmeshWorkload::new(UmeshConfig::small()))),
    ];
    let mut messages: BTreeMap<String, Vec<(&str, u64)>> = BTreeMap::new();
    for (label, matrix) in &matrices {
        let row = variants
            .iter()
            .map(|&(v, tag)| (tag, matrix.get(v).report.messages))
            .collect();
        messages.insert(label.to_string(), row);
    }
    // The churn cells of the quick grid: what a mid-run regime break,
    // rebalance, or multi-periodic shift costs each variant. Counted
    // in-simulation like the app rows, so drifts are protocol changes.
    for cfg in scenario_grid(true).into_iter().filter(|c| c.dynamics.is_churn()) {
        let label = cfg.label();
        let matrix = run_matrix(&Scenario::new(cfg));
        let row = variants
            .iter()
            .map(|&(v, tag)| (tag, matrix.get(v).report.messages))
            .collect();
        messages.insert(label, row);
    }

    // Stall attribution of the fixed moldyn/nbf cells (adaptive build):
    // simulated ns billed per category, conservation-checked (Σ buckets
    // == final clock per proc) before the snapshot is written.
    let stall_sections: Vec<(&str, String)> = matrices[..2]
        .iter()
        .map(|(label, matrix)| {
            let rep = matrix
                .get(Variant::TmkAdaptive)
                .report
                .net
                .as_ref()
                .expect("adaptive variant carries a net report");
            trace::check_conservation(rep)
                .unwrap_or_else(|e| panic!("{label}: stall conservation broken: {e}"));
            (*label, trace::stall_json(rep).trim_end().to_string())
        })
        .collect();

    // The metadata-scaling probe at the sizes table_synth asserts.
    let probe = |nprocs: usize| {
        let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::Static);
        cfg.n = 8192;
        cfg.refs = 12288;
        cfg.iters = 6;
        cfg.nprocs = nprocs;
        notice_meta_probe(&cfg, &synth::gen_world(&cfg))
    };
    let (nb16, nb64) = (probe(16), probe(64));

    // Serve rounds over the quick grid: one job per cell, three times.
    // The message totals are pure simulation counts (identical every
    // round); throughput and percentiles are wall-clock, so the
    // snapshot records the median cells/sec of the three rounds plus
    // its MAD — the noise band `bench_diff`'s throughput gate scales.
    let grid = scenario_grid(true);
    let rounds: Vec<_> = (0..3)
        .map(|_| {
            serve(
                &grid,
                &ServeConfig {
                    workers: 4,
                    stop: Stop::Jobs(grid.len()),
                    thread_budget: 96,
                    check_allocs: false,
                    trace: None,
                },
            )
        })
        .collect();
    let mut rates: Vec<f64> = rounds.iter().map(|r| r.cells_per_sec()).collect();
    rates.sort_by(f64::total_cmp);
    let cps_median = rates[1];
    let mut devs: Vec<f64> = rates.iter().map(|r| (r - cps_median).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let cps_mad = devs[1];
    let out_serve = &rounds[0];
    let lat = |q: f64| out_serve.latency(q).as_secs_f64() * 1e3;

    let mut out = String::from("{\n  \"benches_ns\": {\n");
    let rows: Vec<String> = ns
        .iter()
        .map(|(name, (v, _))| format!("    \"{name}\": {v:.1}"))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n  \"benches_mad_ns\": {\n");
    let rows: Vec<String> = ns
        .iter()
        .filter_map(|(name, (_, mad))| mad.map(|m| format!("    \"{name}\": {m:.1}")))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n  \"message_totals\": {\n");
    let rows: Vec<String> = messages
        .iter()
        .map(|(label, row)| {
            let cells: Vec<String> =
                row.iter().map(|(tag, m)| format!("\"{tag}\": {m}")).collect();
            format!("    \"{label}\": {{ {} }}", cells.join(", "))
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    let _ = write!(
        out,
        "\n  }},\n  \"notice_meta_bytes\": {{ \"p16\": {nb16}, \"p64\": {nb64} }},\n"
    );
    let serve_rows: Vec<String> = Variant::PARALLEL
        .iter()
        .zip(variants.iter())
        .map(|(&v, &(_, tag))| format!("\"{tag}\": {}", out_serve.totals(v).messages))
        .collect();
    let _ = write!(
        out,
        "  \"serve_quick_grid\": {{\n    \"jobs\": {},\n    \"message_totals\": {{ {} }},\n    \"cells_per_sec\": {cps_median:.2},\n    \"cells_per_sec_mad\": {cps_mad:.2},\n    \"latency_ms\": {{ \"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2} }}\n  }},\n",
        out_serve.jobs_done,
        serve_rows.join(", "),
        lat(0.50),
        lat(0.95),
        lat(0.99),
    );
    let stall_rows: Vec<String> = stall_sections
        .iter()
        .map(|(label, json)| format!("    \"{label}\": {json}"))
        .collect();
    let _ = write!(
        out,
        "  \"stall_attribution\": {{\n{}\n  }}\n}}\n",
        stall_rows.join(",\n")
    );
    assert!(
        trace::json_well_formed(&out),
        "BENCH_10.json would be malformed"
    );

    std::fs::write("BENCH_10.json", &out).expect("write BENCH_10.json");
    println!(
        "wrote BENCH_10.json ({} benches, 3 apps, notice probe, 3×{}-job serve rounds, stall attribution)",
        ns.len(),
        out_serve.jobs_done
    );
}

/// Minimal parse of one `{"name":"...","ns":...}` sink line, tolerating
/// the pre-MAD shim format (no `"mad_ns"` key).
fn parse_line(line: &str) -> Option<(String, f64, Option<f64>)> {
    let name_start = line.find("\"name\":\"")? + 8;
    let name_end = name_start + line[name_start..].find('"')?;
    let number_at = |key: &str| -> Option<f64> {
        let start = line.find(key)? + key.len();
        let end = line[start..]
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .map_or(line.len(), |k| start + k);
        line[start..end].parse().ok()
    };
    Some((
        line[name_start..name_end].to_string(),
        number_at("\"ns\":")?,
        number_at("\"mad_ns\":"),
    ))
}
