//! Collect the machine-readable benchmark snapshot `BENCH_6.json`.
//!
//! `make bench` runs `cargo bench` with `CRITERION_JSON` pointing at a
//! JSON-lines sink (one `{"name": ..., "ns": ...}` per microbenchmark,
//! written by the criterion shim), then runs this collector, which
//! merges:
//!
//! * the per-benchmark best-of-batches nanoseconds (last line wins if a
//!   bench ran twice);
//! * the per-variant **message totals** of the three classic apps at
//!   their small sizes (the numbers `golden_counts.rs` pins — counted
//!   in-simulation, so they are machine-independent);
//! * the barrier notice-metadata probe at 16 and 64 processors (the
//!   scaling figure `table_synth` asserts).
//!
//! The output is committed so a diff of protocol counts shows up in
//! review like a golden-file change; the wall-clock ns are a snapshot
//! of the machine that last ran `make bench` and are expected to drift.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use apps::workload::{run_matrix, MoldynWorkload, NbfWorkload, UmeshWorkload, Variant};
use apps::moldyn::MoldynConfig;
use apps::nbf::NbfConfig;
use apps::umesh::UmeshConfig;
use synth::{notice_meta_probe, Dynamics, Structure, SynthConfig};

fn main() {
    let sink = std::env::var("CRITERION_JSON")
        .unwrap_or_else(|_| "target/criterion.jsonl".to_string());
    let mut ns: BTreeMap<String, f64> = BTreeMap::new();
    if let Ok(lines) = std::fs::read_to_string(&sink) {
        for line in lines.lines() {
            if let Some((name, v)) = parse_line(line) {
                ns.insert(name, v); // last line per name wins
            }
        }
    } else {
        eprintln!("note: no criterion sink at {sink}; emitting counts only");
    }

    let variants = [
        (Variant::TmkBase, "tmk_base"),
        (Variant::TmkOpt, "tmk_opt"),
        (Variant::TmkAdaptive, "tmk_adaptive"),
        (Variant::TmkPush, "tmk_push"),
        (Variant::Chaos, "chaos"),
    ];
    let mut messages: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    for (label, matrix) in [
        ("moldyn_small", run_matrix(&MoldynWorkload::new(MoldynConfig::small()))),
        ("nbf_small", run_matrix(&NbfWorkload::new(NbfConfig::small()))),
        ("umesh_small", run_matrix(&UmeshWorkload::new(UmeshConfig::small()))),
    ] {
        let row = variants
            .iter()
            .map(|&(v, tag)| (tag, matrix.get(v).report.messages))
            .collect();
        messages.insert(label, row);
    }

    // The metadata-scaling probe at the sizes table_synth asserts.
    let probe = |nprocs: usize| {
        let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::Static);
        cfg.n = 8192;
        cfg.refs = 12288;
        cfg.iters = 6;
        cfg.nprocs = nprocs;
        notice_meta_probe(&cfg, &synth::gen_world(&cfg))
    };
    let (nb16, nb64) = (probe(16), probe(64));

    let mut out = String::from("{\n  \"benches_ns\": {\n");
    let rows: Vec<String> = ns
        .iter()
        .map(|(name, v)| format!("    \"{name}\": {v:.1}"))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n  \"message_totals\": {\n");
    let rows: Vec<String> = messages
        .iter()
        .map(|(label, row)| {
            let cells: Vec<String> =
                row.iter().map(|(tag, m)| format!("\"{tag}\": {m}")).collect();
            format!("    \"{label}\": {{ {} }}", cells.join(", "))
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    let _ = write!(
        out,
        "\n  }},\n  \"notice_meta_bytes\": {{ \"p16\": {nb16}, \"p64\": {nb64} }}\n}}\n"
    );

    std::fs::write("BENCH_6.json", &out).expect("write BENCH_6.json");
    println!("wrote BENCH_6.json ({} benches, 3 apps, notice probe)", ns.len());
}

/// Minimal parse of one `{"name":"...","ns":...}` sink line.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let name_start = line.find("\"name\":\"")? + 8;
    let name_end = name_start + line[name_start..].find('"')?;
    let ns_start = line.find("\"ns\":")? + 5;
    let ns_end = line[ns_start..]
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .map_or(line.len(), |k| ns_start + k);
    Some((
        line[name_start..name_end].to_string(),
        line[ns_start..ns_end].parse().ok()?,
    ))
}
