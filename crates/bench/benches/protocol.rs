//! Criterion microbenchmarks of the protocol substrate: diff creation
//! and application, section algebra and page-set construction, the
//! inspector's dedup+translate, and barrier rounds. These are the
//! per-operation costs the paper's run-time systems are built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dsm::{Cluster, Diff, DsmConfig};
use rsd::{pages_of_section, Dim, PageSet, Rsd};

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    let page = 4096usize;
    let twin = vec![0u8; page];

    // Sparse modification: 16 scattered words.
    let mut sparse = twin.clone();
    for k in 0..16 {
        sparse[k * 256] = 0xAB;
    }
    g.bench_function("create_sparse_16w", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&sparse)))
    });

    // Dense modification: the whole page (a rewritten force chunk).
    let dense = vec![0xCDu8; page];
    g.bench_function("create_dense_full", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&dense)))
    });

    let d = Diff::create(&twin, &dense);
    g.bench_function("apply_dense_full", |b| {
        let mut dst = twin.clone();
        b.iter(|| d.apply(black_box(&mut dst)))
    });
    g.finish();
}

fn bench_rsd(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsd");
    g.bench_function("pages_of_dense_section", |b| {
        b.iter(|| pages_of_section(black_box(0), 8, 0, 99_999, 1, 4096))
    });
    g.bench_function("pages_of_strided_section", |b| {
        b.iter(|| pages_of_section(black_box(0), 8, 0, 99_999, 512, 4096))
    });
    let a = Rsd::new(vec![Dim::new(0, 100_000, 3)]);
    let b2 = Rsd::new(vec![Dim::new(0, 100_000, 5)]);
    g.bench_function("intersect_strided", |b| {
        b.iter(|| a.intersect(black_box(&b2)))
    });
    // Before/after the dense-bitmap `finish` (PR 3): 105.8 µs with the
    // sort-based build → 31.8 µs bitmap (~10.6 → ~3.2 ns/insert).
    g.bench_function("pageset_build_10k", |b| {
        b.iter(|| {
            let mut s = PageSet::with_capacity(10_000);
            for k in 0..10_000u32 {
                s.insert(k % 700);
            }
            s.finish();
            s
        })
    });
    g.finish();
}

fn bench_dsm_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsm");
    g.sample_size(20);

    g.bench_function("barrier_round_4p", |b| {
        let cl = Cluster::new(DsmConfig::with_nprocs(4));
        b.iter(|| {
            cl.run(|p| {
                for _ in 0..8 {
                    p.barrier();
                }
            })
        })
    });

    g.bench_function("producer_consumer_page", |b| {
        let cl = Cluster::new(DsmConfig::with_nprocs(2));
        let s = cl.alloc::<f64>(512);
        b.iter(|| {
            cl.run(|p| {
                if p.rank() == 0 {
                    for i in 0..512 {
                        p.write(&s, i, i as f64);
                    }
                }
                p.barrier();
                if p.rank() == 1 {
                    let mut acc = 0.0;
                    for i in 0..512 {
                        acc += p.read(&s, i);
                    }
                    black_box(acc);
                }
                p.barrier();
            })
        })
    });
    g.finish();
}

fn bench_inspector(c: &mut Criterion) {
    use chaos::{block_partition, inspector, ChaosWorld, TTable, TTableCache, TTableKind};
    let mut g = c.benchmark_group("inspector");
    g.sample_size(20);
    let n = 16384usize;
    let part = block_partition(n, 4);
    let tt = TTable::new(TTableKind::Replicated, &part);
    g.bench_function("dedup_translate_schedule_64k_refs", |b| {
        b.iter(|| {
            let w = ChaosWorld::new(4, Default::default());
            w.run(|cp| {
                let me = cp.rank();
                let mut cache = TTableCache::new();
                let refs = (0..65_536).map(|k| ((me * 131 + k * 97) % n) as u32);
                black_box(inspector(cp, &tt, &mut cache, refs));
            });
        })
    });
    g.finish();
}

criterion_group!(benches, bench_diff, bench_rsd, bench_dsm_rounds, bench_inspector);
criterion_main!(benches);
