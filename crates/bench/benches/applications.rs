//! End-to-end application benchmarks at reduced scale: the Table-1 and
//! Table-2 pipelines (workload generation → three systems → verified
//! results), measured as wall-clock of the whole simulation. These keep
//! `cargo bench` fast while exercising exactly the code paths the table
//! harnesses use at paper scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use apps::moldyn::{self, MoldynConfig, TmkMode};
use apps::nbf::{self, NbfConfig};

fn tiny_moldyn() -> MoldynConfig {
    let mut cfg = MoldynConfig::small();
    cfg.n = 1024;
    cfg.steps = 4;
    cfg.update_interval = 3;
    cfg
}

fn bench_moldyn(c: &mut Criterion) {
    let mut g = c.benchmark_group("moldyn_small");
    g.sample_size(10);
    let cfg = tiny_moldyn();
    let world = moldyn::gen_positions(&cfg);
    let seq = moldyn::run_seq(&cfg, &world);

    g.bench_function("seq", |b| b.iter(|| black_box(moldyn::run_seq(&cfg, &world).report.time)));
    g.bench_function("tmk_base", |b| {
        b.iter(|| black_box(moldyn::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time).0.time))
    });
    g.bench_function("tmk_opt", |b| {
        b.iter(|| {
            black_box(moldyn::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time).0.time)
        })
    });
    g.bench_function("chaos", |b| {
        b.iter(|| black_box(moldyn::run_chaos(&cfg, &world, seq.report.time).0.time))
    });
    g.finish();
}

fn bench_nbf(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbf_small");
    g.sample_size(10);
    let mut cfg = NbfConfig::small();
    cfg.n = 2048;
    cfg.partners = 16;
    let world = nbf::gen_world(&cfg);
    let seq = nbf::run_seq(&cfg, &world);

    g.bench_function("seq", |b| b.iter(|| black_box(nbf::run_seq(&cfg, &world).report.time)));
    g.bench_function("tmk_base", |b| {
        b.iter(|| black_box(nbf::run_tmk(&cfg, &world, TmkMode::Base, seq.report.time).0.time))
    });
    g.bench_function("tmk_opt", |b| {
        b.iter(|| {
            black_box(nbf::run_tmk(&cfg, &world, TmkMode::Optimized, seq.report.time).0.time)
        })
    });
    g.bench_function("chaos", |b| {
        b.iter(|| black_box(nbf::run_chaos(&cfg, &world, seq.report.time).0.time))
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.bench_function("compile_moldyn_figure1", |b| {
        b.iter(|| black_box(fcc::compile(fcc::fixtures::MOLDYN_SOURCE).unwrap().sites.len()))
    });
    g.bench_function("compile_nbf", |b| {
        b.iter(|| black_box(fcc::compile(fcc::fixtures::NBF_SOURCE).unwrap().sites.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_moldyn, bench_nbf, bench_compiler);
criterion_main!(benches);
