//! Regime breaks: the pattern the predictor locked onto **dies or
//! changes mid-run**, at an event no learner was told about. The
//! engine's answer is the probe cadence — every `probe_every`-th
//! prediction is withheld at base cost, and `demote_after` consecutive
//! clean probes declare the pattern dead — which makes the damage a
//! stale plan can do *bounded*, and the bound falsifiable:
//!
//! * at policy level, a dead pattern is demoted within one probe
//!   interval (≤ `probe_every` predictions, ≤ `period · probe_every`
//!   epochs), wasting fewer than `probe_every` prefetches on the way,
//!   and a *new* pattern on the same page re-earns promotion;
//! * at protocol level, across random break points and regime pairs
//!   (`Dynamics::RegimeShift`) and random rebalance points
//!   (`Dynamics::Rebalance`), every variant stays bitwise-identical
//!   and adaptive/push message counts stay within
//!   `base + probe_budget(probe_every, pages, epochs)` — the bound
//!   [`adapt::probe_budget`] derives from first principles.
//!
//! The proptests run 64 cases under `cargo test` and scale to a soak
//! via `PROPTEST_CASES` (the `make soak` target runs ≥ 512).

use adapt::{probe_budget, AdaptConfig, AdaptivePolicy, PageMode, PolicyStats, ProtocolPolicy};
use apps::workload::{run_matrix, Variant};
use proptest::prelude::*;
use synth::{Dynamics, Scenario, Structure, SynthConfig};

fn drive(p: &mut AdaptivePolicy, stats: &PolicyStats, inv: &[u32]) -> Vec<u32> {
    let epoch = p.log().total_epochs() + 1;
    p.epoch_end(epoch, 0, inv, stats, 0).picks
}

/// Teach the policy a `period`-gap pattern on `page` until it promotes;
/// returns the epoch counter (continues from wherever `p` already is).
fn learn(p: &mut AdaptivePolicy, stats: &PolicyStats, page: u32, period: u64, t0: &mut u64) {
    for _ in 0..(period * 12) {
        *t0 += 1;
        let picks = drive(p, stats, &[page]);
        if *t0 % period == 1 && !picks.contains(&page) {
            p.note_miss(page);
        }
    }
    assert_eq!(
        p.page_mode(page),
        PageMode::Prefetch,
        "a clean period-{period} pattern must promote while it lives"
    );
}

#[test]
fn dead_pattern_demotes_within_one_probe_interval() {
    let cfg = AdaptConfig::default();
    let (probe_every, period) = (cfg.probe_every, 3u64);
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(cfg);
    let mut t = 0u64;
    learn(&mut p, &stats, 1, period, &mut t);

    // The break: the page is never needed again. Predictions keep
    // firing on the learned cadence until a probe lands in a window
    // with no demand miss — with `demote_after = 1` (the default) that
    // first contradicting probe demotes. The probe cadence guarantees
    // one within `probe_every` predictions, i.e. `period · probe_every`
    // epochs; every prediction before it wastes at most one prefetch.
    let mut wasted = 0u64;
    let mut demoted_after = None;
    for k in 1..=(period * probe_every + period) {
        let picks = drive(&mut p, &stats, &[1]);
        wasted += u64::from(picks.contains(&1));
        if p.page_mode(1) == PageMode::Demand {
            demoted_after = Some(k);
            break;
        }
    }
    let k = demoted_after.expect("stale promotion outlived the probe cadence");
    assert!(
        k <= period * probe_every,
        "demotion took {k} epochs, bound is period·probe_every = {}",
        period * probe_every
    );
    assert!(
        wasted < probe_every,
        "a dead pattern wasted {wasted} prefetches; the probe cadence \
         bounds it below probe_every = {probe_every}"
    );
    let rep = adapt::PolicyReport::capture(&stats);
    assert!(rep.demotions >= 1, "the break must show up as a demotion");
    assert!(rep.probes >= 1, "only a probe can witness a dead pattern");
}

#[test]
fn new_pattern_on_the_same_page_re_earns_promotion() {
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut t = 0u64;
    learn(&mut p, &stats, 5, 3, &mut t);

    // Break: silence until the probe cadence demotes (full reset).
    for _ in 0..40 {
        drive(&mut p, &stats, &[5]);
        if p.page_mode(5) == PageMode::Demand {
            break;
        }
    }
    assert_eq!(p.page_mode(5), PageMode::Demand, "dead pattern not demoted");

    // The regime after the break: same page, period 4. The reset means
    // promotion is re-earned from live misses alone — no leftover gap
    // history from the old life can pollute the new lock.
    let mut misses_late = 0u64;
    for k in 1..=48u64 {
        t += 1;
        let picks = drive(&mut p, &stats, &[5]);
        if t % 4 == 1 && !picks.contains(&5) {
            p.note_miss(5);
            if k > 24 {
                misses_late += 1;
            }
        }
    }
    assert_eq!(
        p.page_mode(5),
        PageMode::Prefetch,
        "the post-break pattern must re-promote"
    );
    assert_eq!(p.page_gap(5), Some(4), "the new period, not the old one");
    // Once re-locked, only the probe cadence may miss: ≤ 1 per
    // probe_every predictions over the last 24 epochs (6 needs).
    assert!(
        misses_late <= 1,
        "re-promoted page still missed {misses_late}× in steady state"
    );
}

// ---------------------------------------------------------------------------
// Protocol level: full six-variant runs through the synth matrix.

/// Small cell: 8 value pages on 4 processors, 8 epochs — big enough to
/// promote and break, small enough for a 512-case soak.
fn small(dynamics: Dynamics) -> SynthConfig {
    let mut cfg = SynthConfig::quick(Structure::Uniform, dynamics);
    cfg.n = 512;
    cfg.refs = 1024;
    cfg.iters = 8;
    cfg
}

/// The probe-budget page basis: value-array pages × nprocs (each
/// processor can hold a stale plan per shared page; ilist sections are
/// per-proc private and never demand-fault remotely).
fn pages(cfg: &SynthConfig) -> u64 {
    ((cfg.n * 8).div_ceil(cfg.page_size) * cfg.nprocs) as u64
}

/// Runs the full matrix (which itself asserts all six variants
/// bitwise-identical) and checks the message-count budget bound.
fn check_budget(cfg: SynthConfig) {
    let budget = probe_budget(cfg.adapt.probe_every, pages(&cfg), cfg.iters as u64);
    let m = run_matrix(&Scenario::new(cfg));
    let base = m.get(Variant::TmkBase).report.messages;
    for v in [Variant::TmkAdaptive, Variant::TmkPush] {
        let got = m.get(v).report.messages;
        assert!(
            got <= base + budget,
            "{}/{v:?}: {got} msgs > base {base} + probe budget {budget}",
            m.label
        );
    }
}

#[test]
fn regime_shift_is_bitwise_and_within_budget() {
    check_budget(small(Dynamics::RegimeShift {
        at: 4,
        from: Box::new(Dynamics::Static),
        to: Box::new(Dynamics::PeriodicRemap { period: 3 }),
    }));
}

#[test]
fn rebalance_is_bitwise_and_within_budget() {
    check_budget(small(Dynamics::Rebalance { at: 4 }));
}

/// Plain (non-churn) regimes a `RegimeShift` may switch between.
fn plain_dynamics() -> Vec<Dynamics> {
    vec![
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 2 },
        Dynamics::PeriodicRemap { period: 3 },
        Dynamics::PeriodicRemap { period: 4 },
        Dynamics::MultiPeriodic { p1: 3, p2: 5 },
        Dynamics::Drift { per_mille: 100 },
        Dynamics::Drift { per_mille: 250 },
    ]
}

proptest! {
    /// Any regime pair, broken at any iteration: results never move
    /// (asserted six ways inside `run_matrix`), and the stale-plan cost
    /// stays under the probe budget. 64 cases by default; `make soak`
    /// raises `PROPTEST_CASES` to ≥ 512.
    #[test]
    fn random_breaks_stay_bitwise_and_within_budget(
        at in 1u32..8,
        from in prop::sample::select(plain_dynamics()),
        to in prop::sample::select(plain_dynamics()),
    ) {
        check_budget(small(Dynamics::RegimeShift {
            at,
            from: Box::new(from),
            to: Box::new(to),
        }));
    }

    /// A rebalance at any iteration: same claim.
    #[test]
    fn random_rebalance_points_stay_bitwise_and_within_budget(at in 1u32..8) {
        check_budget(small(Dynamics::Rebalance { at }));
    }
}
