//! Phase-keyed prediction: the deterministic pins for the multi-barrier
//! regime. An app that alternates two barrier sites (coordinate pages
//! at one, force chunks at the other) produces *alternating pick sets*
//! on the raw barrier stream — so PR 4's globally-keyed quiesce streak
//! ("consecutive identical non-empty picks") provably never fires.
//! Keyed per phase, each site's picks are identical epoch over epoch
//! and both sites quiesce. Both behaviors are pinned here: the global
//! one by driving the same event stream through phase 0 alone, the
//! phase-keyed one by tagging the two sites.

use adapt::{AdaptConfig, AdaptivePolicy, PageMode, ProtocolPolicy};
use simnet::PolicyStats;

const A: u32 = 1;
const B: u32 = 2;

/// Drive one epoch at `phase`, returning the full decision.
fn epoch(
    p: &mut AdaptivePolicy,
    stats: &PolicyStats,
    phase: u32,
    inv: &[u32],
) -> dsm::EpochDecision {
    let e = p.log().total_epochs() + 1;
    p.epoch_end(e, phase, inv, stats, 0)
}

/// The two-site app shape: site A invalidates (and the epoch then
/// reads) page 1; site B invalidates and reads page 2; the sites
/// strictly alternate. `phases` maps the two sites to the tags the
/// barriers carry — `(A, B)` for a phase-aware app, `(0, 0)` for the
/// PR 4 global keying.
fn run_alternating(phases: (u32, u32), cycles: usize) -> (Vec<bool>, Vec<bool>, AdaptivePolicy) {
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut defers_a = Vec::new();
    let mut defers_b = Vec::new();
    for _ in 0..cycles {
        let dec = epoch(&mut p, &stats, phases.0, &[1]);
        if dec.picks.is_empty() {
            p.note_miss(1); // not covered: the read demand-faults
        }
        if !dec.picks.is_empty() {
            defers_a.push(dec.defer);
        }
        let dec = epoch(&mut p, &stats, phases.1, &[2]);
        if dec.picks.is_empty() {
            p.note_miss(2);
        }
        if !dec.picks.is_empty() {
            defers_b.push(dec.defer);
        }
    }
    (defers_a, defers_b, p)
}

#[test]
fn global_streak_provably_never_fires_on_alternating_sites() {
    // Pin of the PR 4 behavior: every barrier is phase 0, so the pick
    // stream alternates [1], [2], [1], [2], … and the identical-picks
    // streak resets at every single epoch. Prediction still works
    // (both pages promote, picks fire) — but nothing ever defers, so
    // nothing can ever quiesce: the final-barrier exchange is wasted
    // forever, no matter how long the app runs.
    let (defers_a, defers_b, p) = run_alternating((0, 0), 32);
    assert_eq!(p.page_mode(1), PageMode::Prefetch, "prediction still locks");
    assert_eq!(p.page_mode(2), PageMode::Prefetch);
    assert!(
        !defers_a.is_empty() && !defers_b.is_empty(),
        "both pages' picks fire"
    );
    assert!(
        defers_a.iter().chain(&defers_b).all(|&d| !d),
        "globally keyed: the alternating picks reset the streak every epoch"
    );
    assert_eq!(p.phases_seen(), vec![0]);
}

#[test]
fn phase_keyed_streaks_build_and_quiesce_both_sites() {
    // The same event stream, with the two sites tagged: each phase sees
    // only its own picks ([1] at every A epoch, [2] at every B epoch),
    // the streaks build independently, and both defer from the
    // (quiesce_after + 1)-th pick onward — including the run's final
    // barrier, which is where the deferred plan dies untriggered and
    // the exchange is saved.
    let (defers_a, defers_b, p) = run_alternating((A, B), 32);
    assert_eq!(p.page_mode_in(1, A), PageMode::Prefetch);
    assert_eq!(p.page_mode_in(2, B), PageMode::Prefetch);
    assert_eq!(p.page_mode_in(1, B), PageMode::Demand, "no cross-phase bleed");
    assert_eq!(p.page_mode_in(2, A), PageMode::Demand);
    // quiesce_after = 2: picks at epochs k, k+1 confirm; k+2 defers.
    for (site, defers) in [("A", &defers_a), ("B", &defers_b)] {
        assert!(
            defers.len() >= 6,
            "site {site}: expected a long pick stream, got {}",
            defers.len()
        );
        assert_eq!(
            &defers[..2],
            &[false, false],
            "site {site}: the streak needs quiesce_after confirmations"
        );
        assert!(
            defers[2..].iter().all(|&d| d),
            "site {site}: every steady-state pick defers"
        );
    }
    assert_eq!(p.phases_seen(), vec![A, B]);
}

#[test]
fn deferred_final_plans_quiesce_per_phase() {
    // End-to-end check of the billing: after the streaks are steady,
    // the protocol layer arms one deferred plan per site; the plans of
    // the final epoch are reported back per phase (note_quiesced) and
    // the engine stops predicting the affected pages — the free-probe
    // feedback, now phase-scoped.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    for _ in 0..8 {
        if epoch(&mut p, &stats, A, &[1]).picks.is_empty() {
            p.note_miss(1);
        }
        if epoch(&mut p, &stats, B, &[2]).picks.is_empty() {
            p.note_miss(2);
        }
    }
    // Both sites now defer; the run ends and both plans die untouched.
    p.note_quiesced(A, &[1]);
    p.note_quiesced(B, &[2]);
    // The quiesce feedback cleared the covered-need marks: the next
    // window of each phase closes as a non-need and prediction stops —
    // but only in the owning phase.
    for _ in 0..6 {
        assert!(epoch(&mut p, &stats, A, &[1]).picks.is_empty());
        assert!(epoch(&mut p, &stats, B, &[2]).picks.is_empty());
    }
}
