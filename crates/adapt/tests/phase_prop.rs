//! Property: on random multi-phase access sequences, the phase-keyed
//! policy never issues more messages than base TreadMarks, and the
//! results stay bitwise identical.
//!
//! The generator builds a random *cycle* of barrier positions — each
//! position a distinct phase tag with a random write set (producer) and
//! random per-reader read sets — and repeats it verbatim. That is the
//! multi-barrier app shape (moldyn's step loop is exactly such a cycle)
//! with the access pattern of each site held constant, which is the
//! regime the predictor is *supposed* to capture exactly: every
//! `(page, phase)` axis is constant-need, every lock is a true gap-1
//! cycle, and no prefetch is ever wasted — so message counts can only
//! go down. Failing seeds replay via `PROPTEST_TEST`/`PROPTEST_SEED`
//! (printed on failure by the proptest shim).
//!
//! Reads follow the barrier that invalidated the page *within its
//! epoch* (each position reads from its own write set plus the
//! never-written cold pool) — the access shape every barrier app in
//! this repo has. A reader that instead lags an invalidation by
//! several barriers drifts into the record store's GC-fold horizon,
//! where base demand paging gets multi-interval coalescing for free
//! (one master-page fetch covers everything folded so far) while an
//! eager prefetch, by construction never behind, pays one exchange per
//! interval: on such access shapes demand paging can legitimately beat
//! prefetching on message count, and no predictor choice changes that
//! — so the property is stated over the prompt-read regime.

use adapt::{AdaptConfig, AdaptivePolicy};
use dsm::{Cluster, DsmConfig, StaticPolicy};
use proptest::prelude::*;

/// One barrier position of the cycle: pages proc 0 rewrites before the
/// barrier, and the pages each reader touches right after it.
#[derive(Debug, Clone)]
struct Position {
    writes: Vec<usize>,
    reads: Vec<Vec<usize>>, // per reader rank 1..nprocs
}

const PAGES: usize = 6;
const ELEMS_PER_PAGE: usize = 512; // f64s per 4 KB page
const CYCLES: usize = 8;

fn positions(nprocs: usize) -> impl Strategy<Value = Vec<Position>> {
    let page_set = || proptest::collection::vec(0..PAGES, 0..PAGES);
    let pos = (
        page_set(),
        proptest::collection::vec(page_set(), nprocs - 1),
    );
    proptest::collection::vec(pos, 1..4).prop_map(|raw| {
        // The cold pool: pages no position ever writes (read-only data).
        let written: Vec<usize> = raw.iter().flat_map(|(w, _)| w.iter().copied()).collect();
        raw.into_iter()
            .map(|(mut writes, reads)| {
                writes.sort_unstable();
                writes.dedup();
                let reads = reads
                    .into_iter()
                    .map(|mut r| {
                        // Prompt-read regime: this epoch reads its own
                        // freshly invalidated pages and cold pages.
                        r.retain(|pg| writes.contains(pg) || !written.contains(pg));
                        r.sort_unstable();
                        r.dedup();
                        r
                    })
                    .collect();
                Position { writes, reads }
            })
            .collect()
    })
}

/// Run the cycle workload on one cluster; returns (checksum, messages).
fn run(cycle: &[Position], nprocs: usize, policy: Option<AdaptConfig>) -> (f64, u64) {
    let cl = Cluster::new(DsmConfig::with_nprocs(nprocs));
    let data = cl.alloc::<f64>(PAGES * ELEMS_PER_PAGE);
    if let Some(cfg) = policy {
        let cfg = &cfg;
        cl.run(|p| p.set_policy(Box::new(AdaptivePolicy::new(cfg.clone()))));
    } else {
        cl.run(|p| p.set_policy(Box::new(StaticPolicy)));
    }

    let sums = std::sync::Mutex::new(vec![0.0f64; nprocs]);
    cl.run(|p| {
        let me = p.rank();
        let mut acc = 0.0f64;
        for c in 0..CYCLES {
            for (i, pos) in cycle.iter().enumerate() {
                if me == 0 {
                    for &pg in &pos.writes {
                        // Rewrite the page head: same pages every cycle,
                        // fresh values (so readers must refetch).
                        p.write(&data, pg * ELEMS_PER_PAGE, (c * 31 + i * 7 + pg) as f64);
                    }
                }
                // Distinct stable tag per cycle position: the multi-
                // barrier loop body.
                p.barrier_tagged(1 + i as u32);
                if me > 0 {
                    for &pg in &cycle[i].reads[me - 1] {
                        acc += p.read(&data, pg * ELEMS_PER_PAGE);
                    }
                }
            }
        }
        sums.lock().unwrap()[me] = acc;
    });
    let total: f64 = sums.into_inner().unwrap().iter().sum();
    (total, cl.report().messages)
}

proptest! {
    #[test]
    fn phase_keyed_policy_never_exceeds_base(cycle in positions(3)) {
        let nprocs = 3;
        let (base_sum, base_msgs) = run(&cycle, nprocs, None);
        let (ad_sum, ad_msgs) = run(&cycle, nprocs, Some(AdaptConfig::default()));
        let (push_sum, push_msgs) = run(&cycle, nprocs, Some(AdaptConfig::pushing()));
        // The policy only moves fetches; every build reads identical data.
        prop_assert_eq!(ad_sum.to_bits(), base_sum.to_bits());
        prop_assert_eq!(push_sum.to_bits(), base_sum.to_bits());
        // Constant per-phase patterns are captured exactly: aggregation
        // and quiesce can only remove messages, never add them.
        prop_assert!(
            ad_msgs <= base_msgs,
            "adaptive {} > base {} on cycle {:?}",
            ad_msgs,
            base_msgs,
            cycle
        );
        // Push additionally halves each predicted exchange; even with
        // its one-way subscription traffic billed it stays within base.
        prop_assert!(
            push_msgs <= base_msgs,
            "push {} > base {} on cycle {:?}",
            push_msgs,
            base_msgs,
            cycle
        );
    }
}
