//! Multi-periodic need-gap coverage — the ROADMAP's untested adaptive
//! direction: patterns with more than one period in play (a remap-3
//! stream interleaved with a remap-5 stream, as the synth engine's
//! `MultiPeriodic { p1: 3, p2: 5 }` scenarios generate). The end-to-end
//! protocol-level version lives in `synth`'s scenario tests; these
//! tests pin down the *predictor's* behavior on the same shapes.

use adapt::{AdaptConfig, AdaptivePolicy, PageMode, ProtocolPolicy};
use simnet::{PolicyReport, PolicyStats};

fn drive(p: &mut AdaptivePolicy, stats: &PolicyStats, inv: &[u32]) -> Vec<u32> {
    let epoch = p.log().total_epochs() + 1;
    p.epoch_end(epoch, inv, stats, 0)
}

#[test]
fn two_pages_with_distinct_periods_are_both_captured() {
    // Page 1 is needed every 3rd invalidation, page 2 every 5th — the
    // per-page gap histories are independent, so both patterns lock.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut misses = [0u32; 2];
    let mut wasted = [0u32; 2];
    for t in 1u64..=60 {
        let picks = drive(&mut p, &stats, &[1, 2]);
        for (slot, (page, period)) in [(1u32, 3u64), (2, 5)].into_iter().enumerate() {
            let used = t % period == 1;
            let prefetched = picks.contains(&page);
            if used && !prefetched {
                p.note_miss(page);
                misses[slot] += 1;
            }
            if !used && prefetched {
                wasted[slot] += 1;
            }
        }
    }
    assert_eq!(p.page_mode(1), PageMode::Prefetch);
    assert_eq!(p.page_mode(2), PageMode::Prefetch);
    assert_eq!(p.page_gap(1), Some(3));
    assert_eq!(p.page_gap(2), Some(5));
    // Demand misses: learning (3 needs per page) plus the probe cadence
    // (every 8th prediction withheld at base cost).
    assert!(misses[0] <= 6, "page 1 missed {} times", misses[0]);
    assert!(misses[1] <= 6, "page 2 missed {} times", misses[1]);
    // The phase-aware predictor never prefetches off-phase.
    assert_eq!(wasted, [0, 0], "off-phase prefetches");
    let rep = PolicyReport::capture(&stats);
    assert!(rep.promotions >= 2);
}

#[test]
fn union_of_two_periods_on_one_page_degrades_to_demand_not_waste() {
    // One page needed at every multiple of 3 OR 5 — a truly
    // multi-periodic single-page stream (gap sequence 2,1,3,1,2,3,…).
    // The single-gap predictor repeatedly locks the 3,3 runs (events
    // 12→15→18 etc.), but a period-5 need always lands one event
    // before the first prediction would fire (20 before 21, 35 before
    // 36, …), breaking stability just in time: the page degrades to
    // pure demand paging — *exactly* base cost, zero waste, zero
    // capture. This pins the known limit of the one-gap predictor; a
    // gap-*history* predictor (ROADMAP direction) could capture the
    // union. The promote/demote churn below is the observable trace.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut misses = 0u32;
    let mut covered = 0u32;
    let mut wasted = 0u32;
    for t in 1u64..=60 {
        let picks = drive(&mut p, &stats, &[7]);
        let used = t % 3 == 0 || t % 5 == 0;
        let prefetched = !picks.is_empty();
        match (used, prefetched) {
            (true, true) => covered += 1,
            (true, false) => {
                p.note_miss(7);
                misses += 1;
            }
            (false, true) => wasted += 1,
            (false, false) => {}
        }
    }
    // Never worse than demand paging: every prefetch would have to
    // cover a true need (a wasted prefetch is the only way to exceed
    // base traffic) — and on this stream none fire at all.
    assert_eq!(wasted, 0, "prefetched windows that were never needed");
    assert_eq!(covered, 0, "the one-gap predictor cannot capture a union");
    assert_eq!(misses, 28, "all 28 needs demand-fault, exactly base cost");
    // The interleaved stream forces relearning (promote → demote churn).
    let rep = PolicyReport::capture(&stats);
    assert!(rep.promotions >= 2, "promotions: {}", rep.promotions);
    assert!(rep.demotions >= 2, "demotions: {}", rep.demotions);
}

#[test]
fn interleaved_remap_shifts_keep_probe_economy() {
    // A page whose need phase re-randomizes every 15 events (the lcm of
    // 3 and 5 — what a MultiPeriodic remap does to a page's read set).
    // The predictor must bound its waste: mispredictions self-correct
    // through gap instability, so off-need prefetches stay rare.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut wasted = 0u32;
    for t in 1u64..=90 {
        let picks = drive(&mut p, &stats, &[9]);
        // Phase shifts at every multiple of 15: need offset cycles 1→2→0.
        let phase = (t / 15) % 3;
        let used = t % 3 == phase;
        if used && picks.is_empty() {
            p.note_miss(9);
        } else if !used && !picks.is_empty() {
            wasted += 1;
        }
    }
    // 90 events, 30 needs; one misprediction per phase shift (6 shifts)
    // is the self-correction cost.
    assert!(wasted <= 6, "wasted {wasted} prefetches across phase shifts");
}
