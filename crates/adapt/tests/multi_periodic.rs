//! Multi-periodic need-gap coverage: patterns with more than one period
//! in play (a remap-3 stream interleaved with a remap-5 stream, as the
//! synth engine's `MultiPeriodic { p1: 3, p2: 5 }` scenarios generate).
//! The end-to-end protocol-level version lives in `synth`'s scenario
//! tests; these tests pin down the *predictor's* behavior on the same
//! shapes. PR 3 pinned the one-gap predictor's provable degradation on
//! a union of periods; the gap-history predictor flips that test to
//! positive capture.

use adapt::{AdaptConfig, AdaptivePolicy, PageMode, ProtocolPolicy};
use simnet::{PolicyReport, PolicyStats};

fn drive(p: &mut AdaptivePolicy, stats: &PolicyStats, inv: &[u32]) -> Vec<u32> {
    let epoch = p.log().total_epochs() + 1;
    p.epoch_end(epoch, 0, inv, stats, 0).picks
}

#[test]
fn two_pages_with_distinct_periods_are_both_captured() {
    // Page 1 is needed every 3rd invalidation, page 2 every 5th — the
    // per-page gap histories are independent, so both patterns lock.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut misses = [0u32; 2];
    let mut wasted = [0u32; 2];
    for t in 1u64..=60 {
        let picks = drive(&mut p, &stats, &[1, 2]);
        for (slot, (page, period)) in [(1u32, 3u64), (2, 5)].into_iter().enumerate() {
            let used = t % period == 1;
            let prefetched = picks.contains(&page);
            if used && !prefetched {
                p.note_miss(page);
                misses[slot] += 1;
            }
            if !used && prefetched {
                wasted[slot] += 1;
            }
        }
    }
    assert_eq!(p.page_mode(1), PageMode::Prefetch);
    assert_eq!(p.page_mode(2), PageMode::Prefetch);
    assert_eq!(p.page_gap(1), Some(3));
    assert_eq!(p.page_gap(2), Some(5));
    // Demand misses: learning (3 needs per page) plus the probe cadence
    // (every 8th prediction withheld at base cost).
    assert!(misses[0] <= 6, "page 1 missed {} times", misses[0]);
    assert!(misses[1] <= 6, "page 2 missed {} times", misses[1]);
    // The phase-aware predictor never prefetches off-phase.
    assert_eq!(wasted, [0, 0], "off-phase prefetches");
    let rep = PolicyReport::capture(&stats);
    assert!(rep.promotions >= 2);
}

#[test]
fn union_of_two_periods_on_one_page_is_captured_with_zero_waste() {
    // One page needed at every multiple of 3 OR 5 — a truly
    // multi-periodic single-page stream, whose gap sequence is itself
    // periodic: 2,1,3,1,2,3,3 repeating (seven needs per lcm(3,5)=15
    // events). PR 3's one-gap predictor provably degraded here to
    // exactly demand-paging cost (zero waste, zero capture — this test
    // used to pin that limit). The gap-history predictor verifies the
    // length-7 cycle once it has seen it twice (14 gaps ≈ 30 events)
    // and captures every following need. The early spurious 1-cycle
    // locks on the "3,3" runs still never cost anything: the period-5
    // need always lands one event before their prediction would fire,
    // breaking the lock just in time — so waste stays exactly zero.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut misses = 0u32;
    let mut covered = 0u32;
    let mut wasted = 0u32;
    for t in 1u64..=60 {
        let picks = drive(&mut p, &stats, &[7]);
        let used = t % 3 == 0 || t % 5 == 0;
        let prefetched = !picks.is_empty();
        match (used, prefetched) {
            (true, true) => covered += 1,
            (true, false) => {
                p.note_miss(7);
                misses += 1;
            }
            (false, true) => wasted += 1,
            (false, false) => {}
        }
    }
    // Never worse than demand paging: a wasted prefetch is the only way
    // to exceed base traffic, and none fire off-need.
    assert_eq!(wasted, 0, "prefetched windows that were never needed");
    // The flip: the union is captured, not degraded. 28 needs in 60
    // events; learning takes two full cycles, then predictions cover
    // the rest (minus the probe cadence).
    assert!(covered >= 10, "union captured only {covered} needs");
    assert!(
        misses < 28,
        "gap-history predictor must beat pure demand paging"
    );
    assert_eq!(misses + covered, 28, "every need is a miss or a capture");
    assert_eq!(p.page_mode(7), PageMode::Prefetch);
    assert_eq!(p.page_period(7), Some(7), "the 3∪5 union is a 7-cycle");
    let rep = PolicyReport::capture(&stats);
    assert!(rep.promotions >= 1, "promotions: {}", rep.promotions);
}

#[test]
fn interleaved_remap_shifts_keep_probe_economy() {
    // A page whose need phase re-randomizes every 15 events (the lcm of
    // 3 and 5 — what a MultiPeriodic remap does to a page's read set).
    // The predictor must bound its waste: mispredictions self-correct
    // through gap instability, so off-need prefetches stay rare.
    let stats = PolicyStats::new(1);
    let mut p = AdaptivePolicy::new(AdaptConfig::default());
    let mut wasted = 0u32;
    for t in 1u64..=90 {
        let picks = drive(&mut p, &stats, &[9]);
        // Phase shifts at every multiple of 15: need offset cycles 1→2→0.
        let phase = (t / 15) % 3;
        let used = t % 3 == phase;
        if used && picks.is_empty() {
            p.note_miss(9);
        } else if !used && !picks.is_empty() {
            wasted += 1;
        }
    }
    // 90 events, 30 needs; one misprediction per phase shift (6 shifts)
    // is the self-correction cost.
    assert!(wasted <= 6, "wasted {wasted} prefetches across phase shifts");
}
