//! Epoch-history tables: the per-page and per-epoch statistics the
//! adaptive policy learns from.
//!
//! The per-page table is indexed not by raw barrier epoch but by
//! *invalidation events*: one observation window opens when a write
//! notice invalidates the page and closes at the page's next
//! invalidation. What matters for the prefetch decision is "every time
//! this page is invalidated, do I go on to miss on it?" — raw epochs
//! would break the signal for periodic patterns (moldyn's pipelined
//! reduction touches a given page once every `nprocs + 1` barriers, so
//! its miss history is all zeros on an epoch axis but all ones on an
//! invalidation axis).

/// Compact per-page history: one bit per *completed* observation window
/// (LSB = most recent), for three event streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageHistory {
    /// Did a demand miss occur inside the window?
    pub miss_bits: u8,
    /// Did this processor dirty the page inside the window?
    pub dirty_bits: u8,
    /// Completed windows so far (saturating; only low values matter).
    pub windows: u8,
}

impl PageHistory {
    /// Close an observation window, shifting its outcome in. The bits
    /// are a diagnostic trace (read back through
    /// `AdaptivePolicy::page_history`); the predictor itself tracks
    /// need gaps, not these bits.
    pub fn push(&mut self, missed: bool, dirtied: bool) {
        self.miss_bits = (self.miss_bits << 1) | missed as u8;
        self.dirty_bits = (self.dirty_bits << 1) | dirtied as u8;
        self.windows = self.windows.saturating_add(1);
    }
}

/// One aggregate row of the per-epoch decision log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochRow {
    /// Barrier sequence number of this epoch boundary.
    pub epoch: u64,
    /// Phase identity (barrier-site tag) of this epoch boundary.
    pub phase: u32,
    /// Pages invalidated at this barrier.
    pub invalidated: u32,
    /// Demand misses observed during the *preceding* epoch.
    pub misses: u32,
    /// Pages chosen for batched prefetch at this barrier.
    pub prefetched: u32,
    /// Demand→prefetch mode switches decided at this barrier.
    pub promotions: u32,
    /// Prefetch→demand mode switches decided at this barrier.
    pub demotions: u32,
    /// Prefetch-mode pages deliberately left to demand-fault (probes).
    pub probes: u32,
}

/// A bounded ring of [`EpochRow`]s — the "flight recorder" a table
/// harness or test can read back after a run.
#[derive(Debug, Clone)]
pub struct EpochLog {
    rows: Vec<EpochRow>,
    cap: usize,
    total: u64,
}

impl EpochLog {
    /// A log retaining the most recent `cap` rows (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        EpochLog {
            rows: Vec::with_capacity(cap.min(64)),
            cap,
            total: 0,
        }
    }

    /// Append a row, evicting the oldest once at capacity.
    pub fn push(&mut self, row: EpochRow) {
        if self.rows.len() == self.cap {
            self.rows.remove(0);
        }
        self.rows.push(row);
        self.total += 1;
    }

    /// Retained rows, oldest first.
    pub fn rows(&self) -> &[EpochRow] {
        &self.rows
    }

    /// Epochs ever logged (including evicted rows).
    pub fn total_epochs(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_bits_shift_in_window_order() {
        let mut h = PageHistory::default();
        h.push(true, false);
        h.push(true, true);
        h.push(false, false);
        h.push(true, false);
        // LSB = most recent window.
        assert_eq!(h.miss_bits, 0b1101);
        assert_eq!(h.dirty_bits, 0b0100);
        assert_eq!(h.windows, 4);
    }

    #[test]
    fn history_saturates_without_wrapping() {
        let mut h = PageHistory::default();
        for _ in 0..300 {
            h.push(true, false);
        }
        assert_eq!(h.windows, u8::MAX);
        assert_eq!(h.miss_bits, 0xFF);
    }

    #[test]
    fn epoch_log_is_bounded() {
        let mut log = EpochLog::new(4);
        for e in 0..10u64 {
            log.push(EpochRow {
                epoch: e,
                ..Default::default()
            });
        }
        assert_eq!(log.rows().len(), 4);
        assert_eq!(log.rows()[0].epoch, 6, "oldest retained row");
        assert_eq!(log.total_epochs(), 10);
    }
}
