//! # adapt — a runtime-adaptive aggregation engine for the DSM
//!
//! The paper's comparison is three-way: plain TreadMarks demand paging,
//! compiler-directed aggregation (`Validate` descriptors emitted by
//! `fcc`), and the CHAOS inspector/executor. The compiler path wins
//! big — but only where source-level access analysis succeeds. This
//! crate adds the fourth system: **no compiler, no inspector — the
//! runtime watches itself**.
//!
//! Follow-on work on TreadMarks-lineage systems (adaptive protocols
//! that switch pages between invalidate and update modes from runtime
//! history) showed that per-page, per-epoch statistics recover most of
//! the aggregation win with zero source access. [`AdaptivePolicy`]
//! implements that idea on the [`dsm`] crate's `ProtocolPolicy` hook:
//!
//! 1. **Observe** — every demand miss, every locally dirtied page, and
//!    every barrier-time invalidation lands in a per-page
//!    [epoch-history table](history::PageHistory), keyed by
//!    invalidation events so periodic patterns (a page touched every
//!    `nprocs + 1` barriers) are seen as stable — and keyed by the
//!    barrier's **phase identity** (`dsm::TmkProc::barrier_tagged`), so
//!    multi-barrier apps that alternate sites (coordinate pages at one
//!    barrier, force chunks at the next) keep one clean plan per site
//!    instead of one aliased global stream. A miss is attributed to the
//!    phase that most recently invalidated the page — the only phase
//!    whose prefetch could have covered it.
//! 2. **Decide** — each page's recent need *gaps* feed a bounded
//!    **gap-history predictor** that locks onto the smallest repeating
//!    gap cycle: a constant gap (nbf partner pages), a pipelined period
//!    (moldyn force chunks), or a *union of periods* whose gap sequence
//!    is itself a longer cycle (the `MultiPeriodic` synth regime).
//!    Promoted pages are fetched at exactly the predicted barrier,
//!    batched with every other prediction into **one aggregated
//!    exchange per peer** (`AdaptRequest`/`AdaptReply`) — the same wire
//!    pattern `Validate` produces from compiler hints. In
//!    [update-push mode](AdaptConfig::push) the writers push instead
//!    (one one-way `AdaptPush` message per peer — the request leg
//!    disappears, and a schedule *change* costs one one-way `AdaptSub`
//!    subscription message per affected peer). In pull mode, after
//!    [`AdaptConfig::quiesce_after`] identical epochs *of one phase*
//!    the exchange is deferred to the epoch's first fault, so the run's
//!    final barrier costs nothing (the *quiesce* heuristic); push mode
//!    stays eager — a fault-triggered plan would be consumer-initiated,
//!    i.e. a pull.
//! 3. **Retreat** — periodic probes ([`AdaptConfig::probe_every`])
//!    withhold the prefetch at exactly base-TreadMarks cost; a clean
//!    probe demotes the page, so a dissolved pattern cannot keep
//!    wasting traffic.
//!
//! The engine only moves fetches earlier (or flips who initiates the
//! wire exchange); it never changes which records a fetch applies, so
//! results are **bitwise identical** to base TreadMarks, while the
//! message count drops toward the compiler-optimized build's. Decision
//! counters are published through [`simnet::PolicyStats`] and each
//! engine keeps a per-epoch [decision log](history::EpochLog) for
//! diagnostics.
//!
//! ## Quickstart
//!
//! ```
//! use adapt::{AdaptConfig, AdaptivePolicy};
//! use dsm::{Cluster, DsmConfig};
//!
//! let cl = Cluster::new(DsmConfig::with_nprocs(4));
//! let data = cl.alloc::<f64>(4096);
//! // Install the engine on every processor, then run the app unchanged.
//! cl.run(|p| p.set_policy(Box::new(AdaptivePolicy::new(AdaptConfig::default()))));
//! cl.run(|p| {
//!     for _step in 0..4 {
//!         if p.rank() == 0 {
//!             for i in 0..data.len() {
//!                 p.write(&data, i, 1.0);
//!             }
//!         }
//!         p.barrier();
//!         let _ = p.read(&data, 17); // readers learn, then prefetch
//!         p.barrier();
//!     }
//! });
//! assert!(cl.net().policy_report().epochs > 0);
//! ```

#![warn(missing_docs)]

mod history;
mod policy;

pub use history::{EpochLog, EpochRow, PageHistory};
pub use policy::{probe_budget, AdaptConfig, AdaptivePolicy, PageMode};

pub use dsm::{EpochDecision, ProtocolPolicy, StaticPolicy};
pub use simnet::{PolicyReport, PolicyStats};
