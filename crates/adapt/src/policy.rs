//! The adaptive policy: learn, per page **and per barrier phase**,
//! *when* demand misses follow invalidations, and batch the fetches it
//! can predict.
//!
//! ## The gap-history predictor
//!
//! Every page's life is measured on its **invalidation axis**: event
//! `t` is the page's `t`-th invalidation, and window `W_t` is the epoch
//! span from event `t` to event `t+1`. A *need* is a window that
//! contained a demand miss (or was covered by one of our prefetches).
//! The predictor keeps a bounded ring of the **gaps** between
//! consecutive needs, in invalidation events:
//!
//! * a page read every time it is invalidated (nbf's partner pages,
//!   umesh ghost pages, moldyn's coordinate array) has gap history
//!   `1, 1, 1, …`;
//! * a page touched once per period of a pipelined reduction (moldyn's
//!   force chunks) has gap history `p, p, p, …` for a stable `p`;
//! * a page needed on a **union of periods** — the `MultiPeriodic`
//!   synth regime, e.g. every multiple of 3 *or* 5 — has a gap history
//!   that is itself periodic with a longer cycle
//!   (`2, 1, 3, 1, 2, 3, 3` repeating for the 3∪5 union).
//!
//! The predictor promotes a page when its gap history locks onto the
//! **smallest period `L`** whose last full cycle is verified: the
//! trailing `max(L, promote_after)` gaps each match the gap `L`
//! positions earlier. `L = 1` reproduces PR 2's one-gap predictor
//! exactly; larger `L` captures unions of periods the one-gap predictor
//! provably degraded on (`crates/adapt/tests/multi_periodic.rs`). The
//! predicted next gap is the one `L` positions back, so prefetches fire
//! **only at the predicted event** — all predictions that fire at one
//! barrier share a single aggregated exchange per peer.
//!
//! A mispredicted phase self-corrects: the true miss lands in a later
//! window, the observed gap breaks the cycle match, the lock is lost,
//! and the page falls back to demand paging until the history
//! re-stabilizes. Pages that stop being used entirely are caught by
//! probes ([`AdaptConfig::probe_every`]): every n-th prediction is
//! withheld at exactly base-TreadMarks cost, and a clean probe resets
//! the predictor.
//!
//! ## Phase identity
//!
//! Multi-barrier apps alternate barrier *sites*: moldyn invalidates its
//! coordinate pages at the position-update barrier and its force chunks
//! at each pipelined-reduction barrier. Keying everything on the raw
//! barrier stream aliases those plans — consecutive barriers pick
//! different page sets, so a "consecutive identical picks" quiesce
//! streak never builds, and a single global history interleaves
//! unrelated event axes. The engine therefore keys **all** learned
//! state by the phase tag the barrier carries
//! ([`dsm::TmkProc::barrier_tagged`]; plain `barrier()` is phase 0):
//!
//! * each `(page, phase)` pair has its own invalidation-event axis,
//!   gap ring, and promotion state — the axis counts only the phase's
//!   own invalidations of the page;
//! * a demand miss is attributed to the phase that **most recently
//!   invalidated** the faulted page — the only phase whose prefetch
//!   could have covered it (an earlier phase's prefetch would have been
//!   destroyed by that later invalidation);
//! * the quiesce streak is per phase, so moldyn's x-pages plan at the
//!   update barrier and each pipeline round's chunk plan build streaks
//!   independently and all quiesce at the run's end.
//!
//! Untagged programs put every barrier in phase 0 and get exactly the
//! PR 4 behavior.
//!
//! ## Quiesce and update-push
//!
//! Two protocol refinements ride on the same decision stream:
//!
//! * **Quiesce** ([`AdaptConfig::quiesce_after`]): after that many
//!   consecutive epochs of one phase with *identical* picks, the
//!   batched fetch is deferred to the epoch's first demand fault
//!   instead of issued eagerly inside the barrier. Steady-state epochs
//!   still pay exactly one exchange per peer (the first touch triggers
//!   it, and the touching page rides along); a plan whose pages are
//!   re-invalidated untouched — above all one armed at the run's
//!   **final barrier** — pays nothing at all.
//! * **Update-push** ([`AdaptConfig::push`]): the predicted exchange is
//!   accounted as writer-initiated — one one-way `AdaptPush` data
//!   message per writer/consumer pair instead of a request/reply pair,
//!   halving the remaining predicted messages. The consumer-side
//!   predictor still decides *what* moves; the subscription that
//!   teaches writers the consumer's schedule is billed explicitly by
//!   the protocol layer as one one-way `AdaptSub` message per peer per
//!   *changed* per-phase schedule (see `dsm::FetchClass::Push`).

use dsm::{EpochDecision, ProtocolPolicy};
use simnet::{PolicyStats, ProcId};

use crate::history::{EpochLog, EpochRow, PageHistory};

/// "No phase has invalidated this page yet."
const NO_PHASE: u32 = u32::MAX;

/// Tuning knobs of the adaptive engine.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Consecutive verified gap repeats required before a page is
    /// promoted (the verified span is `max(L, promote_after)` for a
    /// cycle of length `L`; with `L = 1` this is PR 2's knob exactly:
    /// 1 = promote once two consecutive gaps agree, i.e. after the
    /// third confirmed need). Range 1–8.
    pub promote_after: u32,
    /// Every `probe_every`-th prediction of a promoted page is a
    /// *probe*: the prefetch is withheld, and if no demand miss follows
    /// before the page's next invalidation the predictor is reset.
    /// This bounds how long a dead pattern can waste prefetch traffic
    /// (a gap-1 page that quietly leaves the working set has no other
    /// honest signal — its prefetches mask every would-be miss), at
    /// exactly base-TreadMarks cost during the probe itself.
    pub probe_every: u64,
    /// Consecutive *clean* probes — withheld predictions whose window
    /// then closed without a demand miss — before the predictor is
    /// fully reset. This is the break-detection demotion knob: 1 (the
    /// default) demotes on the first contradicting probe, the fast
    /// retreat an unannounced mid-run regime break demands; larger
    /// values tolerate isolated quiet windows before declaring the
    /// pattern dead. Any probe that *does* demand-fault clears the
    /// streak. Range 1–8.
    pub demote_after: u32,
    /// Retained rows of the per-epoch decision log (diagnostics only).
    pub log_window: usize,
    /// Per-(page, phase) gap-history depth. The longest recognizable
    /// need-period cycle is half this (a cycle must be seen twice to be
    /// verified). Range 4–64.
    pub history_window: usize,
    /// Consecutive identical-pick epochs *of one phase* before the
    /// batched fetch is deferred to the epoch's first demand fault (the
    /// final-barrier quiesce heuristic). 0 disables deferral entirely
    /// (PR 2's eager behavior). A quiesced (discarded) plan doubles as
    /// a **free probe**: the protocol layer reports it back and the
    /// engine clears the affected pages' covered-need marks in the
    /// owning phase, so a dissolved pattern stops being predicted
    /// immediately instead of being masked until the probe cadence
    /// catches it. Ignored in push mode — see [`AdaptConfig::push`].
    pub quiesce_after: u32,
    /// Account predicted exchanges as writer-initiated update-push
    /// (one one-way data message per peer) instead of request/reply
    /// pulls. Results are bitwise identical either way.
    ///
    /// Push mode never defers: a plan triggered by the consumer's own
    /// fault would be consumer-initiated — a pull — so deferral can
    /// only cost push mode its one-way billing. The writers therefore
    /// push eagerly at every predicted barrier, including the run's
    /// last (the final-barrier waste is inherent to writer-initiated
    /// protocols: the writer cannot know no iteration follows), and
    /// still come out strictly ahead of pull-mode prefetch whenever
    /// more than a couple of epochs run.
    pub push: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            promote_after: 1,
            probe_every: 8,
            demote_after: 1,
            log_window: 64,
            history_window: 16,
            quiesce_after: 2,
            push: false,
        }
    }
}

impl AdaptConfig {
    /// The default knobs with update-push mode on.
    pub fn pushing() -> Self {
        AdaptConfig {
            push: true,
            ..Default::default()
        }
    }
}

/// Worst-case extra messages the adaptive engine can spend, over plain
/// demand paging, on plans a mid-run regime break turned stale — the
/// falsifiable bound the churn test suite asserts.
///
/// The argument: a broken plan's prefetches *mask* the misses that
/// would expose it, so the only honest death signal is a probe, and the
/// probe cadence guarantees one within [`AdaptConfig::probe_every`]
/// predictions (with [`AdaptConfig::demote_after`] `= 1` the first
/// clean probe demotes). Until then each stale promoted page wastes at
/// most one prefetch exchange per epoch, and one wasted page-exchange
/// costs at most 2 messages (a request/reply pull; a push costs 1).
/// A run of `epochs` epochs cannot waste more epochs than it has, so
/// each of the `pages` ever-promoted pages wastes at most
/// `min(probe_every, epochs)` exchanges:
///
/// `budget = 2 × pages × min(probe_every, epochs)`
///
/// The bound is deliberately loose (it ignores that probes themselves
/// cost base price, that re-promotion needs three live needs, and that
/// quiesced plans die free) — loose enough to be stable across cost
/// models, tight enough to fail if demotion ever stops working.
pub fn probe_budget(probe_every: u64, pages: u64, epochs: u64) -> u64 {
    2 * pages * probe_every.min(epochs)
}

/// Which way a page's data currently moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// Invalidate on notice, fetch on fault (base TreadMarks).
    Demand,
    /// Promoted in at least one phase: fetched at the predicted
    /// barrier, batched with every other prediction into one exchange
    /// per peer.
    Prefetch,
}

/// The smallest verified need-period cycle in `gaps`, if any.
///
/// A period `L` is verified when the trailing `max(L, promote_after)`
/// gaps each equal the gap `L` positions earlier — i.e. the last full
/// cycle repeats the one before it. Smallest `L` wins: the most
/// parsimonious explanation of the history is the one predicted from,
/// and `L = 1` (a constant gap) reproduces the PR 2 one-gap predictor.
fn locked_period(gaps: &[u32], promote_after: u32) -> Option<usize> {
    let n = gaps.len();
    for l in 1..=n / 2 {
        let span = l.max(promote_after as usize);
        if span > n - l {
            continue;
        }
        if (0..span).all(|i| gaps[n - 1 - i] == gaps[n - 1 - i - l]) {
            return Some(l);
        }
    }
    None
}

#[derive(Debug, Clone)]
struct PageEntry {
    hist: PageHistory,
    /// Demand miss attributed to this phase since the page's last
    /// invalidation at this phase.
    missed: bool,
    /// Locally dirtied since the page's last invalidation here.
    dirtied: bool,
    /// The current window was covered by one of this phase's
    /// prefetches.
    prefetched: bool,
    /// The current window is a probe (prediction withheld).
    probing: bool,
    /// Invalidation events seen (on this phase's axis).
    invs: u64,
    /// Event at which the last need was recorded (0 = none).
    last_need: u64,
    /// Bounded ring of recent need gaps, oldest first.
    gaps: Vec<u32>,
    /// Predictions issued (drives the probe cadence).
    predictions: u64,
    /// Consecutive clean probes (see [`AdaptConfig::demote_after`]).
    clean_probes: u32,
    /// Currently promoted? (tracked to count mode flips)
    promoted: bool,
}

impl PageEntry {
    fn new() -> Self {
        PageEntry {
            hist: PageHistory::default(),
            missed: false,
            dirtied: false,
            prefetched: false,
            probing: false,
            invs: 0,
            last_need: 0,
            gaps: Vec::new(),
            predictions: 0,
            clean_probes: 0,
            promoted: false,
        }
    }
}

/// One phase's (barrier site's) learned state: its own per-page event
/// tables and its own quiesce streak.
///
/// Scaling contract (see ARCHITECTURE.md): `table` is a dense
/// page-indexed vector — no hashing, nothing keyed by peer processor —
/// so `epoch_end` at 256 processors walks only the pages this barrier
/// invalidated, never a per-peer structure. The only bounded shifts are
/// the per-page gap ring (≤ `history_window` ≤ 64 entries).
#[derive(Debug, Clone)]
struct PhaseState {
    phase: u32,
    table: Vec<PageEntry>,
    /// The planned set (picks plus probe-withheld pages) of this
    /// phase's previous planning epoch — the quiesce-identity check
    /// compares plans, so a probe thinning one epoch's picks does not
    /// read as the plan having changed.
    last_picks: Vec<u32>,
    /// Consecutive epochs of this phase whose picks matched the
    /// previous ones.
    identical_epochs: u32,
}

impl PhaseState {
    fn new(phase: u32) -> Self {
        PhaseState {
            phase,
            table: Vec::new(),
            last_picks: Vec::new(),
            identical_epochs: 0,
        }
    }

    fn entry(&self, page: u32) -> Option<&PageEntry> {
        self.table.get(page as usize)
    }

    fn entry_mut(&mut self, page: u32) -> &mut PageEntry {
        let idx = page as usize;
        if idx >= self.table.len() {
            self.table.resize(idx + 1, PageEntry::new());
        }
        &mut self.table[idx]
    }
}

/// The runtime-adaptive protocol engine (one per processor).
///
/// See the [module docs](self) for the prediction model and the phase
/// keying. The engine never changes what data a page holds — only when
/// it is fetched — so program results are bitwise identical to base
/// TreadMarks under any knob setting, including update-push mode.
#[derive(Debug)]
pub struct AdaptivePolicy {
    cfg: AdaptConfig,
    /// Per-phase learned state, in first-seen order (few phases; linear
    /// scans are cheaper than hashing).
    phases: Vec<PhaseState>,
    /// Per page: the phase whose barrier most recently invalidated it —
    /// the phase any demand miss on the page is attributed to.
    last_inv: Vec<u32>,
    /// Demand miss seen before the page's first-ever invalidation
    /// (consumed by whichever phase invalidates it first).
    cold_miss: Vec<bool>,
    /// Dirtying seen before the page's first-ever invalidation.
    cold_dirty: Vec<bool>,
    log: EpochLog,
    /// Demand misses since the last epoch boundary (for the log).
    epoch_misses: u32,
}

impl AdaptivePolicy {
    /// Build an engine with the given knobs (panics on out-of-range or
    /// mutually unsatisfiable knob values — see each [`AdaptConfig`]
    /// field's range).
    pub fn new(cfg: AdaptConfig) -> Self {
        assert!((1..=8).contains(&cfg.promote_after), "promote_after: 1–8");
        assert!(cfg.probe_every >= 2, "probe_every: at least 2");
        assert!((1..=8).contains(&cfg.demote_after), "demote_after: 1–8");
        assert!(
            (4..=64).contains(&cfg.history_window),
            "history_window: 4–64"
        );
        // locked_period needs span = max(L, promote_after) ≤ n − L with
        // n ≤ history_window; for even the shortest cycle (L = 1) that
        // requires history_window > promote_after — otherwise no page
        // could ever be promoted and the engine would be silently inert.
        assert!(
            cfg.history_window > cfg.promote_after as usize,
            "history_window must exceed promote_after or nothing can promote"
        );
        AdaptivePolicy {
            log: EpochLog::new(cfg.log_window),
            cfg,
            phases: Vec::new(),
            last_inv: Vec::new(),
            cold_miss: Vec::new(),
            cold_dirty: Vec::new(),
            epoch_misses: 0,
        }
    }

    /// The knobs this engine runs with.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The per-epoch decision log (diagnostics).
    pub fn log(&self) -> &EpochLog {
        &self.log
    }

    /// Phase tags this engine has seen, in first-seen order.
    pub fn phases_seen(&self) -> Vec<u32> {
        self.phases.iter().map(|st| st.phase).collect()
    }

    fn phase_pos(&self, phase: u32) -> Option<usize> {
        self.phases.iter().position(|st| st.phase == phase)
    }

    fn ensure_phase(&mut self, phase: u32) -> usize {
        match self.phase_pos(phase) {
            Some(i) => i,
            None => {
                self.phases.push(PhaseState::new(phase));
                self.phases.len() - 1
            }
        }
    }

    fn ensure_page(&mut self, page: u32) {
        let idx = page as usize;
        if idx >= self.last_inv.len() {
            self.last_inv.resize(idx + 1, NO_PHASE);
            self.cold_miss.resize(idx + 1, false);
            self.cold_dirty.resize(idx + 1, false);
        }
    }

    fn gap_of(e: &PageEntry, promote_after: u32) -> Option<u32> {
        if !e.promoted {
            return None;
        }
        locked_period(&e.gaps, promote_after).map(|l| e.gaps[e.gaps.len() - l])
    }

    /// Current mode of `page` across all phases (pages never seen are
    /// `Demand`).
    pub fn page_mode(&self, page: u32) -> PageMode {
        if self
            .phases
            .iter()
            .any(|st| st.entry(page).is_some_and(|e| e.promoted))
        {
            PageMode::Prefetch
        } else {
            PageMode::Demand
        }
    }

    /// Current mode of `page` within `phase` alone.
    pub fn page_mode_in(&self, page: u32, phase: u32) -> PageMode {
        match self
            .phase_pos(phase)
            .and_then(|i| self.phases[i].entry(page))
        {
            Some(e) if e.promoted => PageMode::Prefetch,
            _ => PageMode::Demand,
        }
    }

    /// The page's predicted next need gap in the first (oldest-seen)
    /// phase that promoted it, if any.
    pub fn page_gap(&self, page: u32) -> Option<u32> {
        self.phases
            .iter()
            .find_map(|st| st.entry(page).and_then(|e| Self::gap_of(e, self.cfg.promote_after)))
    }

    /// The page's predicted next need gap within `phase`, if promoted
    /// there.
    pub fn page_gap_in(&self, page: u32, phase: u32) -> Option<u32> {
        self.phase_pos(phase)
            .and_then(|i| self.phases[i].entry(page))
            .and_then(|e| Self::gap_of(e, self.cfg.promote_after))
    }

    /// The page's locked need-period cycle length in the first phase
    /// that promoted it: 1 for a constant gap, longer for a union of
    /// periods.
    pub fn page_period(&self, page: u32) -> Option<u32> {
        let pa = self.cfg.promote_after;
        self.phases.iter().find_map(|st| {
            st.entry(page)
                .filter(|e| e.promoted)
                .and_then(|e| locked_period(&e.gaps, pa).map(|l| l as u32))
        })
    }

    /// Completed-window history of `page`: the history of the phase
    /// that has closed the most windows for it (diagnostics; ties go to
    /// the later-seen phase).
    pub fn page_history(&self, page: u32) -> Option<PageHistory> {
        self.phases
            .iter()
            .filter_map(|st| st.entry(page).map(|e| e.hist))
            .max_by_key(|h| h.windows)
    }
}

impl ProtocolPolicy for AdaptivePolicy {
    fn note_miss(&mut self, page: u32) {
        self.epoch_misses += 1;
        self.ensure_page(page);
        match self.last_inv[page as usize] {
            NO_PHASE => self.cold_miss[page as usize] = true,
            ph => {
                let i = self.phase_pos(ph).expect("attributing phase was seen");
                self.phases[i].entry_mut(page).missed = true;
            }
        }
    }

    fn note_interval_close(&mut self, pages: &[u32]) {
        for &page in pages {
            self.ensure_page(page);
            match self.last_inv[page as usize] {
                NO_PHASE => self.cold_dirty[page as usize] = true,
                ph => {
                    let i = self.phase_pos(ph).expect("attributing phase was seen");
                    self.phases[i].entry_mut(page).dirtied = true;
                }
            }
        }
    }

    fn note_quiesced(&mut self, phase: u32, pages: &[u32]) {
        // The deferred plan was discarded untriggered: the window
        // provably did not need these pages. Clearing the owning
        // phase's covered-need mark turns the quiesced window into a
        // free probe — it closes as a non-need, predictions stop, and a
        // dissolved pattern dies at zero wire cost instead of being
        // masked until the probe cadence catches it.
        if let Some(i) = self.phase_pos(phase) {
            for &page in pages {
                self.phases[i].entry_mut(page).prefetched = false;
            }
        }
    }

    fn epoch_end(
        &mut self,
        epoch: u64,
        phase: u32,
        invalidated: &[u32],
        stats: &PolicyStats,
        me: ProcId,
    ) -> EpochDecision {
        stats.record_epoch(me, phase);
        let mut row = EpochRow {
            epoch,
            phase,
            invalidated: invalidated.len() as u32,
            misses: self.epoch_misses,
            ..Default::default()
        };
        self.epoch_misses = 0;

        let pi = self.ensure_phase(phase);
        if let Some(&max) = invalidated.iter().max() {
            self.ensure_page(max);
        }

        let promote_after = self.cfg.promote_after;
        let probe_every = self.cfg.probe_every;
        let demote_after = self.cfg.demote_after;
        let history_window = self.cfg.history_window;
        let mut picks = Vec::new();
        // The picks plus any probe-withheld pages: the quiesce streak
        // compares *plans*, and a probe deliberately thinning one epoch
        // must not read as the plan having changed (it would break the
        // streak twice — once thinning, once restoring).
        let mut planned = Vec::new();
        // Per-page decision records for the trace layer, in decision
        // order (protocol-inert; the DSM emits them only when tracing).
        let mut events: Vec<(u32, simnet::PolicyAct)> = Vec::new();
        for &page in invalidated {
            let idx = page as usize;
            // A page's first-ever invalidation consumes any cold marks
            // (miss/dirty before any phase owned the page).
            let (cold_m, cold_d) = if self.last_inv[idx] == NO_PHASE {
                (
                    std::mem::take(&mut self.cold_miss[idx]),
                    std::mem::take(&mut self.cold_dirty[idx]),
                )
            } else {
                (false, false)
            };
            // From here on, misses on this page belong to this phase:
            // only this phase's prefetch could cover them.
            self.last_inv[idx] = phase;

            let e = self.phases[pi].entry_mut(page);
            e.missed |= cold_m;
            e.dirtied |= cold_d;
            e.invs += 1;
            let t = e.invs;

            // Close window W_{t-1}: did the page turn out to be needed?
            let need = e.missed || e.prefetched;
            let was_probe = e.probing;
            e.hist.push(e.missed, e.dirtied);
            if need {
                if e.last_need > 0 {
                    let g = (t - e.last_need).min(u32::MAX as u64) as u32;
                    if e.gaps.len() == history_window {
                        e.gaps.remove(0);
                    }
                    e.gaps.push(g);
                }
                e.last_need = t;
                if e.missed {
                    // Only a real demand miss is evidence of life — a
                    // prefetch-covered window proves nothing (the
                    // prefetch masks every would-be miss), so it leaves
                    // the clean-probe streak alone.
                    e.clean_probes = 0;
                }
            } else if was_probe {
                // Clean probe: the withheld prefetch was contradicted.
                // After `demote_after` consecutive clean probes the
                // pattern is declared dead: full reset — the page must
                // re-earn promotion from live misses.
                e.clean_probes += 1;
                if e.clean_probes >= demote_after {
                    e.gaps.clear();
                    e.last_need = 0;
                    e.predictions = 0;
                    e.clean_probes = 0;
                } else if e.last_need > 0 {
                    // Tolerated: the withheld window stands in as a
                    // virtual need so the cadence stays on schedule and
                    // the *next* probe gets to decide.
                    let g = (t - e.last_need).min(u32::MAX as u64) as u32;
                    if e.gaps.len() == history_window {
                        e.gaps.remove(0);
                    }
                    e.gaps.push(g);
                    e.last_need = t;
                }
            }
            e.probing = false;
            e.missed = false;
            e.dirtied = false;
            e.prefetched = false;

            // Promotion state: does the gap history lock onto a cycle?
            let locked = locked_period(&e.gaps, promote_after);
            let now_promoted = locked.is_some();
            if now_promoted != e.promoted {
                e.promoted = now_promoted;
                if now_promoted {
                    row.promotions += 1;
                    events.push((page, simnet::PolicyAct::Promote));
                } else {
                    row.demotions += 1;
                    events.push((page, simnet::PolicyAct::Demote));
                }
            }

            // Predict: the cycle says the next need gap is the one L
            // positions back; window W_t is the one that need falls in
            // iff last_need + gap == t + 1. Only then is prefetching
            // now cheaper than demand-faulting later.
            if let Some(l) = locked {
                let gap = e.gaps[e.gaps.len() - l] as u64;
                if e.last_need + gap == t + 1 {
                    e.predictions += 1;
                    planned.push(page);
                    if e.predictions % probe_every == 0 {
                        e.probing = true;
                        row.probes += 1;
                        events.push((page, simnet::PolicyAct::Probe));
                    } else {
                        e.prefetched = true;
                        picks.push(page);
                    }
                }
            }
        }

        row.prefetched = picks.len() as u32;
        if row.promotions > 0 {
            stats.record_promotions(me, row.promotions as u64);
        }
        if row.demotions > 0 {
            stats.record_demotions(me, row.demotions as u64);
        }
        if row.probes > 0 {
            stats.record_probes(me, row.probes as u64);
        }
        self.log.push(row);

        // Quiesce heuristic: after `quiesce_after` consecutive epochs
        // of THIS phase with identical picks, steady state is assumed
        // and the batch is deferred to the epoch's first fault — so the
        // run's final barrier (whose window never faults) costs
        // nothing. Epochs of this phase that pick nothing neither
        // confirm nor break the streak: the steadiness signal is "the
        // same plan keeps being issued", not "every single barrier
        // issues it". Other phases' barriers are invisible here — that
        // is the whole point: interleaved sites no longer reset each
        // other's streaks. Push mode never defers (a fault-triggered
        // plan is a pull — see `AdaptConfig::push`).
        let st = &mut self.phases[pi];
        let defer = if !self.cfg.push && self.cfg.quiesce_after > 0 && !picks.is_empty() {
            if planned == st.last_picks {
                st.identical_epochs = st.identical_epochs.saturating_add(1);
            } else {
                st.identical_epochs = 0;
                st.last_picks = planned;
            }
            st.identical_epochs >= self.cfg.quiesce_after
        } else {
            false
        };

        EpochDecision {
            picks,
            defer,
            push: self.cfg.push,
            phase,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut AdaptivePolicy, stats: &PolicyStats, inv: &[u32]) -> Vec<u32> {
        drive_in(p, stats, 0, inv)
    }

    fn drive_in(p: &mut AdaptivePolicy, stats: &PolicyStats, phase: u32, inv: &[u32]) -> Vec<u32> {
        let epoch = p.log().total_epochs() + 1;
        p.epoch_end(epoch, phase, inv, stats, 0).picks
    }

    #[test]
    fn gap1_pattern_promotes_after_three_confirmed_needs() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());

        // Needs at events 1, 2, 3 → gap 1 confirmed twice at event 3.
        p.note_miss(7);
        assert!(drive(&mut p, &stats, &[7]).is_empty()); // first need: no gap yet
        p.note_miss(7);
        assert!(drive(&mut p, &stats, &[7]).is_empty()); // gap=1, unconfirmed
        p.note_miss(7);
        let picks = drive(&mut p, &stats, &[7]); // gap=1 again → stable → predict
        assert_eq!(p.page_mode(7), PageMode::Prefetch);
        assert_eq!(p.page_gap(7), Some(1));
        assert_eq!(p.page_period(7), Some(1));
        assert_eq!(picks, vec![7], "promoted and prefetched for the next window");

        // Steady state: keeps prefetching with no further misses (the
        // prefetch itself counts as the predicted need).
        for _ in 0..5 {
            assert_eq!(drive(&mut p, &stats, &[7]), vec![7]);
        }
        let rep = simnet::PolicyReport::capture(&stats);
        assert_eq!(rep.promotions, 1);
        assert_eq!(rep.demotions, 0);
    }

    #[test]
    fn periodic_pattern_prefetches_only_at_the_predicted_phase() {
        // A pipelined-reduction page: invalidated every event, needed
        // every 4th event. Blind prefetch would fetch 4x too often.
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        let mut prefetches = Vec::new();
        let mut misses = 0;
        for t in 1u64..=40 {
            // The app misses in window W_t iff t % 4 == 1 and the page
            // was not prefetched for that window.
            let picks = drive(&mut p, &stats, &[5]);
            if !picks.is_empty() {
                prefetches.push(t);
            } else if t % 4 == 1 {
                p.note_miss(5);
                misses += 1;
            }
        }
        // Misses in W_1, W_5, W_9 are recorded at window close (events
        // 2, 6, 10) → gap 4 is stable at event 10; the first prediction
        // fires at t = 13 (covering W_13, whose need closes at 14),
        // then every 4 events — and nowhere else.
        assert_eq!(prefetches, vec![13, 17, 21, 25, 29, 33, 37]);
        assert!(misses <= 3, "only the learning needs demand-fault");
        assert_eq!(p.page_gap(5), Some(4));
        assert_eq!(p.page_period(5), Some(1), "a constant gap is a 1-cycle");
    }

    #[test]
    fn unaccessed_pages_are_never_prefetched() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        for _ in 0..20 {
            // Invalidated every epoch but never missed on.
            assert!(drive(&mut p, &stats, &[3]).is_empty());
        }
        assert_eq!(p.page_mode(3), PageMode::Demand);
        assert!(!simnet::PolicyReport::capture(&stats).is_active());
    }

    #[test]
    fn phase_shift_self_corrects_via_gap_instability() {
        // A periodic page whose phase slips by one event (moldyn's
        // rebuild barriers do exactly this): the mispredicted prefetch
        // registers a virtual need at the wrong event, the real miss
        // lands one event later, the observed gap breaks the cycle
        // match, the lock is lost, and the predictor re-learns the
        // shifted phase — all without waiting for a probe.
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        let mut wasted = 0;
        let mut demand_misses = 0;
        for t in 1u64..=60 {
            let picks = drive(&mut p, &stats, &[6]);
            // Phase slips at t=30: needs move from W_{t: t%4==1} to
            // W_{t: t%4==2}.
            let used = if t < 30 { t % 4 == 1 } else { t % 4 == 2 };
            match (used, picks.is_empty()) {
                (true, true) => {
                    p.note_miss(6);
                    demand_misses += 1;
                }
                (false, false) => wasted += 1,
                _ => {}
            }
        }
        // The shifted phase is re-locked and predicted again.
        assert_eq!(p.page_mode(6), PageMode::Prefetch);
        assert_eq!(p.page_gap(6), Some(4));
        assert!(wasted <= 2, "one misprediction per shift, got {wasted}");
        // Learning (3 needs) + re-learning (3 needs) demand-fault; the
        // rest is prefetched.
        assert!((5..=8).contains(&demand_misses), "got {demand_misses}");
    }

    #[test]
    fn clean_probe_resets_a_dead_pattern() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            promote_after: 1,
            probe_every: 4,
            log_window: 16,
            ..Default::default()
        });
        // Gap-1 pattern, promoted at event 3 (prediction #1).
        for _ in 0..3 {
            p.note_miss(9);
            drive(&mut p, &stats, &[9]);
        }
        // The program stops touching the page; writers keep writing.
        // Predictions 2, 3 prefetch; prediction 4 is the probe; the
        // clean probe window resets the predictor.
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9]); // prediction 2
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9]); // prediction 3
        assert!(drive(&mut p, &stats, &[9]).is_empty()); // prediction 4 = probe
        assert!(drive(&mut p, &stats, &[9]).is_empty()); // clean → reset
        assert_eq!(p.page_mode(9), PageMode::Demand);
        let rep = simnet::PolicyReport::capture(&stats);
        assert_eq!(rep.probes, 1);
        assert!(rep.demotions >= 1);
        // And it stays quiet afterwards.
        for _ in 0..8 {
            assert!(drive(&mut p, &stats, &[9]).is_empty());
        }
    }

    #[test]
    fn demote_after_tolerates_isolated_clean_probes() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            promote_after: 1,
            probe_every: 3,
            demote_after: 2,
            ..Default::default()
        });
        // Promote page 9 (gap 1), then let the page go quiet.
        for _ in 0..3 {
            p.note_miss(9);
            drive(&mut p, &stats, &[9]);
        }
        // Predictions 2, 3 = prefetch, probe. One clean probe is below
        // the demote threshold, so the prediction stream continues...
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9]);
        assert!(drive(&mut p, &stats, &[9]).is_empty()); // probe 1
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9], "one clean probe tolerated");
        // ...until the second consecutive clean probe resets it.
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9]);
        assert!(drive(&mut p, &stats, &[9]).is_empty()); // probe 2
        drive(&mut p, &stats, &[9]); // clean again → reset
        assert_eq!(p.page_mode(9), PageMode::Demand);
        for _ in 0..6 {
            assert!(drive(&mut p, &stats, &[9]).is_empty());
        }
    }

    #[test]
    fn probe_that_faults_clears_the_clean_streak() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            promote_after: 1,
            probe_every: 2,
            demote_after: 2,
            ..Default::default()
        });
        for _ in 0..3 {
            p.note_miss(4);
            drive(&mut p, &stats, &[4]);
        }
        // Every second prediction probes; the page stays live, so each
        // probe demand-faults and the clean streak never reaches 2.
        for round in 0..6 {
            let picks = drive(&mut p, &stats, &[4]);
            if picks.is_empty() {
                p.note_miss(4); // the probe window's real miss
            }
            assert_eq!(
                p.page_mode(4),
                PageMode::Prefetch,
                "round {round}: a live pattern must survive its probes"
            );
        }
    }

    #[test]
    fn probe_budget_formula() {
        // Bounded by the probe cadence...
        assert_eq!(probe_budget(8, 3, 100), 2 * 3 * 8);
        // ...or by the run length, whichever is shorter.
        assert_eq!(probe_budget(8, 3, 5), 2 * 3 * 5);
        assert_eq!(probe_budget(2, 0, 10), 0);
    }

    #[test]
    fn probe_miss_keeps_the_page_promoted() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            promote_after: 1,
            probe_every: 2,
            log_window: 16,
            ..Default::default()
        });
        for _ in 0..3 {
            p.note_miss(5);
            drive(&mut p, &stats, &[5]);
        }
        // Prediction #2 is a probe; the page is still live, so the
        // probe demand-faults and the pattern survives.
        assert!(drive(&mut p, &stats, &[5]).is_empty()); // probe
        p.note_miss(5);
        assert_eq!(drive(&mut p, &stats, &[5]), vec![5]); // prediction 3
        assert_eq!(p.page_mode(5), PageMode::Prefetch);
        assert_eq!(simnet::PolicyReport::capture(&stats).demotions, 0);
    }

    #[test]
    fn epoch_log_records_decisions() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        for _ in 0..2 {
            p.note_miss(1);
            p.note_miss(2);
            drive(&mut p, &stats, &[1, 2]);
        }
        p.note_miss(1); // page 1 needs a third time; page 2 goes quiet
        drive(&mut p, &stats, &[1, 2]);
        let rows = p.log().rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].invalidated, 2);
        assert_eq!(rows[0].misses, 2);
        assert_eq!(rows[2].promotions, 1, "page 1 promoted, page 2 not");
        assert_eq!(rows[2].prefetched, 1);
    }

    #[test]
    fn dirty_stream_is_tracked_per_window() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        p.note_interval_close(&[4]);
        drive(&mut p, &stats, &[4]);
        let h = p.page_history(4).unwrap();
        assert_eq!(h.dirty_bits & 1, 1);
        assert_eq!(h.miss_bits & 1, 0);
    }

    #[test]
    fn locked_period_prefers_the_smallest_cycle() {
        // A constant tail is a 1-cycle even when longer cycles also fit.
        assert_eq!(locked_period(&[4, 4, 4, 4], 1), Some(1));
        // One deviation breaks every cycle the window can verify.
        assert_eq!(locked_period(&[4, 4, 4, 5], 1), None);
        // The 3∪5 union's gap cycle locks at length 7 once seen twice
        // (at a tail position where no shorter cycle fits).
        let cycle = [2u32, 1, 3, 1, 2, 3, 3];
        let mut twice: Vec<u32> = cycle.iter().chain(cycle.iter()).copied().collect();
        twice.push(2); // one step into the third cycle: tail ...3,3,2
        assert_eq!(locked_period(&twice, 1), Some(7));
        // One repetition is not verification (tail chosen so the
        // harmless "3,3" 1-cycle doesn't fire either).
        assert_eq!(locked_period(&[2, 1, 3, 1, 2], 1), None);
        // The trailing "3,3" run *does* lock a 1-cycle — the spurious
        // lock the union stream tolerates because the period-5 need
        // breaks it one event before its prediction would fire.
        assert_eq!(locked_period(&cycle, 1), Some(1));
        // promote_after lengthens the verified span for short cycles.
        assert_eq!(locked_period(&[1, 1], 2), None);
        assert_eq!(locked_period(&[1, 1, 1], 2), Some(1));
    }

    #[test]
    fn quiesce_defers_after_identical_epochs() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            quiesce_after: 2,
            ..Default::default()
        });
        // Promote page 7 (gap 1): three confirmed needs.
        for _ in 0..3 {
            p.note_miss(7);
            drive(&mut p, &stats, &[7]);
        }
        // Identical picks [7] accumulate; the third identical epoch
        // tips the decision to deferred.
        let mut defers = Vec::new();
        for _ in 0..4 {
            let epoch = p.log().total_epochs() + 1;
            let dec = p.epoch_end(epoch, 0, &[7], &stats, 0);
            assert_eq!(dec.picks, vec![7]);
            assert_eq!(dec.phase, 0, "the decision echoes its phase");
            defers.push(dec.defer);
        }
        assert_eq!(defers, vec![false, true, true, true]);
    }

    #[test]
    fn quiesced_plan_acts_as_a_free_probe() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        // Promote page 7 (gap 1), then run a steady predicted stretch.
        for _ in 0..3 {
            p.note_miss(7);
            drive(&mut p, &stats, &[7]);
        }
        for _ in 0..3 {
            assert_eq!(drive(&mut p, &stats, &[7]), vec![7]);
        }
        // The protocol layer discarded the deferred plan untriggered
        // and reports it: the covered-need mark is cleared, the next
        // window closes as a non-need, and predictions stop instantly
        // — without this hook the never-performed prefetch would mask
        // the dead pattern until the probe cadence caught it.
        p.note_quiesced(0, &[7]);
        for _ in 0..6 {
            assert!(drive(&mut p, &stats, &[7]).is_empty());
        }
    }

    #[test]
    fn push_mode_never_defers() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::pushing());
        for _ in 0..3 {
            p.note_miss(4);
            drive(&mut p, &stats, &[4]);
        }
        // Long identical streak — pull mode would defer from the third
        // identical epoch; push mode must stay eager (a fault-triggered
        // plan would be a pull and forfeit the one-way billing).
        for _ in 0..6 {
            let epoch = p.log().total_epochs() + 1;
            let dec = p.epoch_end(epoch, 0, &[4], &stats, 0);
            assert_eq!(dec.picks, vec![4]);
            assert!(dec.push);
            assert!(!dec.defer, "push plans are always eager");
        }
    }

    #[test]
    #[should_panic(expected = "history_window must exceed promote_after")]
    fn unsatisfiable_knobs_are_rejected() {
        let _ = AdaptivePolicy::new(AdaptConfig {
            promote_after: 6,
            history_window: 4,
            ..Default::default()
        });
    }

    #[test]
    fn quiesce_zero_never_defers_and_push_flag_propagates() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            quiesce_after: 0,
            push: true,
            ..Default::default()
        });
        for _ in 0..3 {
            p.note_miss(2);
            drive(&mut p, &stats, &[2]);
        }
        for _ in 0..6 {
            let epoch = p.log().total_epochs() + 1;
            let dec = p.epoch_end(epoch, 0, &[2], &stats, 0);
            assert!(!dec.defer, "quiesce_after: 0 disables deferral");
            assert!(dec.push, "push mode rides every decision");
        }
    }

    #[test]
    fn phases_learn_independently_and_misses_attribute_to_the_invalidator() {
        // One page, two interleaved barrier sites: phase 1 invalidates
        // and the page is read right after (a need); phase 2 also
        // invalidates it but the read never happens in its window.
        // Phase 1 must lock and prefetch; phase 2 must stay silent —
        // under a single global axis the interleaving would read as a
        // gap-2 pattern and *both* barriers' epochs would share it.
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        for _ in 0..8 {
            let picks1 = drive_in(&mut p, &stats, 1, &[3]);
            if picks1.is_empty() {
                p.note_miss(3); // read lands while phase 1 owns the page
            }
            let picks2 = drive_in(&mut p, &stats, 2, &[3]);
            assert!(picks2.is_empty(), "phase 2 never sees a need");
        }
        assert_eq!(p.page_mode_in(3, 1), PageMode::Prefetch);
        assert_eq!(p.page_gap_in(3, 1), Some(1), "every phase-1 event needs");
        assert_eq!(p.page_mode_in(3, 2), PageMode::Demand);
        assert_eq!(p.phases_seen(), vec![1, 2]);
    }

    #[test]
    fn untagged_stream_is_single_phase() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        for _ in 0..4 {
            p.note_miss(1);
            drive(&mut p, &stats, &[1]);
        }
        assert_eq!(p.phases_seen(), vec![0]);
        assert_eq!(p.page_mode_in(1, 0), p.page_mode(1));
    }
}
