//! The adaptive policy: learn, per page, *when* demand misses follow
//! invalidations, and batch the fetches it can predict.
//!
//! ## The need-gap predictor
//!
//! Every page's life is measured on its **invalidation axis**: event
//! `t` is the page's `t`-th invalidation, and window `W_t` is the epoch
//! span from event `t` to event `t+1`. A *need* is a window that
//! contained a demand miss (or was covered by one of our prefetches).
//! The predictor tracks the **gap** between consecutive needs in
//! invalidation events:
//!
//! * a page read every time it is invalidated (nbf's partner pages,
//!   umesh ghost pages, moldyn's coordinate array) has gap 1;
//! * a page touched once per period of a pipelined reduction (moldyn's
//!   force chunks: invalidated at every round barrier, used in one
//!   round per step) has a stable gap of ~`nprocs`.
//!
//! Once [`AdaptConfig::promote_after`] consecutive gaps agree, the page
//! is promoted and prefetched **only at the predicted event** — all
//! predictions that fire at one barrier share a single aggregated
//! exchange per peer. A page prefetched at every invalidation but used
//! once per period would cost more than demand paging; the phase-aware
//! predictor is what lets the engine capture pipelined patterns that
//! blind per-invalidation prefetch cannot.
//!
//! A mispredicted phase self-corrects: the true miss lands in a later
//! window, the observed gap changes, stability is lost, and the page
//! falls back to demand paging until the gap re-stabilizes. Pages that
//! stop being used entirely are caught by probes
//! ([`AdaptConfig::probe_every`]): every n-th prediction is withheld at
//! exactly base-TreadMarks cost, and a clean probe resets the
//! predictor.

use dsm::ProtocolPolicy;
use simnet::{PolicyStats, ProcId};

use crate::history::{EpochLog, EpochRow, PageHistory};

/// Tuning knobs of the adaptive engine.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Consecutive *stable* need-gaps required before a page is
    /// promoted (1 = promote once two consecutive gaps agree, i.e.
    /// after the third confirmed need; higher values demand a longer
    /// stable run). Range 1–8.
    pub promote_after: u32,
    /// Every `probe_every`-th prediction of a promoted page is a
    /// *probe*: the prefetch is withheld, and if no demand miss follows
    /// before the page's next invalidation the predictor is reset.
    /// This bounds how long a dead pattern can waste prefetch traffic
    /// (a gap-1 page that quietly leaves the working set has no other
    /// honest signal — its prefetches mask every would-be miss), at
    /// exactly base-TreadMarks cost during the probe itself.
    pub probe_every: u64,
    /// Retained rows of the per-epoch decision log (diagnostics only).
    pub log_window: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            promote_after: 1,
            probe_every: 8,
            log_window: 64,
        }
    }
}

/// Which way a page's data currently moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// Invalidate on notice, fetch on fault (base TreadMarks).
    Demand,
    /// Promoted: fetched at the predicted barrier, batched with every
    /// other prediction into one exchange per peer.
    Prefetch,
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    hist: PageHistory,
    /// Demand miss since the page's last invalidation.
    missed: bool,
    /// Locally dirtied since the page's last invalidation.
    dirtied: bool,
    /// The current window was covered by one of our prefetches.
    prefetched: bool,
    /// The current window is a probe (prediction withheld).
    probing: bool,
    /// Invalidation events seen.
    invs: u64,
    /// Event at which the last need was recorded (0 = none).
    last_need: u64,
    /// Most recent need gap in invalidation events (0 = unknown).
    gap: u32,
    /// Consecutive needs whose gap matched the previous one.
    stable_needs: u32,
    /// Predictions issued (drives the probe cadence).
    predictions: u64,
    /// Currently promoted? (tracked to count mode flips)
    promoted: bool,
}

impl PageEntry {
    fn new() -> Self {
        PageEntry {
            hist: PageHistory::default(),
            missed: false,
            dirtied: false,
            prefetched: false,
            probing: false,
            invs: 0,
            last_need: 0,
            gap: 0,
            stable_needs: 0,
            predictions: 0,
            promoted: false,
        }
    }
}

/// The runtime-adaptive protocol engine (one per processor).
///
/// See the [module docs](self) for the prediction model. The engine
/// never changes what data a page holds — only when it is fetched — so
/// program results are bitwise identical to base TreadMarks under any
/// knob setting.
#[derive(Debug)]
pub struct AdaptivePolicy {
    cfg: AdaptConfig,
    table: Vec<PageEntry>,
    log: EpochLog,
    /// Demand misses since the last epoch boundary (for the log).
    epoch_misses: u32,
}

impl AdaptivePolicy {
    pub fn new(cfg: AdaptConfig) -> Self {
        assert!((1..=8).contains(&cfg.promote_after), "promote_after: 1–8");
        assert!(cfg.probe_every >= 2, "probe_every: at least 2");
        AdaptivePolicy {
            log: EpochLog::new(cfg.log_window),
            cfg,
            table: Vec::new(),
            epoch_misses: 0,
        }
    }

    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The per-epoch decision log (diagnostics).
    pub fn log(&self) -> &EpochLog {
        &self.log
    }

    /// Current mode of `page` (pages never seen are `Demand`).
    pub fn page_mode(&self, page: u32) -> PageMode {
        match self.table.get(page as usize) {
            Some(e) if e.promoted => PageMode::Prefetch,
            _ => PageMode::Demand,
        }
    }

    /// The page's current stable need gap, if promoted.
    pub fn page_gap(&self, page: u32) -> Option<u32> {
        self.table
            .get(page as usize)
            .filter(|e| e.promoted)
            .map(|e| e.gap)
    }

    /// Completed-window history of `page`, if any events were recorded.
    pub fn page_history(&self, page: u32) -> Option<PageHistory> {
        self.table.get(page as usize).map(|e| e.hist)
    }

    fn entry_mut(&mut self, page: u32) -> &mut PageEntry {
        let idx = page as usize;
        if idx >= self.table.len() {
            self.table.resize(idx + 1, PageEntry::new());
        }
        &mut self.table[idx]
    }
}

impl ProtocolPolicy for AdaptivePolicy {
    fn note_miss(&mut self, page: u32) {
        self.epoch_misses += 1;
        self.entry_mut(page).missed = true;
    }

    fn note_interval_close(&mut self, pages: &[u32]) {
        for &page in pages {
            self.entry_mut(page).dirtied = true;
        }
    }

    fn epoch_end(
        &mut self,
        epoch: u64,
        invalidated: &[u32],
        stats: &PolicyStats,
        me: ProcId,
    ) -> Vec<u32> {
        stats.record_epoch(me);
        let mut row = EpochRow {
            epoch,
            invalidated: invalidated.len() as u32,
            misses: self.epoch_misses,
            ..Default::default()
        };
        self.epoch_misses = 0;

        let promote_after = self.cfg.promote_after;
        let probe_every = self.cfg.probe_every;
        let mut picks = Vec::new();
        for &page in invalidated {
            let e = self.entry_mut(page);
            e.invs += 1;
            let t = e.invs;

            // Close window W_{t-1}: did the page turn out to be needed?
            let need = e.missed || e.prefetched;
            let was_probe = e.probing;
            e.hist.push(e.missed, e.dirtied);
            if need {
                if e.last_need > 0 {
                    let g = (t - e.last_need).min(u32::MAX as u64) as u32;
                    if g == e.gap {
                        e.stable_needs = e.stable_needs.saturating_add(1);
                    } else {
                        e.stable_needs = 0;
                        e.gap = g;
                    }
                }
                e.last_need = t;
            } else if was_probe {
                // Clean probe: the pattern dissolved. Full reset — the
                // page must re-earn promotion from live misses.
                e.gap = 0;
                e.stable_needs = 0;
                e.last_need = 0;
                e.predictions = 0;
            }
            e.probing = false;
            e.missed = false;
            e.dirtied = false;
            e.prefetched = false;

            // Promotion state (flip counting only).
            let now_promoted = e.gap > 0 && e.stable_needs >= promote_after;
            if now_promoted != e.promoted {
                e.promoted = now_promoted;
                if now_promoted {
                    row.promotions += 1;
                } else {
                    row.demotions += 1;
                }
            }

            // Predict: the next need is at event `last_need + gap`;
            // window W_t is the one that need falls in iff
            // last_need + gap == t + 1. Only then is prefetching now
            // cheaper than demand-faulting later.
            if e.promoted && e.last_need + e.gap as u64 == t + 1 {
                e.predictions += 1;
                if e.predictions % probe_every == 0 {
                    e.probing = true;
                    row.probes += 1;
                } else {
                    e.prefetched = true;
                    picks.push(page);
                }
            }
        }

        row.prefetched = picks.len() as u32;
        if row.promotions > 0 {
            stats.record_promotions(me, row.promotions as u64);
        }
        if row.demotions > 0 {
            stats.record_demotions(me, row.demotions as u64);
        }
        if row.probes > 0 {
            stats.record_probes(me, row.probes as u64);
        }
        self.log.push(row);
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut AdaptivePolicy, stats: &PolicyStats, inv: &[u32]) -> Vec<u32> {
        let epoch = p.log().total_epochs() + 1;
        p.epoch_end(epoch, inv, stats, 0)
    }

    #[test]
    fn gap1_pattern_promotes_after_three_confirmed_needs() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());

        // Needs at events 1, 2, 3 → gap 1 confirmed twice at event 3.
        p.note_miss(7);
        assert!(drive(&mut p, &stats, &[7]).is_empty()); // first need: no gap yet
        p.note_miss(7);
        assert!(drive(&mut p, &stats, &[7]).is_empty()); // gap=1, unconfirmed
        p.note_miss(7);
        let picks = drive(&mut p, &stats, &[7]); // gap=1 again → stable → predict
        assert_eq!(p.page_mode(7), PageMode::Prefetch);
        assert_eq!(p.page_gap(7), Some(1));
        assert_eq!(picks, vec![7], "promoted and prefetched for the next window");

        // Steady state: keeps prefetching with no further misses (the
        // prefetch itself counts as the predicted need).
        for _ in 0..5 {
            assert_eq!(drive(&mut p, &stats, &[7]), vec![7]);
        }
        let rep = simnet::PolicyReport::capture(&stats);
        assert_eq!(rep.promotions, 1);
        assert_eq!(rep.demotions, 0);
    }

    #[test]
    fn periodic_pattern_prefetches_only_at_the_predicted_phase() {
        // A pipelined-reduction page: invalidated every event, needed
        // every 4th event. Blind prefetch would fetch 4x too often.
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        let mut prefetches = Vec::new();
        let mut misses = 0;
        for t in 1u64..=40 {
            // The app misses in window W_t iff t % 4 == 1 and the page
            // was not prefetched for that window.
            let picks = drive(&mut p, &stats, &[5]);
            if !picks.is_empty() {
                prefetches.push(t);
            } else if t % 4 == 1 {
                p.note_miss(5);
                misses += 1;
            }
        }
        // Misses in W_1, W_5, W_9 are recorded at window close (events
        // 2, 6, 10) → gap 4 is stable at event 10; the first prediction
        // fires at t = 13 (covering W_13, whose need closes at 14),
        // then every 4 events — and nowhere else.
        assert_eq!(prefetches, vec![13, 17, 21, 25, 29, 33, 37]);
        assert!(misses <= 3, "only the learning needs demand-fault");
        assert_eq!(p.page_gap(5), Some(4));
    }

    #[test]
    fn unaccessed_pages_are_never_prefetched() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        for _ in 0..20 {
            // Invalidated every epoch but never missed on.
            assert!(drive(&mut p, &stats, &[3]).is_empty());
        }
        assert_eq!(p.page_mode(3), PageMode::Demand);
        assert!(!simnet::PolicyReport::capture(&stats).is_active());
    }

    #[test]
    fn phase_shift_self_corrects_via_gap_instability() {
        // A periodic page whose phase slips by one event (moldyn's
        // rebuild barriers do exactly this): the mispredicted prefetch
        // registers a virtual need at the wrong event, the real miss
        // lands one event later, the observed gap changes, stability
        // breaks, and the predictor re-learns the shifted phase — all
        // without waiting for a probe.
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        let mut wasted = 0;
        let mut demand_misses = 0;
        for t in 1u64..=60 {
            let picks = drive(&mut p, &stats, &[6]);
            // Phase slips at t=30: needs move from W_{t: t%4==1} to
            // W_{t: t%4==2}.
            let used = if t < 30 { t % 4 == 1 } else { t % 4 == 2 };
            match (used, picks.is_empty()) {
                (true, true) => {
                    p.note_miss(6);
                    demand_misses += 1;
                }
                (false, false) => wasted += 1,
                _ => {}
            }
        }
        // The shifted phase is re-locked and predicted again.
        assert_eq!(p.page_mode(6), PageMode::Prefetch);
        assert_eq!(p.page_gap(6), Some(4));
        assert!(wasted <= 2, "one misprediction per shift, got {wasted}");
        // Learning (3 needs) + re-learning (3 needs) demand-fault; the
        // rest is prefetched.
        assert!((5..=8).contains(&demand_misses), "got {demand_misses}");
    }

    #[test]
    fn clean_probe_resets_a_dead_pattern() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            promote_after: 1,
            probe_every: 4,
            log_window: 16,
        });
        // Gap-1 pattern, promoted at event 3 (prediction #1).
        for _ in 0..3 {
            p.note_miss(9);
            drive(&mut p, &stats, &[9]);
        }
        // The program stops touching the page; writers keep writing.
        // Predictions 2, 3 prefetch; prediction 4 is the probe; the
        // clean probe window resets the predictor.
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9]); // prediction 2
        assert_eq!(drive(&mut p, &stats, &[9]), vec![9]); // prediction 3
        assert!(drive(&mut p, &stats, &[9]).is_empty()); // prediction 4 = probe
        assert!(drive(&mut p, &stats, &[9]).is_empty()); // clean → reset
        assert_eq!(p.page_mode(9), PageMode::Demand);
        let rep = simnet::PolicyReport::capture(&stats);
        assert_eq!(rep.probes, 1);
        assert!(rep.demotions >= 1);
        // And it stays quiet afterwards.
        for _ in 0..8 {
            assert!(drive(&mut p, &stats, &[9]).is_empty());
        }
    }

    #[test]
    fn probe_miss_keeps_the_page_promoted() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig {
            promote_after: 1,
            probe_every: 2,
            log_window: 16,
        });
        for _ in 0..3 {
            p.note_miss(5);
            drive(&mut p, &stats, &[5]);
        }
        // Prediction #2 is a probe; the page is still live, so the
        // probe demand-faults and the pattern survives.
        assert!(drive(&mut p, &stats, &[5]).is_empty()); // probe
        p.note_miss(5);
        assert_eq!(drive(&mut p, &stats, &[5]), vec![5]); // prediction 3
        assert_eq!(p.page_mode(5), PageMode::Prefetch);
        assert_eq!(simnet::PolicyReport::capture(&stats).demotions, 0);
    }

    #[test]
    fn epoch_log_records_decisions() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        for _ in 0..2 {
            p.note_miss(1);
            p.note_miss(2);
            drive(&mut p, &stats, &[1, 2]);
        }
        p.note_miss(1); // page 1 needs a third time; page 2 goes quiet
        drive(&mut p, &stats, &[1, 2]);
        let rows = p.log().rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].invalidated, 2);
        assert_eq!(rows[0].misses, 2);
        assert_eq!(rows[2].promotions, 1, "page 1 promoted, page 2 not");
        assert_eq!(rows[2].prefetched, 1);
    }

    #[test]
    fn dirty_stream_is_tracked_per_window() {
        let stats = PolicyStats::new(1);
        let mut p = AdaptivePolicy::new(AdaptConfig::default());
        p.note_interval_close(&[4]);
        drive(&mut p, &stats, &[4]);
        let h = p.page_history(4).unwrap();
        assert_eq!(h.dirty_bits & 1, 1);
        assert_eq!(h.miss_bits & 1, 0);
    }
}
