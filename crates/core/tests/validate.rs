//! Integration tests for `Validate`: schedule caching, modification
//! detection, aggregation, and the whole-page write path — the behaviours
//! paper §3.2 specifies.

use rsd::{Dim, Rsd};
use sdsm_core::{
    validate, AccessType, Cluster, Desc, DsmConfig, MsgKind, RegionRef, SharedSlice, Validator,
};

fn indirect_desc(
    data: &SharedSlice<f64>,
    ind: &SharedSlice<i32>,
    n: usize,
    access: AccessType,
    sched: u32,
) -> Desc {
    Desc::Indirect {
        data: RegionRef::of(data),
        ind: *ind,
        ind_dims: vec![ind.len()],
        section: Rsd::new(vec![Dim::dense(1, n as i64)]),
        access,
        sched,
    }
}

#[test]
fn schedule_cached_until_indirection_changes() {
    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let data = cl.alloc::<f64>(4096); // 8 pages
    let ind = cl.alloc::<i32>(16);
    cl.run(|p| {
        let mut v = Validator::new();
        if p.rank() == 0 {
            // indices are 1-based
            for k in 0..16 {
                p.write(&ind, k, (k * 256 + 1) as i32);
            }
        }
        p.barrier();

        let d = indirect_desc(&data, &ind, 16, AccessType::Read, 1);
        validate(p, &mut v, std::slice::from_ref(&d));
        let s1 = v.schedule(1).unwrap();
        assert_eq!(s1.recomputes, 1);
        assert_eq!(s1.pages.len(), 8, "16 targets spread over 8 data pages");

        // Unchanged indirection: Validate does NOT rescan.
        validate(p, &mut v, std::slice::from_ref(&d));
        assert_eq!(v.schedule(1).unwrap().recomputes, 1);
        p.barrier();

        // Processor 0 rewrites part of the indirection array.
        if p.rank() == 0 {
            p.write(&ind, 0, 2);
        }
        p.barrier();

        // Both the local writer and the remote observer must rescan
        // ("Both local and remote modifications cause the modified
        //  function to return true").
        validate(p, &mut v, &[d]);
        assert_eq!(v.schedule(1).unwrap().recomputes, 2);
        p.barrier();
    });
}

#[test]
fn aggregated_prefetch_one_exchange_per_peer() {
    let cl = Cluster::new(DsmConfig::with_nprocs(4));
    let data = cl.alloc::<f64>(512 * 12); // 12 pages
    let ind = cl.alloc::<i32>(12);
    cl.run(|p| {
        let me = p.rank();
        let n = p.nprocs();
        // Each processor owns 3 pages and writes them.
        for pg in 0..12 {
            if pg % n == me {
                for w in 0..512 {
                    p.write(&data, pg * 512 + w, (pg * 1000 + w) as f64);
                }
            }
        }
        if me == 0 {
            for k in 0..12 {
                p.write(&ind, k, (k * 512 + 1) as i32); // one target per page
            }
        }
        p.barrier();

        if me == 0 {
            let before = p.now();
            let mut v = Validator::new();
            validate(
                p,
                &mut v,
                &[indirect_desc(&data, &ind, 12, AccessType::Read, 9)],
            );
            // All 9 remote pages arrive; every read below is fault-free.
            let faults = p.counters().read_faults;
            let mut sum = 0.0;
            for pg in 0..12 {
                sum += p.read(&data, pg * 512);
            }
            assert_eq!(p.counters().read_faults, faults);
            assert_eq!(sum, (0..12).map(|pg| (pg * 1000) as f64).sum::<f64>());
            assert!(p.now() > before);
        }
        p.barrier();
    });
    let rep = cl.report();
    // One aggregated request to each of the 3 peers (ind array fetch may
    // add demand faults, counted separately).
    assert_eq!(rep.messages_per_kind(MsgKind::AggRequest), 3);
    assert_eq!(rep.messages_per_kind(MsgKind::AggReply), 3);
}

#[test]
fn write_all_skips_fetch_and_ships_full_pages() {
    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let data = cl.alloc::<f64>(512); // one page
    cl.run(|p| {
        let mut v = Validator::new();
        if p.rank() == 0 {
            p.write(&data, 0, -1.0); // make page dirty history
        }
        p.barrier();
        if p.rank() == 1 {
            // WRITE_ALL: page 0 is invalid here, but Validate must NOT
            // fetch it — every element will be overwritten.
            let agg_before = p.counters().pages_fetched;
            validate(
                p,
                &mut v,
                &[Desc::Direct {
                    data: RegionRef::of(&data),
                    section: Rsd::dense1(1, 512),
                    access: AccessType::WriteAll,
                    sched: 2,
                }],
            );
            assert_eq!(p.counters().pages_fetched, agg_before);
            assert_eq!(p.counters().twins_made, 0);
            for i in 0..512 {
                p.write(&data, i, i as f64);
            }
        }
        p.barrier();
        if p.rank() == 0 {
            assert_eq!(p.read(&data, 511), 511.0);
            assert_eq!(p.read(&data, 0), 0.0, "WRITE_ALL overwrote everything");
        }
        p.barrier();
        if p.rank() == 1 {
            assert_eq!(p.counters().fulls_published, 1);
        }
    });
}

#[test]
fn read_write_all_pipelined_reduction_fetches_last_full_only() {
    // The moldyn reduction pattern: procs take turns accumulating into a
    // chunk; with READ&WRITE_ALL each consumer fetches ONE full page from
    // the last writer instead of stacked diffs from every writer.
    let n = 4;
    let cl = Cluster::new(DsmConfig::with_nprocs(n));
    let forces = cl.alloc::<f64>(512); // one page/chunk
    cl.run(|p| {
        let me = p.rank();
        let mut v = Validator::new();
        let desc = || Desc::Direct {
            data: RegionRef::of(&forces),
            section: Rsd::dense1(1, 512),
            access: AccessType::ReadWriteAll,
            sched: 3,
        };
        // Pipelined: step s has proc (s) add 1.0 to every element.
        for s in 0..n {
            if s == me {
                validate(p, &mut v, &[desc()]);
                for i in 0..512 {
                    let cur = p.read(&forces, i);
                    p.write(&forces, i, cur + 1.0);
                }
            }
            p.barrier();
        }
        assert_eq!(p.read(&forces, 100), n as f64);
        p.barrier();
    });
    let rep = cl.report();
    // Each step after the first fetched exactly one Full page from the
    // previous writer: total aggregated exchanges = n-1 (plus the final
    // read faults as demand fetches).
    assert_eq!(rep.messages_per_kind(MsgKind::AggRequest), (n - 1) as u64);
    let full_bytes = rep.bytes_per_kind(MsgKind::AggReply);
    assert!(
        full_bytes >= ((n - 1) * 4096) as u64 && full_bytes < ((n - 1) * 4200) as u64,
        "each exchange carries exactly one full page, got {full_bytes}"
    );
}

#[test]
fn two_level_indirection_composes() {
    // The paper (§3.3) notes the approach "naturally extends to multiple
    // levels of indirection": validate the inner level first, then the
    // outer — no extra mechanism.
    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let data = cl.alloc::<f64>(1024);
    let mid = cl.alloc::<i32>(64);
    let outer = cl.alloc::<i32>(16);
    cl.run(|p| {
        if p.rank() == 0 {
            for k in 0..64 {
                p.write(&mid, k, (k * 16 + 1) as i32);
            }
            for k in 0..16 {
                p.write(&outer, k, (k * 4 + 1) as i32);
            }
            for i in 0..1024 {
                p.write(&data, i, i as f64);
            }
        }
        p.barrier();
        if p.rank() == 1 {
            let mut v = Validator::new();
            // Level 1: mid[outer[j]] — treat mid as data.
            let mid_as_data = RegionRef {
                base: mid.base_byte(),
                len: mid.len(),
                elem: 4,
            };
            validate(
                p,
                &mut v,
                &[Desc::Indirect {
                    data: mid_as_data,
                    ind: outer,
                    ind_dims: vec![outer.len()],
                    section: Rsd::dense1(1, 16),
                    access: AccessType::Read,
                    sched: 10,
                }],
            );
            // Level 2: data[mid[outer[j]]] — now mid is the indirection.
            validate(
                p,
                &mut v,
                &[indirect_desc(&data, &mid, 64, AccessType::Read, 11)],
            );
            // All reads below are prefetched.
            let faults = p.counters().read_faults;
            let mut acc = 0.0;
            for j in 0..16 {
                let m = p.read(&outer, j) as usize; // 1-based
                let t = p.read(&mid, m - 1) as usize; // 1-based
                acc += p.read(&data, t - 1);
            }
            assert_eq!(p.counters().read_faults, faults);
            assert_eq!(acc, (0..16).map(|j| (j * 4 * 16) as f64).sum::<f64>());
        }
        p.barrier();
    });
}

#[test]
fn incremental_recompute_rescans_only_dirty_pages() {
    // The §3.2 extension: after a localized change to the indirection
    // array, an incremental Validator rescans only the entries on the
    // dirtied indirection pages; the full Validator rescans everything.
    let cfg = DsmConfig {
        nprocs: 2,
        page_size: 1024, // 256 i32 entries per indirection page
        ..Default::default()
    };
    let cl = Cluster::new(cfg);
    let data = cl.alloc::<f64>(8192);
    let ind = cl.alloc::<i32>(1024); // 4 indirection pages
    cl.run(|p| {
        let mut v_full = Validator::new();
        let mut v_inc = Validator::incremental();
        assert!(v_inc.is_incremental());
        if p.rank() == 0 {
            for k in 0..1024 {
                p.write(&ind, k, (k * 8 + 1) as i32);
            }
        }
        p.barrier();

        let d = |sched| indirect_desc(&data, &ind, 1024, AccessType::Read, sched);
        validate(p, &mut v_full, &[d(1)]);
        validate(p, &mut v_inc, &[d(2)]);
        let full0 = v_full.schedule(1).unwrap();
        let inc0 = v_inc.schedule(2).unwrap();
        assert_eq!(full0.pages, inc0.pages, "same initial schedule");
        p.barrier();

        // One entry on ONE indirection page changes.
        if p.rank() == 0 {
            p.write(&ind, 700, 1); // page 2 of the indirection array
        }
        p.barrier();

        let t_full = p.now();
        validate(p, &mut v_full, &[d(1)]);
        let full_cost = p.now() - t_full;
        let t_inc = p.now();
        validate(p, &mut v_inc, &[d(2)]);
        let inc_cost = p.now() - t_inc;

        let full1 = v_full.schedule(1).unwrap();
        let inc1 = v_inc.schedule(2).unwrap();
        assert_eq!(full1.pages, inc1.pages, "identical page sets either way");
        assert_eq!(inc1.partial_scans, 256, "one ind page = 256 entries rescanned");
        assert_eq!(full1.partial_scans, 0);
        // The incremental rescan is ~4x cheaper (256 vs 1024 entries).
        assert!(
            inc_cost.as_ns() < full_cost.as_ns(),
            "incremental {inc_cost:?} !< full {full_cost:?}"
        );
        p.barrier();
    });
}

#[test]
fn incremental_and_full_agree_under_repeated_mutation() {
    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let data = cl.alloc::<f64>(4096);
    let ind = cl.alloc::<i32>(512);
    cl.run(|p| {
        let mut v_full = Validator::new();
        let mut v_inc = Validator::incremental();
        if p.rank() == 0 {
            for k in 0..512 {
                p.write(&ind, k, (k * 4 + 1) as i32);
            }
        }
        p.barrier();
        for round in 0..5 {
            if p.rank() == 0 {
                // Rewire a moving window of entries each round.
                for k in (round * 37)..(round * 37 + 21) {
                    p.write(&ind, k % 512, ((k * 13) % 4096 + 1) as i32);
                }
            }
            p.barrier();
            validate(p, &mut v_full, &[indirect_desc(&data, &ind, 512, AccessType::Read, 1)]);
            validate(p, &mut v_inc, &[indirect_desc(&data, &ind, 512, AccessType::Read, 2)]);
            assert_eq!(
                v_full.schedule(1).unwrap().pages,
                v_inc.schedule(2).unwrap().pages,
                "round {round}: incremental schedule must equal full"
            );
            p.barrier();
        }
    });
}
