//! Access descriptors — the arguments of the `Validate` call (Figure 3).

use dsm::{Pod, SharedSlice};
use rsd::Rsd;

/// Access type of a descriptor (paper §3.2).
///
/// The two `*All` types are the direct-access refinements: the compiler
/// proved every element of the section is written, so the run-time can
/// skip twinning — and ship whole pages instead of (stacked, overlapping)
/// diffs, the mechanism behind the paper's moldyn data reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    Read,
    Write,
    ReadWrite,
    WriteAll,
    ReadWriteAll,
}

impl AccessType {
    pub fn reads(self) -> bool {
        matches!(
            self,
            AccessType::Read | AccessType::ReadWrite | AccessType::ReadWriteAll
        )
    }

    pub fn writes(self) -> bool {
        !matches!(self, AccessType::Read)
    }

    pub fn whole_pages(self) -> bool {
        matches!(self, AccessType::WriteAll | AccessType::ReadWriteAll)
    }

    /// The spelling used in the paper's figures (for `fcc` codegen).
    pub fn fortran_name(self) -> &'static str {
        match self {
            AccessType::Read => "READ",
            AccessType::Write => "WRITE",
            AccessType::ReadWrite => "READ&WRITE",
            AccessType::WriteAll => "WRITE_ALL",
            AccessType::ReadWriteAll => "READ&WRITE_ALL",
        }
    }
}

/// Type-erased view of a shared region: what `Validate` needs to map
/// element indices to pages (the `base` argument of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionRef {
    pub base: usize,
    pub len: usize,
    pub elem: usize,
}

impl RegionRef {
    pub fn of<T: Pod>(s: &SharedSlice<T>) -> Self {
        RegionRef {
            base: s.base_byte(),
            len: s.len(),
            elem: T::SIZE,
        }
    }

    /// Pages occupied by elements `lo..=hi : stride` (zero-based).
    pub fn pages_of(&self, lo: i64, hi: i64, stride: i64, page_size: usize) -> rsd::PageSet {
        rsd::pages_of_section(self.base, self.elem, lo, hi, stride, page_size)
    }

    /// Page holding element `i` (elements here never straddle pages:
    /// regions are page-aligned and element sizes divide the page size).
    #[inline]
    pub fn page_of_elem(&self, i: usize, page_size: usize) -> u32 {
        ((self.base + i * self.elem) / page_size) as u32
    }
}

/// One access descriptor.
///
/// Sections use *one-based, inclusive* Fortran bounds, matching the
/// paper's figures and the `fcc` front end that generates them.
#[derive(Debug, Clone)]
pub enum Desc {
    /// Regular access: `section` is a 1-D section of `data` itself.
    Direct {
        data: RegionRef,
        section: Rsd,
        access: AccessType,
        sched: u32,
    },
    /// Irregular access: `data[ind[j]]` for `j` in `section` (a section
    /// *of the indirection array*; may be multi-dimensional, interpreted
    /// column-major over `ind_dims` as in Fortran).
    Indirect {
        data: RegionRef,
        ind: SharedSlice<i32>,
        /// Fortran shape of the indirection array, e.g. `[2, n]` for
        /// `interaction_list(2, n)`.
        ind_dims: Vec<usize>,
        section: Rsd,
        access: AccessType,
        sched: u32,
    },
}

impl Desc {
    pub fn access(&self) -> AccessType {
        match self {
            Desc::Direct { access, .. } | Desc::Indirect { access, .. } => *access,
        }
    }

    pub fn sched(&self) -> u32 {
        match self {
            Desc::Direct { sched, .. } | Desc::Indirect { sched, .. } => *sched,
        }
    }
}

/// Enumerate the flat (zero-based, column-major) element indices of a
/// one-based multi-dimensional section over an array of shape `dims`.
///
/// `interaction_list[1:2, 5:6]` over shape `[2, n]` yields `8, 9, 10, 11`.
pub fn flat_indices(section: &Rsd, dims: &[usize]) -> Vec<usize> {
    assert_eq!(section.rank(), dims.len(), "section rank != array rank");
    // Column-major strides.
    let mut strides = vec![1usize; dims.len()];
    for k in 1..dims.len() {
        strides[k] = strides[k - 1] * dims[k - 1];
    }
    let mut out = Vec::with_capacity(section.len());
    // Iterate with the FIRST dimension fastest (column-major enumeration
    // gives ascending flat indices for dense sections).
    let dim_lens: Vec<usize> = section.dims.iter().map(|d| d.len()).collect();
    let total: usize = dim_lens.iter().product();
    for mut k in 0..total {
        let mut flat = 0usize;
        for (dno, d) in section.dims.iter().enumerate() {
            let l = dim_lens[dno].max(1);
            let step = k % l;
            k /= l;
            let idx1 = d.lo + step as i64 * d.stride; // one-based
            debug_assert!(idx1 >= 1 && (idx1 as usize) <= dims[dno]);
            flat += (idx1 as usize - 1) * strides[dno];
        }
        out.push(flat);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsd::Dim;

    #[test]
    fn access_type_predicates() {
        assert!(AccessType::Read.reads() && !AccessType::Read.writes());
        assert!(AccessType::WriteAll.writes() && AccessType::WriteAll.whole_pages());
        assert!(AccessType::ReadWriteAll.reads());
        assert!(!AccessType::ReadWrite.whole_pages());
        assert_eq!(AccessType::ReadWrite.fortran_name(), "READ&WRITE");
    }

    #[test]
    fn flat_indices_2d_column_major() {
        // interaction_list(2, 10): section [1:2, 5:6]
        let sec = Rsd::new(vec![Dim::dense(1, 2), Dim::dense(5, 6)]);
        let idx = flat_indices(&sec, &[2, 10]);
        assert_eq!(idx, vec![8, 9, 10, 11]);
    }

    #[test]
    fn flat_indices_1d() {
        let sec = Rsd::new(vec![Dim::dense(3, 6)]);
        assert_eq!(flat_indices(&sec, &[100]), vec![2, 3, 4, 5]);
    }

    #[test]
    fn flat_indices_strided() {
        let sec = Rsd::new(vec![Dim::new(1, 9, 4)]); // 1,5,9 one-based
        assert_eq!(flat_indices(&sec, &[10]), vec![0, 4, 8]);
    }
}
