//! # sdsm-core — the paper's contribution: `Validate`
//!
//! This crate implements the augmented run-time interface of **Figure 3**
//! of the paper: communication aggregation and prefetching for irregular
//! accesses on top of the TreadMarks-style DSM in the [`dsm`] crate.
//!
//! A compiler front end (crate `fcc`) inserts a [`validate`] call before
//! loops with irregular accesses. Each *access descriptor* names a shared
//! data array, the section being accessed — directly, or through an
//! indirection array — and the access type:
//!
//! ```text
//! Validate(1, INDIRECT, x, interaction_list[1:2, 1:num_interactions], READ, 1)
//! ```
//!
//! At run time, `validate`:
//!
//! 1. For an `INDIRECT` descriptor whose indirection section has been
//!    **modified** since the last call (detected by write-watching the
//!    pages that hold the indirection array — both local writes and
//!    incoming write notices trip it), re-runs `Read_indices`: scan the
//!    indirection section, map every target element to its page, and
//!    cache the page set under the descriptor's schedule number.
//! 2. Collects every *invalid* page across all descriptors and fetches
//!    the missing diffs in **one aggregated request/reply exchange per
//!    peer processor** (`Fetch_diffs` + `Apply_diffs`).
//! 3. Performs consistency actions preemptively: `Create_twins` for
//!    `WRITE`/`READ&WRITE` descriptors, and for `WRITE_ALL` /
//!    `READ&WRITE_ALL` marks pages whole-page-written — no twin, no
//!    fetch (for `WRITE_ALL`), and the full page rather than a diff is
//!    shipped to the next consumer.
//!
//! The result is the paper's headline mechanism: demand paging's
//! page-at-a-time request/response traffic collapses into one exchange
//! per peer, issued *before* the loop, with no inspector.

mod descriptor;
mod validate;

pub use descriptor::{flat_indices, AccessType, Desc, RegionRef};
pub use validate::{validate, ScheduleInfo, Validator};

pub use dsm::{
    Cluster, ClusterPool, DsmConfig, FetchClass, MsgKind, Pod, SharedSlice, SimTime, TmkProc,
    DENSE_VC_MAX,
};
pub use rsd::{Dim, Rsd};
