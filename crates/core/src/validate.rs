//! The `Validate` entry point — the run-time half of the paper's
//! compile-time/run-time pair (paper §3.2, Figure 3).

use std::collections::HashMap;

use dsm::{FetchClass, SimTime, TmkProc};
use rsd::PageSet;

use crate::descriptor::{flat_indices, AccessType, Desc};

/// Cached state for one schedule number: the page set computed by
/// `Read_indices` (or from a direct section) and, for indirect schedules,
/// the watch that detects indirection-array modification.
#[derive(Debug)]
struct Sched {
    pages: Vec<u32>,
    /// Pages entirely covered by the section (candidates for whole-page
    /// treatment under `WRITE_ALL`); always empty for indirect schedules.
    full_pages: Vec<u32>,
    /// Boundary pages only partially covered — the false-sharing frontier.
    partial_pages: Vec<u32>,
    watch: Option<usize>,
    recomputes: u64,
    /// Incremental mode: data pages contributed by each *indirection*
    /// page, so a partial rescan can replace just the dirty pages' share.
    by_ind_page: HashMap<u32, Vec<u32>>,
    /// Entries rescanned by partial recomputes (diagnostics).
    partial_scans: u64,
}

/// Diagnostic snapshot of a schedule (tests, reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleInfo {
    pub pages: Vec<u32>,
    pub full_pages: Vec<u32>,
    pub partial_pages: Vec<u32>,
    pub recomputes: u64,
    /// Indirection entries rescanned by *partial* (incremental)
    /// recomputes.
    pub partial_scans: u64,
}

/// Per-processor `Validate` state: the schedule cache.
///
/// One `Validator` lives next to each [`TmkProc`] for the duration of the
/// SPMD body (the paper keeps this state in the run-time library).
#[derive(Debug, Default)]
pub struct Validator {
    schedules: HashMap<u32, Sched>,
    /// Simulated time spent scanning indirection arrays (`Read_indices`)
    /// — the number the paper quotes against the CHAOS inspector.
    scan_time: SimTime,
    /// Incremental `Read_indices` (the paper's §3.2 future-work
    /// extension): when the write-watch reports *which* indirection
    /// pages changed, rescan only the section entries on those pages.
    /// Off by default, matching the paper's implementation.
    incremental: bool,
}

impl Validator {
    pub fn new() -> Self {
        Validator::default()
    }

    /// A validator that recomputes page sets *incrementally* — the
    /// extension the paper sketches: "A more sophisticated version of
    /// this approach could use diffing ... to incrementally recompute
    /// the page sets, but our current implementation does not do so."
    pub fn incremental() -> Self {
        Validator {
            incremental: true,
            ..Default::default()
        }
    }

    pub fn schedule(&self, sched: u32) -> Option<ScheduleInfo> {
        self.schedules.get(&sched).map(|s| ScheduleInfo {
            pages: s.pages.clone(),
            full_pages: s.full_pages.clone(),
            partial_pages: s.partial_pages.clone(),
            recomputes: s.recomputes,
            partial_scans: s.partial_scans,
        })
    }

    /// Total `Read_indices` executions.
    pub fn total_recomputes(&self) -> u64 {
        self.schedules.values().map(|s| s.recomputes).sum()
    }

    /// Simulated seconds spent scanning indirection arrays.
    pub fn scan_seconds(&self) -> f64 {
        self.scan_time.as_secs_f64()
    }

    /// Is incremental recompute enabled?
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }
}

/// The `Validate` call of Figure 3.
///
/// * recomputes page sets for indirect descriptors whose indirection
///   section changed (`modified()` via page write-watch);
/// * aggregates the fetch of every invalid page into one exchange per
///   peer (`Fetch_diffs`/`Apply_diffs`);
/// * pre-creates twins (`Create_twins`) or marks whole-page writes.
///
/// `WRITE_ALL` / `READ&WRITE_ALL` apply whole-page treatment only to
/// pages *entirely inside* the section; boundary pages shared with a
/// neighbouring section fall back to the ordinary twin/diff protocol
/// (they are exactly where the paper's false-sharing overhead lives).
/// The `*_ALL` types are only meaningful for `DIRECT` descriptors
/// (paper §3.2) — indirect descriptors reject them.
pub fn validate(p: &mut TmkProc, v: &mut Validator, descs: &[Desc]) {
    let page_size = p.page_size();
    let cost = p.cost().clone();

    // Pass 1: determine pages[sch] for every descriptor.
    for d in descs {
        match d {
            Desc::Indirect {
                data,
                ind,
                ind_dims,
                section,
                sched,
                access,
            } => {
                assert!(
                    !access.whole_pages(),
                    "WRITE_ALL is a direct-access refinement (paper §3.2)"
                );
                let entry = v.schedules.entry(*sched).or_insert_with(Sched::empty);
                let watch = match entry.watch {
                    Some(w) => w,
                    None => {
                        let w = p.new_watch();
                        entry.watch = Some(w);
                        w
                    }
                };
                // modified()? — set by local protection faults and by
                // incoming write notices on the watched pages; born true.
                let dirty = if v.incremental {
                    p.take_modified_pages(watch)
                } else {
                    p.take_modified(watch).then(Vec::new)
                };
                if let Some(dirty_pages) = dirty {
                    // Read_indices: scan the indirection section and map
                    // each target element to its page(s). The scan reads
                    // the indirection array through the DSM, so its pages
                    // are fetched like any shared data. In incremental
                    // mode, a non-empty dirty list restricts the rescan
                    // to entries living on the dirtied indirection pages.
                    let flats = flat_indices(section, ind_dims);
                    let partial = v.incremental
                        && !dirty_pages.is_empty()
                        && v.schedules[sched].recomputes > 0;
                    let scan: Vec<usize> = if partial {
                        flats
                            .iter()
                            .copied()
                            .filter(|&fi| dirty_pages.binary_search(&ind.page_of(fi, page_size)).is_ok())
                            .collect()
                    } else {
                        flats.clone()
                    };

                    // Map rescanned entries to data pages, grouped by the
                    // indirection page they live on.
                    let mut groups: HashMap<u32, PageSet> = HashMap::new();
                    for &fi in &scan {
                        let target = p.read(ind, fi);
                        debug_assert!(target >= 1, "indirection entries are 1-based");
                        let t = (target - 1) as usize;
                        debug_assert!(t < data.len, "indirection target out of range");
                        let b = data.base + t * data.elem;
                        let set = groups.entry(ind.page_of(fi, page_size)).or_default();
                        set.insert((b / page_size) as u32);
                        let last = ((b + data.elem - 1) / page_size) as u32;
                        if last != (b / page_size) as u32 {
                            set.insert(last);
                        }
                    }
                    let dt = cost.index_scan(scan.len());
                    p.compute(dt);
                    v.scan_time += dt;

                    let sch = v.schedules.get_mut(sched).unwrap();
                    if !partial {
                        sch.by_ind_page.clear();
                    } else {
                        sch.partial_scans += scan.len() as u64;
                    }
                    for (ip, set) in groups {
                        let mut s = set;
                        s.finish();
                        sch.by_ind_page.insert(ip, s.iter().collect());
                    }
                    // Union of all groups = pages[sch].
                    let mut union = PageSet::with_capacity(64);
                    for pages in sch.by_ind_page.values() {
                        for &pg in pages {
                            union.insert(pg);
                        }
                    }
                    union.finish();
                    sch.pages = union.iter().collect();
                    sch.full_pages.clear();
                    sch.partial_pages = sch.pages.clone();
                    sch.recomputes += 1;

                    // Write_protect(section): arm the watch on the pages
                    // holding the indirection section.
                    let ind_pages: Vec<u32> = flats
                        .iter()
                        .map(|&fi| ind.page_of(fi, page_size))
                        .collect::<PageSet>()
                        .iter()
                        .collect();
                    p.watch_pages(watch, ind_pages.into_iter());
                }
            }
            Desc::Direct {
                data,
                section,
                sched,
                ..
            } => {
                // pages[sch] = pages in section (cheap arithmetic), split
                // into fully- and partially-covered.
                debug_assert_eq!(section.rank(), 1, "direct sections are 1-D");
                let dim = &section.dims[0];
                let pages = data.pages_of(dim.lo - 1, dim.hi - 1, dim.stride, page_size);
                let entry = v.schedules.entry(*sched).or_insert_with(Sched::empty);
                entry.pages = pages.iter().collect();
                entry.full_pages.clear();
                entry.partial_pages.clear();
                if dim.stride == 1 && !dim.is_empty() {
                    let lo_byte = data.base + (dim.lo - 1) as usize * data.elem;
                    let hi_byte = data.base + dim.hi as usize * data.elem; // exclusive
                    for pg in pages.iter() {
                        let ps = pg as usize * page_size;
                        let pe = ps + page_size;
                        if ps >= lo_byte && pe <= hi_byte {
                            entry.full_pages.push(pg);
                        } else {
                            entry.partial_pages.push(pg);
                        }
                    }
                } else {
                    entry.partial_pages = entry.pages.clone();
                }
            }
        }
    }

    // Pass 2: fetch_pages += pages[sch] that are invalid. Pure WRITE_ALL
    // sections skip the fetch for their fully-covered pages (nothing old
    // is needed); boundary pages still fetch — their other half belongs
    // to someone else.
    let mut fetch: Vec<u32> = Vec::new();
    for d in descs {
        let sch = &v.schedules[&d.sched()];
        let candidates: &[u32] = if d.access() == AccessType::WriteAll {
            &sch.partial_pages
        } else {
            &sch.pages
        };
        fetch.extend(candidates.iter().copied().filter(|&pg| p.page_invalid(pg)));
    }
    fetch.sort_unstable();
    fetch.dedup();

    // Fetch_diffs + Apply_diffs: one aggregated exchange per peer.
    if !fetch.is_empty() {
        p.fetch_pages(&fetch, FetchClass::Aggregated);
    }

    // Create_twins / whole-page marking.
    for d in descs {
        let sch = &v.schedules[&d.sched()];
        match d.access() {
            AccessType::Write | AccessType::ReadWrite => {
                let pages = sch.pages.clone();
                p.pre_twin(&pages);
            }
            AccessType::WriteAll | AccessType::ReadWriteAll => {
                let full = sch.full_pages.clone();
                let partial = sch.partial_pages.clone();
                p.mark_full_write(&full);
                p.pre_twin(&partial);
            }
            AccessType::Read => {}
        }
    }
}

impl Sched {
    fn empty() -> Self {
        Sched {
            pages: Vec::new(),
            full_pages: Vec::new(),
            partial_pages: Vec::new(),
            watch: None,
            recomputes: 0,
            by_ind_page: HashMap::new(),
            partial_scans: 0,
        }
    }
}
