//! Data and iteration partitioners (paper §4).
//!
//! CHAOS "supports a number of parallel partitioners that partition data
//! arrays using heuristics based on spatial position, computational load,
//! etc." We implement the three the paper uses or names: BLOCK, CYCLIC,
//! and the Recursive Coordinate Bisection (RCB) partitioner that both the
//! CHAOS *and* TreadMarks moldyn programs rely on for locality.

use simnet::ProcId;

/// A data partition: every element's home processor, plus the derived
/// remap (elements of one processor contiguous, processors ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `owner[e]` = home processor of (original) element `e`.
    pub owner: Vec<ProcId>,
    /// Elements per processor.
    pub counts: Vec<usize>,
    /// Remap permutation: `new_of[e]` = position of original element `e`
    /// in the remapped (owner-contiguous) ordering.
    pub new_of: Vec<u32>,
    /// Inverse: `old_of[k]` = original element at remapped position `k`.
    pub old_of: Vec<u32>,
    /// Start of each processor's block in the remapped ordering
    /// (length `nprocs + 1`).
    pub starts: Vec<usize>,
}

impl Partition {
    /// Build the remap tables from an ownership vector.
    pub fn from_owners(owner: Vec<ProcId>, nprocs: usize) -> Self {
        let n = owner.len();
        let mut counts = vec![0usize; nprocs];
        for &o in &owner {
            assert!(o < nprocs, "owner {o} out of range");
            counts[o] += 1;
        }
        let mut starts = vec![0usize; nprocs + 1];
        for p in 0..nprocs {
            starts[p + 1] = starts[p] + counts[p];
        }
        let mut cursor = starts.clone();
        let mut new_of = vec![0u32; n];
        let mut old_of = vec![0u32; n];
        for (e, &o) in owner.iter().enumerate() {
            let k = cursor[o];
            cursor[o] += 1;
            new_of[e] = k as u32;
            old_of[k] = e as u32;
        }
        Partition {
            owner,
            counts,
            new_of,
            old_of,
            starts,
        }
    }

    pub fn nprocs(&self) -> usize {
        self.counts.len()
    }

    pub fn len(&self) -> usize {
        self.owner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Home processor of a *remapped* element index.
    pub fn owner_of_new(&self, k: usize) -> ProcId {
        match self.starts.binary_search(&k) {
            Ok(p) if p < self.nprocs() => p,
            Ok(p) => p - 1,
            Err(p) => p - 1,
        }
    }

    /// Local offset (within the owner's block) of a remapped index.
    pub fn local_off_of_new(&self, k: usize) -> u32 {
        (k - self.starts[self.owner_of_new(k)]) as u32
    }

    /// The remapped index range owned by `p`.
    pub fn range_of(&self, p: ProcId) -> std::ops::Range<usize> {
        self.starts[p]..self.starts[p + 1]
    }
}

/// BLOCK partition: contiguous slabs, sizes differing by at most one
/// (the nbf experiments use this — "a simple BLOCK partition suffices to
/// balance the load").
pub fn block_partition(n: usize, nprocs: usize) -> Partition {
    let mut owner = vec![0; n];
    let base = n / nprocs;
    let extra = n % nprocs;
    let mut e = 0;
    for p in 0..nprocs {
        let sz = base + usize::from(p < extra);
        for _ in 0..sz {
            owner[e] = p;
            e += 1;
        }
    }
    Partition::from_owners(owner, nprocs)
}

/// CYCLIC partition: element `e` to processor `e mod nprocs`.
pub fn cyclic_partition(n: usize, nprocs: usize) -> Partition {
    Partition::from_owners((0..n).map(|e| e % nprocs).collect(), nprocs)
}

/// Recursive Coordinate Bisection over 3-D positions: split the element
/// set at the median of its widest coordinate, recursing until one group
/// per processor. "Particles close to each other in the physical space
/// are more likely to interact", so RCB minimizes cross-processor
/// interactions (paper §4).
///
/// `nprocs` may be any positive count (uneven splits weight the halves).
pub fn rcb_partition(pos: &[[f64; 3]], nprocs: usize) -> Partition {
    let mut owner = vec![0usize; pos.len()];
    let mut idx: Vec<u32> = (0..pos.len() as u32).collect();
    rcb_rec(pos, &mut idx, 0, nprocs, &mut owner);
    Partition::from_owners(owner, nprocs)
}

fn rcb_rec(pos: &[[f64; 3]], idx: &mut [u32], first_proc: usize, nprocs: usize, owner: &mut [usize]) {
    if nprocs == 1 {
        for &e in idx.iter() {
            owner[e as usize] = first_proc;
        }
        return;
    }
    // Widest dimension of the bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &e in idx.iter() {
        for d in 0..3 {
            let v = pos[e as usize][d];
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    let dim = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();

    // Split processor count (and elements proportionally).
    let left_procs = nprocs / 2;
    let right_procs = nprocs - left_procs;
    let split = idx.len() * left_procs / nprocs;

    // Deterministic weighted-median split: sort keys once. Ties broken by
    // element id so equal coordinates cannot make the partition ambiguous.
    idx.sort_unstable_by(|&a, &b| {
        pos[a as usize][dim]
            .partial_cmp(&pos[b as usize][dim])
            .unwrap()
            .then(a.cmp(&b))
    });
    let (l, r) = idx.split_at_mut(split);
    rcb_rec(pos, l, first_proc, left_procs, owner);
    rcb_rec(pos, r, first_proc + left_procs, right_procs, owner);
}

/// Iteration partitioning by the *almost-owner-computes* rule: each
/// iteration goes to the processor owning the majority of the elements it
/// accesses (ties to the first element's owner).
pub fn assign_iterations_almost_owner(
    partition: &Partition,
    accesses_per_iter: impl Iterator<Item = Vec<u32>>,
) -> Vec<ProcId> {
    let nprocs = partition.nprocs();
    accesses_per_iter
        .map(|elems| {
            debug_assert!(!elems.is_empty());
            let mut votes = vec![0u32; nprocs];
            for &e in &elems {
                votes[partition.owner[e as usize]] += 1;
            }
            let best = *votes.iter().max().unwrap();
            if votes[partition.owner[elems[0] as usize]] == best {
                partition.owner[elems[0] as usize]
            } else {
                votes.iter().position(|&v| v == best).unwrap()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes_balanced() {
        let p = block_partition(10, 3);
        assert_eq!(p.counts, vec![4, 3, 3]);
        assert_eq!(p.owner[0..4], [0, 0, 0, 0]);
        assert_eq!(p.starts, vec![0, 4, 7, 10]);
    }

    #[test]
    fn cyclic_roundrobin() {
        let p = cyclic_partition(7, 3);
        assert_eq!(p.owner, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(p.counts, vec![3, 2, 2]);
    }

    #[test]
    fn remap_is_a_permutation() {
        let p = cyclic_partition(100, 7);
        let mut seen = [false; 100];
        for e in 0..100 {
            let k = p.new_of[e] as usize;
            assert!(!seen[k]);
            seen[k] = true;
            assert_eq!(p.old_of[k] as usize, e);
            assert_eq!(p.owner_of_new(k), p.owner[e]);
        }
    }

    #[test]
    fn local_offsets_dense() {
        let p = block_partition(12, 4);
        for proc in 0..4 {
            let r = p.range_of(proc);
            for (off, k) in r.enumerate() {
                assert_eq!(p.local_off_of_new(k) as usize, off);
            }
        }
    }

    #[test]
    fn rcb_balances_and_localizes() {
        // 8×8×8 grid of points, 8 processors: RCB must produce octants.
        let mut pos = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    pos.push([x as f64, y as f64, z as f64]);
                }
            }
        }
        let p = rcb_partition(&pos, 8);
        assert!(p.counts.iter().all(|&c| c == 64), "{:?}", p.counts);
        // Locality: elements of one processor span at most half the box
        // in every dimension.
        for proc in 0..8 {
            let mut lo = [f64::INFINITY; 3];
            let mut hi = [f64::NEG_INFINITY; 3];
            for (e, &o) in p.owner.iter().enumerate() {
                if o == proc {
                    for d in 0..3 {
                        lo[d] = lo[d].min(pos[e][d]);
                        hi[d] = hi[d].max(pos[e][d]);
                    }
                }
            }
            for d in 0..3 {
                assert!(hi[d] - lo[d] <= 3.5, "proc {proc} spans dim {d}");
            }
        }
    }

    #[test]
    fn rcb_deterministic() {
        let pos: Vec<[f64; 3]> = (0..500)
            .map(|i| {
                let f = i as f64;
                [f.sin() * 10.0, (f * 0.7).cos() * 10.0, (f * 1.3).sin() * 10.0]
            })
            .collect();
        assert_eq!(rcb_partition(&pos, 8), rcb_partition(&pos, 8));
    }

    #[test]
    fn rcb_uneven_proc_count() {
        let pos: Vec<[f64; 3]> = (0..90).map(|i| [i as f64, 0.0, 0.0]).collect();
        let p = rcb_partition(&pos, 3);
        assert_eq!(p.counts, vec![30, 30, 30]);
        // Line split into thirds, in order.
        assert!(p.owner[0..30].iter().all(|&o| o == 0));
        assert!(p.owner[60..90].iter().all(|&o| o == 2));
    }

    #[test]
    fn almost_owner_computes() {
        let p = block_partition(8, 2); // 0-3 → p0, 4-7 → p1
        let iters = vec![vec![0u32, 1], vec![0, 5], vec![5, 0], vec![6, 7]];
        let a = assign_iterations_almost_owner(&p, iters.into_iter());
        // Tie (one element each) goes to the first element's owner.
        assert_eq!(a, vec![0, 0, 1, 1]);
    }
}
