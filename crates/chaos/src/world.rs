//! The CHAOS execution environment: SPMD processes on the simulated
//! cluster with explicit message passing.
//!
//! CHAOS programs are message-passing programs; there is no shared
//! memory. Each simulated processor owns plain Rust vectors, and all
//! inter-processor data movement goes through [`ChaosProc::exchange`] —
//! a bulk point-to-point exchange whose messages and bytes are accounted
//! on the same [`simnet::Net`] the DSM uses.

use std::sync::Barrier;

use parking_lot::Mutex;
use simnet::{CostModel, MsgKind, Net, NetReport, ProcId, SimTime};

/// One deposited message awaiting pickup.
struct Deposit {
    from: ProcId,
    arrival: SimTime,
    bytes: Vec<u8>,
}

/// The CHAOS "cluster": processors, inboxes, and the rendezvous.
pub struct ChaosWorld {
    nprocs: usize,
    net: Net,
    inboxes: Vec<Mutex<Vec<Deposit>>>,
    bar: Barrier,
}

impl ChaosWorld {
    pub fn new(nprocs: usize, cost: CostModel) -> Self {
        ChaosWorld {
            nprocs,
            net: Net::new(nprocs, cost),
            inboxes: (0..nprocs).map(|_| Mutex::new(Vec::new())).collect(),
            bar: Barrier::new(nprocs),
        }
    }

    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    pub fn net(&self) -> &Net {
        &self.net
    }

    pub fn report(&self) -> NetReport {
        self.net.report()
    }

    pub fn elapsed(&self) -> SimTime {
        self.net.clock_max()
    }

    /// Run the SPMD body on every processor (one OS thread each).
    ///
    /// The caller's thread allowance (see `vendor/rayon`) is divided
    /// evenly among the processor threads, so intra-processor
    /// parallelism (the sharded inspector) is self-limiting: a
    /// 64-processor cell on an 8-thread allowance leaves every
    /// processor with exactly its one thread, and a `serve` job never
    /// exceeds the tokens it holds from the shared `ThreadBudget`.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(&mut ChaosProc) + Sync,
    {
        let share = rayon::ThreadPoolBuilder::new()
            .num_threads((rayon::current_num_threads() / self.nprocs).max(1))
            .build()
            .expect("shim pools cannot fail to build");
        let share = &share;
        std::thread::scope(|s| {
            for rank in 0..self.nprocs {
                let f = &f;
                s.spawn(move || {
                    let mut cp = ChaosProc {
                        world: self,
                        me: rank,
                    };
                    share.install(|| f(&mut cp));
                });
            }
        });
    }
}

/// A CHAOS processor: rank + communication primitives.
pub struct ChaosProc<'w> {
    world: &'w ChaosWorld,
    me: ProcId,
}

impl<'w> ChaosProc<'w> {
    #[inline]
    pub fn rank(&self) -> ProcId {
        self.me
    }

    #[inline]
    pub fn nprocs(&self) -> usize {
        self.world.nprocs
    }

    /// The simulated interconnect. Borrowed for the *world's* lifetime,
    /// not this handle's, so callers can hold a clock-category scope
    /// ([`Net::scope`]) across `&mut self` exchange calls.
    pub fn net(&self) -> &'w Net {
        &self.world.net
    }

    pub fn now(&self) -> SimTime {
        self.world.net.clock(self.me)
    }

    /// Charge modeled compute time.
    #[inline]
    pub fn compute(&self, dt: SimTime) {
        self.world.net.advance(self.me, dt);
    }

    /// Bulk point-to-point exchange (BSP superstep): send `outgoing`
    /// byte payloads, receive everything addressed to this processor.
    /// Returns messages sorted by sender for determinism.
    ///
    /// Senders are charged injection + per-byte costs; receivers wait for
    /// the latest arrival among their incoming messages. This is CHAOS's
    /// one-message-per-pair "push" pattern — no request leg, which the
    /// paper credits for part of CHAOS's edge on nbf (§5.2.1).
    pub fn exchange(
        &mut self,
        kind: MsgKind,
        outgoing: Vec<(ProcId, Vec<u8>)>,
    ) -> Vec<(ProcId, Vec<u8>)> {
        let net = &self.world.net;
        for (to, bytes) in outgoing {
            assert_ne!(to, self.me, "self-sends are local copies, not messages");
            let arrival = net.push(self.me, kind, bytes.len());
            net.trace(
                self.me,
                simnet::TraceEvent::Msg {
                    kind,
                    peer: to as u32,
                    bytes: bytes.len() as u32,
                    out: true,
                },
            );
            self.world.inboxes[to].lock().push(Deposit {
                from: self.me,
                arrival,
                bytes,
            });
        }
        // All deposits in.
        self.world.bar.wait();
        let mut incoming: Vec<Deposit> = std::mem::take(&mut *self.world.inboxes[self.me].lock());
        incoming.sort_by_key(|d| d.from);
        for d in &incoming {
            net.await_until(self.me, d.arrival);
            // Receive-side handler/unpack overhead.
            net.advance(self.me, net.cost().handler());
            net.trace(
                self.me,
                simnet::TraceEvent::Msg {
                    kind,
                    peer: d.from as u32,
                    bytes: d.bytes.len() as u32,
                    out: false,
                },
            );
        }
        // All inboxes drained before anyone deposits for the next round.
        self.world.bar.wait();
        incoming.into_iter().map(|d| (d.from, d.bytes)).collect()
    }

    /// Exchange of `f64` payloads (the executor's currency).
    pub fn exchange_f64(
        &mut self,
        kind: MsgKind,
        outgoing: Vec<(ProcId, Vec<f64>)>,
    ) -> Vec<(ProcId, Vec<f64>)> {
        let out = outgoing
            .into_iter()
            .map(|(to, v)| (to, encode_f64(&v)))
            .collect();
        self.exchange(kind, out)
            .into_iter()
            .map(|(from, b)| (from, decode_f64(&b)))
            .collect()
    }

    /// Exchange of `u32` payloads (index lists during inspection).
    pub fn exchange_u32(
        &mut self,
        kind: MsgKind,
        outgoing: Vec<(ProcId, Vec<u32>)>,
    ) -> Vec<(ProcId, Vec<u32>)> {
        let out = outgoing
            .into_iter()
            .map(|(to, v)| (to, encode_u32(&v)))
            .collect();
        self.exchange(kind, out)
            .into_iter()
            .map(|(from, b)| (from, decode_u32(&b)))
            .collect()
    }

    /// Global synchronization (timestep boundary): rendezvous, align the
    /// simulated clocks, count the 2(n−1) barrier messages.
    pub fn sync(&mut self) {
        let net = &self.world.net;
        let leader = self.world.bar.wait().is_leader();
        if leader && self.world.nprocs > 1 {
            let cost = net.cost();
            for p in 1..self.world.nprocs {
                net.count_only(p, MsgKind::Other, 1, 8);
                net.count_only(0, MsgKind::Other, 1, 8);
            }
            let t = net.clock_max()
                + SimTime::from_us(2.0 * cost.msg_latency_us + cost.barrier_us);
            net.set_all_clocks(t);
        }
        self.world.bar.wait();
    }

    /// Collectively zero clocks and counters (untimed-initialization
    /// boundary, like the DSM side's `start_timed_region`).
    pub fn start_timed_region(&mut self) {
        self.sync();
        if self.me == 0 {
            self.world.net.reset();
        }
        self.sync();
    }
}

fn encode_f64(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn decode_f64(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn encode_u32(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn decode_u32(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_delivers_sorted_by_sender() {
        let w = ChaosWorld::new(3, CostModel::default());
        w.run(|cp| {
            let me = cp.rank();
            // Everyone sends their rank to everyone else.
            let out: Vec<(usize, Vec<u8>)> = (0..3)
                .filter(|&q| q != me)
                .map(|q| (q, vec![me as u8]))
                .collect();
            let incoming = cp.exchange(MsgKind::Gather, out);
            let froms: Vec<usize> = incoming.iter().map(|&(f, _)| f).collect();
            let expect: Vec<usize> = (0..3).filter(|&q| q != me).collect();
            assert_eq!(froms, expect);
            for (f, b) in incoming {
                assert_eq!(b, vec![f as u8]);
            }
        });
        assert_eq!(w.report().messages, 6);
    }

    #[test]
    fn f64_and_u32_roundtrip() {
        let w = ChaosWorld::new(2, CostModel::default());
        w.run(|cp| {
            if cp.rank() == 0 {
                cp.exchange_f64(MsgKind::Gather, vec![(1, vec![1.5, -2.25])]);
                cp.exchange_u32(MsgKind::Schedule, vec![(1, vec![7, 8, 9])]);
            } else {
                let f = cp.exchange_f64(MsgKind::Gather, vec![]);
                assert_eq!(f, vec![(0, vec![1.5, -2.25])]);
                let u = cp.exchange_u32(MsgKind::Schedule, vec![]);
                assert_eq!(u, vec![(0, vec![7, 8, 9])]);
            }
        });
        assert_eq!(w.report().bytes, 16 + 12);
    }

    #[test]
    fn sync_aligns_clocks() {
        let w = ChaosWorld::new(4, CostModel::default());
        w.run(|cp| {
            cp.compute(SimTime::from_us(100.0 * (cp.rank() as f64 + 1.0)));
            cp.sync();
            let t = cp.now();
            assert!(t >= SimTime::from_us(400.0));
        });
        // 2(n-1) barrier messages.
        assert_eq!(w.report().messages, 6);
    }

    #[test]
    fn empty_exchange_costs_nothing() {
        let w = ChaosWorld::new(2, CostModel::default());
        w.run(|cp| {
            let r = cp.exchange(MsgKind::Gather, vec![]);
            assert!(r.is_empty());
        });
        assert_eq!(w.report().messages, 0);
        assert_eq!(w.elapsed(), SimTime::ZERO);
    }
}
