//! Translation tables: the irregular element → (home processor, offset)
//! map (paper §4).
//!
//! "Depending on storage requirements, the translation table can be
//! replicated, distributed regularly, or stored in a paged fashion."
//! The *contents* are identical either way; what differs is the cost of a
//! lookup: replicated tables answer locally, distributed tables answer
//! remote lookups with batched request/reply messages (this is why the
//! paper's moldyn inspector moves 85 MB — they could not afford the
//! replicated table), and paged tables fetch and cache whole table pages.

use std::collections::HashSet;

use rayon::prelude::*;
use simnet::{MsgKind, ProcId};

use crate::partition::Partition;
use crate::world::ChaosProc;

/// Table organization (costs only; semantics identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TTableKind {
    /// Full copy on every processor: local lookups, O(n) memory each.
    Replicated,
    /// Entry `e` stored on processor `e / block`: remote lookups batch
    /// one request/reply per owning processor.
    Distributed,
    /// Like `Distributed`, but lookups fetch and cache whole pages of
    /// `entries_per_page` entries.
    Paged { entries_per_page: usize },
}

/// Per-processor lookup cache (meaningful for `Paged`).
#[derive(Debug, Default)]
pub struct TTableCache {
    pages: HashSet<u32>,
}

impl TTableCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn cached_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Group storer-sorted `(storer, value)` pairs into the per-peer
/// message lists an exchange wants — the flat replacement for the old
/// `Vec<Vec<u32>>` scratch indexed by processor.
fn group_csr(flat: &[(ProcId, u32)]) -> Vec<(ProcId, Vec<u32>)> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < flat.len() {
        let s = flat[k].0;
        let end = k + flat[k..].iter().take_while(|e| e.0 == s).count();
        out.push((s, flat[k..end].iter().map(|e| e.1).collect()));
        k = end;
    }
    out
}

/// The translation table.
#[derive(Debug, Clone)]
pub struct TTable {
    kind: TTableKind,
    /// `(owner, local offset)` per original element id.
    entries: Vec<(u8, u32)>,
    nprocs: usize,
    /// For Distributed/Paged: entries per storing processor.
    block: usize,
}

impl TTable {
    /// Build from a partition (owner + dense local offsets).
    pub fn new(kind: TTableKind, part: &Partition) -> Self {
        let mut next = vec![0u32; part.nprocs()];
        let entries = part
            .owner
            .iter()
            .map(|&o| {
                let off = next[o];
                next[o] += 1;
                (o as u8, off)
            })
            .collect();
        TTable {
            kind,
            entries,
            nprocs: part.nprocs(),
            block: part.len().div_ceil(part.nprocs()),
        }
    }

    pub fn kind(&self) -> TTableKind {
        self.kind
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Memory footprint per processor, in bytes (the reason the paper
    /// could not replicate moldyn's table).
    pub fn bytes_per_proc(&self) -> usize {
        match self.kind {
            TTableKind::Replicated => self.entries.len() * 8,
            _ => self.block * 8,
        }
    }

    /// Which processor stores entry `e` (non-replicated kinds).
    fn storer(&self, e: u32) -> ProcId {
        ((e as usize) / self.block).min(self.nprocs - 1)
    }

    /// The pure local map `id → (owner, offset)` every table kind ends
    /// a lookup batch with. Sharded over scoped workers when the thread
    /// allowance permits; chunks are collected in order, so the output
    /// equals the sequential map exactly. (Simulated lookup costs are
    /// charged by the caller — host-side sharding moves no clock.)
    fn translate_all(&self, ids: &[u32]) -> Vec<(ProcId, u32)> {
        const PAR_MIN: usize = 16 * 1024;
        let one = |&e: &u32| {
            let (o, off) = self.entries[e as usize];
            (o as ProcId, off)
        };
        let threads = rayon::current_num_threads();
        if threads <= 1 || ids.len() < PAR_MIN {
            return ids.iter().map(one).collect();
        }
        let shards: Vec<Vec<(ProcId, u32)>> = ids
            .par_chunks(ids.len().div_ceil(threads))
            .map(|c| c.iter().map(one).collect())
            .collect();
        shards.concat()
    }

    /// Translate a batch of (deduplicated) element ids, charging lookup
    /// costs and — for non-replicated tables — the remote-lookup traffic.
    ///
    /// All processors participating in an inspection must call this
    /// collectively (the underlying exchange is a BSP superstep).
    pub fn lookup_batch(
        &self,
        cp: &mut ChaosProc,
        ids: &[u32],
        cache: &mut TTableCache,
    ) -> Vec<(ProcId, u32)> {
        let me = cp.rank();
        let cost = cp.net().cost().clone();
        match self.kind {
            TTableKind::Replicated => {
                // Purely local: every processor holds the whole table.
                // (Non-replicated kinds are collective: every processor
                // must call lookup_batch in the same superstep.)
                cp.compute(cost.translate(ids.len()));
                self.translate_all(ids)
            }
            TTableKind::Distributed => {
                // Superstep 1 — requests: group remote ids by storing
                // processor, 4 B per id. Flat sort-and-group, not a
                // `Vec<Vec<u32>>` scratch of nprocs allocations: the
                // stable sort keys only on the storer, so each group
                // keeps the caller's id order.
                let mut flat: Vec<(ProcId, u32)> = ids
                    .iter()
                    .map(|&e| (self.storer(e), e))
                    .filter(|&(s, _)| s != me)
                    .collect();
                flat.sort_by_key(|&(s, _)| s);
                let requests = cp.exchange_u32(MsgKind::Translate, group_csr(&flat));
                // Superstep 2 — replies: each storer answers with 8 B per
                // requested entry (owner + offset), charging its own
                // lookup work.
                let served: usize = requests.iter().map(|(_, r)| r.len()).sum();
                cp.compute(cost.translate(served));
                let replies: Vec<(ProcId, Vec<u8>)> = requests
                    .into_iter()
                    .map(|(from, req)| (from, vec![0u8; req.len() * 8]))
                    .collect();
                cp.exchange(MsgKind::Translate, replies);
                cp.compute(cost.translate(ids.len()));
                self.translate_all(ids)
            }
            TTableKind::Paged { entries_per_page } => {
                // Superstep 1 — page requests for uncached table pages,
                // grouped by storer the same flat way as `Distributed`.
                let mut flat: Vec<(ProcId, u32)> = Vec::new();
                for &e in ids {
                    let page = e / entries_per_page as u32;
                    let s = self.storer(e);
                    if s != me && cache.pages.insert(page) {
                        flat.push((s, page));
                    }
                }
                flat.sort_by_key(|&(s, _)| s);
                let requests = cp.exchange_u32(MsgKind::Translate, group_csr(&flat));
                // Superstep 2 — whole table pages come back.
                let replies: Vec<(ProcId, Vec<u8>)> = requests
                    .into_iter()
                    .map(|(from, pages)| (from, vec![0u8; pages.len() * entries_per_page * 8]))
                    .collect();
                cp.exchange(MsgKind::Translate, replies);
                cp.compute(cost.translate(ids.len()));
                self.translate_all(ids)
            }
        }
    }

    /// Direct (uncosted) translation — for verification and test oracles.
    pub fn translate_free(&self, e: u32) -> (ProcId, u32) {
        let (o, off) = self.entries[e as usize];
        (o as ProcId, off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::block_partition;
    use crate::world::ChaosWorld;
    use simnet::CostModel;

    #[test]
    fn table_matches_partition() {
        let part = block_partition(10, 3);
        let t = TTable::new(TTableKind::Replicated, &part);
        assert_eq!(t.translate_free(0), (0, 0));
        assert_eq!(t.translate_free(3), (0, 3));
        assert_eq!(t.translate_free(4), (1, 0));
        assert_eq!(t.translate_free(9), (2, 2));
        assert!(t.bytes_per_proc() > TTable::new(TTableKind::Distributed, &part).bytes_per_proc());
    }

    #[test]
    fn replicated_lookup_no_messages() {
        let part = block_partition(64, 2);
        let t = TTable::new(TTableKind::Replicated, &part);
        let w = ChaosWorld::new(2, CostModel::default());
        w.run(|cp| {
            let mut cache = TTableCache::new();
            let ids: Vec<u32> = (0..64).collect();
            let r = t.lookup_batch(cp, &ids, &mut cache);
            assert_eq!(r[40], (1, 8));
        });
        assert_eq!(w.report().messages_per_kind(MsgKind::Translate), 0);
    }

    #[test]
    fn distributed_lookup_batches_messages() {
        let part = block_partition(64, 2);
        let t = TTable::new(TTableKind::Distributed, &part);
        let w = ChaosWorld::new(2, CostModel::default());
        w.run(|cp| {
            let mut cache = TTableCache::new();
            // Each proc asks about 8 entries stored on the other side.
            let ids: Vec<u32> = if cp.rank() == 0 {
                (32..40).collect()
            } else {
                (0..8).collect()
            };
            let r = t.lookup_batch(cp, &ids, &mut cache);
            assert_eq!(r.len(), 8);
        });
        let rep = w.report();
        // One request + one reply per direction.
        assert_eq!(rep.messages_per_kind(MsgKind::Translate), 4);
    }

    #[test]
    fn paged_lookup_caches() {
        let part = block_partition(64, 2);
        let t = TTable::new(
            TTableKind::Paged {
                entries_per_page: 16,
            },
            &part,
        );
        let w = ChaosWorld::new(2, CostModel::default());
        w.run(|cp| {
            let mut cache = TTableCache::new();
            let ids: Vec<u32> = if cp.rank() == 0 { vec![40, 41, 42] } else { vec![1] };
            t.lookup_batch(cp, &ids, &mut cache);
            if cp.rank() == 0 {
                assert_eq!(cache.cached_pages(), 1, "one page covers 40-42");
            }
            // Second lookup: everything cached, empty superstep.
            t.lookup_batch(cp, &ids, &mut cache);
        });
        let rep = w.report();
        assert_eq!(rep.messages_per_kind(MsgKind::Translate), 4);
    }
}
