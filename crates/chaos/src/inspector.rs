//! The inspector: turn a processor's access pattern into a communication
//! schedule (paper §4).
//!
//! "Each processor executes the inspector to construct its communication
//! schedule. ... An important optimization in the inspector is to
//! eliminate duplication. ... A hash table whose size is proportional to
//! the size of the data array is employed to eliminate duplicates.
//! Because of the time to hash the indirection array, and the time to
//! look up the translation table, the inspector can be expensive."
//!
//! That expense — charged here per hashed entry and per translation
//! lookup, plus translation-table traffic — is exactly what the paper's
//! comparison hinges on.

use rayon::prelude::*;
use simnet::{MsgKind, ProcId, SpanTag, StallCat, TraceEvent};

use crate::ttable::{TTable, TTableCache};
use crate::world::ChaosProc;

/// Where a referenced element lives locally after a gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Offset into this processor's owned block.
    Own(u32),
    /// Offset into this processor's ghost area.
    Ghost(u32),
}

/// A communication schedule: for each peer, which of *its* elements we
/// receive (gather) and which of *ours* we send (the mirror lists), plus
/// the ghost-slot directory.
///
/// Both per-peer list families are flat CSR (one offsets array + one
/// backing array), not `Vec<Vec<u32>>`: a 256-processor schedule with a
/// handful of actual neighbors used to carry 256 heap allocations per
/// direction; now it carries two.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommSchedule {
    /// Backing array of receive lists: local offsets (at the owner) of
    /// the elements we receive, ascending per owner, concatenated in
    /// owner order. [`CommSchedule::ghost_starts`] is its CSR offsets
    /// array — the ghost area and the receive lists correspond slot for
    /// slot by construction, which also makes `recv_idx` the whole
    /// ghost directory: a remote element's ghost slot is its position
    /// here, recovered by binary search within its owner's segment
    /// (each segment is sorted). The former `ghost_of: HashMap` stored
    /// the same mapping a second time — one extra allocation per
    /// inspection and a latent iteration-order hazard.
    recv_idx: Vec<u32>,
    /// CSR offsets into [`CommSchedule::send_idx`]: peer `q`'s segment
    /// is `send_idx[send_starts[q]..send_starts[q+1]]`.
    send_starts: Vec<u32>,
    /// Backing array of send lists: local offsets (ours) of the
    /// elements we send to each peer in a gather (and
    /// receive-and-accumulate in a scatter).
    send_idx: Vec<u32>,
    /// Start of each peer's segment in the ghost area — also the CSR
    /// offsets of [`CommSchedule::recv_idx`].
    pub ghost_starts: Vec<u32>,
}

impl CommSchedule {
    pub fn ghost_count(&self) -> usize {
        self.recv_idx.len()
    }

    /// Local offsets (at `q`) of the elements we receive from `q`,
    /// ascending. Empty for unknown peers (e.g. a default schedule).
    #[inline]
    pub fn recv(&self, q: ProcId) -> &[u32] {
        match self.ghost_starts.get(q..=q + 1) {
            Some(&[a, b]) => &self.recv_idx[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Local offsets (ours) of the elements we send to `q`.
    #[inline]
    pub fn send(&self, q: ProcId) -> &[u32] {
        match self.send_starts.get(q..=q + 1) {
            Some(&[a, b]) => &self.send_idx[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Resolve a `(owner, offset)` pair to a local location: binary
    /// search within the owner's (sorted) receive segment; the ghost
    /// slot is the hit's global position in [`CommSchedule::recv_idx`].
    #[inline]
    pub fn locate(&self, me: ProcId, owner: ProcId, off: u32) -> Loc {
        if owner == me {
            return Loc::Own(off);
        }
        let (a, b) = match self.ghost_starts.get(owner..=owner + 1) {
            Some(&[a, b]) => (a as usize, b as usize),
            _ => panic!("locate: peer {owner} not in schedule"),
        };
        match self.recv_idx[a..b].binary_search(&off) {
            Ok(pos) => Loc::Ghost((a + pos) as u32),
            Err(_) => panic!("locate: ({owner}, {off}) not in schedule"),
        }
    }

    /// Total elements moved per gather/scatter.
    pub fn traffic_elems(&self) -> usize {
        self.send_idx.len()
    }
}

/// Below this many accesses a sharded dedup cannot recoup its scoped
/// worker spawns; the streaming single-pass loop runs instead (the two
/// are bitwise-identical — see [`dedup_first_seen`]).
const PAR_DEDUP_MIN: usize = 16 * 1024;

/// The streaming single-pass dedup: one bitmap test-and-set per
/// access. Also the allowance-1 code path of [`dedup_first_seen`] —
/// it consumes the iterator directly, so the sequential case never
/// materializes the access stream.
fn dedup_streaming(accesses: impl Iterator<Item = u32>, words: usize) -> (usize, Vec<u32>) {
    let mut seen = vec![0u64; words];
    let mut distinct = Vec::new();
    let mut total = 0usize;
    for e in accesses {
        total += 1;
        let (word, bit) = ((e / 64) as usize, e % 64);
        if seen[word] & (1 << bit) == 0 {
            seen[word] |= 1 << bit;
            distinct.push(e);
        }
    }
    (total, distinct)
}

/// Duplicate elimination with deterministic first-seen order — the
/// paper's "hash table whose size is proportional to the size of the
/// data array", realized as a dense bitmap over element ids. Returns
/// `(total accesses, first-seen distinct list)`.
///
/// With a thread allowance above 1 and enough accesses, the stream is
/// cut into chunks, each chunk deduplicates into its own disjoint
/// `seen` shard (bitmap + first-seen list) on a scoped worker, and the
/// shards are merged through the global bitmap **in fixed chunk
/// order** — a chunk's survivor enters `distinct` iff no earlier chunk
/// saw it, which reproduces the sequential first-seen order exactly,
/// bit for bit, at any thread count.
fn dedup_first_seen(accesses: impl Iterator<Item = u32>, words: usize) -> (usize, Vec<u32>) {
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        return dedup_streaming(accesses, words);
    }
    let accesses: Vec<u32> = accesses.collect();
    if accesses.len() < PAR_DEDUP_MIN {
        return dedup_streaming(accesses.into_iter(), words);
    }
    let total = accesses.len();
    let chunk = total.div_ceil(threads);
    let shards: Vec<(Vec<u64>, Vec<u32>)> = accesses
        .par_chunks(chunk)
        .map(|c| {
            let mut local = vec![0u64; words];
            let mut firsts = Vec::new();
            for &e in c {
                let (word, bit) = ((e / 64) as usize, e % 64);
                if local[word] & (1 << bit) == 0 {
                    local[word] |= 1 << bit;
                    firsts.push(e);
                }
            }
            (local, firsts)
        })
        .collect();
    let mut seen = vec![0u64; words];
    let mut distinct = Vec::new();
    for (_, firsts) in &shards {
        for &e in firsts {
            let (word, bit) = ((e / 64) as usize, e % 64);
            if seen[word] & (1 << bit) == 0 {
                seen[word] |= 1 << bit;
                distinct.push(e);
            }
        }
    }
    (total, distinct)
}

/// Fold the schedule-exchange replies into the send-list CSR.
///
/// Accumulates with `+=`, not assignment: the exchange contract sorts
/// `incoming` by sender but does **not** promise each sender appears
/// once — a peer that deposited two messages in the superstep yields
/// two adjacent entries, and the former `send_starts[from + 1] =
/// wants.len()` silently dropped all but the last one.
fn build_send_csr(nprocs: usize, incoming: &[(ProcId, Vec<u32>)]) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(incoming.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by sender");
    let mut send_starts = vec![0u32; nprocs + 1];
    let mut send_idx = Vec::with_capacity(incoming.iter().map(|(_, w)| w.len()).sum());
    for (from, wants) in incoming {
        send_starts[from + 1] += wants.len() as u32;
        send_idx.extend_from_slice(wants);
    }
    for q in 0..nprocs {
        send_starts[q + 1] += send_starts[q];
    }
    (send_starts, send_idx)
}

/// Run the inspector (collective): bitmap-dedup `accesses` (original
/// element ids), translate them, and build the communication schedule.
///
/// Charges: one hash per access (including duplicates — that is the
/// point of the hash table), translation lookups/traffic per the table
/// kind, and one schedule-exchange message per communicating pair.
pub fn inspector(
    cp: &mut ChaosProc,
    ttable: &TTable,
    cache: &mut TTableCache,
    accesses: impl Iterator<Item = u32>,
) -> CommSchedule {
    let me = cp.rank();
    let nprocs = cp.nprocs();
    let cost = cp.net().cost().clone();
    let _ins = cp.net().scope(me, StallCat::Inspector);
    cp.net().trace(me, TraceEvent::SpanBegin { tag: SpanTag::Inspect });

    // Duplicate elimination (see `dedup_first_seen`): one O(1) bitmap
    // test-and-set per access, sharded over scoped workers when the
    // thread allowance permits. The simulated cost is a function of the
    // access count alone, so host-side sharding cannot move a clock.
    cp.net().trace(me, TraceEvent::SpanBegin { tag: SpanTag::Dedup });
    let (total, distinct) = dedup_first_seen(accesses, ttable.len().div_ceil(64));
    cp.net().trace(me, TraceEvent::SpanEnd { tag: SpanTag::Dedup });
    cp.compute(cost.inspector_hash(total));

    // Translate (collective for non-replicated tables).
    cp.net()
        .trace(me, TraceEvent::SpanBegin { tag: SpanTag::Translate });
    let translated = ttable.lookup_batch(cp, &distinct, cache);
    cp.net()
        .trace(me, TraceEvent::SpanEnd { tag: SpanTag::Translate });

    // Receive lists in CSR form: the remote (owner, offset) pairs,
    // sorted, are already the per-owner segments (ascending offsets
    // within each owner) laid out back to back. The sorted vector is
    // also the ghost directory (slot = position), so nothing else is
    // built. Values in a sorted `Copy` sequence have one possible
    // layout, so the parallel sort is bitwise-deterministic too.
    let mut remote: Vec<(ProcId, u32)> = translated
        .into_iter()
        .filter(|&(owner, _)| owner != me)
        .collect();
    remote.par_sort_unstable();
    remote.dedup();
    let recv_idx: Vec<u32> = remote.iter().map(|&(_, off)| off).collect();
    let mut ghost_starts = vec![0u32; nprocs + 1];
    for &(owner, _) in &remote {
        ghost_starts[owner + 1] += 1;
    }
    for q in 0..nprocs {
        ghost_starts[q + 1] += ghost_starts[q];
    }

    // Schedule exchange: tell each owner what we need; what we receive
    // back (as requests from others) becomes our send lists.
    let out: Vec<(ProcId, Vec<u32>)> = (0..nprocs)
        .filter(|&q| q != me && ghost_starts[q] != ghost_starts[q + 1])
        .map(|q| {
            let seg = ghost_starts[q] as usize..ghost_starts[q + 1] as usize;
            (q, recv_idx[seg].to_vec())
        })
        .collect();
    let mut incoming = cp.exchange_u32(MsgKind::Schedule, out);
    // Stable: a duplicated sender's messages must keep arrival order so
    // `build_send_csr` concatenates its segment deterministically.
    incoming.sort_by_key(|&(from, _)| from);
    let (send_starts, send_idx) = build_send_csr(nprocs, &incoming);

    cp.net().trace(me, TraceEvent::SpanEnd { tag: SpanTag::Inspect });
    CommSchedule {
        recv_idx,
        send_starts,
        send_idx,
        ghost_starts,
    }
}

/// Re-run the inspector because the *partition* moved under the
/// schedule — a mid-run rebalance re-cut data ownership, so the old
/// [`CommSchedule`] (and every cached translation) went stale with no
/// list change of its own. CHAOS must detect this and pay inspection
/// again; this wrapper makes that payment auditable: the whole
/// collective sits inside a `Reinspect` trace span on every lane, and
/// rank 0 bills it once on the shared re-inspection counter
/// ([`simnet::Net::reinspections`]) so tests can assert "billed exactly
/// once" against the span count.
pub fn reinspect(
    cp: &mut ChaosProc,
    ttable: &TTable,
    cache: &mut TTableCache,
    accesses: impl Iterator<Item = u32>,
) -> CommSchedule {
    let me = cp.rank();
    cp.net()
        .trace(me, TraceEvent::SpanBegin { tag: SpanTag::Reinspect });
    if me == 0 {
        cp.net().add_reinspection();
    }
    // Translations cached against the old partition are wrong now.
    *cache = TTableCache::new();
    let sched = inspector(cp, ttable, cache, accesses);
    cp.net()
        .trace(me, TraceEvent::SpanEnd { tag: SpanTag::Reinspect });
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::block_partition;
    use crate::ttable::TTableKind;
    use crate::world::ChaosWorld;
    use simnet::CostModel;

    /// 2 procs, 8 elements block-partitioned; each proc references its
    /// own 4 plus two of the other's (with duplicates).
    fn run_inspector() -> (u64, u64) {
        let w = ChaosWorld::new(2, CostModel::default());
        let part = block_partition(8, 2);
        let tt = TTable::new(TTableKind::Replicated, &part);
        w.run(|cp| {
            let me = cp.rank();
            let mut cache = TTableCache::new();
            let refs: Vec<u32> = if me == 0 {
                vec![0, 1, 2, 3, 4, 5, 4, 5, 4] // dups on 4, 5
            } else {
                vec![4, 5, 6, 7, 0, 1, 0]
            };
            let sched = inspector(cp, &tt, &mut cache, refs.iter().copied());
            assert_eq!(sched.ghost_count(), 2);
            if me == 0 {
                assert_eq!(sched.recv(1), [0, 1]); // q1-local offsets of 4,5
                assert_eq!(sched.send(1), [0, 1]); // my 0,1 (q1 wants)
                assert_eq!(sched.locate(0, 0, 2), Loc::Own(2));
                assert_eq!(sched.locate(0, 1, 0), Loc::Ghost(0));
                assert_eq!(sched.locate(0, 1, 1), Loc::Ghost(1));
            } else {
                assert_eq!(sched.recv(0), [0, 1]);
                assert_eq!(sched.traffic_elems(), 2);
                assert!(sched.recv(7).is_empty(), "out-of-range peer is empty");
            }
        });
        let r = w.report();
        (r.messages, r.bytes)
    }

    #[test]
    fn inspector_builds_symmetric_schedule() {
        let (msgs, _) = run_inspector();
        // One schedule message each way.
        assert_eq!(msgs, 2);
    }

    #[test]
    fn inspector_deterministic() {
        assert_eq!(run_inspector(), run_inspector());
    }

    #[test]
    fn send_csr_accumulates_duplicate_senders() {
        // Regression: the exchange sorts by sender but a sender may
        // appear twice; the old `send_starts[from + 1] = wants.len()`
        // assignment kept only the last message (starts [0,1,1,2],
        // idx [1,2,3,7] — a corrupt CSR).
        let incoming: Vec<(ProcId, Vec<u32>)> =
            vec![(0, vec![1, 2]), (0, vec![3]), (2, vec![7])];
        let (starts, idx) = build_send_csr(3, &incoming);
        assert_eq!(starts, [0, 3, 3, 4]);
        assert_eq!(idx, [1, 2, 3, 7]);
    }

    #[test]
    fn dedup_sharded_matches_streaming() {
        // A stream long enough to trip PAR_DEDUP_MIN, dense in dups and
        // adversarial about order (descending tail so chunk-local first
        // positions differ from global ones).
        let n = PAR_DEDUP_MIN + 1000;
        let accesses: Vec<u32> = (0..n)
            .map(|i| ((i * 7919 + i / 3) % 4096) as u32)
            .chain((0..4096).rev())
            .collect();
        let pool1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seq = pool1.install(|| dedup_first_seen(accesses.iter().copied(), 64));
        assert_eq!(seq.0, accesses.len(), "every access counted, dups included");
        for threads in [2, 4, 64] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| dedup_first_seen(accesses.iter().copied(), 64));
            assert_eq!(par, seq, "first-seen order must survive {threads} shards");
        }
    }

    #[test]
    #[should_panic(expected = "not in schedule")]
    fn locate_rejects_unscheduled_element() {
        let w = ChaosWorld::new(2, CostModel::default());
        let part = block_partition(8, 2);
        let tt = TTable::new(TTableKind::Replicated, &part);
        let sched = std::sync::Mutex::new(CommSchedule::default());
        w.run(|cp| {
            let mut cache = TTableCache::new();
            let s = inspector(cp, &tt, &mut cache, [4u32].iter().copied());
            if cp.rank() == 0 {
                *sched.lock().unwrap() = s;
            }
        });
        // Rank 0 scheduled q1's offset 0 (element 4), never offset 3.
        sched.into_inner().unwrap().locate(0, 1, 3);
    }

    #[test]
    fn dedup_reduces_ghosts_not_hash_cost() {
        // Duplicates are hashed (cost) but appear once in the schedule.
        let w = ChaosWorld::new(2, CostModel::default());
        let part = block_partition(4, 2);
        let tt = TTable::new(TTableKind::Replicated, &part);
        w.run(|cp| {
            let mut cache = TTableCache::new();
            let refs = if cp.rank() == 0 {
                vec![2u32; 100] // one distinct remote element, 100 dups
            } else {
                vec![1u32]
            };
            let t0 = cp.now();
            let sched = inspector(cp, &tt, &mut cache, refs.iter().copied());
            if cp.rank() == 0 {
                assert_eq!(sched.ghost_count(), 1);
                let hash_cost = cp.net().cost().inspector_hash(100);
                assert!(cp.now() - t0 >= hash_cost, "all 100 entries hashed");
            }
        });
    }
}
