//! The inspector: turn a processor's access pattern into a communication
//! schedule (paper §4).
//!
//! "Each processor executes the inspector to construct its communication
//! schedule. ... An important optimization in the inspector is to
//! eliminate duplication. ... A hash table whose size is proportional to
//! the size of the data array is employed to eliminate duplicates.
//! Because of the time to hash the indirection array, and the time to
//! look up the translation table, the inspector can be expensive."
//!
//! That expense — charged here per hashed entry and per translation
//! lookup, plus translation-table traffic — is exactly what the paper's
//! comparison hinges on.

use std::collections::HashMap;

use simnet::{MsgKind, ProcId, SpanTag, StallCat, TraceEvent};

use crate::ttable::{TTable, TTableCache};
use crate::world::ChaosProc;

/// Where a referenced element lives locally after a gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Offset into this processor's owned block.
    Own(u32),
    /// Offset into this processor's ghost area.
    Ghost(u32),
}

/// A communication schedule: for each peer, which of *its* elements we
/// receive (gather) and which of *ours* we send (the mirror lists), plus
/// the ghost-slot directory.
///
/// Both per-peer list families are flat CSR (one offsets array + one
/// backing array), not `Vec<Vec<u32>>`: a 256-processor schedule with a
/// handful of actual neighbors used to carry 256 heap allocations per
/// direction; now it carries two.
#[derive(Debug, Clone, Default)]
pub struct CommSchedule {
    /// Backing array of receive lists: local offsets (at the owner) of
    /// the elements we receive, ascending per owner, concatenated in
    /// owner order. [`CommSchedule::ghost_starts`] is its CSR offsets
    /// array — the ghost area and the receive lists correspond slot for
    /// slot by construction.
    recv_idx: Vec<u32>,
    /// CSR offsets into [`CommSchedule::send_idx`]: peer `q`'s segment
    /// is `send_idx[send_starts[q]..send_starts[q+1]]`.
    send_starts: Vec<u32>,
    /// Backing array of send lists: local offsets (ours) of the
    /// elements we send to each peer in a gather (and
    /// receive-and-accumulate in a scatter).
    send_idx: Vec<u32>,
    /// Ghost slot of a remote element, keyed by `(owner << 32) | offset`.
    ghost_of: HashMap<u64, u32>,
    /// Start of each peer's segment in the ghost area — also the CSR
    /// offsets of [`CommSchedule::recv_idx`].
    pub ghost_starts: Vec<u32>,
}

impl CommSchedule {
    pub fn ghost_count(&self) -> usize {
        self.ghost_of.len()
    }

    /// Local offsets (at `q`) of the elements we receive from `q`,
    /// ascending. Empty for unknown peers (e.g. a default schedule).
    #[inline]
    pub fn recv(&self, q: ProcId) -> &[u32] {
        match self.ghost_starts.get(q..=q + 1) {
            Some(&[a, b]) => &self.recv_idx[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Local offsets (ours) of the elements we send to `q`.
    #[inline]
    pub fn send(&self, q: ProcId) -> &[u32] {
        match self.send_starts.get(q..=q + 1) {
            Some(&[a, b]) => &self.send_idx[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Resolve a `(owner, offset)` pair to a local location.
    #[inline]
    pub fn locate(&self, me: ProcId, owner: ProcId, off: u32) -> Loc {
        if owner == me {
            Loc::Own(off)
        } else {
            Loc::Ghost(self.ghost_of[&key(owner, off)])
        }
    }

    /// Total elements moved per gather/scatter.
    pub fn traffic_elems(&self) -> usize {
        self.send_idx.len()
    }
}

#[inline]
fn key(owner: ProcId, off: u32) -> u64 {
    ((owner as u64) << 32) | off as u64
}

/// Run the inspector (collective): bitmap-dedup `accesses` (original
/// element ids), translate them, and build the communication schedule.
///
/// Charges: one hash per access (including duplicates — that is the
/// point of the hash table), translation lookups/traffic per the table
/// kind, and one schedule-exchange message per communicating pair.
pub fn inspector(
    cp: &mut ChaosProc,
    ttable: &TTable,
    cache: &mut TTableCache,
    accesses: impl Iterator<Item = u32>,
) -> CommSchedule {
    let me = cp.rank();
    let nprocs = cp.nprocs();
    let cost = cp.net().cost().clone();
    let _ins = cp.net().scope(me, StallCat::Inspector);
    cp.net().trace(me, TraceEvent::SpanBegin { tag: SpanTag::Inspect });

    // Duplicate elimination — the paper's "hash table whose size is
    // proportional to the size of the data array", realized as a dense
    // bitmap over element ids. One O(1) test-and-set per access replaces
    // the former hash-map insert plus O(d log d) sort of the distinct
    // set (the known-slow path: ~8.8 ms per 64k refs). First-seen order
    // is deterministic, and every downstream consumer (the per-owner
    // receive lists) re-sorts anyway.
    let mut seen = vec![0u64; ttable.len().div_ceil(64)];
    let mut distinct: Vec<u32> = Vec::new();
    let mut total = 0usize;
    for e in accesses {
        total += 1;
        let (word, bit) = ((e / 64) as usize, e % 64);
        if seen[word] & (1 << bit) == 0 {
            seen[word] |= 1 << bit;
            distinct.push(e);
        }
    }
    cp.compute(cost.inspector_hash(total));

    // Translate (collective for non-replicated tables).
    cp.net()
        .trace(me, TraceEvent::SpanBegin { tag: SpanTag::Translate });
    let translated = ttable.lookup_batch(cp, &distinct, cache);
    cp.net()
        .trace(me, TraceEvent::SpanEnd { tag: SpanTag::Translate });

    // Receive lists in CSR form: the remote (owner, offset) pairs,
    // sorted, are already the per-owner segments (ascending offsets
    // within each owner) laid out back to back.
    let mut remote: Vec<(ProcId, u32)> = translated
        .into_iter()
        .filter(|&(owner, _)| owner != me)
        .collect();
    remote.sort_unstable();
    remote.dedup();
    let recv_idx: Vec<u32> = remote.iter().map(|&(_, off)| off).collect();

    // Ghost directory: a remote element's ghost slot is its rank in the
    // sorted receive order.
    let mut ghost_of = HashMap::new();
    let mut ghost_starts = vec![0u32; nprocs + 1];
    for (slot, &(owner, off)) in remote.iter().enumerate() {
        ghost_of.insert(key(owner, off), slot as u32);
        ghost_starts[owner + 1] += 1;
    }
    for q in 0..nprocs {
        ghost_starts[q + 1] += ghost_starts[q];
    }

    // Schedule exchange: tell each owner what we need; what we receive
    // back (as requests from others) becomes our send lists.
    let out: Vec<(ProcId, Vec<u32>)> = (0..nprocs)
        .filter(|&q| q != me && ghost_starts[q] != ghost_starts[q + 1])
        .map(|q| {
            let seg = ghost_starts[q] as usize..ghost_starts[q + 1] as usize;
            (q, recv_idx[seg].to_vec())
        })
        .collect();
    let mut incoming = cp.exchange_u32(MsgKind::Schedule, out);
    incoming.sort_unstable_by_key(|&(from, _)| from);
    let mut send_starts = vec![0u32; nprocs + 1];
    let mut send_idx = Vec::new();
    for (from, wants) in incoming {
        send_starts[from + 1] = wants.len() as u32;
        send_idx.extend_from_slice(&wants);
    }
    for q in 0..nprocs {
        send_starts[q + 1] += send_starts[q];
    }

    cp.net().trace(me, TraceEvent::SpanEnd { tag: SpanTag::Inspect });
    CommSchedule {
        recv_idx,
        send_starts,
        send_idx,
        ghost_of,
        ghost_starts,
    }
}

/// Re-run the inspector because the *partition* moved under the
/// schedule — a mid-run rebalance re-cut data ownership, so the old
/// [`CommSchedule`] (and every cached translation) went stale with no
/// list change of its own. CHAOS must detect this and pay inspection
/// again; this wrapper makes that payment auditable: the whole
/// collective sits inside a `Reinspect` trace span on every lane, and
/// rank 0 bills it once on the shared re-inspection counter
/// ([`simnet::Net::reinspections`]) so tests can assert "billed exactly
/// once" against the span count.
pub fn reinspect(
    cp: &mut ChaosProc,
    ttable: &TTable,
    cache: &mut TTableCache,
    accesses: impl Iterator<Item = u32>,
) -> CommSchedule {
    let me = cp.rank();
    cp.net()
        .trace(me, TraceEvent::SpanBegin { tag: SpanTag::Reinspect });
    if me == 0 {
        cp.net().add_reinspection();
    }
    // Translations cached against the old partition are wrong now.
    *cache = TTableCache::new();
    let sched = inspector(cp, ttable, cache, accesses);
    cp.net()
        .trace(me, TraceEvent::SpanEnd { tag: SpanTag::Reinspect });
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::block_partition;
    use crate::ttable::TTableKind;
    use crate::world::ChaosWorld;
    use simnet::CostModel;

    /// 2 procs, 8 elements block-partitioned; each proc references its
    /// own 4 plus two of the other's (with duplicates).
    fn run_inspector() -> (u64, u64) {
        let w = ChaosWorld::new(2, CostModel::default());
        let part = block_partition(8, 2);
        let tt = TTable::new(TTableKind::Replicated, &part);
        w.run(|cp| {
            let me = cp.rank();
            let mut cache = TTableCache::new();
            let refs: Vec<u32> = if me == 0 {
                vec![0, 1, 2, 3, 4, 5, 4, 5, 4] // dups on 4, 5
            } else {
                vec![4, 5, 6, 7, 0, 1, 0]
            };
            let sched = inspector(cp, &tt, &mut cache, refs.iter().copied());
            assert_eq!(sched.ghost_count(), 2);
            if me == 0 {
                assert_eq!(sched.recv(1), [0, 1]); // q1-local offsets of 4,5
                assert_eq!(sched.send(1), [0, 1]); // my 0,1 (q1 wants)
                assert_eq!(sched.locate(0, 0, 2), Loc::Own(2));
                assert_eq!(sched.locate(0, 1, 0), Loc::Ghost(0));
                assert_eq!(sched.locate(0, 1, 1), Loc::Ghost(1));
            } else {
                assert_eq!(sched.recv(0), [0, 1]);
                assert_eq!(sched.traffic_elems(), 2);
                assert!(sched.recv(7).is_empty(), "out-of-range peer is empty");
            }
        });
        let r = w.report();
        (r.messages, r.bytes)
    }

    #[test]
    fn inspector_builds_symmetric_schedule() {
        let (msgs, _) = run_inspector();
        // One schedule message each way.
        assert_eq!(msgs, 2);
    }

    #[test]
    fn inspector_deterministic() {
        assert_eq!(run_inspector(), run_inspector());
    }

    #[test]
    fn dedup_reduces_ghosts_not_hash_cost() {
        // Duplicates are hashed (cost) but appear once in the schedule.
        let w = ChaosWorld::new(2, CostModel::default());
        let part = block_partition(4, 2);
        let tt = TTable::new(TTableKind::Replicated, &part);
        w.run(|cp| {
            let mut cache = TTableCache::new();
            let refs = if cp.rank() == 0 {
                vec![2u32; 100] // one distinct remote element, 100 dups
            } else {
                vec![1u32]
            };
            let t0 = cp.now();
            let sched = inspector(cp, &tt, &mut cache, refs.iter().copied());
            if cp.rank() == 0 {
                assert_eq!(sched.ghost_count(), 1);
                let hash_cost = cp.net().cost().inspector_hash(100);
                assert!(cp.now() - t0 >= hash_cost, "all 100 entries hashed");
            }
        });
    }
}
