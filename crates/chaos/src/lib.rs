//! # chaos — an inspector/executor run-time library (the paper's baseline)
//!
//! A reimplementation of the CHAOS run-time system as the paper describes
//! it (§4), on the same simulated cluster (`simnet`) as the DSM, so the
//! two approaches are compared under one cost model. The three steps of
//! solving an irregular problem in CHAOS:
//!
//! 1. **Data and iteration partitioning** ([`Partition`]): BLOCK, CYCLIC,
//!    and Recursive Coordinate Bisection partitioners; iterations are
//!    assigned by the *almost-owner-computes* rule. Data is
//!    **remapped** so each processor's elements are contiguous, and a
//!    **translation table** (replicated, block-distributed, or paged)
//!    records every element's home processor and offset.
//! 2. **The inspector** ([`inspector`]): executed per processor, it hashes
//!    the indirection array to eliminate duplicates, consults the
//!    translation table (communicating if the table is not replicated),
//!    and builds a [`CommSchedule`] — who sends which elements to whom.
//! 3. **The executor** ([`gather`]/[`scatter_add`]): schedule-driven bulk
//!    transfers. `gather` fetches off-processor data into ghost slots
//!    before the loop; `scatter_add` pushes accumulated contributions
//!    back to the owners after it. Each communicating pair exchanges
//!    *one* message per operation — CHAOS's advantage over demand paging.
//!
//! The expensive part is step 2: the paper measures 4.6–9.2 s per
//! processor per inspector call on moldyn, which is why the DSM approach
//! (whose `Validate` merely rescans the indirection array) wins whenever
//! the interaction list changes often.

mod executor;
mod inspector;
mod partition;
mod ttable;
mod world;

pub use executor::{gather, scatter_add, Ghosted};
pub use inspector::{inspector, reinspect, CommSchedule, Loc};
pub use partition::{
    assign_iterations_almost_owner, block_partition, cyclic_partition, rcb_partition, Partition,
};
pub use ttable::{TTable, TTableCache, TTableKind};
pub use world::{ChaosProc, ChaosWorld};

pub use simnet::{CostModel, MsgKind, Net, NetReport, ProcId, SimTime};
