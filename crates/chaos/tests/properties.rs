//! Property-based tests for partitioners, translation tables, and the
//! inspector/executor pair.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use chaos::{
    assign_iterations_almost_owner, block_partition, cyclic_partition, gather, inspector,
    rcb_partition, reinspect, scatter_add, ChaosWorld, Ghosted, Partition, TTable, TTableCache,
    TTableKind,
};
use simnet::{
    with_trace_sink, CostModel, MsgKind, ProcId, SimTime, SpanTag, TraceEvent, TraceSink,
};

fn owners(n: usize, nprocs: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..nprocs, n)
}

proptest! {
    #[test]
    fn partition_remap_is_bijective(o in owners(64, 4)) {
        let p = Partition::from_owners(o, 4);
        let mut seen = [false; 64];
        for e in 0..64 {
            let k = p.new_of[e] as usize;
            prop_assert!(!seen[k]);
            seen[k] = true;
            prop_assert_eq!(p.old_of[k] as usize, e);
            prop_assert_eq!(p.owner_of_new(k), p.owner[e]);
        }
        prop_assert_eq!(p.counts.iter().sum::<usize>(), 64);
        // Remapped blocks are owner-contiguous and ascending.
        for proc in 0..4 {
            for k in p.range_of(proc) {
                prop_assert_eq!(p.owner_of_new(k), proc);
            }
        }
    }

    #[test]
    fn block_and_cyclic_are_balanced(n in 1usize..200, nprocs in 1usize..9) {
        for part in [block_partition(n, nprocs), cyclic_partition(n, nprocs)] {
            let max = part.counts.iter().max().unwrap();
            let min = part.counts.iter().min().unwrap();
            prop_assert!(max - min <= 1, "{:?}", part.counts);
        }
    }

    #[test]
    fn rcb_is_balanced_and_deterministic(
        seeds in proptest::collection::vec(0u64..1000, 32..128),
        nprocs in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let pos: Vec<[f64; 3]> = seeds
            .iter()
            .map(|&s| {
                let f = s as f64;
                [(f * 0.37).sin() * 50.0, (f * 0.73).cos() * 50.0, (f * 1.3).sin() * 50.0]
            })
            .collect();
        let a = rcb_partition(&pos, nprocs);
        let b = rcb_partition(&pos, nprocs);
        prop_assert_eq!(&a, &b);
        let max = a.counts.iter().max().unwrap();
        let min = a.counts.iter().min().unwrap();
        prop_assert!(max - min <= nprocs, "counts {:?}", a.counts);
    }

    #[test]
    fn translation_table_agrees_with_partition(o in owners(48, 3)) {
        let part = Partition::from_owners(o, 3);
        let tt = TTable::new(TTableKind::Replicated, &part);
        let mut next = [0u32; 3];
        for e in 0..48u32 {
            let (owner, off) = tt.translate_free(e);
            prop_assert_eq!(owner, part.owner[e as usize]);
            prop_assert_eq!(off, next[owner]);
            next[owner] += 1;
        }
    }

    #[test]
    fn almost_owner_computes_majority(o in owners(32, 4), iters in proptest::collection::vec(proptest::collection::vec(0u32..32, 1..5), 1..20)) {
        let part = Partition::from_owners(o, 4);
        let assign = assign_iterations_almost_owner(&part, iters.clone().into_iter());
        for (it, a) in iters.iter().zip(&assign) {
            // The chosen processor owns at least as many accessed
            // elements as any other processor.
            let count = |p: usize| it.iter().filter(|&&e| part.owner[e as usize] == p).count();
            let chosen = count(*a);
            for p in 0..4 {
                prop_assert!(chosen >= count(p));
            }
        }
    }
}

/// Counts `Reinspect` span events across all lanes (installed as the
/// simulated network's trace sink).
#[derive(Debug, Default)]
struct ReinspectSpans {
    begins: AtomicU64,
    ends: AtomicU64,
}

impl TraceSink for ReinspectSpans {
    fn record(&self, _p: ProcId, _t: SimTime, ev: TraceEvent) {
        match ev {
            TraceEvent::SpanBegin {
                tag: SpanTag::Reinspect,
            } => {
                self.begins.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::SpanEnd {
                tag: SpanTag::Reinspect,
            } => {
                self.ends.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Gather every processor's refs against `part` on a fresh world and
/// return the values read, in ref order per processor.
fn fresh_gather(refs: &[Vec<u32>], part: &Partition, value: impl Fn(usize) -> f64 + Sync) -> Vec<Vec<f64>> {
    let nprocs = part.counts.len();
    let tt = TTable::new(TTableKind::Replicated, part);
    let w = ChaosWorld::new(nprocs, CostModel::default());
    let reads = parking_lot::Mutex::new(vec![Vec::new(); nprocs]);
    w.run(|cp| {
        let me = cp.rank();
        let my = part.range_of(me);
        let mut cache = TTableCache::new();
        let sched = inspector(cp, &tt, &mut cache, refs[me].iter().copied());
        let owned: Vec<f64> = my.map(&value).collect();
        let mut x = Ghosted::new(owned, &sched);
        gather(cp, &sched, &mut x);
        let got: Vec<f64> = refs[me]
            .iter()
            .map(|&r| {
                let (o, off) = tt.translate_free(r);
                x.get(sched.locate(me, o, off))
            })
            .collect();
        reads.lock()[me] = got;
    });
    reads.into_inner()
}

/// The mid-run rebalance contract, end to end at the chaos layer:
/// inspect on partition A, gather, then re-cut to partition B — every
/// processor migrates the owned values it loses, `chaos::reinspect`
/// rebuilds the communication schedule against B — and gather again.
///
/// Claims: (1) post-rebalance reads are **bitwise** equal to a run
/// fresh-inspected on B from the start (migration moves the f64 bits
/// verbatim; re-inspection rebuilds routing, never data); (2) the
/// re-inspection is billed exactly once — the collective counter says
/// one pass, and the trace shows exactly one `Reinspect` span per lane,
/// so the span accounting and the counter agree.
#[test]
fn rebalance_matches_fresh_inspection_and_bills_reinspect_once() {
    let n = 64usize;
    let nprocs = 4usize;
    // Deterministic but irregular per-proc ref streams, with overlap
    // and duplicates (the inspector dedups them into the schedule).
    let refs: Vec<Vec<u32>> = (0..nprocs)
        .map(|me| {
            (0..20)
                .map(|k| ((me * 13 + 7 * k + k * k) % n) as u32)
                .collect()
        })
        .collect();
    let value = |e: usize| (e as f64) * 1.5 + 0.25;

    let part_a = block_partition(n, nprocs);
    // The re-cut: every interior boundary shifted forward half a block.
    let shift = n / nprocs / 2;
    let part_b = Partition::from_owners(
        (0..n).map(|e| (e.saturating_sub(shift) * nprocs / n).min(nprocs - 1)).collect(),
        nprocs,
    );
    assert_ne!(part_a.owner, part_b.owner, "the re-cut must move elements");

    let tt_a = TTable::new(TTableKind::Replicated, &part_a);
    let tt_b = TTable::new(TTableKind::Replicated, &part_b);
    let spans = Arc::new(ReinspectSpans::default());
    let reads = parking_lot::Mutex::new(vec![Vec::new(); nprocs]);

    let reinspections = with_trace_sink(spans.clone(), || {
        let w = ChaosWorld::new(nprocs, CostModel::default());
        w.run(|cp| {
            let me = cp.rank();
            let my = part_a.range_of(me);
            let mut cache = TTableCache::new();
            let sched = inspector(cp, &tt_a, &mut cache, refs[me].iter().copied());
            let mut x_own: Vec<f64> = my.clone().map(value).collect();
            let mut x = Ghosted::new(x_own.clone(), &sched);
            gather(cp, &sched, &mut x);
            for &r in &refs[me] {
                let (o, off) = tt_a.translate_free(r);
                assert_eq!(x.get(sched.locate(me, o, off)), value(r as usize));
            }

            // Rebalance: ship each owned value to its new owner …
            let new_my = part_b.range_of(me);
            let out: Vec<(usize, Vec<f64>)> = (0..nprocs)
                .filter(|&q| q != me)
                .map(|q| {
                    let vals: Vec<f64> = my
                        .clone()
                        .filter(|&e| part_b.owner[e] == q)
                        .map(|e| x_own[e - my.start])
                        .collect();
                    (q, vals)
                })
                .filter(|(_, vals)| !vals.is_empty())
                .collect();
            let incoming = cp.exchange_f64(MsgKind::Scatter, out);
            let mut new_x = vec![0.0f64; new_my.len()];
            for e in new_my.clone() {
                if part_a.owner[e] == me {
                    new_x[e - new_my.start] = x_own[e - my.start];
                }
            }
            for (from, vals) in incoming {
                let mut vi = 0;
                for e in new_my.clone() {
                    if part_a.owner[e] == from {
                        new_x[e - new_my.start] = vals[vi];
                        vi += 1;
                    }
                }
                assert_eq!(vi, vals.len(), "migration payload fully consumed");
            }
            x_own = new_x;

            // … and re-run the inspector against the new partition.
            let sched_b = reinspect(cp, &tt_b, &mut cache, refs[me].iter().copied());
            let mut x = Ghosted::new(x_own, &sched_b);
            gather(cp, &sched_b, &mut x);
            let got: Vec<f64> = refs[me]
                .iter()
                .map(|&r| {
                    let (o, off) = tt_b.translate_free(r);
                    x.get(sched_b.locate(me, o, off))
                })
                .collect();
            reads.lock()[me] = got;
        });
        w.net().reinspections()
    });

    // (2) billed exactly once: one collective pass on the counter, one
    // span per lane in the trace — the two accountings agree.
    assert_eq!(reinspections, 1, "one rebalance = one re-inspection pass");
    assert_eq!(spans.begins.load(Ordering::Relaxed), nprocs as u64);
    assert_eq!(spans.ends.load(Ordering::Relaxed), nprocs as u64);

    // (1) bitwise equal to a run fresh-inspected on B from the start.
    let rebalanced = reads.into_inner();
    let fresh = fresh_gather(&refs, &part_b, value);
    assert_eq!(rebalanced, fresh, "rebalanced reads must match fresh-inspected reads bitwise");
}

/// Gather/scatter round-trip under arbitrary cross-references: the sum
/// scattered back to owners equals the per-element reference count.
#[test]
fn executor_roundtrip_counts_references() {
    let n = 64usize;
    let nprocs = 4usize;
    let part = block_partition(n, nprocs);
    let tt = TTable::new(TTableKind::Replicated, &part);
    let w = ChaosWorld::new(nprocs, CostModel::default());
    let results = parking_lot::Mutex::new(vec![0.0f64; n]);
    w.run(|cp| {
        let me = cp.rank();
        let my = part.range_of(me);
        // Every processor references elements me, me+5, me+10, ... (mod n),
        // plus all of its own.
        let mut refs: Vec<u32> = my.clone().map(|e| e as u32).collect();
        refs.extend((0..12).map(|k| ((me + 5 * k) % n) as u32));
        let mut cache = TTableCache::new();
        let sched = inspector(cp, &tt, &mut cache, refs.iter().copied());

        // Gather: values = global id.
        let owned: Vec<f64> = my.clone().map(|e| e as f64).collect();
        let mut x = Ghosted::new(owned, &sched);
        gather(cp, &sched, &mut x);
        for &r in &refs {
            let (o, off) = tt.translate_free(r);
            assert_eq!(x.get(sched.locate(me, o, off)), r as f64);
        }

        // Scatter: +1 per reference.
        let mut f = Ghosted::new(vec![0.0; my.len()], &sched);
        for &r in &refs {
            let (o, off) = tt.translate_free(r);
            f.add(sched.locate(me, o, off), 1.0);
        }
        scatter_add(cp, &sched, &mut f);
        let mut out = results.lock();
        for (l, e) in my.clone().enumerate() {
            out[e] = f.owned[l];
        }
    });
    let got = results.into_inner();
    // Reference counts: 1 (owner) + number of procs referencing each elem.
    for (e, &g) in got.iter().enumerate() {
        let mut want = 1.0; // owner's own reference
        for me in 0..nprocs {
            for k in 0..12 {
                if (me + 5 * k) % n == e && !part.range_of(me).contains(&e) {
                    want += 1.0;
                }
            }
        }
        // own duplicates: (me+5k)%n may also hit own range — those were
        // deduplicated by the schedule but still contributed 1.0 each
        // via `f.add`.
        for me in 0..nprocs {
            if part.range_of(me).contains(&e) {
                for k in 0..12 {
                    if (me + 5 * k) % n == e {
                        want += 1.0;
                    }
                }
            }
        }
        assert_eq!(g, want, "element {e}");
    }
}

/// Deterministic per-(seed, rank, position) reference generator for the
/// thread-invariance property below — proptest picks the seed, the
/// stream itself is reproducible on both sides of the comparison.
fn mixed_ref(seed: u64, me: usize, k: usize, n: usize) -> u32 {
    let mut x = seed
        ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (k as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    (x % n as u64) as u32
}

proptest! {
    /// The inspector's schedule is a pure function of the access
    /// streams — the thread allowance (sharded dedup, parallel
    /// translate map, parallel receive sort) must not show through.
    /// `long` pushes rank 0 past the sharded-dedup threshold so the
    /// parallel path actually runs, not just its sequential fallback.
    #[test]
    fn inspector_schedule_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        nprocs in prop::sample::select(vec![4usize, 4, 8, 8, 64]),
        kind in prop::sample::select(vec![
            TTableKind::Replicated,
            TTableKind::Distributed,
            TTableKind::Paged { entries_per_page: 64 },
        ]),
        long in prop::sample::select(vec![false, true]),
    ) {
        use chaos::CommSchedule;
        let n = 4096usize;
        let part = block_partition(n, nprocs);
        let tt = TTable::new(kind, &part);
        let build = |per_proc_threads: usize| -> (Vec<CommSchedule>, u64) {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(per_proc_threads * nprocs)
                .build()
                .unwrap();
            let w = ChaosWorld::new(nprocs, CostModel::default());
            let out = parking_lot::Mutex::new(vec![CommSchedule::default(); nprocs]);
            pool.install(|| {
                w.run(|cp| {
                    let me = cp.rank();
                    let len = if me == 0 && long { 20_000 } else { 384 };
                    let refs = (0..len).map(|k| mixed_ref(seed, me, k, n));
                    let mut cache = TTableCache::new();
                    let s = inspector(cp, &tt, &mut cache, refs);
                    out.lock()[me] = s;
                });
            });
            (out.into_inner(), w.report().messages)
        };
        let (seq, seq_msgs) = build(1);
        let (par, par_msgs) = build(4);
        prop_assert_eq!(seq, par, "schedules diverged across thread allowances");
        prop_assert_eq!(seq_msgs, par_msgs, "simulated traffic moved with host threads");
    }
}
