//! Golden tests: the compiler pipeline regenerates the paper's figures.
//!
//! Figure 1 (input) → transformation → Figure 2 (output), exactly as the
//! paper shows for moldyn's `ComputeForces`.

use fcc::fixtures::{MOLDYN_SOURCE, MOLDYN_TRANSFORMED_COMPUTEFORCES, NBF_SOURCE};

/// Extract one unit's text from an emitted program (from its header line
/// through its END).
fn unit_text(source: &str, header: &str) -> String {
    let start = source
        .find(header)
        .unwrap_or_else(|| panic!("no '{header}' in:\n{source}"));
    let rest = &source[start..];
    let end = rest.find("      END\n").expect("unit END") + "      END\n".len();
    rest[..end].to_string()
}

#[test]
fn figure2_regenerated_from_figure1() {
    let r = fcc::compile(MOLDYN_SOURCE).expect("compile");
    let got: String = unit_text(&r.source, "      SUBROUTINE ComputeForces()")
        .lines()
        // The paper's figures elide declarations.
        .filter(|l| !l.trim_start().starts_with("DIMENSION"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        got, MOLDYN_TRANSFORMED_COMPUTEFORCES,
        "transformed ComputeForces must match the paper's Figure 2"
    );
}

#[test]
fn figure2_validate_line_verbatim() {
    let r = fcc::compile(MOLDYN_SOURCE).unwrap();
    assert!(r.source.contains(
        "call Validate(1, INDIRECT, x, interaction_list[1:2, 1:num_interactions], READ, 1)"
    ));
}

#[test]
fn main_program_is_untouched_except_shared_reordering() {
    let r = fcc::compile(MOLDYN_SOURCE).unwrap();
    // No Validate in the main program: the irregular loop lives in
    // ComputeForces, and without interprocedural analysis the fetch point
    // is that subroutine's entry (paper §3.3).
    let main = unit_text(&r.source, "PROGRAM MOLDYN");
    assert!(!main.contains("Validate"));
    assert!(main.contains("call build_interaction_list()"));
}

#[test]
fn nbf_transformation_handles_nested_loops() {
    let r = fcc::compile(NBF_SOURCE).unwrap();
    // Multi-level structure: the partner list section carries the
    // array-valued loop bounds as opaque symbols.
    assert!(
        r.source
            .contains("INDIRECT, x, partners[last(0) + 1:last(num_molecules)], READ,"),
        "{}",
        r.source
    );
    assert!(r.source.contains("local_forces(n2) = local_forces(n2) - force"));
    // The site list carries the same information machine-readably.
    let site = r
        .sites
        .iter()
        .find(|s| s.unit == "computenbfforces")
        .unwrap();
    assert_eq!(site.reductions.len(), 1);
    assert!(site
        .descriptors
        .iter()
        .any(|d| d.ind.as_deref() == Some("partners")));
}

#[test]
fn transform_is_stable_modulo_validate_lines() {
    // The inserted `Validate` line uses the paper's section notation,
    // which is not part of the input language; stripping those lines and
    // re-compiling must reproduce the same sites and the same code.
    let r1 = fcc::compile(MOLDYN_SOURCE).unwrap();
    let stripped: String = r1
        .source
        .lines()
        .filter(|l| !l.contains("call Validate("))
        .map(|l| format!("{l}\n"))
        .collect();
    let r2 = fcc::compile(&stripped).unwrap();
    // Same descriptors; but no reductions remain to recognize — they were
    // already rewritten to local_forces (the transform is idempotent).
    assert_eq!(r1.sites[0].descriptors, r2.sites[0].descriptors);
    assert!(r2.sites[0].reductions.is_empty());
    assert_eq!(r1.source, r2.source);
}
