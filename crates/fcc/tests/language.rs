//! Language-coverage tests for the compiler front end: corners of the
//! input subset beyond the two paper fixtures.

use fcc::analysis::{analyze_unit, Acc, AccessKind};
use fcc::{compile, emit_program, parse, Stmt};

fn analyze(src: &str, unit: &str) -> fcc::UnitAnalysis {
    let p = parse(src).unwrap();
    analyze_unit(p.unit(unit).unwrap())
}

#[test]
fn else_branches_analyzed() {
    let src = "PROGRAM t\n!$SHARED a\n  DIMENSION a(n)\n  DO i = 1, n\n    IF (i .gt. 5) THEN\n      a(i) = 1\n    ELSE\n      a(i) = 2\n    ENDIF\n  ENDDO\nEND\n";
    let a = analyze(src, "t");
    assert_eq!(a.accesses.len(), 1);
    assert_eq!(a.accesses[0].acc, Acc::Write);
}

#[test]
fn decreasing_subscript_swaps_bounds() {
    // a(n - i): decreasing in i → bounds swap so lo ≤ hi.
    let src = "PROGRAM t\n!$SHARED a\n  DIMENSION a(n)\n  DO i = 0, n - 1\n    a(n - i) = 0.0\n  ENDDO\nEND\n";
    let a = analyze(src, "t");
    match &a.accesses[0].kind {
        AccessKind::Direct { section } => {
            assert_eq!(section.to_string(), "[1:n]");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn call_clobbers_scalar_copies() {
    // After a CALL, n1 may have changed: the indirection origin is lost
    // and x(n1) must not be misattributed to the stale copy.
    let src = "PROGRAM t\n!$SHARED x, il\n  DIMENSION x(n), il(m)\n  DO i = 1, m\n    n1 = il(i)\n    call clobber()\n    x(n1) = 0.0\n  ENDDO\nEND\n";
    let a = analyze(src, "t");
    let x = a.accesses.iter().find(|s| s.array == "x").unwrap();
    // Conservative: not recognized as indirect through il (whole-array
    // direct summary instead).
    assert!(matches!(x.kind, AccessKind::Direct { .. }));
}

#[test]
fn two_indirections_two_descriptors() {
    let src = "PROGRAM t\n!$SHARED x, y, ia, ib\n  DIMENSION x(n), y(n), ia(m), ib(m)\n  DO i = 1, m\n    p = ia(i)\n    q = ib(i)\n    x(p) = x(p) + 1.0\n    y(q) = y(q) + 2.0\n  ENDDO\nEND\n";
    let r = compile(src).unwrap();
    let site = &r.sites[0];
    // Both reductions recognized; no data descriptors remain for x/y.
    assert_eq!(site.reductions.len(), 2);
    let locals: Vec<&str> = site.reductions.iter().map(|r| r.local.as_str()).collect();
    assert!(locals.contains(&"local_x") && locals.contains(&"local_y"));
}

#[test]
fn non_reduction_indirect_write_gets_descriptor() {
    // x(p) = y(p): an irregular WRITE that is NOT a self-accumulation —
    // must appear as an INDIRECT descriptor, not a reduction.
    let src = "PROGRAM t\n!$SHARED x, y, ia\n  DIMENSION x(n), y(n), ia(m)\n  DO i = 1, m\n    p = ia(i)\n    x(p) = y(p)\n  ENDDO\nEND\n";
    let r = compile(src).unwrap();
    let site = &r.sites[0];
    assert!(site.reductions.is_empty());
    let x = site.descriptors.iter().find(|d| d.data == "x").unwrap();
    assert_eq!(x.access, "WRITE");
    let y = site.descriptors.iter().find(|d| d.data == "y").unwrap();
    assert_eq!(y.access, "READ");
}

#[test]
fn do_with_explicit_step() {
    let src = "PROGRAM t\n!$SHARED a\n  DIMENSION a(n)\n  DO i = 1, n, 2\n    a(i) = 0.0\n  ENDDO\nEND\n";
    let p = parse(src).unwrap();
    match &p.units[0].body[0] {
        Stmt::Do { step, .. } => assert!(step.is_some()),
        other => panic!("{other:?}"),
    }
    // Emission round-trips the step.
    let out = emit_program(&p);
    assert!(out.contains("DO i = 1, n, 2"));
}

#[test]
fn multiple_subroutines_each_get_sites() {
    let src = "\
PROGRAM t
!$SHARED x, ia
      call a()
      call b()
      END

      SUBROUTINE a()
      DIMENSION x(n), ia(m)
      DO i = 1, m
        k = ia(i)
        s = s + x(k)
      ENDDO
      END

      SUBROUTINE b()
      DIMENSION x(n), ia(m)
      DO i = 1, m
        k = ia(i)
        t = t + x(k)
      ENDDO
      END
";
    let r = compile(src).unwrap();
    assert_eq!(r.sites.len(), 2);
    assert!(r.sites.iter().all(|s| s.unit == "a" || s.unit == "b"));
    // Validate inserted into both subroutines.
    assert_eq!(r.source.matches("call Validate(").count(), 2);
}

#[test]
fn intrinsics_do_not_become_arrays() {
    let src = "PROGRAM t\n!$SHARED a\n  DIMENSION a(n)\n  DO i = 1, n\n    a(i) = sqrt(abs(a(i)))\n  ENDDO\nEND\n";
    let a = analyze(src, "t");
    // Only `a` is summarized — sqrt/abs are intrinsics, not arrays.
    assert_eq!(a.accesses.len(), 1);
    assert_eq!(a.accesses[0].array, "a");
    assert_eq!(a.accesses[0].acc, Acc::ReadWrite);
}

#[test]
fn empty_subroutine_compiles_to_no_site() {
    let src = "SUBROUTINE nop()\nEND\n";
    let r = compile(src).unwrap();
    assert!(r.sites.is_empty());
    assert!(r.source.contains("SUBROUTINE nop()"));
}

#[test]
fn lexer_line_numbers_in_errors() {
    let err = parse("PROGRAM t\n  x = @\nEND\n").unwrap_err();
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn reduction_with_subtract_form() {
    // forces(n2) = forces(n2) - force: the minus form is additive too.
    let src = "PROGRAM t\n!$SHARED f, ia\n  DIMENSION f(n), ia(m)\n  DO i = 1, m\n    k = ia(i)\n    f(k) = f(k) - 1.0\n  ENDDO\nEND\n";
    let r = compile(src).unwrap();
    assert_eq!(r.sites[0].reductions.len(), 1);
    assert!(r.source.contains("local_f(k) = local_f(k) - 1.0"));
}
