//! Abstract syntax for the Fortran-77-style subset.

use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    pub fn fortran(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => ".eq.",
            BinOp::Ne => ".ne.",
            BinOp::Lt => ".lt.",
            BinOp::Le => ".le.",
            BinOp::Gt => ".gt.",
            BinOp::Ge => ".ge.",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Real(f64),
    Var(String),
    /// Array element reference *or* intrinsic call — Fortran syntax
    /// cannot tell them apart; the parser resolves known intrinsics
    /// (`mod`, `min`, `max`, `abs`, `sqrt`) to [`Expr::Intrinsic`].
    ArrayRef(String, Vec<Expr>),
    Intrinsic(String, Vec<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    /// All array names referenced anywhere in this expression.
    pub fn arrays(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::ArrayRef(name, subs) => {
                out.insert(name.clone());
                for s in subs {
                    s.arrays(out);
                }
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    a.arrays(out);
                }
            }
            Expr::Bin(_, l, r) => {
                l.arrays(out);
                r.arrays(out);
            }
            Expr::Neg(e) => e.arrays(out),
            _ => {}
        }
    }

    /// Scalar variables read by this expression (not array names).
    pub fn scalars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::ArrayRef(_, subs) => {
                for s in subs {
                    s.scalars(out);
                }
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    a.scalars(out);
                }
            }
            Expr::Bin(_, l, r) => {
                l.scalars(out);
                r.scalars(out);
            }
            Expr::Neg(e) => e.scalars(out),
            _ => {}
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Assign {
        lhs: Expr,
        rhs: Expr,
    },
    Do {
        var: String,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// A preformatted line the transformer inserted (the `Validate`
    /// call); printed verbatim by codegen, never produced by the parser.
    Raw(String),
}

/// A program unit: the main `PROGRAM` or a `SUBROUTINE`.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    pub is_program: bool,
    pub name: String,
    pub body: Vec<Stmt>,
    /// Arrays declared shared via `!$SHARED` (file-scoped: directives
    /// anywhere in the file apply to every unit, standing in for
    /// `Tmk_malloc` allocation the front end cannot see).
    pub shared: BTreeSet<String>,
    /// `DIMENSION name(d1, d2, ...)` shapes; extents may be symbolic.
    pub dims: BTreeMap<String, Vec<Expr>>,
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub units: Vec<Unit>,
}

impl Program {
    pub fn unit(&self, name: &str) -> Option<&Unit> {
        let lower = name.to_ascii_lowercase();
        self.units.iter().find(|u| u.name == lower)
    }
}
