//! Access analysis: regular sections, indirection detection, reduction
//! recognition (paper §3.3).
//!
//! "For each statement p in the program, for each definition or reference
//! in p to an indirection array, a section is constructed. A {READ},
//! {WRITE}, or {READ&WRITE} tag is associated with the section depending
//! on the access type. This section is associated with each element of F
//! that directly precedes p." With no interprocedural analysis, the fetch
//! point F for our units is the procedure entry.

use std::collections::BTreeMap;

use rsd::{Affine, Sym, SymDim, SymRsd};

use crate::ast::{BinOp, Expr, Stmt, Unit};
use crate::codegen::expr_to_string;

/// Merged access tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acc {
    Read,
    Write,
    ReadWrite,
}

impl Acc {
    fn merge(self, other: Acc) -> Acc {
        if self == other {
            self
        } else {
            Acc::ReadWrite
        }
    }

    pub fn tag(&self) -> &'static str {
        match self {
            Acc::Read => "READ",
            Acc::Write => "WRITE",
            Acc::ReadWrite => "READ&WRITE",
        }
    }
}

/// How a shared array is accessed within the analyzed nest.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessKind {
    /// The section of the array itself.
    Direct { section: SymRsd },
    /// Accessed through `ind`; `ind_section` is the slice of the
    /// indirection array traversed (the thing `Validate` needs).
    Indirect {
        ind: String,
        ind_section: SymRsd,
        /// Declared shape of the indirection array (printed extents).
        ind_dims: Vec<String>,
    },
}

/// One shared array's access summary at the fetch point.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSummary {
    pub array: String,
    pub acc: Acc,
    pub kind: AccessKind,
}

/// An irregular reduction `a(n) = a(n) ± e` with `n` from an indirection
/// array: rewritten to accumulate into a private `local_a`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionInfo {
    pub array: String,
    pub local: String,
}

/// Everything the transformer needs to know about one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitAnalysis {
    pub unit: String,
    pub accesses: Vec<AccessSummary>,
    pub reductions: Vec<ReductionInfo>,
}

/// A loop in the current nest.
#[derive(Clone)]
struct LoopCtx {
    var: String,
    /// Bounds with outer loop variables already substituted by their own
    /// bounds (so evaluating at the extremes is direct).
    lo: Expr,
    hi: Expr,
}

/// Analyze a unit: walk its loop nests, summarize shared-array accesses.
pub fn analyze_unit(unit: &Unit) -> UnitAnalysis {
    let mut st = Analyzer {
        unit,
        loops: Vec::new(),
        copies: BTreeMap::new(),
        accesses: BTreeMap::new(),
        reductions: Vec::new(),
    };
    st.block(&unit.body);
    let mut accesses: Vec<AccessSummary> = st.accesses.into_values().collect();
    accesses.sort_by(|a, b| a.array.cmp(&b.array));
    UnitAnalysis {
        unit: unit.name.clone(),
        accesses,
        reductions: st.reductions,
    }
}

struct Analyzer<'u> {
    unit: &'u Unit,
    loops: Vec<LoopCtx>,
    /// Scalar copy table: `n1 = interaction_list(1, i)` records
    /// n1 → (interaction_list, [1, i]).
    copies: BTreeMap<String, (String, Vec<Expr>)>,
    /// Keyed by (array, indirection-array-or-"") for hull merging.
    accesses: BTreeMap<(String, String), AccessSummary>,
    reductions: Vec<ReductionInfo>,
}

impl Analyzer<'_> {
    fn shared(&self, name: &str) -> bool {
        self.unit.shared.contains(name)
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Do { var, lo, hi, body, .. } => {
                // Substitute enclosing loop extremes into the bounds so
                // deeper levels can evaluate their ranges (standard
                // monotone-bounds assumption of section analysis).
                let lo_s = self.subst_extremes(lo, false);
                let hi_s = self.subst_extremes(hi, true);
                self.loops.push(LoopCtx {
                    var: var.clone(),
                    lo: lo_s,
                    hi: hi_s,
                });
                // Loop bounds referencing shared arrays are reads too
                // (nbf's `last`).
                self.expr_reads(lo);
                self.expr_reads(hi);
                self.block(body);
                self.loops.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr_reads(cond);
                self.block(then_body);
                self.block(else_body);
            }
            Stmt::Raw(_) => {}
            Stmt::Call { args, .. } => {
                for a in args {
                    self.expr_reads(a);
                }
                // A call is a possible fetch point / kill: scalar copies
                // may be clobbered.
                self.copies.clear();
            }
            Stmt::Assign { lhs, rhs } => {
                // Reduction recognition first: a(n) = a(n) ± e.
                if let Some(red) = self.match_reduction(lhs, rhs) {
                    if !self.reductions.contains(&red) {
                        self.reductions.push(red);
                    }
                    // The reduction becomes local accumulation: the
                    // shared array is NOT summarized as a fetch (its
                    // update happens in the pipelined epilogue).
                    // Still: RHS subexpressions other than the self
                    // reference are reads.
                    if let Expr::Bin(_, _, r) = rhs {
                        self.expr_reads(r);
                    }
                    return;
                }

                self.expr_reads(rhs);
                match lhs {
                    Expr::Var(v) => {
                        // Track scalar copies from array elements.
                        if let Expr::ArrayRef(a, subs) = rhs {
                            self.copies.insert(v.clone(), (a.clone(), subs.clone()));
                        } else {
                            self.copies.remove(v);
                        }
                    }
                    Expr::ArrayRef(a, subs) => {
                        for sub in subs {
                            self.expr_reads(sub);
                        }
                        self.record_access(a, subs, Acc::Write);
                    }
                    _ => {}
                }
            }
        }
    }

    /// `a(n) = a(n) + e` or `a(n) = a(n) - e`, `a` shared, `n` indirect.
    fn match_reduction(&self, lhs: &Expr, rhs: &Expr) -> Option<ReductionInfo> {
        let Expr::ArrayRef(a, subs) = lhs else {
            return None;
        };
        if !self.shared(a) {
            return None;
        }
        let Expr::Bin(op, l, _) = rhs else {
            return None;
        };
        if !matches!(op, BinOp::Add | BinOp::Sub) || **l != *lhs {
            return None;
        }
        // Subscript must come (directly or via copy) from an array — an
        // *irregular* reduction. Regular reductions stay as they are.
        let indirect = subs.iter().any(|s| match s {
            Expr::Var(v) => self.copies.contains_key(v),
            Expr::ArrayRef(..) => true,
            _ => false,
        });
        indirect.then(|| ReductionInfo {
            array: a.clone(),
            local: format!("local_{a}"),
        })
    }

    fn expr_reads(&mut self, e: &Expr) {
        match e {
            Expr::ArrayRef(a, subs) => {
                for s in subs {
                    self.expr_reads(s);
                }
                let a = a.clone();
                let subs = subs.clone();
                self.record_access(&a, &subs, Acc::Read);
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    self.expr_reads(a);
                }
            }
            Expr::Bin(_, l, r) => {
                self.expr_reads(l);
                self.expr_reads(r);
            }
            Expr::Neg(x) => self.expr_reads(x),
            _ => {}
        }
    }

    /// Record one reference `array(subs)` with the given tag.
    fn record_access(&mut self, array: &str, subs: &[Expr], acc: Acc) {
        if !self.shared(array) {
            return;
        }
        // Indirect if any subscript is a tracked scalar copy or a direct
        // array reference.
        let origin: Option<(String, Vec<Expr>)> = subs.iter().find_map(|s| match s {
            Expr::Var(v) => self.copies.get(v).cloned(),
            Expr::ArrayRef(a, inner) => Some((a.clone(), inner.clone())),
            _ => None,
        });

        match origin {
            Some((ind, ind_subs)) if self.shared(&ind) => {
                let section = self.section_of(&ind_subs);
                let ind_dims = self
                    .unit
                    .dims
                    .get(&ind)
                    .map(|d| d.iter().map(expr_to_string).collect())
                    .unwrap_or_default();
                let key = (array.to_string(), ind.clone());
                match self.accesses.get_mut(&key) {
                    Some(sum) => {
                        sum.acc = sum.acc.merge(acc);
                        if let AccessKind::Indirect { ind_section, .. } = &mut sum.kind {
                            if let Some(h) = hull_sym(ind_section, &section) {
                                *ind_section = h;
                            }
                        }
                    }
                    None => {
                        self.accesses.insert(
                            key,
                            AccessSummary {
                                array: array.to_string(),
                                acc,
                                kind: AccessKind::Indirect {
                                    ind,
                                    ind_section: section,
                                    ind_dims,
                                },
                            },
                        );
                    }
                }
            }
            _ => {
                let section = self.section_of(subs);
                let key = (array.to_string(), String::new());
                match self.accesses.get_mut(&key) {
                    Some(sum) => {
                        sum.acc = sum.acc.merge(acc);
                        if let AccessKind::Direct { section: s0 } = &mut sum.kind {
                            if let Some(h) = hull_sym(s0, &section) {
                                *s0 = h;
                            }
                        }
                    }
                    None => {
                        self.accesses.insert(
                            key,
                            AccessSummary {
                                array: array.to_string(),
                                acc,
                                kind: AccessKind::Direct { section },
                            },
                        );
                    }
                }
            }
        }
    }

    /// Regular section of a subscript vector over the current loop nest.
    fn section_of(&self, subs: &[Expr]) -> SymRsd {
        SymRsd::new(subs.iter().map(|s| self.dim_of(s)).collect())
    }

    /// One dimension: evaluate the subscript at the loop extremes.
    fn dim_of(&self, sub: &Expr) -> SymDim {
        // Substitute every loop variable by its lo (resp. hi) bound and
        // affine-ize; non-affine parts become opaque symbols.
        let lo_e = fold(&self.subst_extremes(sub, false));
        let hi_e = fold(&self.subst_extremes(sub, true));
        let lo = affinize(&lo_e);
        let hi = affinize(&hi_e);
        // Stride: coefficient of the innermost loop variable, if the
        // subscript is affine in it (else 1).
        let stride = innermost_coeff(sub, &self.loops).unwrap_or(1).abs().max(1);
        // A subscript *decreasing* in the loop variable swaps bounds.
        if innermost_coeff(sub, &self.loops).unwrap_or(1) < 0 {
            SymDim { lo: hi, hi: lo, stride }
        } else {
            SymDim { lo, hi, stride }
        }
    }

    /// Substitute every in-scope loop variable with its lower (upper)
    /// bound expression, outermost first.
    fn subst_extremes(&self, e: &Expr, upper: bool) -> Expr {
        let mut out = e.clone();
        for ctx in self.loops.iter().rev() {
            let bound = if upper { &ctx.hi } else { &ctx.lo };
            out = subst(&out, &ctx.var, bound);
        }
        out
    }
}

/// Coefficient of the innermost loop variable in `sub`, if affine.
fn innermost_coeff(sub: &Expr, loops: &[LoopCtx]) -> Option<i64> {
    let inner = loops.last()?;
    let a = affinize(sub);
    a.terms.get(&Sym::new(inner.var.clone())).copied()
}

/// Substitute `var := repl` in `e`.
pub(crate) fn subst(e: &Expr, var: &str, repl: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == var => repl.clone(),
        Expr::Var(_) | Expr::Int(_) | Expr::Real(_) => e.clone(),
        Expr::ArrayRef(a, subs) => {
            Expr::ArrayRef(a.clone(), subs.iter().map(|s| subst(s, var, repl)).collect())
        }
        Expr::Intrinsic(f, args) => Expr::Intrinsic(
            f.clone(),
            args.iter().map(|s| subst(s, var, repl)).collect(),
        ),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(subst(l, var, repl)),
            Box::new(subst(r, var, repl)),
        ),
        Expr::Neg(x) => Expr::Neg(Box::new(subst(x, var, repl))),
    }
}

/// Constant folding (enough to turn `last(1 - 1)` into `last(0)`).
pub(crate) fn fold(e: &Expr) -> Expr {
    match e {
        Expr::Bin(op, l, r) => {
            let l = fold(l);
            let r = fold(r);
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                let v = match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div if *b != 0 => Some(a / b),
                    _ => None,
                };
                if let Some(v) = v {
                    return Expr::Int(v);
                }
            }
            // x + 0, x - 0, x * 1 …
            match (op, &l, &r) {
                (BinOp::Add, x, Expr::Int(0)) | (BinOp::Sub, x, Expr::Int(0)) => x.clone(),
                (BinOp::Add, Expr::Int(0), x) => x.clone(),
                (BinOp::Mul, x, Expr::Int(1)) | (BinOp::Mul, Expr::Int(1), x) => x.clone(),
                _ => Expr::Bin(*op, Box::new(l), Box::new(r)),
            }
        }
        Expr::Neg(x) => {
            let x = fold(x);
            if let Expr::Int(v) = x {
                Expr::Int(-v)
            } else {
                Expr::Neg(Box::new(x))
            }
        }
        Expr::ArrayRef(a, subs) => Expr::ArrayRef(a.clone(), subs.iter().map(fold).collect()),
        Expr::Intrinsic(f, args) => Expr::Intrinsic(f.clone(), args.iter().map(fold).collect()),
        _ => e.clone(),
    }
}

/// Lower an expression to an affine form over symbols; non-affine
/// subexpressions (array refs, intrinsics, products of variables) become
/// *opaque symbols* named by their printed form — regular section
/// analysis can still carry them to run time, where the application binds
/// them (e.g. `last(0)`).
pub(crate) fn affinize(e: &Expr) -> Affine {
    match fold(e) {
        Expr::Int(v) => Affine::constant(v),
        Expr::Var(v) => Affine::sym(v),
        Expr::Bin(BinOp::Add, l, r) => affinize(&l).add(&affinize(&r)),
        Expr::Bin(BinOp::Sub, l, r) => affinize(&l).sub(&affinize(&r)),
        Expr::Bin(BinOp::Mul, l, r) => match (fold(&l), fold(&r)) {
            (Expr::Int(k), x) | (x, Expr::Int(k)) => affinize(&x).scale(k),
            (l, r) => Affine::sym(expr_to_string(&Expr::Bin(
                BinOp::Mul,
                Box::new(l),
                Box::new(r),
            ))),
        },
        Expr::Neg(x) => affinize(&x).scale(-1),
        other => Affine::sym(expr_to_string(&other)),
    }
}

/// Dimension-wise hull of symbolic sections: exact when the bounds are
/// equal, constant-valued where comparable, else `None` keeps the first
/// (conservative — our kernels always merge cleanly).
fn hull_sym(a: &SymRsd, b: &SymRsd) -> Option<SymRsd> {
    if a.dims.len() != b.dims.len() {
        return None;
    }
    let mut dims = Vec::with_capacity(a.dims.len());
    for (da, db) in a.dims.iter().zip(&b.dims) {
        let stride = gcd(da.stride, db.stride).max(1);
        let lo = min_affine(&da.lo, &db.lo)?;
        let hi = max_affine(&da.hi, &db.hi)?;
        dims.push(SymDim { lo, hi, stride });
    }
    Some(SymRsd::new(dims))
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn min_affine(a: &Affine, b: &Affine) -> Option<Affine> {
    if a == b {
        return Some(a.clone());
    }
    match (a.is_constant(), b.is_constant()) {
        (true, true) => Some(Affine::constant(a.constant.min(b.constant))),
        _ => {
            // Same symbolic part, different constants: comparable.
            if a.terms == b.terms {
                Some(if a.constant <= b.constant { a.clone() } else { b.clone() })
            } else {
                None
            }
        }
    }
}

fn max_affine(a: &Affine, b: &Affine) -> Option<Affine> {
    if a == b {
        return Some(a.clone());
    }
    match (a.is_constant(), b.is_constant()) {
        (true, true) => Some(Affine::constant(a.constant.max(b.constant))),
        _ => {
            if a.terms == b.terms {
                Some(if a.constant >= b.constant { a.clone() } else { b.clone() })
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze(src: &str, unit: &str) -> UnitAnalysis {
        let p = parse(src).unwrap();
        analyze_unit(p.unit(unit).unwrap())
    }

    #[test]
    fn moldyn_computeforces_analysis() {
        let a = analyze(crate::fixtures::MOLDYN_SOURCE, "computeforces");
        // x read indirectly through interaction_list[1:2, 1:num_interactions]
        let x = a.accesses.iter().find(|s| s.array == "x").unwrap();
        assert_eq!(x.acc, Acc::Read);
        match &x.kind {
            AccessKind::Indirect {
                ind,
                ind_section,
                ind_dims,
            } => {
                assert_eq!(ind, "interaction_list");
                assert_eq!(ind_section.to_string(), "[1:2, 1:num_interactions]");
                assert_eq!(ind_dims, &["2", "num_interactions"]);
            }
            other => panic!("{other:?}"),
        }
        // forces recognized as an irregular reduction — no fetch summary.
        assert_eq!(
            a.reductions,
            vec![ReductionInfo {
                array: "forces".into(),
                local: "local_forces".into()
            }]
        );
        assert!(a.accesses.iter().all(|s| s.array != "forces"));
        // interaction_list itself is read directly.
        let il = a
            .accesses
            .iter()
            .find(|s| s.array == "interaction_list")
            .unwrap();
        assert!(matches!(il.kind, AccessKind::Direct { .. }));
    }

    #[test]
    fn nbf_nested_loop_with_array_bounds() {
        let a = analyze(crate::fixtures::NBF_SOURCE, "computenbfforces");
        let x = a
            .accesses
            .iter()
            .find(|s| s.array == "x" && matches!(s.kind, AccessKind::Indirect { .. }))
            .unwrap();
        match &x.kind {
            AccessKind::Indirect { ind, ind_section, .. } => {
                assert_eq!(ind, "partners");
                // k runs from last(0)+1 to last(num_molecules): opaque
                // symbols carry the array-valued bounds.
                let s = ind_section.to_string();
                assert!(s.contains("last(0) + 1"), "{s}");
                assert!(s.contains("last(num_molecules)"), "{s}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(a.reductions.len(), 1);
        assert_eq!(a.reductions[0].array, "forces");
        // x(i) also appears directly (hulled to [1:num_molecules]).
        // It merges into the same descriptor only if same key — here the
        // direct reference is a separate summary.
        // `last` is read directly.
        assert!(a.accesses.iter().any(|s| s.array == "last"));
    }

    #[test]
    fn direct_strided_section() {
        let src = "PROGRAM t\n!$SHARED a\nDIMENSION a(n)\nDO i = 1, n, 1\na(2*i) = 0.0\nENDDO\nEND\n";
        let a = analyze(src, "t");
        let s = &a.accesses[0];
        assert_eq!(s.acc, Acc::Write);
        match &s.kind {
            AccessKind::Direct { section } => {
                assert_eq!(section.to_string(), "[2:2*n:2]");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_write_merge() {
        let src =
            "PROGRAM t\n!$SHARED a\nDIMENSION a(n)\nDO i = 1, n\nb = a(i)\na(i) = b + 1\nENDDO\nEND\n";
        let a = analyze(src, "t");
        assert_eq!(a.accesses[0].acc, Acc::ReadWrite);
        assert!(a.reductions.is_empty(), "regular self-update is not an irregular reduction");
    }

    #[test]
    fn non_shared_arrays_ignored() {
        let src = "PROGRAM t\nDIMENSION a(n)\nDO i = 1, n\na(i) = 1\nENDDO\nEND\n";
        let a = analyze(src, "t");
        assert!(a.accesses.is_empty());
    }

    #[test]
    fn fold_and_affinize() {
        use crate::ast::Expr as E;
        let e = E::Bin(
            BinOp::Sub,
            Box::new(E::Var("i".into())),
            Box::new(E::Int(0)),
        );
        assert_eq!(fold(&e), E::Var("i".into()));
        let aff = affinize(&E::Bin(
            BinOp::Add,
            Box::new(E::Bin(
                BinOp::Mul,
                Box::new(E::Int(3)),
                Box::new(E::Var("n".into())),
            )),
            Box::new(E::Int(2)),
        ));
        assert_eq!(aff.to_string(), "3*n + 2");
    }
}
