//! Code generation: AST → Fortran-77-style text.
//!
//! Printing the transformed AST of the paper's Figure 1 regenerates its
//! Figure 2 (the golden test in `tests/figures.rs` checks this).

use crate::ast::{Expr, Program, Stmt, Unit};

/// Emit a whole program.
pub fn emit_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, u) in p.units.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        emit_unit(u, &mut out);
    }
    out
}

/// Emit one unit.
pub fn emit_unit(u: &Unit, out: &mut String) {
    let kw = if u.is_program { "PROGRAM" } else { "SUBROUTINE" };
    let name = pretty_name(&u.name);
    if u.is_program {
        out.push_str(&format!("{kw} {}\n", name.to_uppercase()));
    } else {
        out.push_str(&format!("      {kw} {name}()\n"));
    }
    if !u.shared.is_empty() && u.is_program {
        out.push_str(&format!(
            "!$SHARED {}\n",
            u.shared.iter().cloned().collect::<Vec<_>>().join(", ")
        ));
    }
    for (name, extents) in &u.dims {
        let ext = extents
            .iter()
            .map(expr_to_string)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("      DIMENSION {name}({ext})\n"));
    }
    for s in &u.body {
        emit_stmt(s, 1, out);
    }
    out.push_str("      END\n");
}

fn indent(level: usize) -> String {
    // 6-column Fortran margin, then two spaces per nesting level.
    format!("      {}", "  ".repeat(level.saturating_sub(1)))
}

fn emit_stmt(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Assign { lhs, rhs } => {
            out.push_str(&format!(
                "{}{} = {}\n",
                indent(level),
                expr_to_string(lhs),
                expr_to_string(rhs)
            ));
        }
        Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let step_s = step
                .as_ref()
                .map(|e| format!(", {}", expr_to_string(e)))
                .unwrap_or_default();
            out.push_str(&format!(
                "{}DO {} = {}, {}{}\n",
                indent(level),
                var,
                expr_to_string(lo),
                expr_to_string(hi),
                step_s
            ));
            for b in body {
                emit_stmt(b, level + 1, out);
            }
            out.push_str(&format!("{}ENDDO\n", indent(level)));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push_str(&format!(
                "{}IF ({}) THEN\n",
                indent(level),
                expr_to_string(cond)
            ));
            for b in then_body {
                emit_stmt(b, level + 1, out);
            }
            if !else_body.is_empty() {
                out.push_str(&format!("{}ELSE\n", indent(level)));
                for b in else_body {
                    emit_stmt(b, level + 1, out);
                }
            }
            out.push_str(&format!("{}ENDIF\n", indent(level)));
        }
        Stmt::Call { name, args } => {
            let args_s = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            if args.is_empty() {
                out.push_str(&format!("{}call {}()\n", indent(level), pretty_name(name)));
            } else {
                out.push_str(&format!(
                    "{}call {}({})\n",
                    indent(level),
                    pretty_name(name),
                    args_s
                ));
            }
        }
        Stmt::Raw(line) => {
            out.push_str(&format!("{}{}\n", indent(level), line));
        }
    }
}

/// Well-known mixed-case names from the paper's figures; everything else
/// prints lowercase (the lexer normalized case away).
fn pretty_name(lower: &str) -> String {
    match lower {
        "computeforces" => "ComputeForces".into(),
        "computenbfforces" => "ComputeNbfForces".into(),
        "build_interaction_list" => "build_interaction_list".into(),
        "validate" => "Validate".into(),
        other => other.into(),
    }
}

/// Expression printer (also used to name opaque symbols in analysis).
pub fn expr_to_string(e: &Expr) -> String {
    prec_print(e, 0)
}

/// Print with minimal parentheses: `prec` is the binding power of the
/// context (0 loosest).
fn prec_print(e: &Expr, prec: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Var(v) => v.clone(),
        Expr::ArrayRef(a, subs) | Expr::Intrinsic(a, subs) => {
            let inner = subs
                .iter()
                .map(|s| prec_print(s, 0))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{a}({inner})")
        }
        Expr::Bin(op, l, r) => {
            use crate::ast::BinOp::*;
            let (p, assoc_r) = match op {
                Eq | Ne | Lt | Le | Gt | Ge => (1, 2),
                Add | Sub => (2, 3),
                Mul | Div => (3, 4),
            };
            let s = format!(
                "{} {} {}",
                prec_print(l, p),
                op.fortran(),
                prec_print(r, assoc_r)
            );
            if p < prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Neg(x) => format!("-{}", prec_print(x, 4)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_is_stable() {
        // emit(parse(emit(parse(src)))) == emit(parse(src))
        let src = crate::fixtures::MOLDYN_SOURCE;
        let once = emit_program(&parse(src).unwrap());
        let twice = emit_program(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn parenthesization_minimal_but_correct() {
        let src = "PROGRAM t\n  a = (1 + 2) * 3\n  b = 1 + 2 * 3\n  c = -(x + y)\nEND\n";
        let out = emit_program(&parse(src).unwrap());
        assert!(out.contains("a = (1 + 2) * 3"));
        assert!(out.contains("b = 1 + 2 * 3"));
        assert!(out.contains("c = -(x + y)"));
    }

    #[test]
    fn emits_figure1_shape() {
        let out = emit_program(&parse(crate::fixtures::MOLDYN_SOURCE).unwrap());
        assert!(out.contains("PROGRAM MOLDYN"));
        assert!(out.contains("      SUBROUTINE ComputeForces()"));
        assert!(out.contains("IF (mod(step, update_interval) .eq. 0) THEN"));
        assert!(out.contains("forces(n1) = forces(n1) + force"));
    }
}
