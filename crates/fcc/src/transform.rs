//! The source-to-source transformation (paper §3.3):
//!
//! "During the program transformation phase, for each f in F, if there
//! are access descriptors associated with f, a Validate is inserted at
//! f." Irregular reductions are rewritten to accumulate into private
//! `local_*` arrays (Figure 2); the pipelined update of the shared array
//! is the run-time's job (the applications drive it with `WRITE_ALL`
//! descriptors).

use rsd::SymRsd;

use crate::analysis::{analyze_unit, AccessKind, UnitAnalysis};
use crate::ast::{Expr, Program, Stmt, Unit};
use crate::codegen::emit_program;

/// Descriptor kind — `DIRECT` or `INDIRECT` (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescKind {
    Direct,
    Indirect,
}

/// One access descriptor of an inserted `Validate` call, in compiler
/// (symbolic) form. The applications evaluate the sections with their
/// per-processor symbol bindings and hand concrete descriptors to
/// `sdsm_core::validate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDesc {
    pub kind: DescKind,
    /// The shared data array being accessed.
    pub data: String,
    /// The indirection array (for `INDIRECT`).
    pub ind: Option<String>,
    /// Section of the indirection array (INDIRECT) or of the data itself
    /// (DIRECT).
    pub section: SymRsd,
    /// Declared shape of the indirection array, printed extents.
    pub ind_dims: Vec<String>,
    /// `READ`, `WRITE`, `READ&WRITE` (the `*_ALL` refinements are chosen
    /// by the run-time descriptors the application builds for its regular
    /// epilogue, not by this loop-nest analysis).
    pub access: String,
    pub schedule: u32,
}

/// An irregular reduction rewritten to a private accumulation array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    pub array: String,
    pub local: String,
}

/// A `Validate` insertion point (one per transformed unit).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateSite {
    pub unit: String,
    pub descriptors: Vec<SiteDesc>,
    pub reductions: Vec<Reduction>,
}

/// Output of [`transform`]: the rewritten program, its emitted source,
/// the machine-readable sites, and the raw analyses.
#[derive(Debug, Clone)]
pub struct TransformResult {
    pub program: Program,
    pub source: String,
    pub sites: Vec<ValidateSite>,
    pub analyses: Vec<UnitAnalysis>,
}

/// Transform every unit of `program`.
pub fn transform(program: &Program) -> TransformResult {
    let mut out = Program::default();
    let mut sites = Vec::new();
    let mut analyses = Vec::new();
    for unit in &program.units {
        let analysis = analyze_unit(unit);
        let (new_unit, site) = transform_unit(unit, &analysis);
        out.units.push(new_unit);
        if let Some(site) = site {
            sites.push(site);
        }
        analyses.push(analysis);
    }
    let source = emit_program(&out);
    TransformResult {
        program: out,
        source,
        sites,
        analyses,
    }
}

fn transform_unit(unit: &Unit, analysis: &UnitAnalysis) -> (Unit, Option<ValidateSite>) {
    // Build descriptors: one per shared array summary, skipping the
    // indirection arrays themselves (Read_indices brings their pages in)
    // and reduction targets (rewritten to local accumulation).
    let ind_arrays: Vec<&str> = analysis
        .accesses
        .iter()
        .filter_map(|s| match &s.kind {
            AccessKind::Indirect { ind, .. } => Some(ind.as_str()),
            _ => None,
        })
        .collect();

    let mut descriptors = Vec::new();
    let mut sched = 1u32;
    for s in &analysis.accesses {
        if analysis.reductions.iter().any(|r| r.array == s.array) {
            continue;
        }
        match &s.kind {
            AccessKind::Indirect {
                ind,
                ind_section,
                ind_dims,
            } => {
                descriptors.push(SiteDesc {
                    kind: DescKind::Indirect,
                    data: s.array.clone(),
                    ind: Some(ind.clone()),
                    section: ind_section.clone(),
                    ind_dims: ind_dims.clone(),
                    access: s.acc.tag().to_string(),
                    schedule: sched,
                });
                sched += 1;
            }
            AccessKind::Direct { section } => {
                if ind_arrays.contains(&s.array.as_str()) {
                    continue; // fetched by Read_indices itself
                }
                // Loop-bound arrays and other direct reads.
                descriptors.push(SiteDesc {
                    kind: DescKind::Direct,
                    data: s.array.clone(),
                    ind: None,
                    section: section.clone(),
                    ind_dims: Vec::new(),
                    access: s.acc.tag().to_string(),
                    schedule: sched,
                });
                sched += 1;
            }
        }
    }

    let reductions: Vec<Reduction> = analysis
        .reductions
        .iter()
        .map(|r| Reduction {
            array: r.array.clone(),
            local: r.local.clone(),
        })
        .collect();

    let mut new_unit = unit.clone();
    // Rename reduction arrays in their accumulation statements.
    for r in &reductions {
        rename_reduction(&mut new_unit.body, &r.array, &r.local);
    }
    // Insert the Validate at the fetch point (procedure entry).
    let site = if descriptors.is_empty() {
        None
    } else {
        new_unit
            .body
            .insert(0, Stmt::Raw(format_validate(&descriptors)));
        Some(ValidateSite {
            unit: unit.name.clone(),
            descriptors,
            reductions: reductions.clone(),
        })
    };
    (new_unit, site)
}

/// Print the paper-style `Validate` call (Figure 2):
/// `call Validate(1, INDIRECT, x, interaction_list[1:2, 1:n], READ, 1)`.
fn format_validate(descs: &[SiteDesc]) -> String {
    let mut s = format!("call Validate({}", descs.len());
    for d in descs {
        let kind = match d.kind {
            DescKind::Direct => "DIRECT",
            DescKind::Indirect => "INDIRECT",
        };
        let section_owner = d.ind.as_deref().unwrap_or(&d.data);
        s.push_str(&format!(
            ", {kind}, {}, {}{}, {}, {}",
            d.data, section_owner, d.section, d.access, d.schedule
        ));
    }
    s.push(')');
    s
}

/// Rewrite `a(...) = a(...) ± e` statements to use `local`.
fn rename_reduction(stmts: &mut [Stmt], array: &str, local: &str) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if let Expr::ArrayRef(a, _) = lhs {
                    if a == array {
                        // Only the self-accumulation form gets renamed.
                        if let Expr::Bin(_, l, _) = rhs {
                            if **l == *lhs {
                                rename_expr(l, array, local);
                            }
                        }
                        rename_lhs(lhs, array, local);
                    }
                }
            }
            Stmt::Do { body, .. } => rename_reduction(body, array, local),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                rename_reduction(then_body, array, local);
                rename_reduction(else_body, array, local);
            }
            Stmt::Call { .. } | Stmt::Raw(_) => {}
        }
    }
}

fn rename_lhs(e: &mut Expr, array: &str, local: &str) {
    if let Expr::ArrayRef(a, _) = e {
        if a == array {
            *a = local.to_string();
        }
    }
}

fn rename_expr(e: &mut Expr, array: &str, local: &str) {
    match e {
        Expr::ArrayRef(a, subs) => {
            if a == array {
                *a = local.to_string();
            }
            for s in subs {
                rename_expr(s, array, local);
            }
        }
        Expr::Intrinsic(_, args) => {
            for a in args {
                rename_expr(a, array, local);
            }
        }
        Expr::Bin(_, l, r) => {
            rename_expr(l, array, local);
            rename_expr(r, array, local);
        }
        Expr::Neg(x) => rename_expr(x, array, local),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn moldyn_site_matches_paper() {
        let p = parse(crate::fixtures::MOLDYN_SOURCE).unwrap();
        let r = transform(&p);
        let site = r
            .sites
            .iter()
            .find(|s| s.unit == "computeforces")
            .expect("ComputeForces must get a Validate");
        assert_eq!(site.descriptors.len(), 1, "{:?}", site.descriptors);
        let d = &site.descriptors[0];
        assert_eq!(d.kind, DescKind::Indirect);
        assert_eq!(d.data, "x");
        assert_eq!(d.ind.as_deref(), Some("interaction_list"));
        assert_eq!(d.section.to_string(), "[1:2, 1:num_interactions]");
        assert_eq!(d.access, "READ");
        assert_eq!(d.schedule, 1);
        assert_eq!(
            site.reductions,
            vec![Reduction {
                array: "forces".into(),
                local: "local_forces".into()
            }]
        );
    }

    #[test]
    fn reduction_statements_renamed() {
        let p = parse(crate::fixtures::MOLDYN_SOURCE).unwrap();
        let r = transform(&p);
        assert!(r.source.contains("local_forces(n1) = local_forces(n1) + force"));
        assert!(r.source.contains("local_forces(n2) = local_forces(n2) - force"));
        // the reads of x are untouched
        assert!(r.source.contains("force = x(n1) - x(n2)"));
    }

    #[test]
    fn nbf_site_has_indirect_and_direct() {
        let p = parse(crate::fixtures::NBF_SOURCE).unwrap();
        let r = transform(&p);
        let site = r
            .sites
            .iter()
            .find(|s| s.unit == "computenbfforces")
            .unwrap();
        let kinds: Vec<DescKind> = site.descriptors.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DescKind::Indirect));
        // x(i) direct + last direct (loop bounds).
        let x_ind = site
            .descriptors
            .iter()
            .find(|d| d.kind == DescKind::Indirect && d.data == "x")
            .unwrap();
        assert_eq!(x_ind.ind.as_deref(), Some("partners"));
    }

    #[test]
    fn program_without_shared_gets_no_sites() {
        let src = "PROGRAM t\nDO i = 1, n\na(i) = 0\nENDDO\nEND\n";
        let p = parse(src).unwrap();
        let r = transform(&p);
        assert!(r.sites.is_empty());
        assert!(!r.source.contains("Validate"));
    }
}
