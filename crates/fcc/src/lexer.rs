//! Tokenizer for the Fortran-77-style subset.
//!
//! Case-insensitive; statements end at newlines; `!` comments run to end
//! of line except the `!$SHARED` directive, which is meaningful.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals & names
    Ident(String),
    Int(i64),
    Real(f64),
    // punctuation
    LParen,
    RParen,
    Comma,
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    // relational (.eq. etc.)
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // structure
    Newline,
    /// `!$SHARED a, b, c` directive (names already split out).
    SharedDirective(Vec<String>),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Eq => write!(f, ".eq."),
            Tok::Ne => write!(f, ".ne."),
            Tok::Lt => write!(f, ".lt."),
            Tok::Le => write!(f, ".le."),
            Tok::Gt => write!(f, ".gt."),
            Tok::Ge => write!(f, ".ge."),
            Tok::Newline => write!(f, "\\n"),
            Tok::SharedDirective(names) => write!(f, "!$SHARED {}", names.join(", ")),
        }
    }
}

/// Tokenize `src`, reporting errors with line numbers.
pub fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    for (lno, raw_line) in src.lines().enumerate() {
        let line = raw_line.trim_end();
        let trimmed = line.trim_start();

        // Directive or comment lines.
        if let Some(rest) = strip_prefix_ci(trimmed, "!$shared") {
            let names = rest
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>();
            if names.is_empty() {
                return Err(format!("line {}: empty !$SHARED directive", lno + 1));
            }
            toks.push(Tok::SharedDirective(names));
            toks.push(Tok::Newline);
            continue;
        }
        if trimmed.starts_with('!')
            || trimmed.starts_with('*')
            || (trimmed.len() == line.len()
                && (line.starts_with('c') || line.starts_with('C'))
                && line.chars().nth(1).is_none_or(|c| c == ' '))
        {
            continue; // comment line
        }

        let mut chars = trimmed.char_indices().peekable();
        let bytes = trimmed;
        while let Some(&(i, c)) = chars.peek() {
            match c {
                ' ' | '\t' => {
                    chars.next();
                }
                '!' => break, // trailing comment
                '(' => {
                    toks.push(Tok::LParen);
                    chars.next();
                }
                ')' => {
                    toks.push(Tok::RParen);
                    chars.next();
                }
                ',' => {
                    toks.push(Tok::Comma);
                    chars.next();
                }
                '=' => {
                    toks.push(Tok::Assign);
                    chars.next();
                }
                '+' => {
                    toks.push(Tok::Plus);
                    chars.next();
                }
                '-' => {
                    toks.push(Tok::Minus);
                    chars.next();
                }
                '*' => {
                    toks.push(Tok::Star);
                    chars.next();
                }
                '/' => {
                    toks.push(Tok::Slash);
                    chars.next();
                }
                '.' => {
                    // Either a relational op (.eq.) or a real like .5
                    let rest = &bytes[i..];
                    let rel = [
                        (".eq.", Tok::Eq),
                        (".ne.", Tok::Ne),
                        (".lt.", Tok::Lt),
                        (".le.", Tok::Le),
                        (".gt.", Tok::Gt),
                        (".ge.", Tok::Ge),
                    ]
                    .into_iter()
                    .find(|(s, _)| rest.len() >= s.len() && rest[..s.len()].eq_ignore_ascii_case(s));
                    if let Some((s, t)) = rel {
                        toks.push(t);
                        for _ in 0..s.len() {
                            chars.next();
                        }
                    } else if rest.len() > 1 && rest.as_bytes()[1].is_ascii_digit() {
                        let (tok, used) = lex_number(rest, lno)?;
                        toks.push(tok);
                        for _ in 0..used {
                            chars.next();
                        }
                    } else {
                        return Err(format!("line {}: stray '.'", lno + 1));
                    }
                }
                c if c.is_ascii_digit() => {
                    let rest = &bytes[i..];
                    let (tok, used) = lex_number(rest, lno)?;
                    toks.push(tok);
                    for _ in 0..used {
                        chars.next();
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let rest = &bytes[i..];
                    let end = rest
                        .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                        .unwrap_or(rest.len());
                    toks.push(Tok::Ident(rest[..end].to_ascii_lowercase()));
                    for _ in 0..end {
                        chars.next();
                    }
                }
                other => {
                    return Err(format!("line {}: unexpected character '{}'", lno + 1, other));
                }
            }
        }
        if !matches!(toks.last(), None | Some(Tok::Newline)) {
            toks.push(Tok::Newline);
        }
    }
    Ok(toks)
}

/// Lex an integer or real starting at the head of `s`; returns the token
/// and the number of chars consumed.
fn lex_number(s: &str, lno: usize) -> Result<(Tok, usize), String> {
    let mut end = 0;
    let b = s.as_bytes();
    while end < b.len() && b[end].is_ascii_digit() {
        end += 1;
    }
    let mut is_real = false;
    // Fractional part — but not if this '.' starts a relational op.
    if end < b.len() && b[end] == b'.' {
        let after = &s[end + 1..];
        let starts_rel = ["eq.", "ne.", "lt.", "le.", "gt.", "ge."]
            .iter()
            .any(|r| after.len() >= r.len() && after[..r.len()].eq_ignore_ascii_case(r));
        if !starts_rel {
            is_real = true;
            end += 1;
            while end < b.len() && b[end].is_ascii_digit() {
                end += 1;
            }
        }
    }
    // Exponent.
    if end < b.len() && (b[end] == b'e' || b[end] == b'E' || b[end] == b'd' || b[end] == b'D') {
        let mut e = end + 1;
        if e < b.len() && (b[e] == b'+' || b[e] == b'-') {
            e += 1;
        }
        if e < b.len() && b[e].is_ascii_digit() {
            is_real = true;
            end = e;
            while end < b.len() && b[end].is_ascii_digit() {
                end += 1;
            }
        }
    }
    let text = &s[..end];
    if is_real {
        let norm = text.to_ascii_lowercase().replace('d', "e");
        norm.parse::<f64>()
            .map(|v| (Tok::Real(v), end))
            .map_err(|_| format!("line {}: bad real literal '{text}'", lno + 1))
    } else {
        text.parse::<i64>()
            .map(|v| (Tok::Int(v), end))
            .map_err(|_| format!("line {}: bad integer literal '{text}'", lno + 1))
    }
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let t = lex("n1 = interaction_list(1, i)").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("n1".into()),
                Tok::Assign,
                Tok::Ident("interaction_list".into()),
                Tok::LParen,
                Tok::Int(1),
                Tok::Comma,
                Tok::Ident("i".into()),
                Tok::RParen,
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn relational_and_mod() {
        let t = lex("IF (mod(step, 20) .eq. 0) THEN").unwrap();
        assert!(t.contains(&Tok::Eq));
        assert!(t.contains(&Tok::Ident("mod".into())));
        assert!(t.contains(&Tok::Ident("then".into())));
    }

    #[test]
    fn shared_directive() {
        let t = lex("!$SHARED x, forces, interaction_list").unwrap();
        assert_eq!(
            t[0],
            Tok::SharedDirective(vec![
                "x".into(),
                "forces".into(),
                "interaction_list".into()
            ])
        );
    }

    #[test]
    fn comments_skipped() {
        let t = lex("! a comment\nC classic comment\n  x = 1 ! trailing\n").unwrap();
        assert_eq!(
            t,
            vec![Tok::Ident("x".into()), Tok::Assign, Tok::Int(1), Tok::Newline]
        );
    }

    #[test]
    fn numbers() {
        let t = lex("a = 1.5e2 + 2 - .25").unwrap();
        assert!(t.contains(&Tok::Real(150.0)));
        assert!(t.contains(&Tok::Int(2)));
        assert!(t.contains(&Tok::Real(0.25)));
    }

    #[test]
    fn number_then_relational() {
        // `1.eq.` must lex as Int(1), Eq — not a real "1." followed by junk.
        let t = lex("IF (i .eq. 1.eq.j) THEN").unwrap();
        let eqs = t.iter().filter(|&t| *t == Tok::Eq).count();
        assert_eq!(eqs, 2);
        assert!(t.contains(&Tok::Int(1)));
    }

    #[test]
    fn case_insensitive_idents() {
        let t = lex("CALL ComputeForces()").unwrap();
        assert_eq!(t[0], Tok::Ident("call".into()));
        assert_eq!(t[1], Tok::Ident("computeforces".into()));
    }

    #[test]
    fn error_on_garbage() {
        assert!(lex("x = @").is_err());
    }
}
