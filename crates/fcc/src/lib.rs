//! # fcc — the compiler front end (paper §3.3)
//!
//! The paper's compile-time support is deliberately minimal: *regular
//! section analysis* of indirection arrays plus a source-to-source
//! transformation that inserts `Validate` calls. The authors implemented
//! it in the ParaScope programming environment for Fortran; this crate
//! implements the same pipeline for the Fortran-77-style subset the
//! paper's figures use:
//!
//! 1. **Lexer/parser** ([`lexer`], [`parser`]) → AST ([`ast`]).
//! 2. **Access analysis** ([`analysis`]): for every loop nest, summarize
//!    array accesses as regular sections (RSDs — linear expressions of
//!    the loop bounds, with stride). Detect *indirect* accesses
//!    (`x(n1)` where `n1 = interaction_list(1, i)`) by scalar copy
//!    tracking, and recognize irregular *reductions*
//!    (`forces(n1) = forces(n1) + f`).
//! 3. **Transformation** ([`transform()`]): at each fetch point (procedure
//!    entry, in the absence of interprocedural analysis — §3.3), insert a
//!    `Validate` call with one access descriptor per shared array
//!    accessed; rewrite irregular reductions to accumulate into private
//!    `local_*` arrays (Figure 2).
//! 4. **Code generation** ([`codegen`]): print the transformed program —
//!    running this on the paper's Figure 1 regenerates Figure 2 — and
//!    emit machine-readable [`ValidateSite`]s that the runtime
//!    applications consume, so the compiler genuinely drives `Validate`.
//!
//! Shared arrays are declared with a `!$SHARED a, b` directive (standing
//! in for "allocated with `Tmk_malloc`", which a one-pass front end
//! cannot see), and array shapes with standard `DIMENSION` statements.

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod fixtures;
pub mod lexer;
pub mod parser;
pub mod transform;

pub use analysis::{analyze_unit, AccessKind, AccessSummary, UnitAnalysis};
pub use ast::{BinOp, Expr, Program, Stmt, Unit};
pub use codegen::emit_program;
pub use parser::parse;
pub use transform::{transform, DescKind, Reduction, SiteDesc, TransformResult, ValidateSite};

/// End-to-end driver: source text in, transformed source + Validate
/// sites out.
pub fn compile(source: &str) -> Result<TransformResult, String> {
    let program = parse(source)?;
    Ok(transform(&program))
}
