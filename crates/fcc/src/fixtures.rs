//! Source fixtures: the paper's Figure 1 (moldyn) and the analogous nbf
//! kernel, in the Fortran-77-style input language.

/// Figure 1 of the paper: the moldyn main program and the
/// `ComputeForces` subroutine with its irregular accesses through
/// `interaction_list`. (`!$SHARED` stands in for `Tmk_malloc` allocation,
/// and the arrays carry explicit `DIMENSION`s for the section analysis.)
pub const MOLDYN_SOURCE: &str = "\
PROGRAM MOLDYN
!$SHARED x, forces, interaction_list
      DIMENSION x(num_molecules), forces(num_molecules)
      DIMENSION interaction_list(2, num_interactions)
      DO step = 1, nsteps
        IF (mod(step, update_interval) .eq. 0) THEN
          call build_interaction_list()
        ENDIF
        call ComputeForces()
      ENDDO
      END

      SUBROUTINE ComputeForces()
      DIMENSION x(num_molecules), forces(num_molecules)
      DIMENSION interaction_list(2, num_interactions)
      DO i = 1, num_interactions
        n1 = interaction_list(1, i)
        n2 = interaction_list(2, i)
        force = x(n1) - x(n2)
        forces(n1) = forces(n1) + force
        forces(n2) = forces(n2) - force
      ENDDO
      END
";

/// The nbf kernel (paper §5.2): per-molecule partner lists, concatenated,
/// with `last(i)` pointing to the end of molecule `i`'s partners.
pub const NBF_SOURCE: &str = "\
PROGRAM NBF
!$SHARED x, forces, partners, last
      DIMENSION x(num_molecules), forces(num_molecules)
      DIMENSION partners(num_pairs), last(num_molecules)
      DO step = 1, nsteps
        call ComputeNbfForces()
      ENDDO
      END

      SUBROUTINE ComputeNbfForces()
      DIMENSION x(num_molecules), forces(num_molecules)
      DIMENSION partners(num_pairs), last(num_molecules)
      DO i = 1, num_molecules
        DO k = last(i - 1) + 1, last(i)
          n2 = partners(k)
          force = x(i) - x(n2)
          forces(i) = forces(i) + force
          forces(n2) = forces(n2) - force
        ENDDO
      ENDDO
      END
";

/// Figure 2 of the paper — the expected result of transforming
/// [`MOLDYN_SOURCE`]'s `ComputeForces` (used as a golden reference in
/// tests; formatting normalized to this code generator's style).
pub const MOLDYN_TRANSFORMED_COMPUTEFORCES: &str = concat!(
    "      SUBROUTINE ComputeForces()\n",
    "      call Validate(1, INDIRECT, x, interaction_list[1:2, 1:num_interactions], READ, 1)\n",
    "      DO i = 1, num_interactions\n",
    "        n1 = interaction_list(1, i)\n",
    "        n2 = interaction_list(2, i)\n",
    "        force = x(n1) - x(n2)\n",
    "        local_forces(n1) = local_forces(n1) + force\n",
    "        local_forces(n2) = local_forces(n2) - force\n",
    "      ENDDO\n",
    "      END\n",
);
