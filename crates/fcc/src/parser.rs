//! Recursive-descent parser: tokens → [`Program`].

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, Expr, Program, Stmt, Unit};
use crate::lexer::{lex, Tok};

const INTRINSICS: &[&str] = &["mod", "min", "max", "abs", "sqrt", "int", "dble"];

pub fn parse(src: &str) -> Result<Program, String> {
    let toks = lex(src)?;
    Parser {
        toks,
        pos: 0,
        shared: BTreeSet::new(),
    }
    .program()
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    shared: BTreeSet<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_newlines(&mut self) {
        loop {
            match self.peek() {
                Some(Tok::Newline) => {
                    self.pos += 1;
                }
                Some(Tok::SharedDirective(names)) => {
                    let names = names.clone();
                    self.shared.extend(names);
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    fn expect_newline(&mut self) -> Result<(), String> {
        match self.next() {
            Some(Tok::Newline) | None => Ok(()),
            Some(t) => Err(format!("expected end of statement, found '{t}'")),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), String> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(format!("expected '{want}', found '{t}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(format!("expected identifier, found '{t}'")),
            None => Err("expected identifier, found end of input".into()),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    // ---- grammar ----

    fn program(mut self) -> Result<Program, String> {
        let mut units = Vec::new();
        self.eat_newlines();
        while self.peek().is_some() {
            units.push(self.unit()?);
            self.eat_newlines();
        }
        if units.is_empty() {
            return Err("no program units found".into());
        }
        // Directives are file-scoped.
        for u in &mut units {
            u.shared = self.shared.clone();
        }
        Ok(Program { units })
    }

    fn unit(&mut self) -> Result<Unit, String> {
        self.eat_newlines();
        let kw = self.ident()?;
        let is_program = match kw.as_str() {
            "program" => true,
            "subroutine" => false,
            other => return Err(format!("expected PROGRAM or SUBROUTINE, found '{other}'")),
        };
        let name = self.ident()?;
        // Optional empty parameter list on subroutines.
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.expect(&Tok::LParen)?;
            self.expect(&Tok::RParen)?;
        }
        self.expect_newline()?;

        let mut dims = BTreeMap::new();
        let body = self.stmt_block(&mut dims, &["end"])?;
        // consume END
        let end = self.ident()?;
        debug_assert_eq!(end, "end");
        self.expect_newline()?;
        Ok(Unit {
            is_program,
            name,
            body,
            shared: BTreeSet::new(),
            dims,
        })
    }

    /// Parse statements until one of `terminators` appears as the leading
    /// keyword of a line (the terminator is left unconsumed).
    fn stmt_block(
        &mut self,
        dims: &mut BTreeMap<String, Vec<Expr>>,
        terminators: &[&str],
    ) -> Result<Vec<Stmt>, String> {
        let mut out = Vec::new();
        loop {
            self.eat_newlines();
            match self.peek() {
                None => return Err(format!("unterminated block; expected {terminators:?}")),
                Some(Tok::Ident(s)) if terminators.contains(&s.as_str()) => return Ok(out),
                Some(_) => {
                    if let Some(stmt) = self.statement(dims)? {
                        out.push(stmt);
                    }
                }
            }
        }
    }

    fn statement(&mut self, dims: &mut BTreeMap<String, Vec<Expr>>) -> Result<Option<Stmt>, String> {
        if self.at_keyword("dimension") {
            self.ident()?;
            loop {
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let mut extents = vec![self.expr()?];
                while matches!(self.peek(), Some(Tok::Comma)) {
                    self.expect(&Tok::Comma)?;
                    extents.push(self.expr()?);
                }
                self.expect(&Tok::RParen)?;
                dims.insert(name, extents);
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.expect(&Tok::Comma)?;
                } else {
                    break;
                }
            }
            self.expect_newline()?;
            return Ok(None);
        }
        if self.at_keyword("do") {
            return Ok(Some(self.do_stmt(dims)?));
        }
        if self.at_keyword("if") {
            return Ok(Some(self.if_stmt(dims)?));
        }
        if self.at_keyword("call") {
            self.ident()?;
            let name = self.ident()?;
            let mut args = Vec::new();
            if matches!(self.peek(), Some(Tok::LParen)) {
                self.expect(&Tok::LParen)?;
                if !matches!(self.peek(), Some(Tok::RParen)) {
                    args.push(self.expr()?);
                    while matches!(self.peek(), Some(Tok::Comma)) {
                        self.expect(&Tok::Comma)?;
                        args.push(self.expr()?);
                    }
                }
                self.expect(&Tok::RParen)?;
            }
            self.expect_newline()?;
            return Ok(Some(Stmt::Call { name, args }));
        }
        // Assignment: lhs = rhs
        let lhs = self.designator()?;
        self.expect(&Tok::Assign)?;
        let rhs = self.expr()?;
        self.expect_newline()?;
        Ok(Some(Stmt::Assign { lhs, rhs }))
    }

    fn do_stmt(&mut self, dims: &mut BTreeMap<String, Vec<Expr>>) -> Result<Stmt, String> {
        self.ident()?; // do
        let var = self.ident()?;
        self.expect(&Tok::Assign)?;
        let lo = self.expr()?;
        self.expect(&Tok::Comma)?;
        let hi = self.expr()?;
        let step = if matches!(self.peek(), Some(Tok::Comma)) {
            self.expect(&Tok::Comma)?;
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_newline()?;
        let body = self.stmt_block(dims, &["enddo"])?;
        self.ident()?; // enddo
        self.expect_newline()?;
        Ok(Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    fn if_stmt(&mut self, dims: &mut BTreeMap<String, Vec<Expr>>) -> Result<Stmt, String> {
        self.ident()?; // if
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_kw = self.ident()?;
        if then_kw != "then" {
            return Err(format!("expected THEN, found '{then_kw}'"));
        }
        self.expect_newline()?;
        let then_body = self.stmt_block(dims, &["endif", "else"])?;
        let mut else_body = Vec::new();
        if self.at_keyword("else") {
            self.ident()?;
            self.expect_newline()?;
            else_body = self.stmt_block(dims, &["endif"])?;
        }
        self.ident()?; // endif
        self.expect_newline()?;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// A variable or array reference (assignment target).
    fn designator(&mut self) -> Result<Expr, String> {
        let name = self.ident()?;
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.expect(&Tok::LParen)?;
            let mut subs = vec![self.expr()?];
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.expect(&Tok::Comma)?;
                subs.push(self.expr()?);
            }
            self.expect(&Tok::RParen)?;
            Ok(Expr::ArrayRef(name, subs))
        } else {
            Ok(Expr::Var(name))
        }
    }

    // Precedence: relational < add/sub < mul/div < unary.
    fn expr(&mut self) -> Result<Expr, String> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.additive()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<Expr, String> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, String> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.next();
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            Some(Tok::Plus) => {
                self.next();
                self.unary()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Real(v)) => Ok(Expr::Real(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.expect(&Tok::LParen)?;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Tok::RParen)) {
                        args.push(self.expr()?);
                        while matches!(self.peek(), Some(Tok::Comma)) {
                            self.expect(&Tok::Comma)?;
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    if INTRINSICS.contains(&name.as_str()) {
                        Ok(Expr::Intrinsic(name, args))
                    } else {
                        Ok(Expr::ArrayRef(name, args))
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(t) => Err(format!("unexpected '{t}' in expression")),
            None => Err("unexpected end of input in expression".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_structure() {
        let p = parse(crate::fixtures::MOLDYN_SOURCE).unwrap();
        assert_eq!(p.units.len(), 2);
        let main = &p.units[0];
        assert!(main.is_program);
        assert_eq!(main.name, "moldyn");
        assert!(main.shared.contains("x"));
        assert!(main.shared.contains("forces"));
        let cf = p.unit("ComputeForces").unwrap();
        assert_eq!(cf.body.len(), 1);
        match &cf.body[0] {
            Stmt::Do { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 5);
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_with_mod() {
        let src = "PROGRAM t\nIF (mod(step, 20) .eq. 0) THEN\ncall foo()\nENDIF\nEND\n";
        let p = parse(src).unwrap();
        match &p.units[0].body[0] {
            Stmt::If { cond, then_body, .. } => {
                assert!(matches!(cond, Expr::Bin(BinOp::Eq, _, _)));
                assert_eq!(then_body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dimension() {
        let src = "PROGRAM t\nDIMENSION x(n), il(2, m)\nx(1) = 0\nEND\n";
        let p = parse(src).unwrap();
        let u = &p.units[0];
        assert_eq!(u.dims["x"], vec![Expr::Var("n".into())]);
        assert_eq!(u.dims["il"].len(), 2);
    }

    #[test]
    fn operator_precedence() {
        let src = "PROGRAM t\na = 1 + 2 * 3 - x(i) / 2\nEND\n";
        let p = parse(src).unwrap();
        match &p.units[0].body[0] {
            Stmt::Assign { rhs, .. } => {
                // ((1 + (2*3)) - (x(i)/2))
                match rhs {
                    Expr::Bin(BinOp::Sub, l, r) => {
                        assert!(matches!(**l, Expr::Bin(BinOp::Add, _, _)));
                        assert!(matches!(**r, Expr::Bin(BinOp::Div, _, _)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_do_loops() {
        let src = "PROGRAM t\nDO i = 1, n\nDO k = first(i), last(i)\na(k) = a(k) + 1\nENDDO\nENDDO\nEND\n";
        let p = parse(src).unwrap();
        match &p.units[0].body[0] {
            Stmt::Do { body, .. } => assert!(matches!(body[0], Stmt::Do { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_messages() {
        assert!(parse("SUBROUTINE\n").is_err());
        assert!(parse("PROGRAM t\nDO i = 1, n\nEND\n").is_err()); // missing ENDDO
        assert!(parse("PROGRAM t\nIF (x .eq. 1)\nENDIF\nEND\n").is_err()); // missing THEN
    }
}
