//! The generic gather–compute–scatter reduction kernel, in all five
//! system variants.
//!
//! Each iteration walks the effective interaction list: a *flux* is
//! computed from the two endpoint values and accumulated into both
//! (`+` into the higher endpoint, `-` into the lower, like umesh's edge
//! relaxation), then every element absorbs its accumulator. The flux
//! weight `kappa` is sized from the hottest element's degree so the
//! relaxation is a contraction for every generated structure.
//!
//! All parallel builds use the fixed-order **owner-side** reduction
//! (the owner of element `i` recomputes each of `i`'s incident fluxes
//! from the coherent start-of-iteration values, in global list order),
//! so seq, Tmk base, Tmk optimized, Tmk adaptive, and CHAOS agree
//! **bitwise** on every scenario — the contract `table_synth` asserts
//! across the whole grid.

use std::collections::HashMap;

use parking_lot::Mutex;
use rsd::{Dim, Rsd};
use sdsm_core::{
    validate, AccessType, Cluster, ClusterPool, Desc, DsmConfig, RegionRef, Validator,
};
use simnet::{MsgKind, SimTime};

use apps::harness::Capture;
use apps::report::{RunReport, SystemKind};
use apps::work;
use chaos::{
    block_partition, gather, inspector, ChaosWorld, Ghosted, Partition, TTable, TTableCache,
    TTableKind,
};

use crate::{Dynamics, SynthConfig, SynthWorld, TmkMode};

/// Barrier-site phase tag of the end-of-iteration barrier (see
/// `apps::phases` for the idea). Under [`Dynamics::Alternating`] the
/// tag is split by iteration parity — the two interleaved lists are two
/// distinct sites, exactly like a classic app's alternating barriers.
pub const PHASE_ITER: u32 = 2;

/// Barrier-site phase tag of the post-rebuild barrier (parity-split
/// under [`Dynamics::Alternating`], like [`PHASE_ITER`]).
pub const PHASE_REMAP: u32 = 4;

/// Modeled cost of one incident-flux evaluation (per visit; cross-block
/// pairs are evaluated by both endpoint owners, as in umesh).
pub const REF_US: f64 = 20.0;

/// Modeled cost of scanning one raw candidate during a list rebuild
/// (divided evenly across processors in the parallel builds).
pub const REMAP_US: f64 = 2.0;

/// One element's contribution from one incident pair, exactly as the
/// sequential sweep applies it.
#[inline]
fn accumulate(acc: &mut f64, node: u32, a: u32, flux: f64) {
    if node == a {
        *acc -= flux;
    } else {
        *acc += flux;
    }
}

/// The sequential reference: real arithmetic, modeled time. In-loop
/// list rebuilds are timed (like moldyn's); the initial build is
/// initialization.
pub fn run_seq(cfg: &SynthConfig, world: &SynthWorld) -> (RunReport, Vec<f64>) {
    let n = cfg.n;
    let mut x = world.x0.clone();
    let mut acc = vec![0.0f64; n];
    let mut time = SimTime::ZERO;
    let mut cur_ver = world.version_of_iter[0];
    for it in 0..cfg.iters {
        let ver = world.version_of_iter[it];
        if ver != cur_ver {
            time += work::t(REMAP_US, cfg.refs);
            cur_ver = ver;
        }
        let list = &world.lists[ver];
        acc.iter_mut().for_each(|a| *a = 0.0);
        for &(a, b) in list {
            let flux = (x[a as usize] - x[b as usize]) * world.kappa;
            acc[a as usize] -= flux;
            acc[b as usize] += flux;
        }
        for (xi, a) in x.iter_mut().zip(&acc) {
            *xi += a;
        }
        time += work::t(REF_US, list.len()) + work::t(work::ZERO_US, 2 * n);
    }
    let checksum = x.iter().map(|v| v.abs()).sum();
    (
        RunReport {
            system: SystemKind::Sequential,
            time,
            seq_time: time,
            messages: 0,
            bytes: 0,
            inspector_s: 0.0,
            untimed_inspector_s: 0.0,
            validate_scan_s: 0.0,
            checksum,
            policy: None,
            net: None,
        },
        x,
    )
}

/// Per-schedule-version, per-processor owner-side work plan,
/// precomputed once (untimed setup) and shared by the Tmk and CHAOS
/// builds.
///
/// A *schedule version* (`sv`) is one distinct (partition epoch, list
/// version) pair, enumerated in first-use order. For every regime
/// except [`Dynamics::Rebalance`] there is exactly one partition, so
/// schedule versions coincide with list versions and the plan is the
/// classic per-list one. A rebalance re-cuts the partition mid-run
/// without touching the list, producing a second schedule version over
/// the *same* list — the stale-schedule case CHAOS must detect and
/// re-inspect its way out of.
pub(crate) struct Plan {
    /// Distinct data partitions, in epoch order. All ascending-
    /// contiguous (identity remap), so `range_of` speaks original
    /// element ids — the kernels index the shared array with it.
    pub parts: Vec<Partition>,
    /// Per iteration: its schedule version.
    pub sv_of_iter: Vec<usize>,
    /// Per schedule version: index into [`Plan::parts`].
    pub sv_part: Vec<usize>,
    /// `flat[sv][q]`: proc `q`'s owned incident pairs under schedule
    /// version `sv`, concatenated in global list order.
    pub flat: Vec<Vec<Vec<(u32, u32)>>>,
    /// `deg[sv][q][li]`: incident count of `q`'s `li`-th owned element.
    pub deg: Vec<Vec<Vec<usize>>>,
    /// Capacity of one processor's shared-list section, in pairs.
    pub cap_pp: usize,
}

/// The re-cut partition a [`Dynamics::Rebalance`] switches to: every
/// interior block boundary slides forward by half a block, so roughly
/// half of each processor's elements change owner while ownership stays
/// ascending-contiguous (identity remap — the kernels' indexing
/// contract, see [`Plan::parts`]).
fn rebalanced_partition(n: usize, nprocs: usize) -> Partition {
    let base = block_partition(n, nprocs);
    let shift = ((n / nprocs) / 2).max(1);
    let mut starts = base.starts.clone();
    for (s, &b) in starts[1..nprocs].iter_mut().zip(&base.starts[1..nprocs]) {
        *s = (b + shift).min(n);
    }
    for p in 1..=nprocs {
        starts[p] = starts[p].max(starts[p - 1]);
    }
    let mut owner = vec![0usize; n];
    for p in 0..nprocs {
        owner[starts[p]..starts[p + 1]].fill(p);
    }
    Partition::from_owners(owner, nprocs)
}

pub(crate) fn plan(cfg: &SynthConfig, world: &SynthWorld) -> Plan {
    let n = cfg.n;
    let nprocs = cfg.nprocs;
    let mut parts = vec![block_partition(n, nprocs)];
    if cfg.dynamics.partition_epochs(cfg.iters) == 2 {
        parts.push(rebalanced_partition(n, nprocs));
    }

    // Schedule versions: distinct (partition epoch, list version)
    // pairs in first-use order.
    let mut sv_of_iter = Vec::with_capacity(cfg.iters);
    let mut sv_part: Vec<usize> = Vec::new();
    let mut sv_list: Vec<usize> = Vec::new();
    let mut seen: HashMap<(usize, usize), usize> = HashMap::new();
    for it in 0..cfg.iters {
        let pe = cfg.dynamics.partition_epoch(it);
        let lv = world.version_of_iter[it];
        let sv = *seen.entry((pe, lv)).or_insert_with(|| {
            sv_part.push(pe);
            sv_list.push(lv);
            sv_part.len() - 1
        });
        sv_of_iter.push(sv);
    }

    let mut incidents: Vec<Vec<Vec<(u32, u32)>>> = Vec::with_capacity(world.lists.len());
    for list in &world.lists {
        let mut incident: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &(a, b) in list {
            incident[a as usize].push((a, b));
            incident[b as usize].push((a, b));
        }
        incidents.push(incident);
    }
    let mut flat = Vec::with_capacity(sv_part.len());
    let mut deg = Vec::with_capacity(sv_part.len());
    for sv in 0..sv_part.len() {
        let part = &parts[sv_part[sv]];
        let incident = &incidents[sv_list[sv]];
        let mut vflat = Vec::with_capacity(nprocs);
        let mut vdeg = Vec::with_capacity(nprocs);
        for q in 0..nprocs {
            let r = part.range_of(q);
            let mut f = Vec::new();
            let mut d = Vec::with_capacity(r.len());
            for i in r {
                d.push(incident[i].len());
                f.extend_from_slice(&incident[i]);
            }
            vflat.push(f);
            vdeg.push(d);
        }
        flat.push(vflat);
        deg.push(vdeg);
    }
    let cap_pp = flat
        .iter()
        .flat_map(|v| v.iter().map(Vec::len))
        .max()
        .unwrap_or(0)
        + 1;
    Plan {
        parts,
        sv_of_iter,
        sv_part,
        flat,
        deg,
        cap_pp,
    }
}

/// The kernel on the DSM: base / optimized / adaptive, selected by
/// `mode` exactly as in the three classic apps.
pub fn run_tmk(
    cfg: &SynthConfig,
    world: &SynthWorld,
    mode: TmkMode,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let (report, x, _) = run_tmk_counted(cfg, world, mode, seq_time);
    (report, x)
}

/// Barrier-metadata scaling probe: run the plain-Tmk kernel and report
/// the leader-counted write-notice payload bytes of the timed region
/// (`simnet::Net::notice_meta_bytes`, billed once per barrier, not per
/// fan-in/fan-out copy). `table_synth` runs the same fixed-size
/// workload at two cluster sizes and asserts the figure stays
/// ~linear in nprocs — the flat-digest + sparse-clock contract.
pub fn notice_meta_probe(cfg: &SynthConfig, world: &SynthWorld) -> u64 {
    run_tmk_counted(cfg, world, TmkMode::Base, SimTime::ZERO).2
}

thread_local! {
    /// Recycled clusters for the reusable-scratch path (one pool per
    /// executor thread, so serving workers never contend on it). Only
    /// [`run_tmk_prepared`] with `reuse = true` touches it; every other
    /// entry point builds a cold cluster, exactly as before.
    static CLUSTERS: ClusterPool = const { ClusterPool::new() };
}

fn run_tmk_counted(
    cfg: &SynthConfig,
    world: &SynthWorld,
    mode: TmkMode,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>, u64) {
    run_tmk_prepared(cfg, world, &plan(cfg, world), mode, seq_time, false)
}

/// The Tmk kernel against a prebuilt [`Plan`] — the shared-setup entry
/// the serve driver uses via [`crate::Prepared`]. With `reuse`, the
/// cluster is checked out of (and recycled back into) a thread-local
/// [`ClusterPool`] instead of being built and dropped per run.
pub(crate) fn run_tmk_prepared(
    cfg: &SynthConfig,
    world: &SynthWorld,
    pl: &Plan,
    mode: TmkMode,
    seq_time: SimTime,
    reuse: bool,
) -> (RunReport, Vec<f64>, u64) {
    let n = cfg.n;
    let nprocs = cfg.nprocs;
    let cap_pp = pl.cap_pp;

    let dsm_cfg = DsmConfig {
        nprocs,
        page_size: cfg.page_size,
        cost: cfg.cost.clone(),
    };
    let cl = if reuse {
        CLUSTERS.with(|p| p.checkout(&dsm_cfg))
    } else {
        Cluster::new(dsm_cfg)
    };
    cl.net().set_label(&cfg.label());
    let x = cl.alloc::<f64>(n);
    let ilist = cl.alloc::<i32>(2 * cap_pp * nprocs);

    let cap = Capture::new(nprocs);

    // Phase identity of the kernel's two barrier sites: constant tags
    // normally; split by iteration parity for the alternating cell so
    // its two interleaved lists register as two plans.
    let alternating = cfg.dynamics == Dynamics::Alternating;
    let site = move |base: u32, it: usize| {
        if alternating {
            base + (it % 2) as u32
        } else {
            base
        }
    };

    cl.run(|p| {
        if mode.is_adaptive() {
            let knobs = adapt::AdaptConfig {
                push: mode == TmkMode::Push,
                ..cfg.adapt.clone()
            };
            p.set_policy(Box::new(adapt::AdaptivePolicy::new(knobs)));
        }
        let me = p.rank();
        let mut cur_sv = pl.sv_of_iter[0];
        let mut my = pl.parts[pl.sv_part[cur_sv]].range_of(me);
        let my_start = me * cap_pp;
        let mut v = if mode == TmkMode::Optimized {
            Validator::incremental()
        } else {
            Validator::new()
        };
        let mut acc = vec![0.0f64; my.len()];

        // Writes this processor's current incident section into the
        // shared list (1-based entries, Fortran-style like the apps).
        let write_section = |p: &mut sdsm_core::TmkProc, sec: &[(u32, u32)]| {
            for (k, &(a, b)) in sec.iter().enumerate() {
                let flat = 2 * (my_start + k);
                p.write(&ilist, flat, a as i32 + 1);
                p.write(&ilist, flat + 1, b as i32 + 1);
            }
        };

        // --- untimed init: own x block + version-0 incident section ---
        for i in my.clone() {
            p.write(&x, i, world.x0[i]);
        }
        write_section(p, &pl.flat[cur_sv][me]);
        // The init barrier covers iteration 0's reads, i.e. it stands
        // where the end-of-iteration barrier of a (virtual) iteration
        // −1 would: same site, so that phase's event axis starts here.
        p.barrier_tagged(site(PHASE_ITER, 1));
        p.start_timed_region();
        p.reset_counters();

        for it in 0..cfg.iters {
            let sv = pl.sv_of_iter[it];
            if sv != cur_sv {
                // Rebuild: regenerate (balanced candidate scan) and
                // rewrite this processor's section of the shared list.
                // A partition re-cut (rebalance) lands here too: the
                // owned ranges move, but the DSM keeps the value array
                // coherent, so only the local views change hands.
                write_section(p, &pl.flat[sv][me]);
                p.compute(work::t(REMAP_US, cfg.refs / nprocs));
                p.barrier_tagged(site(PHASE_REMAP, it));
                if pl.sv_part[sv] != pl.sv_part[cur_sv] {
                    my = pl.parts[pl.sv_part[sv]].range_of(me);
                    acc = vec![0.0f64; my.len()];
                }
                cur_sv = sv;
            }
            let my_flat = pl.flat[sv][me].len();
            if mode == TmkMode::Optimized && my_flat > 0 {
                validate(
                    p,
                    &mut v,
                    &[
                        // Endpoint reads through the current list section.
                        Desc::Indirect {
                            data: RegionRef::of(&x),
                            ind: ilist,
                            ind_dims: vec![2, cap_pp * nprocs],
                            section: Rsd::new(vec![
                                Dim::dense(1, 2),
                                Dim::dense(my_start as i64 + 1, (my_start + my_flat) as i64),
                            ]),
                            access: AccessType::Read,
                            sched: 1,
                        },
                        // The owner-side x update over my block.
                        Desc::Direct {
                            data: RegionRef::of(&x),
                            section: Rsd::dense1(my.start as i64 + 1, my.end as i64),
                            access: AccessType::ReadWriteAll,
                            sched: 2,
                        },
                    ],
                );
            }
            // Fixed-order owner-side accumulation.
            acc.iter_mut().for_each(|a| *a = 0.0);
            let mut k = my_start;
            for (li, i) in my.clone().enumerate() {
                for _ in 0..pl.deg[sv][me][li] {
                    let a = p.read(&ilist, 2 * k) as u32 - 1;
                    let b = p.read(&ilist, 2 * k + 1) as u32 - 1;
                    let flux = (p.read(&x, a as usize) - p.read(&x, b as usize)) * world.kappa;
                    accumulate(&mut acc[li], i as u32, a, flux);
                    k += 1;
                }
            }
            p.compute(work::t(REF_US, my_flat) + work::t(work::ZERO_US, 2 * my.len()));

            // Owner-only update from coherent start-of-iteration values.
            for (li, i) in my.clone().enumerate() {
                let cur = p.read(&x, i);
                p.write(&x, i, cur + acc[li]);
            }
            p.barrier_tagged(site(PHASE_ITER, it));
        }

        cap.freeze_tmk(me, &cl);
        cap.set_scan(me, v.scan_seconds());
        p.barrier();
    });

    let policy = mode.is_adaptive().then(|| cl.net().policy_report());

    let final_x: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n]);
    cl.run(|p| {
        if p.rank() == 0 {
            let mut out = final_x.lock();
            for i in 0..n {
                out[i] = p.read(&x, i);
            }
        }
    });
    let final_x = final_x.into_inner();
    let checksum = final_x.iter().map(|v| v.abs()).sum();
    let notice_bytes = cl.net().notice_meta_bytes();
    if reuse {
        CLUSTERS.with(|p| p.checkin(cl));
    }
    (
        cap.report(mode.system_kind(), seq_time, checksum, policy),
        final_x,
        notice_bytes,
    )
}

/// The kernel under CHAOS: inspector at start (untimed) and again after
/// every list change (timed, like moldyn's rebuilds); gather endpoint
/// values per iteration; owner-side accumulation needs no scatter.
pub fn run_chaos(
    cfg: &SynthConfig,
    world: &SynthWorld,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let pl = plan(cfg, world);
    let tts: Vec<TTable> = pl
        .parts
        .iter()
        .map(|part| TTable::new(TTableKind::Replicated, part))
        .collect();
    run_chaos_prepared(cfg, world, &pl, &tts, seq_time)
}

/// The CHAOS kernel against a prebuilt [`Plan`] and its translation
/// tables (one per partition epoch) — the shared-setup entry
/// [`crate::Prepared`] uses (the replicated `TTable`s are immutable, so
/// every instance of a scenario shares them).
pub(crate) fn run_chaos_prepared(
    cfg: &SynthConfig,
    world: &SynthWorld,
    pl: &Plan,
    tts: &[TTable],
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let n = cfg.n;
    let nprocs = cfg.nprocs;

    let w = ChaosWorld::new(nprocs, cfg.cost.clone());
    w.net().set_label(&cfg.label());
    let cap = Capture::new(nprocs);
    let finals: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());

    w.run(|cp| {
        let me = cp.rank();
        let mut cur_sv = pl.sv_of_iter[0];
        let mut pe = pl.sv_part[cur_sv];
        let mut my = pl.parts[pe].range_of(me);
        let mut cache = TTableCache::new();
        let mut x_own: Vec<f64> = world.x0[my.clone()].to_vec();

        let resolve = |sec: &[(u32, u32)], sched: &chaos::CommSchedule, tt: &TTable| {
            sec.iter()
                .map(|&(a, b)| {
                    let (oa, fa) = tt.translate_free(a);
                    let (ob, fb) = tt.translate_free(b);
                    (sched.locate(me, oa, fa), sched.locate(me, ob, fb))
                })
                .collect::<Vec<_>>()
        };

        // --- untimed: the inspector for the initial list ---
        let t0 = cp.now();
        let mut sched = inspector(
            cp,
            &tts[pe],
            &mut cache,
            pl.flat[cur_sv][me].iter().flat_map(|&(a, b)| [a, b]),
        );
        cap.set_untimed_inspector(me, (cp.now() - t0).as_secs_f64());
        let mut locs = resolve(&pl.flat[cur_sv][me], &sched, &tts[pe]);

        cp.start_timed_region();
        let mut insp_in_region = 0.0f64;

        for it in 0..cfg.iters {
            let sv = pl.sv_of_iter[it];
            if sv != cur_sv {
                // The schedule went stale: either the list changed, or
                // (rebalance) the partition was re-cut under an
                // unchanged list. Either way CHAOS regenerates
                // (balanced candidate scan) and pays inspection inside
                // the timed region.
                cp.compute(work::t(REMAP_US, cfg.refs / nprocs));
                let new_pe = pl.sv_part[sv];
                if new_pe != pe {
                    // Partition re-cut: first migrate owned values to
                    // their new homes (bulk exchange, ascending global
                    // element id per pair — deterministic, and the f64
                    // payloads move verbatim, so results stay bitwise).
                    let old_part = &pl.parts[pe];
                    let new_part = &pl.parts[new_pe];
                    let new_my = new_part.range_of(me);
                    let out: Vec<(usize, Vec<f64>)> = (0..nprocs)
                        .filter(|&q| q != me)
                        .map(|q| {
                            let vals: Vec<f64> = my
                                .clone()
                                .filter(|&e| new_part.owner[e] == q)
                                .map(|e| x_own[e - my.start])
                                .collect();
                            (q, vals)
                        })
                        .filter(|(_, vals)| !vals.is_empty())
                        .collect();
                    let incoming = cp.exchange_f64(MsgKind::Scatter, out);
                    let mut new_x = vec![0.0f64; new_my.len()];
                    for e in new_my.clone() {
                        if old_part.owner[e] == me {
                            new_x[e - new_my.start] = x_own[e - my.start];
                        }
                    }
                    for (from, vals) in incoming {
                        let mut vi = 0;
                        for e in new_my.clone() {
                            if old_part.owner[e] == from {
                                new_x[e - new_my.start] = vals[vi];
                                vi += 1;
                            }
                        }
                        debug_assert_eq!(vi, vals.len());
                    }
                    x_own = new_x;
                    my = new_my;
                    // Then pay inspection again, auditable as such.
                    let t0 = cp.now();
                    sched = chaos::reinspect(
                        cp,
                        &tts[new_pe],
                        &mut cache,
                        pl.flat[sv][me].iter().flat_map(|&(a, b)| [a, b]),
                    );
                    insp_in_region += (cp.now() - t0).as_secs_f64();
                    pe = new_pe;
                } else {
                    let t0 = cp.now();
                    sched = inspector(
                        cp,
                        &tts[pe],
                        &mut cache,
                        pl.flat[sv][me].iter().flat_map(|&(a, b)| [a, b]),
                    );
                    insp_in_region += (cp.now() - t0).as_secs_f64();
                }
                locs = resolve(&pl.flat[sv][me], &sched, &tts[pe]);
                cur_sv = sv;
            }
            let my_flat = pl.flat[sv][me].len();

            let mut xg = Ghosted::new(x_own.clone(), &sched);
            gather(cp, &sched, &mut xg);

            let mut acc = vec![0.0f64; my.len()];
            let mut k = 0usize;
            for (li, i) in my.clone().enumerate() {
                for _ in 0..pl.deg[sv][me][li] {
                    let (la, lb) = locs[k];
                    let (a, _) = pl.flat[sv][me][k];
                    let flux = (xg.get(la) - xg.get(lb)) * world.kappa;
                    accumulate(&mut acc[li], i as u32, a, flux);
                    k += 1;
                }
            }
            cp.compute(work::t(REF_US, my_flat) + work::t(work::ZERO_US, 2 * my.len()));
            for (xi, a) in x_own.iter_mut().zip(&acc) {
                *xi += a;
            }
            cp.sync();
        }

        cap.freeze_chaos(cp);
        cap.set_inspector(me, insp_in_region);
        finals.lock().push((me, x_own));
    });

    // Assemble under the partition the run *ended* on — after a
    // rebalance each processor's final block is its re-cut range.
    let last_part = &pl.parts[pl.sv_part[pl.sv_of_iter[cfg.iters - 1]]];
    let mut final_x = vec![0.0f64; n];
    for (me, block) in finals.into_inner() {
        final_x[last_part.range_of(me)].copy_from_slice(&block);
    }
    let checksum = final_x.iter().map(|v| v.abs()).sum();
    (
        cap.report(SystemKind::Chaos, seq_time, checksum, None),
        final_x,
    )
}
