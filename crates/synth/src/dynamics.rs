//! Indirection-array dynamics: *when and how* the interaction list
//! changes over the run. This axis is what separates the paper's three
//! kernels (nbf: static; moldyn: periodic wholesale rebuild) and what
//! the adaptive engine's need-gap predictor feeds on — including the
//! multi-periodic interleavings no fixed app exercises.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::structure::Structure;

/// How the indirection array evolves across iterations.
#[derive(Debug, Clone, PartialEq)]
pub enum Dynamics {
    /// The list never changes (nbf's regime: inspector amortizes
    /// perfectly, CHAOS should win).
    Static,
    /// The whole list is regenerated every `period` iterations
    /// (moldyn's regime, parameterized).
    PeriodicRemap { period: usize },
    /// Incremental drift: every iteration, `per_mille`/1000 of the raw
    /// candidate pairs are rewritten — the list is never stable, but
    /// most of it survives each step.
    Drift { per_mille: u32 },
    /// Two halves of the list remapping on different periods — the
    /// multi-periodic need-gap pattern from the ROADMAP's untested
    /// adaptive directions (e.g. period 3 interleaved with period 5).
    MultiPeriodic { p1: usize, p2: usize },
    /// Iterations alternate between two fixed lists: A, B, A, B, … —
    /// the **two-phase multi-barrier regime** of the classic apps
    /// (coordinate pages at one barrier, force chunks at the next) in
    /// isolation. Each parity reads a different page set, so
    /// consecutive barrier picks always differ and a globally-keyed
    /// quiesce streak provably never fires; the kernel tags its
    /// barriers per parity, and the phase-keyed engine locks both.
    Alternating,
}

impl Dynamics {
    /// Short tag for scenario labels.
    pub fn tag(&self) -> String {
        match self {
            Dynamics::Static => "static".into(),
            Dynamics::PeriodicRemap { period } => format!("remap{period}"),
            Dynamics::Drift { per_mille } => format!("drift{per_mille}"),
            Dynamics::MultiPeriodic { p1, p2 } => format!("multi{p1}x{p2}"),
            Dynamics::Alternating => "alt2".into(),
        }
    }

    /// A value that changes exactly when the effective list changes.
    /// Iterations are 0-based; iteration 0 always has version
    /// `self.version(0)` built untimed during initialization.
    pub fn version(&self, iter: usize) -> u64 {
        match *self {
            Dynamics::Static => 0,
            Dynamics::PeriodicRemap { period } => (iter / period) as u64,
            Dynamics::Drift { .. } => iter as u64,
            Dynamics::MultiPeriodic { p1, p2 } => (((iter / p1) as u64) << 32) | (iter / p2) as u64,
            Dynamics::Alternating => (iter % 2) as u64,
        }
    }

    /// Does the list change at (the start of) `iter`, relative to
    /// `iter - 1`? Iteration 0 is the untimed initial build.
    pub fn remaps_at(&self, iter: usize) -> bool {
        iter > 0 && self.version(iter) != self.version(iter - 1)
    }
}

/// SplitMix-style mixer for deriving per-version generator seeds.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw candidate list in force at `iter` (before [`normalize`]):
/// a pure function of `(structure, dynamics, n, refs, seed, iter)`, so
/// every variant sees the identical structure with no shared state.
///
/// [`normalize`]: crate::structure::normalize
pub fn raw_for_iter(
    structure: &Structure,
    dynamics: &Dynamics,
    n: usize,
    refs: usize,
    seed: u64,
    iter: usize,
) -> Vec<(u32, u32)> {
    match *dynamics {
        Dynamics::Static => structure.gen_raw(n, refs, seed),
        Dynamics::PeriodicRemap { period } => {
            structure.gen_raw(n, refs, mix(seed, (iter / period) as u64))
        }
        Dynamics::Drift { per_mille } => {
            let mut raw = structure.gen_raw(n, refs, seed);
            for round in 1..=iter {
                drift_round(structure, &mut raw, n, seed, round, per_mille);
            }
            raw
        }
        Dynamics::MultiPeriodic { p1, p2 } => {
            let half = refs / 2;
            let mut raw =
                structure.gen_raw(n, half, mix(seed ^ 0x5150, (iter / p1) as u64));
            raw.extend(structure.gen_raw(
                n,
                refs - half,
                mix(seed ^ 0xA0A0, (iter / p2) as u64),
            ));
            raw
        }
        Dynamics::Alternating => {
            structure.gen_raw(n, refs, mix(seed ^ 0xA172, (iter % 2) as u64))
        }
    }
}

/// One drift round applied in place: rewrite `per_mille`/1000 of the
/// raw candidates, deterministically in `(seed, round)`. Exposed so
/// `gen_world` can evolve a drift list incrementally — round `r` builds
/// on round `r-1` — instead of replaying every round from scratch per
/// iteration (which made setup quadratic in iteration count).
pub fn drift_round(
    structure: &Structure,
    raw: &mut [(u32, u32)],
    n: usize,
    seed: u64,
    round: usize,
    per_mille: u32,
) {
    let refs = raw.len();
    let k = (refs * per_mille as usize / 1000).max(1);
    let mut rng = StdRng::seed_from_u64(mix(seed, round as u64));
    for _ in 0..k {
        let at = rng.gen_range(0..refs);
        raw[at] = structure.gen_pair(n, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::normalize;

    const S: Structure = Structure::Uniform;

    #[test]
    fn version_schedules() {
        let d = Dynamics::PeriodicRemap { period: 3 };
        let versions: Vec<u64> = (0..10).map(|i| d.version(i)).collect();
        assert_eq!(versions, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        assert!(!d.remaps_at(0));
        assert!(d.remaps_at(3) && d.remaps_at(6) && d.remaps_at(9));
        assert!(!d.remaps_at(4));

        assert_eq!(Dynamics::Static.version(99), 0);
        assert!(Dynamics::Drift { per_mille: 10 }.remaps_at(1));
    }

    #[test]
    fn multi_periodic_changes_on_either_period() {
        let d = Dynamics::MultiPeriodic { p1: 3, p2: 5 };
        let remaps: Vec<usize> = (1..16).filter(|&i| d.remaps_at(i)).collect();
        assert_eq!(remaps, vec![3, 5, 6, 9, 10, 12, 15]);
    }

    #[test]
    fn static_list_is_constant_and_remap_changes_it() {
        let a = raw_for_iter(&S, &Dynamics::Static, 256, 512, 1, 0);
        let b = raw_for_iter(&S, &Dynamics::Static, 256, 512, 1, 7);
        assert_eq!(a, b);
        let d = Dynamics::PeriodicRemap { period: 2 };
        let v0 = raw_for_iter(&S, &d, 256, 512, 1, 1);
        let v1 = raw_for_iter(&S, &d, 256, 512, 1, 2);
        assert_ne!(v0, v1);
        assert_eq!(v1, raw_for_iter(&S, &d, 256, 512, 1, 3));
    }

    #[test]
    fn drift_changes_little_per_iteration() {
        let d = Dynamics::Drift { per_mille: 20 };
        let a = raw_for_iter(&S, &d, 256, 1000, 1, 4);
        let b = raw_for_iter(&S, &d, 256, 1000, 1, 5);
        let changed = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(changed > 0, "drift must change something");
        assert!(changed <= 20, "drift changed {changed} > 2% of refs");
        // Cumulative application is deterministic.
        assert_eq!(b, raw_for_iter(&S, &d, 256, 1000, 1, 5));
    }

    #[test]
    fn multi_periodic_halves_move_independently() {
        let d = Dynamics::MultiPeriodic { p1: 3, p2: 5 };
        let half = 500;
        // Iter 3: p1 half remapped, p2 half unchanged (vs iter 2).
        let a = raw_for_iter(&S, &d, 256, 1000, 1, 2);
        let b = raw_for_iter(&S, &d, 256, 1000, 1, 3);
        assert_ne!(a[..half], b[..half]);
        assert_eq!(a[half..], b[half..]);
        // Iter 5: p2 half remapped, p1 half unchanged (vs iter 4).
        let c = raw_for_iter(&S, &d, 256, 1000, 1, 4);
        let e = raw_for_iter(&S, &d, 256, 1000, 1, 5);
        assert_eq!(c[..half], e[..half]);
        assert_ne!(c[half..], e[half..]);
    }

    #[test]
    fn alternating_reuses_exactly_two_lists() {
        let d = Dynamics::Alternating;
        let versions: Vec<u64> = (0..8).map(|i| d.version(i)).collect();
        assert_eq!(versions, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!((1..8).all(|i| d.remaps_at(i)), "every iteration flips");
        let a0 = raw_for_iter(&S, &d, 256, 512, 1, 0);
        let b1 = raw_for_iter(&S, &d, 256, 512, 1, 1);
        assert_ne!(a0, b1, "the two lists differ");
        assert_eq!(a0, raw_for_iter(&S, &d, 256, 512, 1, 2), "A repeats");
        assert_eq!(b1, raw_for_iter(&S, &d, 256, 512, 1, 3), "B repeats");
    }

    #[test]
    fn normalized_lists_nonempty_for_all_dynamics() {
        for d in [
            Dynamics::Static,
            Dynamics::PeriodicRemap { period: 3 },
            Dynamics::Drift { per_mille: 10 },
            Dynamics::MultiPeriodic { p1: 3, p2: 5 },
            Dynamics::Alternating,
        ] {
            for it in 0..8 {
                assert!(!normalize(&raw_for_iter(&S, &d, 128, 400, 9, it)).is_empty());
            }
        }
    }
}
