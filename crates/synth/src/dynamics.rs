//! Indirection-array dynamics: *when and how* the interaction list
//! changes over the run. This axis is what separates the paper's three
//! kernels (nbf: static; moldyn: periodic wholesale rebuild) and what
//! the adaptive engine's need-gap predictor feeds on — including the
//! multi-periodic interleavings no fixed app exercises.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::structure::Structure;

/// How the indirection array evolves across iterations.
#[derive(Debug, Clone, PartialEq)]
pub enum Dynamics {
    /// The list never changes (nbf's regime: inspector amortizes
    /// perfectly, CHAOS should win).
    Static,
    /// The whole list is regenerated every `period` iterations
    /// (moldyn's regime, parameterized).
    PeriodicRemap { period: usize },
    /// Incremental drift: every iteration, `per_mille`/1000 of the raw
    /// candidate pairs are rewritten — the list is never stable, but
    /// most of it survives each step.
    Drift { per_mille: u32 },
    /// Two halves of the list remapping on different periods — the
    /// multi-periodic need-gap pattern from the ROADMAP's untested
    /// adaptive directions (e.g. period 3 interleaved with period 5).
    MultiPeriodic { p1: usize, p2: usize },
    /// Iterations alternate between two fixed lists: A, B, A, B, … —
    /// the **two-phase multi-barrier regime** of the classic apps
    /// (coordinate pages at one barrier, force chunks at the next) in
    /// isolation. Each parity reads a different page set, so
    /// consecutive barrier picks always differ and a globally-keyed
    /// quiesce streak provably never fires; the kernel tags its
    /// barriers per parity, and the phase-keyed engine locks both.
    Alternating,
    /// A **regime break**: the run follows `from` strictly before
    /// iteration `at`, then switches to `to` (with a salted seed, so
    /// the list changes at the break even when both sides name the
    /// same regime) — at an iteration no learner was told about. This
    /// is the churn axis the adaptive engine's probe budget bounds.
    /// Sides must be plain regimes (no nesting, no [`Dynamics::Rebalance`],
    /// and no [`Dynamics::Alternating`] — parity phase tagging is a
    /// whole-run property).
    RegimeShift {
        /// First iteration governed by `to`.
        at: u32,
        /// Regime in force for iterations `0..at`.
        from: Box<Dynamics>,
        /// Regime in force from iteration `at` on.
        to: Box<Dynamics>,
    },
    /// A mid-run **partition rebalance**: the list itself is static,
    /// but at iteration `at` every element's owner is re-cut (the
    /// block partition rotates by one processor). The list versions
    /// never change, so CHAOS's amortized `Partition`/`CommSchedule`
    /// goes stale silently — it must detect that, migrate owned data,
    /// and re-pay inspection; the Tmk variants just write/fetch their
    /// new sections through the DSM.
    Rebalance {
        /// First iteration under the re-cut partition.
        at: u32,
    },
}

impl Dynamics {
    /// Short tag for scenario labels.
    pub fn tag(&self) -> String {
        match self {
            Dynamics::Static => "static".into(),
            Dynamics::PeriodicRemap { period } => format!("remap{period}"),
            Dynamics::Drift { per_mille } => format!("drift{per_mille}"),
            Dynamics::MultiPeriodic { p1, p2 } => format!("multi{p1}x{p2}"),
            Dynamics::Alternating => "alt2".into(),
            Dynamics::RegimeShift { at, from, to } => {
                format!("shift{at}:{}>{}", from.tag(), to.tag())
            }
            Dynamics::Rebalance { at } => format!("rebal{at}"),
        }
    }

    /// A value that changes exactly when the effective list changes.
    /// Iterations are 0-based; iteration 0 always has version
    /// `self.version(0)` built untimed during initialization.
    pub fn version(&self, iter: usize) -> u64 {
        match self {
            Dynamics::Static => 0,
            Dynamics::PeriodicRemap { period } => (iter / period) as u64,
            Dynamics::Drift { .. } => iter as u64,
            Dynamics::MultiPeriodic { p1, p2 } => {
                (((iter / p1) as u64) << 32) | (iter / p2) as u64
            }
            Dynamics::Alternating => (iter % 2) as u64,
            // The high bit separates the two sides' version spaces, so
            // the break is a version change even when `to` restarts its
            // own numbering at 0 (side versions stay below 2^63: packed
            // iteration counters, never full-width hashes).
            Dynamics::RegimeShift { at, from, to } => {
                if iter < *at as usize {
                    from.version(iter)
                } else {
                    (1 << 63) | to.version(iter)
                }
            }
            Dynamics::Rebalance { .. } => 0,
        }
    }

    /// Does the list change at (the start of) `iter`, relative to
    /// `iter - 1`? Iteration 0 is the untimed initial build.
    pub fn remaps_at(&self, iter: usize) -> bool {
        iter > 0 && self.version(iter) != self.version(iter - 1)
    }

    /// The partition epoch in force at `iter`: 0 until a
    /// [`Dynamics::Rebalance`] re-cut fires, 1 after. Every other
    /// regime keeps a single partition for the whole run.
    pub fn partition_epoch(&self, iter: usize) -> usize {
        match self {
            Dynamics::Rebalance { at } => usize::from(iter >= *at as usize),
            _ => 0,
        }
    }

    /// Number of distinct partition epochs a run of `iters` iterations
    /// sees (2 iff a rebalance actually fires inside the run).
    pub fn partition_epochs(&self, iters: usize) -> usize {
        match self {
            Dynamics::Rebalance { at } if (*at as usize) < iters => 2,
            _ => 1,
        }
    }

    /// Does the partition re-cut at (the start of) `iter`?
    pub fn rebalances_at(&self, iter: usize) -> bool {
        iter > 0 && self.partition_epoch(iter) != self.partition_epoch(iter - 1)
    }

    /// Is this one of the churn regimes (a mid-run break no learner
    /// was told about)? Steady-state acceptance bars (adaptive ≤ base
    /// per cell) relax to the probe-budget bound exactly here.
    pub fn is_churn(&self) -> bool {
        matches!(
            self,
            Dynamics::RegimeShift { .. } | Dynamics::Rebalance { .. }
        )
    }

    /// Panic on regimes the kernel cannot schedule: `RegimeShift`
    /// sides must be plain (nesting would need recursive version
    /// salting, and `Alternating` drives whole-run parity phase tags).
    pub fn validate(&self) {
        if let Dynamics::RegimeShift { from, to, .. } = self {
            for side in [from.as_ref(), to.as_ref()] {
                assert!(
                    !matches!(
                        side,
                        Dynamics::RegimeShift { .. }
                            | Dynamics::Rebalance { .. }
                            | Dynamics::Alternating
                    ),
                    "RegimeShift sides must be plain regimes, got {}",
                    side.tag()
                );
            }
        }
    }
}

/// SplitMix-style mixer for deriving per-version generator seeds.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw candidate list in force at `iter` (before [`normalize`]):
/// a pure function of `(structure, dynamics, n, refs, seed, iter)`, so
/// every variant sees the identical structure with no shared state.
///
/// [`normalize`]: crate::structure::normalize
pub fn raw_for_iter(
    structure: &Structure,
    dynamics: &Dynamics,
    n: usize,
    refs: usize,
    seed: u64,
    iter: usize,
) -> Vec<(u32, u32)> {
    match dynamics {
        Dynamics::Static => structure.gen_raw(n, refs, seed),
        Dynamics::PeriodicRemap { period } => {
            structure.gen_raw(n, refs, mix(seed, (iter / period) as u64))
        }
        Dynamics::Drift { per_mille } => {
            let mut raw = structure.gen_raw(n, refs, seed);
            for round in 1..=iter {
                drift_round(structure, &mut raw, n, seed, round, *per_mille);
            }
            raw
        }
        Dynamics::MultiPeriodic { p1, p2 } => {
            let half = refs / 2;
            let mut raw =
                structure.gen_raw(n, half, mix(seed ^ 0x5150, (iter / p1) as u64));
            raw.extend(structure.gen_raw(
                n,
                refs - half,
                mix(seed ^ 0xA0A0, (iter / p2) as u64),
            ));
            raw
        }
        Dynamics::Alternating => {
            structure.gen_raw(n, refs, mix(seed ^ 0xA172, (iter % 2) as u64))
        }
        Dynamics::RegimeShift { at, from, to } => {
            if iter < *at as usize {
                raw_for_iter(structure, from, n, refs, seed, iter)
            } else {
                // The salted seed makes the break a real list change
                // even for `from == to` (e.g. static → static), and
                // keeps the post-break regime blind to pre-break state.
                raw_for_iter(structure, to, n, refs, mix(seed, 0x5117_F00D), iter)
            }
        }
        Dynamics::Rebalance { .. } => structure.gen_raw(n, refs, seed),
    }
}

/// One drift round applied in place: rewrite `per_mille`/1000 of the
/// raw candidates, deterministically in `(seed, round)`. Exposed so
/// `gen_world` can evolve a drift list incrementally — round `r` builds
/// on round `r-1` — instead of replaying every round from scratch per
/// iteration (which made setup quadratic in iteration count).
pub fn drift_round(
    structure: &Structure,
    raw: &mut [(u32, u32)],
    n: usize,
    seed: u64,
    round: usize,
    per_mille: u32,
) {
    let refs = raw.len();
    let k = (refs * per_mille as usize / 1000).max(1);
    let mut rng = StdRng::seed_from_u64(mix(seed, round as u64));
    for _ in 0..k {
        let at = rng.gen_range(0..refs);
        raw[at] = structure.gen_pair(n, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::normalize;

    const S: Structure = Structure::Uniform;

    #[test]
    fn version_schedules() {
        let d = Dynamics::PeriodicRemap { period: 3 };
        let versions: Vec<u64> = (0..10).map(|i| d.version(i)).collect();
        assert_eq!(versions, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        assert!(!d.remaps_at(0));
        assert!(d.remaps_at(3) && d.remaps_at(6) && d.remaps_at(9));
        assert!(!d.remaps_at(4));

        assert_eq!(Dynamics::Static.version(99), 0);
        assert!(Dynamics::Drift { per_mille: 10 }.remaps_at(1));
    }

    #[test]
    fn multi_periodic_changes_on_either_period() {
        let d = Dynamics::MultiPeriodic { p1: 3, p2: 5 };
        let remaps: Vec<usize> = (1..16).filter(|&i| d.remaps_at(i)).collect();
        assert_eq!(remaps, vec![3, 5, 6, 9, 10, 12, 15]);
    }

    #[test]
    fn static_list_is_constant_and_remap_changes_it() {
        let a = raw_for_iter(&S, &Dynamics::Static, 256, 512, 1, 0);
        let b = raw_for_iter(&S, &Dynamics::Static, 256, 512, 1, 7);
        assert_eq!(a, b);
        let d = Dynamics::PeriodicRemap { period: 2 };
        let v0 = raw_for_iter(&S, &d, 256, 512, 1, 1);
        let v1 = raw_for_iter(&S, &d, 256, 512, 1, 2);
        assert_ne!(v0, v1);
        assert_eq!(v1, raw_for_iter(&S, &d, 256, 512, 1, 3));
    }

    #[test]
    fn drift_changes_little_per_iteration() {
        let d = Dynamics::Drift { per_mille: 20 };
        let a = raw_for_iter(&S, &d, 256, 1000, 1, 4);
        let b = raw_for_iter(&S, &d, 256, 1000, 1, 5);
        let changed = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(changed > 0, "drift must change something");
        assert!(changed <= 20, "drift changed {changed} > 2% of refs");
        // Cumulative application is deterministic.
        assert_eq!(b, raw_for_iter(&S, &d, 256, 1000, 1, 5));
    }

    #[test]
    fn multi_periodic_halves_move_independently() {
        let d = Dynamics::MultiPeriodic { p1: 3, p2: 5 };
        let half = 500;
        // Iter 3: p1 half remapped, p2 half unchanged (vs iter 2).
        let a = raw_for_iter(&S, &d, 256, 1000, 1, 2);
        let b = raw_for_iter(&S, &d, 256, 1000, 1, 3);
        assert_ne!(a[..half], b[..half]);
        assert_eq!(a[half..], b[half..]);
        // Iter 5: p2 half remapped, p1 half unchanged (vs iter 4).
        let c = raw_for_iter(&S, &d, 256, 1000, 1, 4);
        let e = raw_for_iter(&S, &d, 256, 1000, 1, 5);
        assert_eq!(c[..half], e[..half]);
        assert_ne!(c[half..], e[half..]);
    }

    #[test]
    fn alternating_reuses_exactly_two_lists() {
        let d = Dynamics::Alternating;
        let versions: Vec<u64> = (0..8).map(|i| d.version(i)).collect();
        assert_eq!(versions, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!((1..8).all(|i| d.remaps_at(i)), "every iteration flips");
        let a0 = raw_for_iter(&S, &d, 256, 512, 1, 0);
        let b1 = raw_for_iter(&S, &d, 256, 512, 1, 1);
        assert_ne!(a0, b1, "the two lists differ");
        assert_eq!(a0, raw_for_iter(&S, &d, 256, 512, 1, 2), "A repeats");
        assert_eq!(b1, raw_for_iter(&S, &d, 256, 512, 1, 3), "B repeats");
    }

    #[test]
    fn normalized_lists_nonempty_for_all_dynamics() {
        for d in [
            Dynamics::Static,
            Dynamics::PeriodicRemap { period: 3 },
            Dynamics::Drift { per_mille: 10 },
            Dynamics::MultiPeriodic { p1: 3, p2: 5 },
            Dynamics::Alternating,
            Dynamics::RegimeShift {
                at: 4,
                from: Box::new(Dynamics::Static),
                to: Box::new(Dynamics::PeriodicRemap { period: 2 }),
            },
            Dynamics::Rebalance { at: 4 },
        ] {
            for it in 0..8 {
                assert!(!normalize(&raw_for_iter(&S, &d, 128, 400, 9, it)).is_empty());
            }
        }
    }

    #[test]
    fn regime_shift_breaks_exactly_once_even_static_to_static() {
        let d = Dynamics::RegimeShift {
            at: 5,
            from: Box::new(Dynamics::Static),
            to: Box::new(Dynamics::Static),
        };
        d.validate();
        assert_eq!(d.tag(), "shift5:static>static");
        let remaps: Vec<usize> = (1..10).filter(|&i| d.remaps_at(i)).collect();
        assert_eq!(remaps, vec![5], "one break, at the shift point");
        // The break is a real list change: the to-side seed is salted.
        let pre = raw_for_iter(&S, &d, 256, 512, 1, 4);
        let post = raw_for_iter(&S, &d, 256, 512, 1, 5);
        assert_ne!(pre, post);
        assert_eq!(pre, raw_for_iter(&S, &d, 256, 512, 1, 0));
        assert_eq!(post, raw_for_iter(&S, &d, 256, 512, 1, 9));
        // No partition churn on this axis.
        assert_eq!(d.partition_epochs(10), 1);
        assert!(d.is_churn());
    }

    #[test]
    fn regime_shift_delegates_version_schedules_to_both_sides() {
        let d = Dynamics::RegimeShift {
            at: 5,
            from: Box::new(Dynamics::PeriodicRemap { period: 2 }),
            to: Box::new(Dynamics::PeriodicRemap { period: 3 }),
        };
        let remaps: Vec<usize> = (1..12).filter(|&i| d.remaps_at(i)).collect();
        // From-side remaps at 2, 4; the break at 5; to-side at 6, 9.
        assert_eq!(remaps, vec![2, 4, 5, 6, 9]);
        // Side version spaces never collide (high bit separates them).
        for pre in 0..5 {
            for post in 5..12 {
                assert_ne!(d.version(pre), d.version(post));
            }
        }
    }

    #[test]
    fn rebalance_keeps_the_list_but_recuts_the_partition() {
        let d = Dynamics::Rebalance { at: 4 };
        assert_eq!(d.tag(), "rebal4");
        assert!((1..10).all(|i| !d.remaps_at(i)), "the list is static");
        assert_eq!(
            raw_for_iter(&S, &d, 256, 512, 1, 0),
            raw_for_iter(&S, &d, 256, 512, 1, 9)
        );
        let epochs: Vec<usize> = (0..8).map(|i| d.partition_epoch(i)).collect();
        assert_eq!(epochs, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let recut: Vec<usize> = (1..8).filter(|&i| d.rebalances_at(i)).collect();
        assert_eq!(recut, vec![4]);
        assert_eq!(d.partition_epochs(10), 2);
        assert_eq!(d.partition_epochs(4), 1, "break past the run is inert");
        assert!(d.is_churn());
        assert!(!Dynamics::Static.is_churn());
    }

    #[test]
    #[should_panic(expected = "plain regimes")]
    fn nested_regime_shift_is_rejected() {
        Dynamics::RegimeShift {
            at: 3,
            from: Box::new(Dynamics::Alternating),
            to: Box::new(Dynamics::Static),
        }
        .validate();
    }
}
