//! Interaction-structure generators: parameterized families of
//! indirection pair lists, each a different corner of the irregular
//! design space the paper's three fixed kernels only sample.
//!
//! A *raw* list is a fixed-length vector of candidate endpoint pairs —
//! the thing the dynamics layer mutates in place (drift) or regenerates
//! (remap). The *effective* list every kernel iterates is
//! [`normalize`]d: endpoints ordered `a < b`, self-pairs dropped,
//! sorted, deduplicated — the same canonical global order umesh's
//! fixed-order owner-side reduction replays, which is what buys the
//! bitwise five-variant contract.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A family of interaction structures.
#[derive(Debug, Clone, PartialEq)]
pub enum Structure {
    /// Both endpoints uniform over all elements — the worst case for
    /// locality: every processor's read set spans every page.
    Uniform,
    /// Skewed degree: one endpoint drawn as `⌊n·u^alpha⌋` (`u` uniform
    /// in `[0,1)`, `alpha > 1`), concentrating interactions on
    /// low-numbered "hub" elements; the other endpoint uniform.
    PowerLaw { alpha: f64 },
    /// Grid-local: partners within `width` elements (a banded matrix) —
    /// the best case for a BLOCK partition, most traffic at block
    /// boundaries. `width` is clamped to `(n-1)/2` at generation time
    /// (a band wider than half the matrix is not banded, and the clamp
    /// is what keeps the boundary reflection in range).
    Banded { width: usize },
}

impl Structure {
    /// Short tag for scenario labels.
    pub fn tag(&self) -> String {
        match self {
            Structure::Uniform => "uniform".into(),
            Structure::PowerLaw { alpha } => format!("powerlaw{alpha}"),
            Structure::Banded { width } => format!("banded{width}"),
        }
    }

    /// One fresh candidate pair over `n` elements.
    pub fn gen_pair(&self, n: usize, rng: &mut StdRng) -> (u32, u32) {
        match *self {
            Structure::Uniform => (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)),
            Structure::PowerLaw { alpha } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                let a = ((n as f64 * u.powf(alpha)) as usize).min(n - 1) as u32;
                (a, rng.gen_range(0..n as u32))
            }
            Structure::Banded { width } => {
                let a = rng.gen_range(0..n as u32) as usize;
                // Clamped so the reflection below cannot underflow: if
                // a + d >= n then a >= n - d >= n - w, and n - w > w - 1
                // for w <= (n-1)/2 — so a >= d always holds.
                let w = width.min((n - 1) / 2).max(1);
                let d = rng.gen_range(1..w as u32 + 1) as usize;
                let b = if a + d < n { a + d } else { a - d };
                (a as u32, b as u32)
            }
        }
    }

    /// A raw candidate list of exactly `refs` pairs, deterministic in
    /// `seed`.
    pub fn gen_raw(&self, n: usize, refs: usize, seed: u64) -> Vec<(u32, u32)> {
        assert!(n >= 2, "need at least two elements");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..refs).map(|_| self.gen_pair(n, &mut rng)).collect()
    }
}

/// Canonicalize a raw candidate list into the effective interaction
/// list: `a < b`, no self-pairs, sorted, deduplicated.
pub fn normalize(raw: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut list: Vec<(u32, u32)> = raw
        .iter()
        .filter(|&&(a, b)| a != b)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    list.sort_unstable();
    list.dedup();
    list
}

/// Per-element degree of an effective list.
pub fn degrees(n: usize, list: &[(u32, u32)]) -> Vec<usize> {
    let mut deg = vec![0usize; n];
    for &(a, b) in list {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for s in [
            Structure::Uniform,
            Structure::PowerLaw { alpha: 2.0 },
            Structure::Banded { width: 16 },
        ] {
            assert_eq!(s.gen_raw(256, 1000, 7), s.gen_raw(256, 1000, 7));
            assert_ne!(s.gen_raw(256, 1000, 7), s.gen_raw(256, 1000, 8));
            assert_eq!(s.gen_raw(256, 1000, 7).len(), 1000);
        }
    }

    #[test]
    fn normalize_orders_and_dedups() {
        let list = normalize(&[(5, 3), (3, 5), (1, 1), (0, 2), (2, 0)]);
        assert_eq!(list, vec![(0, 2), (3, 5)]);
    }

    #[test]
    fn powerlaw_skews_toward_hubs() {
        let n = 1024;
        let list = normalize(&Structure::PowerLaw { alpha: 3.0 }.gen_raw(n, 4096, 3));
        let deg = degrees(n, &list);
        let low: usize = deg[..n / 8].iter().sum();
        let high: usize = deg[n - n / 8..].iter().sum();
        assert!(
            low > 3 * high,
            "low-numbered hubs must dominate: {low} vs {high}"
        );
        // And the hottest hub is far above the uniform average.
        let avg = 2.0 * list.len() as f64 / n as f64;
        let max = *deg.iter().max().unwrap();
        assert!(max as f64 > 4.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn banded_stays_local() {
        let n = 1024;
        let list = normalize(&Structure::Banded { width: 16 }.gen_raw(n, 4096, 3));
        assert!(list.iter().all(|&(a, b)| (b - a) as usize <= 16));
    }

    #[test]
    fn banded_oversized_width_is_clamped_not_panicking() {
        // width > n/2 used to underflow `a - d` at the high boundary.
        for (n, width) in [(1024usize, 700usize), (1024, 10_000), (2, 5), (16, 8)] {
            let list = normalize(&Structure::Banded { width }.gen_raw(n, 2048, 11));
            let w = width.min((n - 1) / 2).max(1);
            assert!(
                list.iter().all(|&(a, b)| (b as usize) < n && (b - a) as usize <= w),
                "n={n} width={width}"
            );
        }
    }

    #[test]
    fn uniform_spans_the_space() {
        let n = 1024;
        let list = normalize(&Structure::Uniform.gen_raw(n, 4096, 3));
        let deg = degrees(n, &list);
        assert!(deg.iter().filter(|&&d| d > 0).count() > n * 9 / 10);
    }
}
