//! # synth — the synthetic irregular-workload engine
//!
//! The paper evaluates its protocol claims on exactly three fixed
//! kernels (moldyn, nbf, and this repo's umesh). This crate turns that
//! three-point comparison into a **scenario matrix**: a parameterized
//! generator of irregular workloads along two orthogonal axes —
//!
//! * [`Structure`] — the shape of the interaction pattern: uniform
//!   random, power-law/skewed degree (hub elements), or banded/
//!   grid-local;
//! * [`Dynamics`] — how the indirection array evolves: static (nbf's
//!   regime), wholesale periodic remap every `k` iterations (moldyn's,
//!   parameterized), incremental drift, *multi-periodic* interleaved
//!   remaps (the ROADMAP's untested adaptive direction), or
//!   *alternating* two-list iterations (the classic apps' two-phase
//!   barrier structure in isolation — the phase-keyed quiesce regime).
//!
//! Every `(structure, dynamics, nprocs)` cell drives the same generic
//! gather–compute–scatter reduction kernel ([`kernel`]) with
//! deterministic seeded output, implements the `apps::Workload` trait,
//! and therefore runs as all **five** system variants — sequential,
//! Tmk base, Tmk optimized (`Validate`), Tmk adaptive, and CHAOS — with
//! **bitwise**-identical results (fixed-order owner-side reduction).
//! The `table_synth` harness in `bench` sweeps [`scenario_grid`] and
//! asserts the protocol claims cell by cell: the adaptive policy never
//! sends more messages than plain Tmk on *any* scenario, and CHAOS wins
//! on static-indirection scenarios, as the paper predicts.
//!
//! ## Quickstart
//!
//! ```
//! use apps::workload::run_matrix;
//! use synth::{Dynamics, Scenario, Structure, SynthConfig};
//!
//! let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 });
//! cfg.n = 256;       // keep the doctest fast
//! cfg.refs = 512;
//! cfg.iters = 6;
//! let matrix = run_matrix(&Scenario::new(cfg)); // runs + cross-checks all six variants
//! assert_eq!(matrix.runs.len(), 6);
//! ```

pub mod dynamics;
pub mod kernel;
pub mod structure;

pub use dynamics::{drift_round, raw_for_iter, Dynamics};
pub use kernel::{
    notice_meta_probe, run_chaos, run_seq, run_tmk, PHASE_ITER, PHASE_REMAP, REF_US, REMAP_US,
};
pub use structure::{degrees, normalize, Structure};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use apps::report::RunReport;
use apps::workload::{CheckMode, Variant, Workload};
use chaos::{TTable, TTableKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{CostModel, SimTime};

pub use apps::moldyn::TmkMode;

/// Configuration of one synthetic scenario.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of shared elements.
    pub n: usize,
    /// Raw candidate pairs per list version (the effective list is the
    /// normalized — deduplicated — form, slightly shorter).
    pub refs: usize,
    pub structure: Structure,
    pub dynamics: Dynamics,
    /// Timed iterations.
    pub iters: usize,
    pub nprocs: usize,
    pub seed: u64,
    pub page_size: usize,
    pub cost: CostModel,
    /// Knobs for the adaptive variant (default: `AdaptConfig::default()`).
    pub adapt: adapt::AdaptConfig,
}

impl SynthConfig {
    /// Seconds-scale cell for tests and `table_synth --quick`. The page
    /// size keeps the paper's pages-per-array regime (the shared value
    /// array spans ~16 pages, several per processor) — the regime both
    /// aggregation paths feed on; with one page per peer, aggregation
    /// cannot beat demand paging by construction.
    pub fn quick(structure: Structure, dynamics: Dynamics) -> Self {
        SynthConfig {
            n: 1024,
            refs: 3072,
            structure,
            dynamics,
            iters: 10,
            nprocs: 4,
            seed: 2024,
            page_size: 512,
            cost: CostModel::default(),
            adapt: adapt::AdaptConfig::default(),
        }
    }

    /// Paper-scale cell for the full `table_synth` grid (the value
    /// array spans 64 pages, 8 per processor at 8 processors).
    pub fn full(structure: Structure, dynamics: Dynamics) -> Self {
        SynthConfig {
            n: 8192,
            refs: 32768,
            structure,
            dynamics,
            iters: 20,
            nprocs: 8,
            seed: 2024,
            page_size: 1024,
            cost: CostModel::default(),
            adapt: adapt::AdaptConfig::default(),
        }
    }

    /// Scenario label: `structure/dynamics/pN`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/p{}",
            self.structure.tag(),
            self.dynamics.tag(),
            self.nprocs
        )
    }
}

/// The generated workload: initial values plus every distinct effective
/// list the run will use — a pure function of the config, so all five
/// variants see identical structure with no shared mutable state.
#[derive(Debug, Clone)]
pub struct SynthWorld {
    pub x0: Vec<f64>,
    /// Per iteration, an index into [`SynthWorld::lists`].
    pub version_of_iter: Vec<usize>,
    /// Distinct effective (normalized) lists, in first-use order.
    pub lists: Vec<Vec<(u32, u32)>>,
    /// Flux weight, sized from the hottest element so the relaxation is
    /// a contraction for every structure: `0.25 / max_degree`.
    pub kappa: f64,
}

pub fn gen_world(cfg: &SynthConfig) -> SynthWorld {
    assert!(cfg.iters >= 1, "need at least one iteration");
    cfg.dynamics.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x005E_ED0F_1A17);
    let x0: Vec<f64> = (0..cfg.n).map(|_| rng.gen_range(0.0..100.0)).collect();

    let mut by_version: HashMap<u64, usize> = HashMap::new();
    let mut version_of_iter = Vec::with_capacity(cfg.iters);
    let mut lists: Vec<Vec<(u32, u32)>> = Vec::new();
    // Drift evolves one raw list round by round; carrying it forward
    // keeps setup linear in iterations (raw_for_iter would replay all
    // earlier rounds per call). Identical output: iterations are
    // visited in order, and each round is a pure function of
    // (seed, round) applied to the previous raw list.
    let mut drift_raw: Option<Vec<(u32, u32)>> = None;
    for it in 0..cfg.iters {
        let v = cfg.dynamics.version(it);
        let idx = *by_version.entry(v).or_insert_with(|| {
            let list = if let Dynamics::Drift { per_mille } = cfg.dynamics {
                let mut raw = drift_raw
                    .take()
                    .unwrap_or_else(|| cfg.structure.gen_raw(cfg.n, cfg.refs, cfg.seed));
                if it > 0 {
                    dynamics::drift_round(&cfg.structure, &mut raw, cfg.n, cfg.seed, it, per_mille);
                }
                let list = normalize(&raw);
                drift_raw = Some(raw);
                list
            } else {
                normalize(&raw_for_iter(
                    &cfg.structure,
                    &cfg.dynamics,
                    cfg.n,
                    cfg.refs,
                    cfg.seed,
                    it,
                ))
            };
            lists.push(list);
            lists.len() - 1
        });
        version_of_iter.push(idx);
    }
    let max_deg = lists
        .iter()
        .flat_map(|l| degrees(cfg.n, l))
        .max()
        .unwrap_or(1)
        .max(1);
    SynthWorld {
        x0,
        version_of_iter,
        lists,
        kappa: 0.25 / max_deg as f64,
    }
}

/// One runnable scenario: a config plus its generated world. Implements
/// [`Workload`], so `apps::workload::run_matrix` runs and cross-checks
/// all five variants. Rebuilds the work plan per run; see [`Prepared`]
/// for the shared-setup form serving workloads use.
pub struct Scenario {
    pub cfg: SynthConfig,
    pub world: SynthWorld,
}

impl Scenario {
    pub fn new(cfg: SynthConfig) -> Self {
        let world = gen_world(&cfg);
        Scenario { cfg, world }
    }
}

impl Workload for Scenario {
    fn label(&self) -> String {
        format!("synth {}", self.cfg.label())
    }

    fn check_mode(&self) -> CheckMode {
        CheckMode::Bitwise
    }

    fn run(&self, v: Variant, seq_time: SimTime) -> (RunReport, Vec<f64>) {
        match v {
            Variant::Seq => run_seq(&self.cfg, &self.world),
            Variant::TmkBase => run_tmk(&self.cfg, &self.world, TmkMode::Base, seq_time),
            Variant::TmkOpt => run_tmk(&self.cfg, &self.world, TmkMode::Optimized, seq_time),
            Variant::TmkAdaptive => run_tmk(&self.cfg, &self.world, TmkMode::Adaptive, seq_time),
            Variant::TmkPush => run_tmk(&self.cfg, &self.world, TmkMode::Push, seq_time),
            Variant::Chaos => run_chaos(&self.cfg, &self.world, seq_time),
        }
    }
}

/// A scenario with every piece of variant-independent setup built once
/// and shared: the generated world, the per-version owner-side work
/// [`kernel::Plan`], and the CHAOS translation table. [`Scenario`]
/// rebuilds all three on every `run` call; a serving workload running
/// the same cell hundreds of times wants them behind one `Arc`.
///
/// `Prepared` implements [`Workload`] with output bitwise-identical to
/// the equivalent [`Scenario`] — the shared state is immutable, and the
/// kernels consume it read-only.
///
/// With [`Prepared::set_reuse`], the Tmk variants additionally check
/// their simulated cluster out of a thread-local recycled-cluster pool
/// (`dsm::ClusterPool`) instead of building one per run — the
/// reusable-scratch path. Off by default: cold runs stay the reference
/// behavior, and the serve driver asserts warm runs reproduce their
/// message counts exactly.
pub struct Prepared {
    cfg: SynthConfig,
    world: SynthWorld,
    plan: kernel::Plan,
    ttables: Vec<TTable>,
    reuse: AtomicBool,
}

impl Prepared {
    /// Generate the world and precompute all shared setup for `cfg`.
    pub fn new(cfg: SynthConfig) -> Self {
        let world = gen_world(&cfg);
        let plan = kernel::plan(&cfg, &world);
        let ttables = plan
            .parts
            .iter()
            .map(|part| TTable::new(TTableKind::Replicated, part))
            .collect();
        Prepared {
            cfg,
            world,
            plan,
            ttables,
            reuse: AtomicBool::new(false),
        }
    }

    /// The scenario configuration.
    pub fn cfg(&self) -> &SynthConfig {
        &self.cfg
    }

    /// The generated world (initial values + lists).
    pub fn world(&self) -> &SynthWorld {
        &self.world
    }

    /// Enable or disable the recycled-cluster scratch path for
    /// subsequent Tmk runs.
    pub fn set_reuse(&self, on: bool) {
        self.reuse.store(on, Ordering::Relaxed);
    }

    /// Is the recycled-cluster scratch path on?
    pub fn reuse_enabled(&self) -> bool {
        self.reuse.load(Ordering::Relaxed)
    }
}

impl Workload for Prepared {
    fn label(&self) -> String {
        format!("synth {}", self.cfg.label())
    }

    fn check_mode(&self) -> CheckMode {
        CheckMode::Bitwise
    }

    fn run(&self, v: Variant, seq_time: SimTime) -> (RunReport, Vec<f64>) {
        let reuse = self.reuse_enabled();
        let tmk = |mode| {
            let (report, x, _) =
                kernel::run_tmk_prepared(&self.cfg, &self.world, &self.plan, mode, seq_time, reuse);
            (report, x)
        };
        match v {
            Variant::Seq => run_seq(&self.cfg, &self.world),
            Variant::TmkBase => tmk(TmkMode::Base),
            Variant::TmkOpt => tmk(TmkMode::Optimized),
            Variant::TmkAdaptive => tmk(TmkMode::Adaptive),
            Variant::TmkPush => tmk(TmkMode::Push),
            Variant::Chaos => kernel::run_chaos_prepared(
                &self.cfg,
                &self.world,
                &self.plan,
                &self.ttables,
                seq_time,
            ),
        }
    }
}

/// The scenario grid `table_synth` sweeps: structure × dynamics ×
/// nprocs. The quick grid is 30 cells (3 structures × 6 dynamics at 4
/// processors, the 3 static cells again at 8 processors, the same 3
/// again at 64 processors — the sparse-metadata regime — and 6 churn
/// cells: regime breaks and partition rebalances at half the run); the
/// full grid is the same shape at paper scale with the scale cells at
/// 256 processors.
pub fn scenario_grid(quick: bool) -> Vec<SynthConfig> {
    // Banded width = two pages' worth of elements, so each neighbor
    // exchange spans ≥ 2 pages and aggregation has something to merge
    // (with exactly one boundary page per peer, one exchange per peer
    // is already what demand paging does — and the adaptive policy's
    // one wasted final-barrier prefetch round would tip it past base).
    let page_elems = if quick {
        SynthConfig::quick(Structure::Uniform, Dynamics::Static).page_size / 8
    } else {
        SynthConfig::full(Structure::Uniform, Dynamics::Static).page_size / 8
    };
    let structures = [
        Structure::Uniform,
        Structure::PowerLaw { alpha: 2.0 },
        Structure::Banded {
            width: 2 * page_elems,
        },
    ];
    let dynamics = [
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 3 },
        Dynamics::PeriodicRemap { period: 5 },
        Dynamics::Drift { per_mille: 25 },
        Dynamics::MultiPeriodic { p1: 3, p2: 5 },
        Dynamics::Alternating,
    ];
    let make = |s: &Structure, d: &Dynamics| {
        if quick {
            SynthConfig::quick(s.clone(), d.clone())
        } else {
            SynthConfig::full(s.clone(), d.clone())
        }
    };
    let mut grid = Vec::new();
    for s in &structures {
        for d in &dynamics {
            grid.push(make(s, d));
        }
    }
    // The nprocs axis: static cells again at the other cluster size.
    for s in &structures {
        let mut cfg = make(s, &Dynamics::Static);
        cfg.nprocs = if quick { 8 } else { 4 };
        grid.push(cfg);
    }
    // The scale cells: the same static structures at 64 (quick) / 256
    // (full) processors — past `dsm::DENSE_VC_MAX`, so every interval
    // clock travels in the sparse delta encoding. The problem grows
    // with the cluster so each peer still owns ≥ 2 value pages
    // (pages-per-peer > 1): with exactly one page per peer, one
    // exchange per peer is already what demand paging does and neither
    // aggregation path has anything to merge.
    for s in &structures {
        let mut cfg = make(s, &Dynamics::Static);
        if quick {
            cfg.nprocs = 64;
            cfg.n = 8192; // 128 pages of 512 B → 2 per processor
            cfg.refs = 12288;
            cfg.iters = 6;
        } else {
            cfg.nprocs = 256;
            cfg.n = 65536; // 512 pages of 1 KB → 2 per processor
            cfg.refs = 98304;
            cfg.iters = 8;
        }
        grid.push(cfg);
    }
    // The churn cells: mid-run regime breaks and a partition rebalance
    // at half the run, unannounced — the axis where a learned predictor
    // can be *wrong* and CHAOS's amortized schedule goes stale. The
    // steady-state acceptance bars (adaptive ≤ base) relax to the
    // probe-budget bound exactly on these cells; `table_churn` asserts
    // that bound plus six-way bitwise agreement per cell.
    let brk = (if quick { 10usize } else { 20 } / 2) as u32;
    let shift = |from: Dynamics, to: Dynamics| Dynamics::RegimeShift {
        at: brk,
        from: Box::new(from),
        to: Box::new(to),
    };
    let churn: [(Structure, Dynamics); 6] = [
        (
            Structure::Uniform,
            shift(Dynamics::Static, Dynamics::PeriodicRemap { period: 3 }),
        ),
        (
            Structure::PowerLaw { alpha: 2.0 },
            shift(Dynamics::PeriodicRemap { period: 3 }, Dynamics::Static),
        ),
        (
            Structure::Banded { width: 2 * page_elems },
            shift(Dynamics::Static, Dynamics::Static),
        ),
        (
            Structure::Uniform,
            shift(
                Dynamics::MultiPeriodic { p1: 3, p2: 5 },
                Dynamics::PeriodicRemap { period: 2 },
            ),
        ),
        (Structure::Uniform, Dynamics::Rebalance { at: brk }),
        (
            Structure::Banded { width: 2 * page_elems },
            Dynamics::Rebalance { at: brk },
        ),
    ];
    for (s, d) in churn {
        grid.push(make(&s, &d));
    }
    // Distinct seeds per cell so no two scenarios share geometry.
    for (k, cfg) in grid.iter_mut().enumerate() {
        cfg.seed = cfg.seed.wrapping_add(1000 * k as u64);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::workload::run_matrix;

    #[test]
    fn prepared_matches_scenario_cold_and_warm() {
        let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 });
        cfg.n = 256;
        cfg.refs = 512;
        cfg.iters = 6;
        let cold = run_matrix(&Scenario::new(cfg.clone()));
        let prep = Prepared::new(cfg);
        let shared_cold = run_matrix(&prep);
        prep.set_reuse(true);
        let warm = run_matrix(&prep); // cold pool: fills it
        let warm2 = run_matrix(&prep); // actually recycled clusters
        for m in [&shared_cold, &warm, &warm2] {
            for (a, b) in cold.runs.iter().zip(&m.runs) {
                assert_eq!(a.report.system, b.report.system);
                assert_eq!(a.report.messages, b.report.messages, "{:?}", a.report.system);
                assert_eq!(a.report.bytes, b.report.bytes, "{:?}", a.report.system);
                assert_eq!(a.report.time, b.report.time, "{:?}", a.report.system);
                assert_eq!(a.x, b.x, "{:?}", a.report.system);
            }
        }
    }

    #[test]
    fn churn_cells_stay_bitwise_across_all_variants() {
        // run_matrix cross-checks all six variants bitwise; a mid-run
        // regime break and a partition rebalance must not perturb
        // results (they may only perturb cost).
        for d in [
            Dynamics::RegimeShift {
                at: 3,
                from: Box::new(Dynamics::Static),
                to: Box::new(Dynamics::PeriodicRemap { period: 2 }),
            },
            Dynamics::Rebalance { at: 3 },
        ] {
            let mut cfg = SynthConfig::quick(Structure::Uniform, d);
            cfg.n = 512;
            cfg.refs = 1024;
            cfg.iters = 6;
            let m = run_matrix(&Scenario::new(cfg));
            assert_eq!(m.runs.len(), 6);
        }
    }

    #[test]
    fn prepared_matches_scenario_on_a_rebalance_cell() {
        // The shared-setup path carries one translation table per
        // partition epoch; it must reproduce the per-run-build path
        // exactly on the cell that actually has two epochs.
        let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::Rebalance { at: 3 });
        cfg.n = 512;
        cfg.refs = 1024;
        cfg.iters = 6;
        let cold = run_matrix(&Scenario::new(cfg.clone()));
        let shared = run_matrix(&Prepared::new(cfg));
        for (a, b) in cold.runs.iter().zip(&shared.runs) {
            assert_eq!(a.report.messages, b.report.messages, "{:?}", a.report.system);
            assert_eq!(a.report.time, b.report.time, "{:?}", a.report.system);
            assert_eq!(a.x, b.x, "{:?}", a.report.system);
        }
    }

    #[test]
    fn world_generation_is_deterministic_and_versioned() {
        let cfg = SynthConfig::quick(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 });
        let a = gen_world(&cfg);
        let b = gen_world(&cfg);
        assert_eq!(a.x0, b.x0);
        assert_eq!(a.lists, b.lists);
        assert_eq!(a.version_of_iter, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(a.lists.len(), 4);
        assert!(a.kappa > 0.0 && a.kappa <= 0.25);
    }

    #[test]
    fn static_world_has_one_list() {
        let cfg = SynthConfig::quick(Structure::Banded { width: 32 }, Dynamics::Static);
        let w = gen_world(&cfg);
        assert_eq!(w.lists.len(), 1);
        assert!(w.version_of_iter.iter().all(|&v| v == 0));
    }

    #[test]
    fn multi_periodic_world_shares_repeated_versions() {
        let mut cfg =
            SynthConfig::quick(Structure::Uniform, Dynamics::MultiPeriodic { p1: 2, p2: 3 });
        cfg.iters = 12;
        let w = gen_world(&cfg);
        // Versions change at every multiple of 2 or 3: 0,0,1,2,3,3,4,...
        assert!(w.lists.len() >= 6);
        assert_eq!(w.version_of_iter[0], w.version_of_iter[1]);
        assert_ne!(w.version_of_iter[1], w.version_of_iter[2]);
    }

    #[test]
    fn incremental_drift_matches_the_pure_spec() {
        // gen_world carries the drift list forward round by round; the
        // result must equal the pure per-iteration replay.
        let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::Drift { per_mille: 25 });
        cfg.n = 256;
        cfg.refs = 800;
        cfg.iters = 7;
        let w = gen_world(&cfg);
        for it in 0..cfg.iters {
            let pure = normalize(&raw_for_iter(
                &cfg.structure,
                &cfg.dynamics,
                cfg.n,
                cfg.refs,
                cfg.seed,
                it,
            ));
            assert_eq!(w.lists[w.version_of_iter[it]], pure, "iteration {it}");
        }
    }

    #[test]
    fn grid_has_at_least_twelve_distinct_cells() {
        for quick in [true, false] {
            let grid = scenario_grid(quick);
            assert!(grid.len() >= 12, "grid too small: {}", grid.len());
            // The scale cells exist, sit past the dense-VC cutoff, and
            // keep the pages-per-peer > 1 regime.
            let scale_n = if quick { 64 } else { 256 };
            let scale: Vec<_> = grid.iter().filter(|c| c.nprocs == scale_n).collect();
            assert_eq!(scale.len(), 3, "one scale cell per structure");
            for c in &scale {
                assert!(
                    c.nprocs > sdsm_core::DENSE_VC_MAX,
                    "scale cells must be sparse"
                );
                let pages = c.n * 8 / c.page_size;
                assert!(
                    pages / c.nprocs >= 2,
                    "{}: {} pages over {} procs breaks pages-per-peer > 1",
                    c.label(),
                    pages,
                    c.nprocs
                );
            }
            // The churn cells: breaks/rebalances fire strictly inside
            // the run, so every cell actually exercises its churn.
            let churn: Vec<_> = grid.iter().filter(|c| c.dynamics.is_churn()).collect();
            assert_eq!(churn.len(), 6, "six churn cells per tier");
            for c in &churn {
                c.dynamics.validate();
                let at = match &c.dynamics {
                    Dynamics::RegimeShift { at, .. } | Dynamics::Rebalance { at } => *at as usize,
                    _ => unreachable!(),
                };
                assert!(at > 0 && at < c.iters, "{}: break outside the run", c.label());
            }
            let mut labels: Vec<String> = grid.iter().map(|c| c.label()).collect();
            labels.sort();
            labels.dedup();
            assert_eq!(labels.len(), grid.len(), "duplicate scenario labels");
            let mut seeds: Vec<u64> = grid.iter().map(|c| c.seed).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), grid.len(), "duplicate seeds");
        }
    }

    #[test]
    fn kappa_keeps_relaxation_bounded() {
        // The hottest structure (power-law hubs) must still contract.
        let mut cfg = SynthConfig::quick(Structure::PowerLaw { alpha: 2.0 }, Dynamics::Static);
        cfg.iters = 30;
        let world = gen_world(&cfg);
        let (_, x) = run_seq(&cfg, &world);
        let bound = 100.0 * 1.5;
        assert!(
            x.iter().all(|v| v.abs() < bound),
            "relaxation diverged: max {}",
            x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
        );
    }
}
