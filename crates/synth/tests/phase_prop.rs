//! Property: on randomly drawn scenarios — structure × dynamics
//! (including the alternating two-phase cell) × seed — the Tmk
//! **quartet** (base / optimized / adaptive / update-push) stays
//! bitwise identical and the phase-keyed adaptive build never issues
//! more messages than base. `run_matrix` enforces the bitwise contract
//! internally (all six variants, sequential included, since every synth
//! cell is `CheckMode::Bitwise`); the message bound is asserted here.
//! Failing seeds replay via `PROPTEST_TEST`/`PROPTEST_SEED`.

use apps::workload::{run_matrix, Variant};
use proptest::prelude::*;
use synth::{Dynamics, Scenario, Structure, SynthConfig};

/// A cell small enough for property-test case counts, keeping the
/// pages-per-processor invariant (16 value pages, 8 per processor —
/// aggregation must have something to merge; see `SynthConfig::quick`)
/// and enough iterations that the steady state outweighs the learning
/// transient: the alternating cell halves each phase's epoch count, and
/// a run that ends the moment a pattern promotes pays the one eager
/// final prefetch that the (not-yet-built) quiesce streak exists to
/// remove.
fn cell(structure: Structure, dynamics: Dynamics, seed: u64) -> SynthConfig {
    let mut cfg = SynthConfig::quick(structure, dynamics);
    cfg.n = 256;
    cfg.refs = 640;
    cfg.iters = 12;
    cfg.nprocs = 2;
    cfg.page_size = 128;
    cfg.seed = seed;
    cfg
}

fn structures() -> impl Strategy<Value = Structure> {
    proptest::sample::select(vec![
        Structure::Uniform,
        Structure::PowerLaw { alpha: 2.0 },
        Structure::Banded { width: 32 },
    ])
}

fn dynamics() -> impl Strategy<Value = Dynamics> {
    proptest::sample::select(vec![
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 3 },
        Dynamics::MultiPeriodic { p1: 2, p2: 3 },
        Dynamics::Alternating,
    ])
}

proptest! {
    #[test]
    fn quartet_bitwise_and_adaptive_within_base(
        structure in structures(),
        dyn_ in dynamics(),
        seed in 0u64..1_000_000,
    ) {
        let m = run_matrix(&Scenario::new(cell(structure, dyn_.clone(), seed)));
        let base = m.get(Variant::TmkBase).report.messages;
        let ad = m.get(Variant::TmkAdaptive).report.messages;
        prop_assert!(
            ad <= base,
            "{:?}/seed {}: adaptive {} > base {}",
            dyn_,
            seed,
            ad,
            base
        );
    }
}
