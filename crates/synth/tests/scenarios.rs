//! Scenario-level integration tests: the six-variant bitwise contract
//! and the protocol-shape claims, on representative grid cells (the
//! full grid sweep lives in `bench`'s `table_synth`).

use apps::workload::{run_matrix, Variant};
use synth::{Dynamics, Scenario, Structure, SynthConfig, TmkMode};

/// Shrink a quick cell further so each test stays fast in debug builds.
/// The smaller page size preserves the pages-per-processor regime (16
/// value pages, 4 per processor) — see `SynthConfig::quick`.
fn tiny(structure: Structure, dynamics: Dynamics) -> SynthConfig {
    let mut cfg = SynthConfig::quick(structure, dynamics);
    cfg.n = 512;
    cfg.refs = 1536;
    cfg.iters = 8;
    cfg.page_size = 256;
    cfg
}

#[test]
fn five_variants_agree_bitwise_on_static_uniform() {
    // run_matrix asserts bitwise agreement internally (CheckMode::Bitwise).
    let m = run_matrix(&Scenario::new(tiny(Structure::Uniform, Dynamics::Static)));
    let base = &m.get(Variant::TmkBase).report;
    let opt = &m.get(Variant::TmkOpt).report;
    let chaos = &m.get(Variant::Chaos).report;
    assert!(base.messages > 0, "demand paging must communicate");
    // Paper shape: aggregation beats demand paging; CHAOS wins on a
    // static list (inspector amortized, schedule-driven transfers).
    assert!(opt.messages < base.messages);
    assert!(chaos.messages < base.messages);
    assert!(chaos.time < base.time);
}

#[test]
fn five_variants_agree_bitwise_on_remapped_powerlaw() {
    let m = run_matrix(&Scenario::new(tiny(
        Structure::PowerLaw { alpha: 2.0 },
        Dynamics::PeriodicRemap { period: 3 },
    )));
    // On a remap-heavy scenario CHAOS pays the inspector inside the
    // timed region.
    let chaos = &m.get(Variant::Chaos).report;
    assert!(chaos.inspector_s > 0.0, "in-region inspector re-runs");
}

#[test]
fn five_variants_agree_bitwise_on_drifting_banded() {
    let m = run_matrix(&Scenario::new(tiny(
        Structure::Banded { width: 32 },
        Dynamics::Drift { per_mille: 25 },
    )));
    let chaos = &m.get(Variant::Chaos).report;
    // Drift changes the list every iteration: the inspector re-runs
    // every timed iteration.
    assert!(chaos.inspector_s > 0.0);
}

#[test]
fn adaptive_never_exceeds_base_across_dynamics() {
    for dynamics in [
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 3 },
        Dynamics::Drift { per_mille: 25 },
        Dynamics::MultiPeriodic { p1: 3, p2: 5 },
        Dynamics::Alternating,
    ] {
        let m = run_matrix(&Scenario::new(tiny(Structure::Uniform, dynamics.clone())));
        let base = m.get(Variant::TmkBase).report.messages;
        let ad = m.get(Variant::TmkAdaptive).report.messages;
        assert!(
            ad <= base,
            "{:?}: adaptive sent {} > base {}",
            dynamics,
            ad,
            base
        );
    }
}

#[test]
fn multi_periodic_scenario_exercises_the_predictor() {
    // The ROADMAP's untested direction: remap period 3 interleaved with
    // period 5. The adaptive engine must stay within base's message
    // count while actually making decisions (promotions happen, and the
    // interleaved remaps force demotions/relearning).
    let mut cfg = tiny(Structure::Uniform, Dynamics::MultiPeriodic { p1: 3, p2: 5 });
    cfg.iters = 15; // a full p1×p2 cycle
    let m = run_matrix(&Scenario::new(cfg));
    let base = &m.get(Variant::TmkBase).report;
    let ad = &m.get(Variant::TmkAdaptive).report;
    assert!(ad.messages <= base.messages);
    let pol = ad.policy.as_ref().expect("adaptive policy report");
    assert!(pol.epochs > 0);
    assert!(
        pol.promotions > 0,
        "stable stretches between remaps must be learned"
    );
}

#[test]
fn quiesce_saves_the_final_barrier_prefetch_on_identical_epochs() {
    // A static cell is the "identical epochs" regime: the same page set
    // is invalidated and re-read every iteration, so the adaptive picks
    // are literally the same set each barrier. Probes are pushed out of
    // range so the pick stream is perfectly identical, isolating the
    // quiesce heuristic.
    let mut cfg = tiny(Structure::Uniform, Dynamics::Static);
    cfg.iters = 12;
    cfg.adapt.probe_every = 64;
    let world = synth::gen_world(&cfg);
    let (seq, _) = synth::run_seq(&cfg, &world);

    let mut eager_cfg = cfg.clone();
    eager_cfg.adapt.quiesce_after = 0; // PR 2 behavior: always eager
    let (eager, xe) = synth::run_tmk(&eager_cfg, &world, TmkMode::Adaptive, seq.time);
    let (quiet, xq) = synth::run_tmk(&cfg, &world, TmkMode::Adaptive, seq.time);

    assert_eq!(xq, xe, "quiesce must not change results");
    let pe = eager.policy.as_ref().expect("policy report");
    let pq = quiet.policy.as_ref().expect("policy report");
    assert_eq!(pe.deferred_plans, 0, "quiesce_after: 0 never defers");
    assert_eq!(pe.quiesced_plans, 0);
    assert!(pq.deferred_plans > 0, "identical epochs must defer");
    assert!(
        pq.quiesced_plans > 0,
        "the final-barrier plans must go untriggered"
    );
    // Zero final-barrier prefetch messages, in counter form: every
    // exchange the eager policy issued either still fires (triggered by
    // the epoch's first touch) or quiesces — and the quiesced ones are
    // exactly the final-barrier waste, so the totals drop.
    assert_eq!(
        pq.prefetch_rounds + pq.quiesced_plans,
        pe.prefetch_rounds,
        "deferred rounds must fire or quiesce, never duplicate"
    );
    assert!(
        quiet.messages < eager.messages,
        "quiesce {} !< eager {}",
        quiet.messages,
        eager.messages
    );
}

#[test]
fn alternating_two_phase_cell_quiesces_per_phase() {
    // The two-phase multi-barrier regime in isolation: iterations
    // alternate between two lists, the kernel tags its barriers by
    // parity, and each parity's picks are identical epoch over epoch —
    // so both phases build streaks, defer their steady plans, and the
    // final plans die untriggered. A globally-keyed streak provably
    // never fires here (consecutive barrier picks always differ — the
    // pinned contrast lives in crates/adapt/tests/phase_keyed.rs).
    let mut cfg = tiny(Structure::Uniform, Dynamics::Alternating);
    cfg.iters = 16; // 8 epochs per parity: promote, streak, quiesce
    let m = run_matrix(&Scenario::new(cfg));
    let base = &m.get(Variant::TmkBase).report;
    let ad = &m.get(Variant::TmkAdaptive).report;
    assert!(ad.messages <= base.messages);
    let pol = ad.policy.as_ref().expect("adaptive policy report");
    assert!(pol.deferred_plans > 0, "per-parity streaks must defer");
    assert!(
        pol.quiesced_plans > 0,
        "the final plans must die untriggered"
    );
    // The breakdown shows *both* parity phases of the iteration barrier
    // participated in the deferral (phase tags 2 and 3 = PHASE_ITER +
    // parity).
    let deferring: Vec<u32> = pol
        .per_phase
        .iter()
        .filter(|r| r.deferred_plans > 0)
        .map(|r| r.phase)
        .collect();
    assert!(
        deferring.contains(&synth::PHASE_ITER) && deferring.contains(&(synth::PHASE_ITER + 1)),
        "both parities must build streaks, got {deferring:?}"
    );
}

#[test]
fn push_beats_prefetch_on_every_dynamics() {
    // Update-push halves each predicted exchange, so wherever the
    // predictor is active at all, push-mode messages sit strictly below
    // pull-mode's — and the results stay bitwise identical (checked by
    // run_matrix across all six variants elsewhere; here we pin the
    // count ordering per dynamics).
    for dynamics in [
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 3 },
        Dynamics::MultiPeriodic { p1: 3, p2: 5 },
    ] {
        let m = run_matrix(&Scenario::new(tiny(Structure::Uniform, dynamics.clone())));
        let ad = &m.get(Variant::TmkAdaptive).report;
        let push = &m.get(Variant::TmkPush).report;
        assert!(
            push.messages < ad.messages,
            "{:?}: push {} !< adaptive {}",
            dynamics,
            push.messages,
            ad.messages
        );
        let pol = push.policy.as_ref().expect("push policy report");
        assert!(pol.push_rounds > 0);
        assert_eq!(pol.prefetch_rounds, 0, "push mode never pulls");
    }
}

#[test]
fn deterministic_across_runs() {
    let cfg = tiny(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 });
    let m1 = run_matrix(&Scenario::new(cfg.clone()));
    let m2 = run_matrix(&Scenario::new(cfg));
    for v in Variant::ALL {
        let (a, b) = (m1.get(v), m2.get(v));
        assert_eq!(a.x, b.x, "{v:?} state");
        assert_eq!(a.report.messages, b.report.messages, "{v:?} messages");
        assert_eq!(a.report.bytes, b.report.bytes, "{v:?} bytes");
        assert_eq!(a.report.time, b.report.time, "{v:?} time");
    }
}

#[test]
fn static_scenarios_reward_chaos_across_structures() {
    // The paper's prediction, generalized beyond nbf: on any static
    // indirection structure, CHAOS's amortized inspector + schedule-
    // driven transfers beat demand paging.
    for structure in [
        Structure::Uniform,
        Structure::PowerLaw { alpha: 2.0 },
        Structure::Banded { width: 32 },
    ] {
        let m = run_matrix(&Scenario::new(tiny(structure.clone(), Dynamics::Static)));
        let base = &m.get(Variant::TmkBase).report;
        let chaos = &m.get(Variant::Chaos).report;
        assert!(
            chaos.messages < base.messages && chaos.time < base.time,
            "{:?}: CHAOS must win on static indirection (msgs {} vs {}, t {:?} vs {:?})",
            structure,
            chaos.messages,
            base.messages,
            chaos.time,
            base.time
        );
    }
}
