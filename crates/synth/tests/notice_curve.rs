//! Diagnostic (ignored by default): print the barrier notice-metadata
//! bytes of the same fixed-size workload across cluster sizes — the
//! curve quoted in ARCHITECTURE.md's scaling section. Run with
//!
//! ```sh
//! cargo test -q -p synth --test notice_curve -- --ignored --nocapture
//! ```
//!
//! The asserted form of this curve (64-proc < 4× the 16-proc figure)
//! lives in `table_synth`; this test only regenerates the numbers.

use synth::{gen_world, notice_meta_probe, Dynamics, Structure, SynthConfig};

#[test]
#[ignore = "diagnostic printout, not an assertion"]
fn print_notice_metadata_curve() {
    println!("nprocs  notice-metadata bytes (same workload: n=8192, 128 pages, 6 iters)");
    for nprocs in [4, 8, 16, 32, 64, 128] {
        let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::Static);
        cfg.n = 8192;
        cfg.refs = 12288;
        cfg.iters = 6;
        cfg.nprocs = nprocs;
        let bytes = notice_meta_probe(&cfg, &gen_world(&cfg));
        println!("{nprocs:>6}  {bytes}");
    }
}
