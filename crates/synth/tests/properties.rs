//! Property-based acceptance of the scenario engine across the nprocs
//! scale axis: on a randomly drawn cell, **all six system variants
//! agree bitwise** — at 3 processors (dense-clock regime), 16 and 64
//! (sparse delta clocks + flat barrier digest). `run_matrix` does the
//! six-way cross-check internally; a disagreement panics with the
//! variant and scenario label.
//!
//! This is the randomized complement of `golden_counts.rs`, which pins
//! exact message/byte counts at 4/8 processors and stays byte-identical
//! across the metadata-scaling refactor.

use proptest::prelude::*;

use apps::workload::run_matrix;
use synth::{Dynamics, Scenario, Structure, SynthConfig};

fn structures() -> impl Strategy<Value = Structure> {
    prop::sample::select(vec![
        Structure::Uniform,
        Structure::PowerLaw { alpha: 2.0 },
        Structure::Banded { width: 96 },
    ])
}

fn dynamics() -> impl Strategy<Value = Dynamics> {
    prop::sample::select(vec![
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 2 },
        Dynamics::Drift { per_mille: 40 },
        Dynamics::Alternating,
    ])
}

proptest! {
    #[test]
    fn six_variants_bitwise_equal_across_scales(
        structure in structures(),
        dynamics in dynamics(),
        nprocs in prop::sample::select(vec![3usize, 16, 64]),
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = SynthConfig::quick(structure, dynamics);
        // Small but multi-page: 512 elements × 8 B over 64 B pages is
        // 64 pages, so even the 64-processor draw exercises remote
        // pages (and the sparse wire encoding end to end).
        cfg.n = 512;
        cfg.refs = 1024;
        cfg.iters = 4;
        cfg.page_size = 64;
        cfg.nprocs = nprocs;
        cfg.seed = seed;
        let m = run_matrix(&Scenario::new(cfg)); // asserts 6-way bitwise agreement
        prop_assert_eq!(m.runs.len(), 6);
    }
}
