//! Protocol-policy plumbing tests: the policy hooks observe the right
//! events, a prefetching policy moves traffic from per-page demand pairs
//! to aggregated exchanges without changing results, and the static
//! policy is invisible.

use dsm::{Cluster, DsmConfig, EpochDecision, MsgKind, PolicyStats, ProcId, ProtocolPolicy};

/// Prefetch every page the barrier just invalidated — the maximally
/// eager policy. Useful for plumbing tests: after the barrier, no
/// demand fault can occur on a notice-invalidated page. The `push` and
/// `defer` flags are forwarded verbatim so the same policy exercises
/// all four protocol shapes.
#[derive(Debug, Default)]
struct PrefetchAll {
    misses: Vec<u32>,
    closes: Vec<Vec<u32>>,
    epochs: Vec<u64>,
    push: bool,
    defer: bool,
}

impl PrefetchAll {
    fn pushing() -> Self {
        PrefetchAll {
            push: true,
            ..Default::default()
        }
    }

    fn deferring() -> Self {
        PrefetchAll {
            defer: true,
            ..Default::default()
        }
    }
}

impl ProtocolPolicy for PrefetchAll {
    fn note_miss(&mut self, page: u32) {
        self.misses.push(page);
    }
    fn note_interval_close(&mut self, pages: &[u32]) {
        self.closes.push(pages.to_vec());
    }
    fn epoch_end(
        &mut self,
        epoch: u64,
        phase: u32,
        invalidated: &[u32],
        stats: &PolicyStats,
        me: ProcId,
    ) -> EpochDecision {
        stats.record_epoch(me, phase);
        self.epochs.push(epoch);
        EpochDecision {
            picks: invalidated.to_vec(),
            defer: self.defer,
            push: self.push,
            phase,
            events: Vec::new(),
        }
    }
}

/// Producer/consumer over several pages and epochs: proc 0 writes, all
/// others read everything each epoch.
fn producer_consumer(cl: &Cluster, epochs: usize, elems: usize) -> f64 {
    let s = cl.alloc::<f64>(elems);
    let sum = parking_lot::Mutex::new(0.0f64);
    cl.run(|p| {
        for e in 0..epochs {
            if p.rank() == 0 {
                for i in 0..elems {
                    p.write(&s, i, (e * elems + i) as f64);
                }
            }
            p.barrier();
            let mut local = 0.0;
            for i in 0..elems {
                local += p.read(&s, i);
            }
            if p.rank() == 1 {
                *sum.lock() = local;
            }
            p.barrier();
        }
    });
    sum.into_inner()
}

#[test]
fn prefetch_policy_eliminates_demand_faults_and_preserves_results() {
    let elems = 4 * 512; // 4 pages of f64 at 4 KB
    let epochs = 4;

    let base = Cluster::new(DsmConfig::with_nprocs(3));
    let base_sum = producer_consumer(&base, epochs, elems);
    let base_rep = base.report();
    assert!(base_rep.messages_per_kind(MsgKind::DiffRequest) > 0);
    assert_eq!(base_rep.messages_per_kind(MsgKind::AdaptRequest), 0);
    assert!(
        !base.net().policy_report().is_active(),
        "static policy records no decisions"
    );

    let ad = Cluster::new(DsmConfig::with_nprocs(3));
    {
        // Install the policy before the shared traffic starts.
        ad.run(|p| p.set_policy(Box::new(PrefetchAll::default())));
    }
    let ad_sum = producer_consumer(&ad, epochs, elems);
    let ad_rep = ad.report();

    assert_eq!(ad_sum, base_sum, "policy must not change results");
    // Every notice-invalidated page was prefetched at the barrier, so no
    // demand fetch ever fires after the first epoch's cold reads... and
    // even those are preceded by a barrier here, so none at all.
    assert_eq!(ad_rep.messages_per_kind(MsgKind::DiffRequest), 0);
    assert!(ad_rep.messages_per_kind(MsgKind::AdaptRequest) > 0);
    // Aggregation: fewer total messages than per-page demand pairs.
    assert!(
        ad_rep.messages < base_rep.messages,
        "adaptive {} !< base {}",
        ad_rep.messages,
        base_rep.messages
    );
    let pol = ad.net().policy_report();
    assert!(pol.epochs > 0);
    assert!(pol.prefetch_rounds > 0);
    assert!(pol.prefetch_pages >= pol.prefetch_rounds);
}

#[test]
fn policy_hooks_observe_misses_closes_and_epochs() {
    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let s = cl.alloc::<f64>(1024);
    let seen = parking_lot::Mutex::new((0usize, 0usize, 0usize));

    #[derive(Debug, Default)]
    struct Recorder {
        misses: usize,
        closes: usize,
        epochs: usize,
    }
    impl ProtocolPolicy for Recorder {
        fn note_miss(&mut self, _page: u32) {
            self.misses += 1;
        }
        fn note_interval_close(&mut self, pages: &[u32]) {
            assert!(!pages.is_empty());
            self.closes += 1;
        }
        fn epoch_end(
            &mut self,
            _epoch: u64,
            _phase: u32,
            _invalidated: &[u32],
            _stats: &PolicyStats,
            _me: ProcId,
        ) -> EpochDecision {
            self.epochs += 1;
            EpochDecision::none()
        }
    }

    cl.run(|p| {
        if p.rank() == 1 {
            p.set_policy(Box::new(Recorder::default()));
        }
        if p.rank() == 0 {
            p.write(&s, 0, 1.0);
        }
        p.barrier();
        let _ = p.read(&s, 0);
        p.barrier();
        if p.rank() == 1 {
            // Downcast-free introspection: count through Debug output.
            let dbg = format!("{:?}", p.policy());
            let grab = |k: &str| -> usize {
                let at = dbg.find(k).unwrap() + k.len() + 2;
                dbg[at..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
            };
            *seen.lock() = (grab("misses"), grab("closes"), grab("epochs"));
        }
    });
    let (misses, closes, epochs) = seen.into_inner();
    assert_eq!(misses, 1, "one demand miss on the shared page");
    assert_eq!(closes, 0, "proc 1 never wrote");
    assert_eq!(epochs, 2, "two barriers crossed");
}

#[test]
fn push_mode_halves_predicted_exchange_messages() {
    let elems = 4 * 512;
    let epochs = 4;

    let pull = Cluster::new(DsmConfig::with_nprocs(3));
    pull.run(|p| p.set_policy(Box::new(PrefetchAll::default())));
    let pull_sum = producer_consumer(&pull, epochs, elems);
    let pull_rep = pull.report();

    let push = Cluster::new(DsmConfig::with_nprocs(3));
    push.run(|p| p.set_policy(Box::new(PrefetchAll::pushing())));
    let push_sum = producer_consumer(&push, epochs, elems);
    let push_rep = push.report();

    assert_eq!(push_sum, pull_sum, "push mode must not change results");
    // The request leg disappears: AdaptPush data messages replace the
    // AdaptRequest/AdaptReply pairs one-for-... half.
    assert_eq!(push_rep.messages_per_kind(MsgKind::AdaptRequest), 0);
    assert_eq!(push_rep.messages_per_kind(MsgKind::AdaptReply), 0);
    let pushes = push_rep.messages_per_kind(MsgKind::AdaptPush);
    let pairs = pull_rep.messages_per_kind(MsgKind::AdaptRequest);
    assert!(pushes > 0);
    assert_eq!(
        pushes, pairs,
        "one push per former request/reply pair ({pushes} vs {pairs} pairs)"
    );
    assert!(
        push_rep.messages < pull_rep.messages,
        "push {} !< pull {}",
        push_rep.messages,
        pull_rep.messages
    );
    // Identical payload data rides the remaining leg.
    assert_eq!(
        push_rep.bytes_per_kind(MsgKind::AdaptPush),
        pull_rep.bytes_per_kind(MsgKind::AdaptReply)
    );
    let pol = push.net().policy_report();
    assert!(pol.push_rounds > 0);
    assert_eq!(pol.prefetch_rounds, 0, "push mode never pulls");
}

/// [`producer_consumer`] plus one last writer epoch whose barrier is the
/// run's final barrier — the harness shape the ROADMAP flagged: an
/// eager policy prefetches there for a "next iteration" that never
/// executes.
fn producer_consumer_ending_on_write(cl: &Cluster, epochs: usize, elems: usize) -> f64 {
    let sum = producer_consumer(cl, epochs, elems);
    let s = cl.alloc::<f64>(elems);
    cl.run(|p| {
        if p.rank() == 0 {
            for i in 0..elems {
                p.write(&s, i, i as f64);
            }
        }
        p.barrier(); // final barrier: consumers' plans are never touched
    });
    sum
}

#[test]
fn deferred_plan_fires_on_first_fault_and_quiesces_at_the_final_barrier() {
    let elems = 4 * 512;
    let epochs = 4;

    let eager = Cluster::new(DsmConfig::with_nprocs(3));
    eager.run(|p| p.set_policy(Box::new(PrefetchAll::default())));
    let eager_sum = producer_consumer_ending_on_write(&eager, epochs, elems);
    let eager_rep = eager.report();

    let deferred = Cluster::new(DsmConfig::with_nprocs(3));
    deferred.run(|p| p.set_policy(Box::new(PrefetchAll::deferring())));
    let deferred_sum = producer_consumer_ending_on_write(&deferred, epochs, elems);
    let deferred_rep = deferred.report();

    assert_eq!(deferred_sum, eager_sum, "deferral must not change results");
    // Still zero per-page demand traffic: the first fault triggers the
    // whole batch, and the triggering page rides along.
    assert_eq!(deferred_rep.messages_per_kind(MsgKind::DiffRequest), 0);
    // Strictly fewer aggregated exchanges than eager: the final barrier
    // arms a plan nobody ever touches, and it quiesces instead of going
    // to the wire. Mid-run epochs are unaffected — their first read
    // triggers the identical exchange.
    assert!(
        deferred_rep.messages_per_kind(MsgKind::AdaptRequest)
            < eager_rep.messages_per_kind(MsgKind::AdaptRequest),
        "deferred {} !< eager {}",
        deferred_rep.messages_per_kind(MsgKind::AdaptRequest),
        eager_rep.messages_per_kind(MsgKind::AdaptRequest)
    );
    let pol = deferred.net().policy_report();
    assert!(pol.deferred_plans > 0);
    assert!(
        pol.quiesced_plans >= 2,
        "both consumers' final-barrier plans must quiesce untriggered"
    );
    assert_eq!(
        pol.deferred_plans,
        pol.prefetch_rounds + pol.quiesced_plans,
        "every deferred plan either fires on a fault or quiesces"
    );
    // The eager run *did* waste final-barrier exchanges.
    assert!(eager.net().policy_report().prefetch_rounds > pol.prefetch_rounds);
}

#[test]
fn policy_persists_across_runs() {
    let cl = Cluster::new(DsmConfig::with_nprocs(2));
    let s = cl.alloc::<f64>(512);
    cl.run(|p| {
        if p.rank() == 1 {
            p.set_policy(Box::new(PrefetchAll::default()));
        }
    });
    cl.run(|p| {
        if p.rank() == 0 {
            p.write(&s, 0, 2.5);
        }
        p.barrier();
        assert_eq!(p.read(&s, 0), 2.5);
    });
    // The reader's fetch went through the adaptive path, proving the
    // policy survived into the second run().
    assert!(cl.report().messages_per_kind(MsgKind::AdaptRequest) > 0);
    assert_eq!(cl.report().messages_per_kind(MsgKind::DiffRequest), 0);
}
