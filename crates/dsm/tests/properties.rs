//! Property-based tests of the diff machinery and the interval algebra —
//! the invariants the multiple-writer protocol rests on.

use proptest::prelude::*;

use dsm::{vc_key, CompactVc, Diff, Payload, DENSE_VC_MAX};

/// A page mutation: (word-aligned offset, new bytes).
fn mutations(page: usize) -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0..page / 4, any::<u8>()), 0..40)
        .prop_map(|v| v.into_iter().map(|(w, b)| (w * 4, b)).collect())
}

proptest! {
    #[test]
    fn diff_roundtrip(muts in mutations(512)) {
        let twin = vec![7u8; 512];
        let mut cur = twin.clone();
        for &(off, b) in &muts {
            cur[off] = b;
        }
        let d = Diff::create(&twin, &cur);
        let mut dst = twin.clone();
        d.apply(&mut dst);
        prop_assert_eq!(dst, cur);
    }

    #[test]
    fn diff_empty_iff_equal(muts in mutations(256)) {
        let twin = vec![0u8; 256];
        let mut cur = twin.clone();
        for &(off, b) in &muts {
            cur[off] = b;
        }
        let d = Diff::create(&twin, &cur);
        prop_assert_eq!(d.is_empty(), twin == cur);
    }

    #[test]
    fn diff_never_touches_unmodified_words(muts in mutations(256)) {
        let twin: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let mut cur = twin.clone();
        for &(off, b) in &muts {
            cur[off] = b;
        }
        let d = Diff::create(&twin, &cur);
        // Apply onto a DIFFERENT base: untouched words of that base must
        // survive (this is what makes concurrent disjoint diffs mergeable).
        let base = vec![0xEEu8; 256];
        let mut dst = base.clone();
        d.apply(&mut dst);
        for w in 0..64 {
            let range = w * 4..w * 4 + 4;
            let modified = cur[range.clone()] != twin[range.clone()];
            if !modified {
                prop_assert_eq!(&dst[range.clone()], &base[range.clone()],
                    "word {} clobbered", w);
            }
        }
    }

    #[test]
    fn disjoint_concurrent_diffs_commute(
        a_muts in mutations(256),
        b_muts in mutations(256),
    ) {
        // Force disjointness: a gets even words, b gets odd words.
        let twin = vec![0u8; 256];
        let (mut a, mut b) = (twin.clone(), twin.clone());
        for &(off, v) in &a_muts {
            let w = off / 4;
            if w % 2 == 0 { a[off] = v; }
        }
        for &(off, v) in &b_muts {
            let w = off / 4;
            if w % 2 == 1 { b[off] = v; }
        }
        let da = Diff::create(&twin, &a);
        let db = Diff::create(&twin, &b);
        let mut ab = twin.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = twin.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn full_payload_wire_accounting(content in proptest::collection::vec(any::<u8>(), 64)) {
        let p = Payload::Full(content.clone().into_boxed_slice());
        prop_assert_eq!(p.wire_bytes(), 64 + 8);
        let mut dst = vec![0u8; 64];
        p.apply(&mut dst);
        prop_assert_eq!(dst, content);
    }

    #[test]
    fn diff_wire_bytes_bounded(muts in mutations(512)) {
        let twin = vec![0u8; 512];
        let mut cur = twin.clone();
        for &(off, b) in &muts {
            cur[off] = b;
        }
        let d = Diff::create(&twin, &cur);
        // Never bigger than a whole-page run, never smaller than payload.
        prop_assert!(d.wire_bytes() <= 512 + 4 * d.run_count());
        let payload: usize = (0..128)
            .filter(|w| cur[w * 4..w * 4 + 4] != twin[w * 4..w * 4 + 4])
            .count()
            * 4;
        prop_assert!(d.wire_bytes() >= payload);
    }

    /// The wire representation of an interval clock round-trips at
    /// every cluster size: small clocks travel dense (the pre-scaling
    /// format, byte-identical billing), large clocks travel as sparse
    /// deltas against the receiver-known base — and decoding recovers
    /// the exact clock either way.
    #[test]
    fn compact_vc_roundtrips_at_all_sizes(
        nprocs in prop::sample::select(vec![3usize, 16, 64]),
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random base + advance from the seed (the
        // strategy samples the size axis; the clock entries just need
        // coverage of zero/nonzero advances).
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as u32
        };
        let base: Vec<u32> = (0..nprocs).map(|_| next() % 100).collect();
        let vc: Vec<u32> = base.iter().map(|&b| b + next() % 4).collect();

        let enc = CompactVc::encode(&vc, &base);
        prop_assert_eq!(enc.decode(&base), vc.clone());
        let advanced = vc.iter().zip(&base).filter(|(v, b)| v > b).count();
        if nprocs <= DENSE_VC_MAX {
            prop_assert_eq!(enc.wire_bytes(), 4 * nprocs, "dense = the old billing");
        } else {
            prop_assert_eq!(enc.wire_bytes(), 4 + 8 * advanced);
            prop_assert!(enc.wire_bytes() <= 4 + 8 * nprocs);
        }
    }

    /// vc_key is a linear extension of happens-before: if a's vc is
    /// dominated by b's (and b includes its own later increment), a's key
    /// sorts first.
    #[test]
    fn vc_key_respects_dominance(
        base in proptest::collection::vec(0u32..20, 4),
        bumps in proptest::collection::vec(0u32..5, 4),
        p in 0usize..4,
        q in 0usize..4,
    ) {
        let vc_a = base.clone();
        let seq_a = vc_a[p];
        // b saw a and then closed its own interval.
        let mut vc_b: Vec<u32> = base.iter().zip(&bumps).map(|(&v, &d)| v + d).collect();
        vc_b[q] += 1;
        let seq_b = vc_b[q];
        let ka = vc_key(&vc_a, p, seq_a);
        let kb = vc_key(&vc_b, q, seq_b);
        prop_assert!(ka < kb, "{ka:?} !< {kb:?}");
    }
}
