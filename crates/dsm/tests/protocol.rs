//! Protocol-level integration tests for the TreadMarks-style DSM:
//! lazy-invalidate release consistency, the multiple-writer protocol,
//! garbage collection, locks, and the Validate support hooks.

use dsm::{Cluster, DsmConfig, FetchClass, MsgKind, PageState};

fn cluster(nprocs: usize) -> Cluster {
    Cluster::new(DsmConfig::with_nprocs(nprocs))
}

#[test]
fn multiple_writers_on_one_page_merge_at_barrier() {
    // Two processors write disjoint words of the SAME page concurrently —
    // the false-sharing case the multiple-writer protocol exists for.
    let cl = cluster(2);
    let s = cl.alloc::<f64>(16); // one page
    cl.run(|p| {
        let me = p.rank();
        p.write(&s, me * 8, (me + 1) as f64);
        p.barrier();
        assert_eq!(p.read(&s, 0), 1.0);
        assert_eq!(p.read(&s, 8), 2.0);
        p.barrier();
    });
}

#[test]
fn eight_writers_one_page() {
    let cl = cluster(8);
    let s = cl.alloc::<f64>(512); // one page of 4096 bytes
    cl.run(|p| {
        let me = p.rank();
        for k in 0..64 {
            p.write(&s, me * 64 + k, (me * 1000 + k) as f64);
        }
        p.barrier();
        for q in 0..8 {
            for k in 0..64 {
                assert_eq!(p.read(&s, q * 64 + k), (q * 1000 + k) as f64);
            }
        }
        p.barrier();
    });
}

#[test]
fn invalidation_only_at_acquire() {
    // LRC: a write is NOT visible until the reader synchronizes.
    let cl = cluster(2);
    let s = cl.alloc::<f64>(8);
    let flag = cl.alloc::<f64>(8);
    cl.run(|p| {
        if p.rank() == 0 {
            p.write(&s, 0, 9.0);
            p.barrier(); // release
            p.barrier();
        } else {
            // Touch the page before p0's barrier: value still old (0).
            let v0 = p.read(&s, 0);
            p.barrier();
            // After the barrier (acquire) the page is invalid; a read
            // faults and fetches the diff.
            assert_eq!(p.page_state(s.pages(p.page_size()).start), PageState::Invalid);
            let v1 = p.read(&s, 0);
            assert_eq!(v0, 0.0, "no consistency action before the acquire");
            assert_eq!(v1, 9.0, "diff fetched after the acquire");
            p.barrier();
        }
        let _ = flag;
    });
}

#[test]
fn write_to_invalid_page_merges_remote_content_first() {
    // p1 writes word 1 of a page p0 modified (word 0): the write fault
    // must fetch p0's diff before twinning, or p0's data would be lost.
    let cl = cluster(2);
    let s = cl.alloc::<f64>(8);
    cl.run(|p| {
        if p.rank() == 0 {
            p.write(&s, 0, 5.0);
        }
        p.barrier();
        if p.rank() == 1 {
            p.write(&s, 1, 6.0);
        }
        p.barrier();
        assert_eq!(p.read(&s, 0), 5.0);
        assert_eq!(p.read(&s, 1), 6.0);
        p.barrier();
    });
}

#[test]
fn garbage_collection_folds_and_master_serves_stale_readers() {
    let cl = cluster(2);
    let s = cl.alloc::<f64>(8);
    let other = cl.alloc::<f64>(8);
    cl.run(|p| {
        if p.rank() == 0 {
            p.write(&s, 0, 1.25);
        }
        // Many epochs of unrelated work so the record gets folded.
        for it in 0..6 {
            if p.rank() == 0 {
                p.write(&other, 0, it as f64);
            }
            p.barrier();
        }
        if p.rank() == 1 {
            // First touch ever: the diff is long gone — master copy path.
            assert_eq!(p.read(&s, 0), 1.25);
            assert!(p.counters().master_fetches >= 1, "expected a master fetch");
        }
        p.barrier();
    });
    // The fold horizon lags one barrier, so retention stays bounded.
    assert!(cl.retained_records() <= 4, "records leak: {}", cl.retained_records());
}

#[test]
fn lock_transfers_consistency() {
    // Classic lock-protected producer/consumer with no barrier: the
    // acquirer must see the releaser's writes (notices ride the grant).
    let cl = cluster(2);
    let s = cl.alloc::<f64>(8);
    cl.run(|p| {
        if p.rank() == 0 {
            p.lock(1);
            p.write(&s, 0, 3.5);
            p.unlock(1);
            p.barrier();
        } else {
            // Spin until the value is visible through the lock.
            loop {
                p.lock(1);
                let v = p.read(&s, 0);
                p.unlock(1);
                if v == 3.5 {
                    break;
                }
                std::thread::yield_now();
            }
            p.barrier();
        }
    });
    assert!(cl.report().messages_per_kind(MsgKind::Lock) > 0);
}

#[test]
fn lock_mutual_exclusion_counter() {
    let cl = cluster(4);
    let s = cl.alloc::<f64>(8);
    const PER_PROC: usize = 25;
    cl.run(|p| {
        for _ in 0..PER_PROC {
            p.lock(7);
            let v = p.read(&s, 0);
            p.write(&s, 0, v + 1.0);
            p.unlock(7);
        }
        p.barrier();
        assert_eq!(p.read(&s, 0), (4 * PER_PROC) as f64);
        p.barrier();
    });
}

#[test]
fn reacquiring_own_lock_is_message_free() {
    let cl = cluster(2);
    cl.run(|p| {
        if p.rank() == 0 {
            p.lock(3);
            p.unlock(3);
            let before = p.counters().lock_acquires;
            assert_eq!(before, 1);
        }
        p.barrier();
    });
    let msgs_after_first = cl.report().messages_per_kind(MsgKind::Lock);
    cl.run(|p| {
        if p.rank() == 0 {
            p.lock(3); // cached ownership
            p.unlock(3);
        }
        p.barrier();
    });
    assert_eq!(
        cl.report().messages_per_kind(MsgKind::Lock),
        msgs_after_first,
        "reacquire must add no lock messages"
    );
}

#[test]
fn full_write_publishes_whole_page_and_skips_twin() {
    let cl = cluster(2);
    let s = cl.alloc::<f64>(512); // exactly one page
    cl.run(|p| {
        let pages: Vec<u32> = s.pages(p.page_size()).collect();
        if p.rank() == 0 {
            p.mark_full_write(&pages);
            for i in 0..512 {
                p.write(&s, i, i as f64);
            }
            assert_eq!(p.counters().twins_made, 0, "WRITE_ALL takes no twin");
        }
        p.barrier();
        if p.rank() == 1 {
            assert_eq!(p.read(&s, 511), 511.0);
        }
        p.barrier();
        if p.rank() == 0 {
            assert_eq!(p.counters().fulls_published, 1);
        }
    });
}

#[test]
fn pre_twin_eliminates_write_faults() {
    let cl = cluster(1);
    let s = cl.alloc::<f64>(2048); // 4 pages
    cl.run(|p| {
        // Validate-style: fetch + twin ahead of the loop.
        let pages: Vec<u32> = s.pages(p.page_size()).collect();
        p.fetch_pages(&pages, FetchClass::Aggregated);
        p.pre_twin(&pages);
        let faults_before = p.counters().write_faults;
        for i in 0..2048 {
            p.write(&s, i, 1.0);
        }
        assert_eq!(p.counters().write_faults, faults_before);
        assert_eq!(p.counters().twins_made, 4);
    });
}

#[test]
fn aggregated_fetch_uses_one_exchange_per_peer() {
    // One writer dirties many pages; a reader fetching them by demand
    // pays 2 messages per page, while the aggregated fetch pays 2 total.
    const PAGES: usize = 10;
    let make = || {
        let cl = cluster(2);
        let s = cl.alloc::<f64>(512 * PAGES);
        (cl, s)
    };

    let (cl_demand, s) = make();
    cl_demand.run(|p| {
        if p.rank() == 0 {
            for pg in 0..PAGES {
                p.write(&s, pg * 512, 1.0);
            }
        }
        p.barrier();
        if p.rank() == 1 {
            for pg in 0..PAGES {
                let _ = p.read(&s, pg * 512); // one demand fault per page
            }
        }
        p.barrier();
    });

    let (cl_agg, s2) = make();
    cl_agg.run(|p| {
        if p.rank() == 0 {
            for pg in 0..PAGES {
                p.write(&s2, pg * 512, 1.0);
            }
        }
        p.barrier();
        if p.rank() == 1 {
            let pages: Vec<u32> = s2.pages(p.page_size()).collect();
            p.fetch_pages(&pages, FetchClass::Aggregated);
            for pg in 0..PAGES {
                assert_eq!(p.read(&s2, pg * 512), 1.0);
            }
        }
        p.barrier();
    });

    let demand = cl_demand.report();
    let agg = cl_agg.report();
    assert_eq!(demand.messages_per_kind(MsgKind::DiffRequest), PAGES as u64);
    assert_eq!(agg.messages_per_kind(MsgKind::AggRequest), 1);
    assert!(agg.messages + 2 * PAGES as u64 - 2 <= demand.messages);
    // Same payload moved either way.
    assert_eq!(
        demand.bytes_per_kind(MsgKind::DiffReply),
        agg.bytes_per_kind(MsgKind::AggReply)
    );
    // ... and the aggregated fetch is faster in simulated time.
    assert!(cl_agg.elapsed() < cl_demand.elapsed());
}

#[test]
fn watch_fires_on_local_write_and_remote_notice() {
    let cl = cluster(2);
    let ind = cl.alloc::<i32>(1024); // one page
    cl.run(|p| {
        let key = p.new_watch();
        assert!(p.take_modified(key), "watches are born dirty");
        assert!(!p.take_modified(key), "take clears");

        // Fetch so the page is valid, then arm the watch.
        let pages: Vec<u32> = ind.pages(p.page_size()).collect();
        p.fetch_pages(&pages, FetchClass::Aggregated);
        p.watch_pages(key, pages.iter().copied());
        p.barrier();

        if p.rank() == 0 {
            p.write(&ind, 0, 42); // local write → protection fault → flag
            assert!(p.take_modified(key));
        }
        p.barrier();
        if p.rank() == 1 {
            // Remote modification arrived as a write notice at the barrier.
            assert!(p.take_modified(key));
            assert_eq!(p.read(&ind, 0), 42);
        }
        p.barrier();
    });
}

#[test]
fn counts_are_deterministic_across_identical_runs() {
    let run_once = || {
        let cl = cluster(4);
        let s = cl.alloc::<f64>(4096);
        cl.run(|p| {
            let me = p.rank();
            let n = s.len();
            let chunk = n / p.nprocs();
            for it in 0..3 {
                for i in me * chunk..(me + 1) * chunk {
                    p.write(&s, i, (it * 10 + me) as f64);
                }
                p.barrier();
                // read a neighbour's chunk
                let nb = (me + 1) % p.nprocs();
                let mut sum = 0.0;
                for i in nb * chunk..(nb + 1) * chunk {
                    sum += p.read(&s, i);
                }
                assert!(sum >= 0.0);
                p.barrier();
            }
        });
        let r = cl.report();
        (r.messages, r.bytes, cl.elapsed())
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn page_size_is_configurable() {
    let cfg = DsmConfig {
        nprocs: 2,
        page_size: 1024,
        ..Default::default()
    };
    let cl = Cluster::new(cfg);
    let s = cl.alloc::<f64>(512); // 4 KB = 4 pages of 1 KB
    cl.run(|p| {
        if p.rank() == 0 {
            for i in 0..512 {
                p.write(&s, i, 2.0);
            }
        }
        p.barrier();
        if p.rank() == 1 {
            for i in (0..512).step_by(128) {
                assert_eq!(p.read(&s, i), 2.0);
            }
            assert_eq!(p.counters().read_faults, 4, "one fault per 1 KB page");
        }
        p.barrier();
    });
}

#[test]
fn update_and_bulk_accessors() {
    let cl = cluster(2);
    let s = cl.alloc::<f64>(64);
    cl.run(|p| {
        if p.rank() == 0 {
            p.write_slice(&s, 0, &[1.0, 2.0, 3.0, 4.0]);
            p.update(&s, 1, |v| v * 10.0);
        }
        p.barrier();
        if p.rank() == 1 {
            let mut buf = [0.0f64; 4];
            p.read_slice(&s, 0, &mut buf);
            assert_eq!(buf, [1.0, 20.0, 3.0, 4.0]);
        }
        p.barrier();
    });
}

#[test]
fn mixed_pod_types_share_pages_safely() {
    // An i32 array and an f64 array; writers on different processors.
    let cl = cluster(2);
    let ints = cl.alloc::<i32>(16);
    let floats = cl.alloc::<f64>(16);
    let longs = cl.alloc::<u64>(4);
    cl.run(|p| {
        if p.rank() == 0 {
            p.write(&ints, 3, -7);
            p.write(&longs, 0, u64::MAX);
        } else {
            p.write(&floats, 3, 2.5);
        }
        p.barrier();
        assert_eq!(p.read(&ints, 3), -7);
        assert_eq!(p.read(&floats, 3), 2.5);
        assert_eq!(p.read(&longs, 0), u64::MAX);
        assert_eq!(p.read(&ints, 0), 0);
        p.barrier();
    });
}

#[test]
fn three_processors_uneven() {
    // Odd processor counts exercise non-power-of-two barriers/pipelines.
    let cl = cluster(3);
    let s = cl.alloc::<f64>(300);
    cl.run(|p| {
        let me = p.rank();
        for i in (me * 100)..((me + 1) * 100) {
            p.write(&s, i, me as f64 + 1.0);
        }
        p.barrier();
        let total: f64 = (0..300).map(|i| p.read(&s, i)).sum();
        assert_eq!(total, 100.0 * (1.0 + 2.0 + 3.0));
        p.barrier();
    });
}

#[test]
fn write_all_versus_twin_data_volume() {
    // Full-page publications ship whole pages; diff publications of a
    // fully rewritten page carry roughly the same bytes — the win shows
    // in *fetch* traffic when readers consume stacked modifications
    // (covered by core::tests); here: both publish paths roundtrip.
    let cl = cluster(2);
    let a = cl.alloc::<f64>(512);
    cl.run(|p| {
        if p.rank() == 0 {
            let pages: Vec<u32> = a.pages(p.page_size()).collect();
            p.mark_full_write(&pages);
            for i in 0..512 {
                p.write(&a, i, 3.0);
            }
        }
        p.barrier();
        if p.rank() == 1 {
            assert_eq!(p.read(&a, 0), 3.0);
            assert_eq!(p.read(&a, 511), 3.0);
        }
        p.barrier();
    });
}

#[test]
fn lock_ping_pong_transfers_latest_values() {
    // Strict alternation through two locks: a token-passing pattern where
    // every acquire must observe the other side's latest increment.
    let cl = cluster(2);
    let s = cl.alloc::<f64>(8);
    const ROUNDS: usize = 10;
    cl.run(|p| {
        let me = p.rank();
        for round in 0..ROUNDS {
            loop {
                p.lock(9);
                let v = p.read(&s, 0) as usize;
                // v counts completed half-rounds; it's my turn when
                // v % 2 == me.
                if v == 2 * round + me {
                    p.write(&s, 0, (v + 1) as f64);
                    p.unlock(9);
                    break;
                }
                p.unlock(9);
                std::thread::yield_now();
            }
        }
        p.barrier();
        assert_eq!(p.read(&s, 0), (2 * ROUNDS) as f64);
    });
}

#[test]
fn heap_growth_between_runs() {
    let cl = cluster(2);
    let a = cl.alloc::<f64>(8);
    cl.run(|p| {
        if p.rank() == 0 {
            p.write(&a, 0, 1.0);
        }
        p.barrier();
    });
    // Allocate more shared memory after a run; frames must grow.
    let b = cl.alloc::<f64>(4096);
    cl.run(|p| {
        if p.rank() == 1 {
            p.write(&b, 4095, 9.0);
        }
        p.barrier();
        assert_eq!(p.read(&a, 0), 1.0);
        assert_eq!(p.read(&b, 4095), 9.0);
        p.barrier();
    });
}
