//! The published-record store: where closed intervals' diffs live until
//! fetched, plus the garbage-collection "master" copies.
//!
//! In real TreadMarks each modifier retains its diffs and serves them on
//! request; periodically a garbage collection validates every page and
//! reclaims diff storage. Here the records live in a store partitioned by
//! creating processor (requests are still *charged* to that processor),
//! and GC folds old records into a per-page **master copy** held by the
//! page's manager (`page % nprocs`). A processor whose copy of a page is
//! older than the fold horizon fetches the master page plus any newer
//! records — the analogue of TreadMarks fetching the whole page after GC.

use std::sync::Arc;

use parking_lot::RwLock;
use simnet::ProcId;

use crate::diff::Payload;
use crate::interval::{vc_key, Vc};
use crate::pagepool::PagePool;

/// One published modification of one page by one interval.
#[derive(Debug, Clone)]
pub struct Record {
    /// The processor whose interval published this record.
    pub proc: ProcId,
    /// That processor's interval sequence number (1-based).
    pub seq: u32,
    /// The publishing interval's vector clock.
    pub vc: Arc<[u32]>,
    /// The page modification itself (diff or full page).
    pub payload: Arc<Payload>,
}

impl Record {
    /// Deterministic causal sort key — see [`vc_key`].
    pub fn key(&self) -> (u64, usize, u32) {
        vc_key(&self.vc, self.proc, self.seq)
    }
}

#[derive(Debug, Default)]
struct PageLog {
    /// Records with `seq <= folded_upto` have been folded into the master
    /// copy and dropped from `records`.
    folded_upto: u32,
    /// Retained records, ascending `seq`.
    records: Vec<Record>,
}

#[derive(Debug)]
struct Master {
    /// Pointwise: every record with `seq <= horizon[proc]` is folded.
    horizon: Vc,
    /// Master copies indexed by page id (`None` = never folded).
    pages: Vec<Option<Box<[u8]>>>,
}

/// See module docs.
///
/// Per-processor logs are flat page-indexed arenas, not hash maps. A
/// slot stays `None` until that processor first publishes to the page:
/// the `None`-vs-empty distinction is semantic (a missing log with a
/// pending notice means "fetch the master"; an existing log answers
/// from its own [`PageLog::folded_upto`]), so flattening must keep it.
#[derive(Debug)]
pub struct DiffStore {
    per_proc: Vec<RwLock<Vec<Option<PageLog>>>>,
    master: RwLock<Master>,
    /// Free-list shared with the owning cluster: master copies and
    /// master-fetch replies cycle through the same boxes as page frames
    /// and twins, keeping recycled runs allocation-neutral.
    pool: Arc<PagePool>,
}

/// Result of asking for one page's records from one processor.
pub(crate) struct Collected {
    pub records: Vec<Record>,
    /// Some needed records were folded: the caller must fetch the master
    /// page (and apply it before `records`).
    pub needs_master: bool,
}

impl DiffStore {
    /// An empty store for `nprocs` processors of `page_size`-byte pages,
    /// with a private page free-list.
    pub fn new(nprocs: usize, page_size: usize) -> Self {
        Self::with_pool(nprocs, page_size, Arc::new(PagePool::new(page_size)))
    }

    /// An empty store drawing page boxes from `pool` (the owning
    /// cluster's free-list).
    pub(crate) fn with_pool(nprocs: usize, _page_size: usize, pool: Arc<PagePool>) -> Self {
        DiffStore {
            per_proc: (0..nprocs).map(|_| RwLock::new(Vec::new())).collect(),
            master: RwLock::new(Master {
                horizon: vec![0; nprocs],
                pages: Vec::new(),
            }),
            pool,
        }
    }

    /// Publish `payload` as processor `proc`'s interval `seq` modification
    /// of `page`.
    pub fn publish(&self, proc: ProcId, page: u32, seq: u32, vc: Arc<[u32]>, payload: Payload) {
        let mut map = self.per_proc[proc].write();
        let idx = page as usize;
        if map.len() <= idx {
            map.resize_with(idx + 1, || None);
        }
        let log = map[idx].get_or_insert_with(PageLog::default);
        debug_assert!(
            log.records.last().is_none_or(|r| r.seq < seq),
            "records must be published in seq order"
        );
        log.records.push(Record {
            proc,
            seq,
            vc,
            payload: Arc::new(payload),
        });
    }

    fn collect_locked(map: &[Option<PageLog>], page: u32, after: u32, upto: u32) -> Collected {
        match map.get(page as usize).and_then(|s| s.as_ref()) {
            None => Collected {
                records: Vec::new(),
                // A pending notice referenced this record but the whole log
                // is gone — everything was folded.
                needs_master: after < upto,
            },
            Some(log) => {
                let records = log
                    .records
                    .iter()
                    .filter(|r| r.seq > after && r.seq <= upto)
                    .cloned()
                    .collect();
                Collected {
                    records,
                    needs_master: after < log.folded_upto,
                }
            }
        }
    }

    /// Records of `proc` for `page` with `after < seq <= upto`.
    pub(crate) fn collect(&self, proc: ProcId, page: u32, after: u32, upto: u32) -> Collected {
        Self::collect_locked(&self.per_proc[proc].read(), page, after, upto)
    }

    /// Batched [`DiffStore::collect`]: resolve every pending
    /// `(page, after, upto)` request against `proc`'s log under a
    /// *single* lock acquisition — one page-fetch round used to take one
    /// lock round per record.
    pub(crate) fn collect_batch(&self, proc: ProcId, reqs: &[(u32, u32, u32)]) -> Vec<Collected> {
        let map = self.per_proc[proc].read();
        reqs.iter()
            .map(|&(page, after, upto)| Self::collect_locked(&map, page, after, upto))
            .collect()
    }

    /// The master copy of `page` (zeros if never folded) and the fold
    /// horizon. The caller charges the fetch to the page's manager.
    pub fn master_fetch(&self, page: u32) -> (Box<[u8]>, Vc) {
        let m = self.master.read();
        let data = match m.pages.get(page as usize).and_then(|s| s.as_deref()) {
            Some(master) => self.pool.take_copy(master),
            None => self.pool.take_zeroed(),
        };
        (data, m.horizon.clone())
    }

    /// Current fold horizon (no page data) — used to decide whether a
    /// `Full` snapshot makes a master fetch unnecessary.
    pub fn master_horizon(&self) -> Vc {
        self.master.read().horizon.clone()
    }

    /// Fold every record with `seq <= horizon[proc]` into the master
    /// copies and drop it. Called by the barrier leader while all
    /// processors are parked, so it cannot race with fetches.
    pub fn fold(&self, horizon: &[u32]) {
        // Collect (key, page, payload) of everything being folded, across
        // all processors, so application order is a linear extension of
        // happens-before.
        let mut folded: Vec<(Record, u32)> = Vec::new();
        for (q, lock) in self.per_proc.iter().enumerate() {
            let mut map = lock.write();
            for (page, slot) in map.iter_mut().enumerate() {
                let page = page as u32;
                let Some(log) = slot.as_mut() else { continue };
                if horizon[q] > log.folded_upto {
                    let keep = log
                        .records
                        .iter()
                        .position(|r| r.seq > horizon[q])
                        .unwrap_or(log.records.len());
                    for r in log.records.drain(..keep) {
                        folded.push((r, page));
                    }
                    log.folded_upto = horizon[q];
                }
            }
        }
        if folded.is_empty() {
            let mut m = self.master.write();
            for (h, &n) in m.horizon.iter_mut().zip(horizon) {
                *h = (*h).max(n);
            }
            return;
        }
        folded.sort_by_key(|(r, page)| (*page, r.key()));
        let mut m = self.master.write();
        for (r, page) in folded {
            let idx = page as usize;
            if m.pages.len() <= idx {
                m.pages.resize_with(idx + 1, || None);
            }
            let buf = m.pages[idx].get_or_insert_with(|| self.pool.take_zeroed());
            r.payload.apply(buf);
        }
        for (h, &n) in m.horizon.iter_mut().zip(horizon) {
            *h = (*h).max(n);
        }
    }

    /// Drop every record, return every master copy to the page pool,
    /// and zero the fold horizon, keeping the per-processor arenas'
    /// capacity. Part of [`crate::Cluster::recycle`]; must not race
    /// with fetches.
    pub fn reset(&self) {
        for lock in &self.per_proc {
            lock.write().clear();
        }
        let mut m = self.master.write();
        m.horizon.fill(0);
        self.pool.give_all(m.pages.drain(..).flatten());
    }

    /// Number of retained (unfolded) records — memory-bound test hook.
    pub fn retained_records(&self) -> usize {
        self.per_proc
            .iter()
            .map(|l| {
                l.read()
                    .iter()
                    .flatten()
                    .map(|g| g.records.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::Diff;

    fn diff_payload(page_size: usize, off: usize, val: u8) -> Payload {
        let twin = vec![0u8; page_size];
        let mut cur = twin.clone();
        cur[off..off + 8].fill(val);
        Payload::Diff(Diff::create(&twin, &cur))
    }

    #[test]
    fn publish_collect_roundtrip() {
        let s = DiffStore::new(2, 64);
        s.publish(0, 7, 1, vec![1, 0].into(), diff_payload(64, 0, 1));
        s.publish(0, 7, 2, vec![2, 0].into(), diff_payload(64, 8, 2));
        let c = s.collect(0, 7, 0, 2);
        assert_eq!(c.records.len(), 2);
        assert!(!c.needs_master);
        let c = s.collect(0, 7, 1, 2);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].seq, 2);
    }

    #[test]
    fn collect_batch_matches_per_record_collects() {
        let s = DiffStore::new(2, 64);
        s.publish(0, 7, 1, vec![1, 0].into(), diff_payload(64, 0, 1));
        s.publish(0, 7, 2, vec![2, 0].into(), diff_payload(64, 8, 2));
        s.publish(0, 9, 1, vec![1, 0].into(), diff_payload(64, 16, 3));
        let reqs = [(7u32, 0u32, 2u32), (9, 0, 1), (11, 0, 3), (9, 1, 1)];
        let batch = s.collect_batch(0, &reqs);
        assert_eq!(batch.len(), reqs.len());
        for (&(page, after, upto), b) in reqs.iter().zip(&batch) {
            let single = s.collect(0, page, after, upto);
            assert_eq!(b.needs_master, single.needs_master, "page {page}");
            assert_eq!(b.records.len(), single.records.len(), "page {page}");
            for (x, y) in b.records.iter().zip(&single.records) {
                assert_eq!((x.proc, x.seq), (y.proc, y.seq));
            }
        }
        // The missing-log case still reports needs_master inside a batch.
        assert!(batch[2].needs_master);
        assert!(batch[2].records.is_empty());
    }

    #[test]
    fn collect_missing_log_wants_master() {
        let s = DiffStore::new(2, 64);
        let c = s.collect(1, 3, 0, 5);
        assert!(c.records.is_empty());
        assert!(c.needs_master);
        // ... but if nothing is actually needed, no master either.
        let c = s.collect(1, 3, 5, 5);
        assert!(!c.needs_master);
    }

    #[test]
    fn fold_moves_content_to_master() {
        let s = DiffStore::new(2, 64);
        s.publish(0, 9, 1, vec![1, 0].into(), diff_payload(64, 0, 0xAA));
        s.publish(0, 9, 2, vec![2, 0].into(), diff_payload(64, 8, 0xBB));
        s.fold(&[1, 0]);
        assert_eq!(s.retained_records(), 1);

        let c = s.collect(0, 9, 0, 2);
        assert_eq!(c.records.len(), 1);
        assert!(c.needs_master, "record 1 lives in the master now");

        let (data, horizon) = s.master_fetch(9);
        assert_eq!(horizon, vec![1, 0]);
        assert!(data[0..8].iter().all(|&b| b == 0xAA));
        assert!(data[8..16].iter().all(|&b| b == 0));
    }

    #[test]
    fn fold_applies_in_causal_order() {
        // Two full-page snapshots where the later must win.
        let s = DiffStore::new(2, 16);
        s.publish(
            0,
            0,
            1,
            vec![1, 0].into(),
            Payload::Full(vec![1u8; 16].into_boxed_slice()),
        );
        // proc 1 saw proc 0's interval (vc=[1,1]) then wrote everything.
        s.publish(
            1,
            0,
            1,
            vec![1, 1].into(),
            Payload::Full(vec![2u8; 16].into_boxed_slice()),
        );
        s.fold(&[1, 1]);
        let (data, _) = s.master_fetch(0);
        assert!(data.iter().all(|&b| b == 2));
    }

    #[test]
    fn fold_is_idempotent_and_monotone() {
        let s = DiffStore::new(1, 16);
        s.publish(0, 0, 1, vec![1].into(), diff_payload(16, 0, 5));
        s.fold(&[1]);
        s.fold(&[1]);
        s.fold(&[0]); // cannot lower the horizon
        let (_, h) = s.master_fetch(0);
        assert_eq!(h, vec![1]);
        assert_eq!(s.retained_records(), 0);
    }
}
