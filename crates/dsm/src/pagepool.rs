//! A shared free-list of page-sized byte boxes.
//!
//! One pool per cluster, shared (via `Arc`) with its [`crate::store::DiffStore`]:
//! every subsystem that materializes a page — frame data, twins, master
//! copies, master-fetch replies — draws from the same free-list and
//! returns to it, so a recycled cluster's steady state moves boxes in a
//! closed loop instead of allocating on one side and pooling on the
//! other (which would grow the pool without bound, one fresh box per
//! master fetch).

use parking_lot::Mutex;

/// See module docs.
#[derive(Debug)]
pub(crate) struct PagePool {
    page_size: usize,
    free: Mutex<Vec<Box<[u8]>>>,
}

impl PagePool {
    pub fn new(page_size: usize) -> Self {
        PagePool {
            page_size,
            free: Mutex::new(Vec::new()),
        }
    }

    /// A zero-filled page box, pooled if one is free.
    pub fn take_zeroed(&self) -> Box<[u8]> {
        match self.free.lock().pop() {
            Some(mut b) => {
                b.fill(0);
                b
            }
            None => vec![0u8; self.page_size].into_boxed_slice(),
        }
    }

    /// A copy of `src` (which must be page-sized), pooled if one is free.
    pub fn take_copy(&self, src: &[u8]) -> Box<[u8]> {
        debug_assert_eq!(src.len(), self.page_size);
        match self.free.lock().pop() {
            Some(mut b) => {
                b.copy_from_slice(src);
                b
            }
            None => src.to_vec().into_boxed_slice(),
        }
    }

    /// Return a box to the pool. Wrong-sized boxes (a cluster rebuilt
    /// with another page size) are dropped instead.
    pub fn give(&self, b: Box<[u8]>) {
        if b.len() == self.page_size {
            self.free.lock().push(b);
        }
    }

    /// Return many boxes at once.
    pub fn give_all(&self, boxes: impl IntoIterator<Item = Box<[u8]>>) {
        let mut free = self.free.lock();
        free.extend(boxes.into_iter().filter(|b| b.len() == self.page_size));
    }

    /// Free everything beyond `cap` boxes — a backstop so a transient
    /// high-water mark (one unusually paging-heavy job) does not pin
    /// its peak footprint forever.
    pub fn trim(&self, cap: usize) {
        let mut free = self.free.lock();
        if free.len() > cap {
            free.truncate(cap);
            free.shrink_to_fit();
        }
    }

    /// Boxes currently pooled.
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxes_cycle_and_wrong_sizes_drop() {
        let p = PagePool::new(64);
        let a = p.take_zeroed();
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&b| b == 0));
        p.give(a);
        assert_eq!(p.len(), 1);
        let src = [7u8; 64];
        let b = p.take_copy(&src);
        assert_eq!(p.len(), 0, "copy must reuse the pooled box");
        assert_eq!(&b[..], &src[..]);
        p.give(vec![0u8; 32].into_boxed_slice());
        assert_eq!(p.len(), 0, "wrong-sized box must be dropped");
        p.give_all([b, vec![0u8; 16].into_boxed_slice()]);
        assert_eq!(p.len(), 1);
        p.trim(0);
        assert_eq!(p.len(), 0);
    }
}
