//! Cluster reuse: a free-list of recycled [`Cluster`]s.
//!
//! A serving workload (the `serve` crate) runs thousands of short
//! scenario cells back to back; building a fresh [`Cluster`] per cell
//! re-allocates every page frame, twin, diff arena, and notice board
//! only to tear them down milliseconds later. A [`ClusterPool`] keeps
//! finished clusters around: [`ClusterPool::checkin`] runs
//! [`Cluster::recycle`] (protocol state back to the just-built state,
//! allocations retained) and [`ClusterPool::checkout`] hands a matching
//! one back out, so a steady-state worker stops allocating per job.
//!
//! Correctness does not rest on trust: `recycle` restores observable
//! fresh-cluster semantics, and the `serve` driver asserts every job on
//! a pooled cluster reproduces the cold run's message counts bitwise.

use parking_lot::Mutex;

use crate::cluster::{Cluster, DsmConfig};

/// Retained clusters per pool — a worker thread interleaves at most a
/// handful of distinct cell shapes, so a short free list suffices.
const MAX_POOLED: usize = 8;

/// A free-list of recycled clusters, keyed by configuration.
///
/// Cheap enough to sit in a `thread_local!` (one per executor thread —
/// no cross-worker contention), but `Sync`, so a shared pool also works.
#[derive(Debug, Default)]
pub struct ClusterPool {
    free: Mutex<Vec<Cluster>>,
}

impl ClusterPool {
    /// An empty pool.
    pub const fn new() -> Self {
        ClusterPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// A cluster for `cfg`: a recycled one when the pool holds a
    /// configuration match, else a fresh [`Cluster::new`].
    pub fn checkout(&self, cfg: &DsmConfig) -> Cluster {
        let mut free = self.free.lock();
        if let Some(i) = free.iter().position(|c| {
            let have = c.config();
            have.nprocs == cfg.nprocs
                && have.page_size == cfg.page_size
                && have.cost == cfg.cost
        }) {
            return free.swap_remove(i);
        }
        drop(free);
        Cluster::new(cfg.clone())
    }

    /// Recycle `cl` and keep it for a later checkout (dropped when the
    /// pool is full). Panics if a `run` is still in flight on it.
    pub fn checkin(&self, cl: Cluster) {
        cl.recycle();
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            free.push(cl);
        }
    }

    /// Clusters currently pooled (diagnostics).
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_prefers_matching_config() {
        let pool = ClusterPool::new();
        pool.checkin(Cluster::new(DsmConfig::with_nprocs(2)));
        pool.checkin(Cluster::new(DsmConfig {
            page_size: 1024,
            ..DsmConfig::with_nprocs(2)
        }));
        assert_eq!(pool.len(), 2);
        let cl = pool.checkout(&DsmConfig {
            page_size: 1024,
            ..DsmConfig::with_nprocs(2)
        });
        assert_eq!(cl.page_size(), 1024);
        assert_eq!(pool.len(), 1);
        // No match (different nprocs): fresh cluster, pool untouched.
        let cl = pool.checkout(&DsmConfig::with_nprocs(4));
        assert_eq!(cl.nprocs(), 4);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn recycled_cluster_reproduces_a_cold_run() {
        let run = |cl: &Cluster| {
            let s = cl.alloc::<f64>(8);
            cl.run(|p| {
                if p.rank() == 0 {
                    p.write(&s, 0, 42.0);
                }
                p.barrier();
                assert_eq!(p.read(&s, 0), 42.0);
                p.barrier();
            });
            let rep = cl.report();
            (rep.messages, rep.bytes, cl.elapsed())
        };
        let cfg = DsmConfig::with_nprocs(2);
        let cold = run(&Cluster::new(cfg.clone()));

        let pool = ClusterPool::new();
        pool.checkin(Cluster::new(cfg.clone()));
        let cl = pool.checkout(&cfg);
        let warm1 = run(&cl);
        pool.checkin(cl);
        let cl = pool.checkout(&cfg);
        assert!(cl.pooled_pages() > 0, "recycle should have pooled frames");
        let warm2 = run(&cl);
        assert_eq!(cold, warm1);
        assert_eq!(cold, warm2);
    }

    #[test]
    fn recycle_resets_heap_and_state() {
        let cl = Cluster::new(DsmConfig::with_nprocs(2));
        let s = cl.alloc::<f64>(1024);
        cl.run(|p| {
            p.write(&s, p.rank() * 512, 1.0);
            p.barrier();
        });
        assert!(cl.heap_pages() > 0);
        assert!(cl.barrier_epoch() > 0);
        cl.recycle();
        assert_eq!(cl.heap_pages(), 0);
        assert_eq!(cl.barrier_epoch(), 0);
        assert_eq!(cl.report().messages, 0);
        // Fresh shared memory reads back zeroed.
        let s = cl.alloc::<f64>(8);
        cl.run(|p| {
            assert_eq!(p.read(&s, 0), 0.0);
        });
    }
}
