//! # dsm — a TreadMarks-style software distributed shared memory
//!
//! This crate reproduces the run-time protocol of TreadMarks 1.0.1 as the
//! paper describes it (§2):
//!
//! * **Lazy-invalidate release consistency**: ordinary shared accesses are
//!   distinguished from synchronization (barriers, locks). Consistency
//!   information travels only at acquires; the acquirer invalidates pages
//!   named in write notices of intervals it has not yet seen.
//! * **Vector-clock intervals**: each processor's execution is divided
//!   into intervals closed at every release (barrier arrival / lock
//!   release). An interval publishes *write notices* — the pages it
//!   dirtied — tagged with the processor's vector clock.
//! * **Multiple-writer protocol**: the first write to a page in an
//!   interval makes a *twin* (a copy); at interval close the twin is
//!   compared to the page to produce a run-length-encoded *diff*.
//!   Concurrent writers to one page produce disjoint diffs that merge at
//!   the next synchronization, taming page-granularity false sharing.
//! * **Demand fetch**: the first access to an invalidated page "faults";
//!   the handler fetches the missing diffs from their writers (one
//!   request/reply pair per writer) and applies them in causal order.
//!
//! ## What is simulated, and how faithfully
//!
//! Real TreadMarks detects accesses with `mprotect` + SIGSEGV and services
//! remote requests in a SIGIO handler. Here the shared heap is a software
//! MMU ([`SharedSlice`] + the typed accessors on [`TmkProc`]): they check a
//! per-page state machine and run the identical protocol transitions
//! (fault → fetch → apply → validate). Two deliberate deviations, both
//! metric-preserving (DESIGN.md §2):
//!
//! 1. **Eager diffing at interval close** instead of lazy diffing on first
//!    request. Same diffs, same messages; only the *moment* diff-creation
//!    time is charged moves, and it is still charged to the modifier.
//! 2. **A published-record store** ([`DiffStore`]) stands in for
//!    peer-to-peer request service. Message counts/bytes are charged
//!    exactly as the real request/reply pairs would be, via [`simnet`].
//!
//! The `sdsm-core` crate layers the paper's contribution — `Validate`,
//! aggregated prefetch, twin pre-creation, `WRITE_ALL` full-page transfer
//! — on top of the hooks this crate exposes ([`TmkProc::fetch_pages`],
//! [`TmkProc::pre_twin`], [`TmkProc::mark_full_write`],
//! [`TmkProc::watch_pages`]).
//!
//! A third consumer is the runtime-adaptive engine in the `adapt` crate:
//! each processor carries a [`ProtocolPolicy`] that observes demand
//! misses and barrier-time invalidations and may answer an epoch with a
//! batched prefetch — same aggregation machinery, no compiler. The
//! default [`StaticPolicy`] keeps the exact base-TreadMarks behavior.

#![warn(missing_docs)]

mod barrier;
mod cluster;
mod diff;
mod heap;
mod interval;
mod lock;
mod pagepool;
mod policy;
mod proc;
mod scratch;
mod store;

pub use cluster::{Cluster, DsmConfig};
pub use scratch::ClusterPool;
pub use diff::{Diff, Payload, DIFF_WORD};
pub use heap::{Pod, SharedSlice};
pub use interval::{covers, vc_key, CompactVc, IntervalRec, NoticeBoard, Vc, DENSE_VC_MAX};
pub use policy::{EpochDecision, ProtocolPolicy, StaticPolicy};
pub use proc::{FetchClass, PageState, ProcCounters, TmkProc};
pub use store::{DiffStore, Record};

pub use simnet::{CostModel, MsgKind, Net, NetReport, PolicyReport, PolicyStats, ProcId, SimTime};
