//! Locks: exclusive synchronization with lazy consistency transfer.
//!
//! TreadMarks locks are manager-based: an acquire sends a request to the
//! lock's statically assigned manager, which forwards it to the last
//! holder; the grant message carries the releaser's vector clock and the
//! write notices the acquirer has not yet seen. Re-acquiring a lock this
//! processor released last is free of messages (ownership caching).
//!
//! The applications in the paper are barrier-structured, but locks are
//! part of the TreadMarks API (§2) and are exercised by tests and the
//! quickstart example.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use simnet::{MsgKind, ProcId, SimTime, StallCat, TraceEvent};

use crate::interval::Vc;
use crate::proc::TmkProc;

#[derive(Debug)]
struct LockSt {
    held_by: Option<ProcId>,
    last_holder: Option<ProcId>,
    release_vc: Vc,
    release_time: SimTime,
}

#[derive(Debug)]
struct LockSlot {
    st: Mutex<LockSt>,
    cv: Condvar,
}

/// All locks, created on first use (TreadMarks pre-allocates an array of
/// lock ids; the observable semantics are the same).
#[derive(Debug, Default)]
pub(crate) struct LockMgr {
    slots: Mutex<HashMap<u32, Arc<LockSlot>>>,
}

impl LockMgr {
    /// Forget every lock (fresh-cluster state; no lock may be held).
    pub(crate) fn reset(&self) {
        self.slots.lock().clear();
    }

    fn slot(&self, id: u32, nprocs: usize) -> Arc<LockSlot> {
        let mut m = self.slots.lock();
        Arc::clone(m.entry(id).or_insert_with(|| {
            Arc::new(LockSlot {
                st: Mutex::new(LockSt {
                    held_by: None,
                    last_holder: None,
                    release_vc: vec![0; nprocs],
                    release_time: SimTime::ZERO,
                }),
                cv: Condvar::new(),
            })
        }))
    }
}

impl TmkProc<'_> {
    /// Acquire lock `id`, blocking until free, then merge the releaser's
    /// consistency information (invalidate pages named in unseen write
    /// notices).
    pub fn lock(&mut self, id: u32) {
        let me = self.rank();
        let nprocs = self.nprocs();
        let slot = self.cl.lock_mgr().slot(id, nprocs);
        let net = self.cl.net();
        let cost = net.cost();
        let _lw = net.scope(me, StallCat::LockWait);
        net.trace(me, TraceEvent::LockAcquire { lock: id });

        let target: Vc;
        {
            let mut st = slot.st.lock();
            while st.held_by.is_some() {
                slot.cv.wait(&mut st);
            }
            st.held_by = Some(me);

            if st.last_holder == Some(me) {
                // Ownership cached: no messages (TreadMarks optimization).
            } else {
                let manager = (id as usize) % nprocs;
                // Grant carries the notices the acquirer lacks.
                let mut grant_bytes = 16;
                for q in 0..nprocs {
                    grant_bytes +=
                        self.cl
                            .board()
                            .range_bytes(q, self.vc()[q], st.release_vc[q]);
                }
                let mut hops = 0u32;
                if manager != me {
                    net.count_only(me, MsgKind::Lock, 1, 16);
                    hops += 1;
                }
                match st.last_holder {
                    Some(h) if h != manager && h != me => {
                        // Manager forwards to the holder, holder grants.
                        net.count_only(manager, MsgKind::Lock, 1, 16);
                        net.count_only(h, MsgKind::Lock, 1, grant_bytes);
                        net.advance_remote(h, cost.handler());
                        hops += 2;
                    }
                    Some(h) if h != me => {
                        // Holder *is* the manager: it grants directly.
                        net.count_only(h, MsgKind::Lock, 1, grant_bytes);
                        net.advance_remote(h, cost.handler());
                        hops += 1;
                    }
                    _ => {
                        // First acquire ever: the manager grants.
                        if manager != me {
                            net.count_only(manager, MsgKind::Lock, 1, grant_bytes);
                            net.advance_remote(manager, cost.handler());
                            hops += 1;
                        }
                    }
                }
                // The grant cannot arrive before the release happened.
                net.await_until(me, st.release_time);
                net.advance(
                    me,
                    SimTime::from_us(
                        hops as f64 * cost.msg_latency_us
                            + cost.per_byte_us * grant_bytes as f64
                            + if hops > 0 { cost.handler_us } else { 0.0 },
                    ),
                );
            }
            target = st.release_vc.clone();
        }
        // Lock acquires are not policy epoch boundaries (the apps are
        // barrier-structured), so skip the invalidation bookkeeping.
        let _ = self.apply_notices(&target, false);
        self.inner.counters.lock_acquires += 1;
        net.trace(me, TraceEvent::LockAcquired { lock: id });
    }

    /// Release lock `id`: close the current interval (a *release* in the
    /// RC sense) and record our knowledge for the next acquirer.
    pub fn unlock(&mut self, id: u32) {
        let me = self.rank();
        let nprocs = self.nprocs();
        let _lw = self.cl.net().scope(me, StallCat::LockWait);
        self.close_interval();
        let slot = self.cl.lock_mgr().slot(id, nprocs);
        let mut st = slot.st.lock();
        assert_eq!(
            st.held_by,
            Some(me),
            "unlock of lock {id} not held by processor {me}"
        );
        st.held_by = None;
        st.last_holder = Some(me);
        st.release_vc.copy_from_slice(self.vc());
        st.release_time = self.now();
        slot.cv.notify_one();
        self.cl.net().trace(me, TraceEvent::LockRelease { lock: id });
    }
}
