//! Protocol policies: the per-processor decision layer between the DSM's
//! mechanism (invalidate, fault, fetch, diff) and *when* data moves.
//!
//! Base TreadMarks is purely reactive: a write notice invalidates a page,
//! and the next access demand-fetches it — one request/reply pair per
//! page. The paper's `Validate` runtime replaces that with compiler-
//! directed aggregation. A [`ProtocolPolicy`] is the third option: a
//! runtime observer that sees every demand miss, every interval close,
//! and every barrier-time invalidation, and may answer a barrier epoch
//! with a set of pages to prefetch in **one aggregated exchange per
//! peer** — the same machinery `Validate` uses ([`FetchClass::Prefetch`]
//! → `AdaptRequest`/`AdaptReply` messages), but with no compiler in the
//! loop.
//!
//! The policy is deliberately *mechanism-preserving*: it can only change
//! when invalid pages are brought up to date, never what data they
//! contain, so any policy produces bitwise-identical program results.
//! [`StaticPolicy`] (the default) observes nothing and prefetches
//! nothing — byte-for-byte the original TreadMarks behavior. The
//! `adapt` crate provides the learning implementation.
//!
//! [`FetchClass::Prefetch`]: crate::FetchClass::Prefetch

use simnet::{PolicyStats, ProcId};

/// What a [`ProtocolPolicy`] decided at one barrier epoch boundary.
///
/// The default ([`EpochDecision::none`]) is plain demand paging: no
/// pages picked, nothing deferred, pull semantics, phase 0.
#[derive(Debug, Clone, Default)]
pub struct EpochDecision {
    /// Pages to bring up to date this epoch instead of leaving them to
    /// demand-fault one at a time. Pages that are not actually invalid
    /// are skipped by the protocol layer.
    pub picks: Vec<u32>,
    /// Defer the batched fetch to the epoch's *first demand fault*
    /// instead of issuing it eagerly inside the barrier. In steady
    /// state the exchange still happens once per epoch (triggered by
    /// the first touch, which also rides along); a deferred plan whose
    /// pages are re-invalidated untouched — above all one armed at the
    /// run's final barrier, whose "next iteration" never executes — is
    /// discarded and the whole exchange is saved (*quiesced*). The cost
    /// of deferring is one page-fault service time on the triggering
    /// access.
    pub defer: bool,
    /// Account the predicted exchange as **update-push**: the writers
    /// push their diffs in one one-way data message per writer/consumer
    /// pair ([`FetchClass::Push`] → `AdaptPush`), eliminating the
    /// request half of the wire pattern. Data content and application
    /// order are identical to the pull path. The subscription that
    /// teaches the writers the schedule is billed explicitly: one
    /// one-way `AdaptSub` message per serving peer whenever the phase's
    /// schedule *changes* (a stable plan subscribes once).
    ///
    /// [`FetchClass::Push`]: crate::FetchClass::Push
    pub push: bool,
    /// The phase identity (barrier-site tag) that owns this decision.
    /// The protocol layer bills the resulting prefetch/push/deferred/
    /// quiesced traffic against this plan, so multi-barrier apps see a
    /// per-site breakdown instead of one aliased stream. Policies
    /// should echo the `phase` passed to
    /// [`ProtocolPolicy::epoch_end`].
    pub phase: u32,
    /// Per-page decision records made while forming this decision
    /// (promotions, demotions, withheld probes), in decision order. The
    /// protocol layer emits each as a [`simnet::TraceEvent::Policy`]
    /// event when tracing is enabled and ignores them otherwise; they
    /// carry no protocol meaning. Empty for non-learning policies.
    pub events: Vec<(u32, simnet::PolicyAct)>,
}

impl EpochDecision {
    /// The demand-paging decision: nothing picked.
    pub fn none() -> Self {
        EpochDecision::default()
    }

    /// An eager pull-mode prefetch of `picks` (PR 2's behavior),
    /// attributed to phase 0.
    pub fn prefetch(picks: Vec<u32>) -> Self {
        EpochDecision {
            picks,
            defer: false,
            push: false,
            phase: 0,
            events: Vec::new(),
        }
    }
}

/// Per-processor protocol decision hooks.
///
/// One boxed policy lives inside each processor's persistent protocol
/// state (installed with [`TmkProc::set_policy`]); it survives across
/// [`Cluster::run`] calls like the page table does. All hooks default to
/// no-ops so a policy only implements what it observes.
///
/// [`TmkProc::set_policy`]: crate::TmkProc::set_policy
/// [`Cluster::run`]: crate::Cluster::run
pub trait ProtocolPolicy: Send + std::fmt::Debug {
    /// A demand fault on `page` required a fetch (the page was invalid).
    /// Not called for aggregated or prefetch fetches.
    fn note_miss(&mut self, _page: u32) {}

    /// The interval just closed dirtied `pages` (this processor wrote
    /// them since the previous release).
    fn note_interval_close(&mut self, _pages: &[u32]) {}

    /// A deferred plan owned by `phase` and covering `pages` was
    /// discarded untriggered: the plan's window closed (its pages were
    /// re-invalidated, or the run ended) without anything touching
    /// them. The protocol layer calls this *before* the discarding
    /// epoch's `epoch_end`, so a policy can treat the quiesced window
    /// as a free probe — the prediction was provably not needed, at
    /// zero wire cost — instead of letting its own (never-performed)
    /// prefetch mask the absence of a miss.
    fn note_quiesced(&mut self, _phase: u32, _pages: &[u32]) {}

    /// A barrier epoch boundary. `epoch` is the barrier sequence
    /// number; `phase` is the barrier site's stable identity (the tag
    /// passed to [`TmkProc::barrier_tagged`]; plain [`TmkProc::barrier`]
    /// is phase 0) — multi-barrier apps tag each site so a policy can
    /// keep its learned state per site instead of aliasing them;
    /// `invalidated` the pages write notices just invalidated for this
    /// processor (sorted, deduplicated). Returns an [`EpochDecision`]:
    /// which pages to bring up to date in one aggregated exchange per
    /// peer instead of leaving them to demand-fault one at a time,
    /// whether to defer that exchange to the epoch's first fault, and
    /// whether to account it as writer-initiated update-push. Decision
    /// counters go to `stats` (per-processor slot `me`).
    ///
    /// [`TmkProc::barrier_tagged`]: crate::TmkProc::barrier_tagged
    /// [`TmkProc::barrier`]: crate::TmkProc::barrier
    fn epoch_end(
        &mut self,
        _epoch: u64,
        _phase: u32,
        _invalidated: &[u32],
        _stats: &PolicyStats,
        _me: ProcId,
    ) -> EpochDecision {
        EpochDecision::none()
    }
}

/// The do-nothing policy: plain TreadMarks demand paging. Installing it
/// is equivalent to having no policy at all — no state, no prefetch, no
/// message or timing difference.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticPolicy;

impl ProtocolPolicy for StaticPolicy {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_decides_nothing() {
        let stats = PolicyStats::new(1);
        let mut p = StaticPolicy;
        p.note_miss(3);
        p.note_interval_close(&[1, 2]);
        let dec = p.epoch_end(1, 7, &[1, 2, 3], &stats, 0);
        assert!(dec.picks.is_empty() && !dec.defer && !dec.push);
        assert_eq!(simnet::PolicyReport::capture(&stats), Default::default());
    }
}
