//! The shared heap: typed, page-aligned regions of the global shared
//! address space.
//!
//! TreadMarks programs allocate shared memory with `Tmk_malloc` and share
//! the returned pointer. Here [`Cluster::alloc`](crate::Cluster::alloc)
//! plays that role: it hands out a [`SharedSlice<T>`] — a *descriptor*
//! (base byte offset + length), not a pointer. Every access goes through
//! the accessors on [`TmkProc`](crate::TmkProc), which implement the
//! software MMU. A `SharedSlice` is `Copy` and can be captured by the
//! SPMD closure for all processors, exactly like a shared pointer.

use std::marker::PhantomData;

/// Plain-old-data element types storable in shared memory.
///
/// Elements are fixed-size and encoded little-endian, so pages are just
/// byte arrays and diffs are representation-level — the same property the
/// real system gets from raw memory.
pub trait Pod: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Encode `self` little-endian into the first `SIZE` bytes of `dst`.
    fn store(self, dst: &mut [u8]);
    /// Decode a value from the first `SIZE` bytes of `src`.
    fn load(src: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline(always)]
            fn store(self, dst: &mut [u8]) {
                dst[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            #[inline(always)]
            fn load(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

impl_pod!(f64, f32, i64, u64, i32, u32);

/// A typed region of shared memory: `len` elements of `T` starting at
/// byte `base` of the global shared address space.
#[derive(Debug)]
pub struct SharedSlice<T> {
    base: usize,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedSlice<T> {}

impl<T: Pod> SharedSlice<T> {
    pub(crate) fn new(base: usize, len: usize) -> Self {
        SharedSlice {
            base,
            len,
            _t: PhantomData,
        }
    }

    /// Number of elements in the region.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Does the region hold zero elements?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Global byte offset of element `i`.
    #[inline]
    pub fn byte_at(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + i * T::SIZE
    }

    /// Global byte offset where the region starts (page-aligned).
    #[inline]
    pub fn base_byte(&self) -> usize {
        self.base
    }

    /// Page holding element `i`.
    #[inline]
    pub fn page_of(&self, i: usize, page_size: usize) -> u32 {
        (self.byte_at(i) / page_size) as u32
    }

    /// All pages this region occupies.
    pub fn pages(&self, page_size: usize) -> std::ops::Range<u32> {
        rsd::pages_of_bytes(self.base, self.len * T::SIZE, page_size)
    }

    /// Pages occupied by elements `lo..hi` (half-open).
    pub fn pages_of_range(&self, lo: usize, hi: usize, page_size: usize) -> std::ops::Range<u32> {
        debug_assert!(lo <= hi && hi <= self.len);
        rsd::pages_of_bytes(self.base + lo * T::SIZE, (hi - lo) * T::SIZE, page_size)
    }

    /// A sub-slice of `n` elements starting at `off`.
    pub fn slice(&self, off: usize, n: usize) -> SharedSlice<T> {
        assert!(off + n <= self.len, "sub-slice out of bounds");
        SharedSlice::new(self.base + off * T::SIZE, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_roundtrip() {
        let mut buf = [0u8; 8];
        3.25f64.store(&mut buf);
        assert_eq!(f64::load(&buf), 3.25);
        let mut b4 = [0u8; 4];
        (-7i32).store(&mut b4);
        assert_eq!(i32::load(&b4), -7);
    }

    #[test]
    fn byte_and_page_math() {
        let s: SharedSlice<f64> = SharedSlice::new(8192, 1024); // pages 2..4
        assert_eq!(s.byte_at(0), 8192);
        assert_eq!(s.byte_at(512), 8192 + 4096);
        assert_eq!(s.pages(4096), 2..4);
        assert_eq!(s.page_of(0, 4096), 2);
        assert_eq!(s.page_of(512, 4096), 3);
        assert_eq!(s.pages_of_range(0, 512, 4096), 2..3);
        assert_eq!(s.pages_of_range(0, 513, 4096), 2..4);
        assert_eq!(s.pages_of_range(0, 0, 4096), 0..0);
    }

    #[test]
    fn subslice() {
        let s: SharedSlice<f64> = SharedSlice::new(0, 100);
        let sub = s.slice(10, 20);
        assert_eq!(sub.len(), 20);
        assert_eq!(sub.byte_at(0), 80);
    }

    #[test]
    #[should_panic(expected = "sub-slice out of bounds")]
    fn subslice_bounds_checked() {
        let s: SharedSlice<f64> = SharedSlice::new(0, 10);
        let _ = s.slice(5, 6);
    }
}
