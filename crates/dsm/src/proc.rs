//! Per-processor protocol engine: the page table, the software MMU, the
//! fault/fetch/apply paths, interval close, and the watch mechanism that
//! `Validate` uses to detect indirection-array changes.

use std::sync::Arc;

use simnet::{FetchKind, MsgKind, ProcId, SimTime, StallCat, TraceEvent};

use crate::cluster::Cluster;
use crate::diff::{Diff, Payload};
use crate::heap::{Pod, SharedSlice};
use crate::interval::{IntervalRec, Vc};
use crate::policy::{ProtocolPolicy, StaticPolicy};
use crate::store::Record;

/// Access state of one page in one processor's view — the analogue of the
/// `mprotect` setting TreadMarks would have on that page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Invalidated by a write notice (or never touched): any access faults.
    Invalid,
    /// Valid and write-protected: reads proceed, first write faults.
    Read,
    /// Valid and writable: a twin exists (or the page is marked
    /// whole-page-write) and the page is on the dirty list.
    Write,
}

#[derive(Debug)]
struct Frame {
    state: PageState,
    data: Option<Box<[u8]>>,
    twin: Option<Box<[u8]>>,
    /// `WRITE_ALL`: no twin; interval close publishes the full page.
    full_write: bool,
    /// `Validate` write-watch armed: next local write fires the watchers.
    watch_protect: bool,
    /// This page has registered watchers (slow-path lookup on events).
    watched: bool,
    /// Highest interval of each processor whose modification of this page
    /// is reflected in `data`: sparse `(proc, seq)` pairs sorted by proc
    /// (absent means 0). A page only ever has a handful of writers, so
    /// this stays a few entries at 256 processors instead of a dense
    /// 256-slot array per (page, processor).
    applied: Vec<(u32, u32)>,
    /// Write notices seen but not yet fetched: `(proc, seq)`.
    pending: Vec<(ProcId, u32)>,
}

impl Frame {
    fn new() -> Self {
        Frame {
            state: PageState::Invalid,
            data: None,
            twin: None,
            full_write: false,
            watch_protect: false,
            watched: false,
            applied: Vec::new(),
            pending: Vec::new(),
        }
    }

    #[inline]
    fn dirty(&self) -> bool {
        self.twin.is_some() || self.full_write
    }

    /// Highest applied interval of `q` (0 if none).
    #[inline]
    fn applied_of(&self, q: ProcId) -> u32 {
        match self.applied.binary_search_by_key(&(q as u32), |&(p, _)| p) {
            Ok(i) => self.applied[i].1,
            Err(_) => 0,
        }
    }

    #[inline]
    fn set_applied(&mut self, q: ProcId, seq: u32) {
        match self.applied.binary_search_by_key(&(q as u32), |&(p, _)| p) {
            Ok(i) => self.applied[i].1 = seq,
            Err(i) => self.applied.insert(i, (q as u32, seq)),
        }
    }

    /// Regress the whole applied map to a master-fold horizon (the page
    /// data was just replaced by the snapshot taken at that horizon).
    fn reset_applied_to(&mut self, horizon: &[u32]) {
        self.applied.clear();
        for (q, &h) in horizon.iter().enumerate() {
            if h > 0 {
                self.applied.push((q as u32, h));
            }
        }
    }
}

/// Event counters a processor accumulates; surfaced in reports and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Read faults taken on invalid pages.
    pub read_faults: u64,
    /// Write faults (protection or invalid-page).
    pub write_faults: u64,
    /// Twins created at first write of an interval.
    pub twins_made: u64,
    /// Non-empty diffs published at interval close.
    pub diffs_created: u64,
    /// Full pages published (`WRITE_ALL` paths).
    pub fulls_published: u64,
    /// Pages brought up to date by fetches of any class.
    pub pages_fetched: u64,
    /// Diff/full records applied to local frames.
    pub records_applied: u64,
    /// Whole-page master-copy fetches (post-GC path).
    pub master_fetches: u64,
    /// Intervals closed with at least one published payload.
    pub intervals_closed: u64,
    /// Barriers crossed.
    pub barriers: u64,
    /// Lock acquisitions.
    pub lock_acquires: u64,
}

/// How a fetch was triggered — decides the message kind used for
/// accounting (demand faults vs `Validate` aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchClass {
    /// Demand fault on a single page (base TreadMarks).
    Demand,
    /// Aggregated prefetch of a whole schedule (`Validate`).
    Aggregated,
    /// Aggregated prefetch decided by a runtime [`ProtocolPolicy`]
    /// (no compiler hints): accounted as `AdaptRequest`/`AdaptReply`.
    Prefetch,
    /// Writer-initiated update push decided by a runtime
    /// [`ProtocolPolicy`] in push mode: the writers push their diffs in
    /// one one-way `AdaptPush` message per writer/consumer pair — the
    /// request half of the exchange does not exist on the wire. Data
    /// and application order are identical to [`FetchClass::Prefetch`].
    Push,
}

/// A policy-deferred batched fetch: armed at a barrier, owned by the
/// phase (barrier site) that predicted it, triggered by the next demand
/// fault, and discarded — *quiesced* — when its pages are
/// re-invalidated untouched or the run ends.
#[derive(Debug)]
pub(crate) struct DeferredPlan {
    pub(crate) pages: Vec<u32>,
    pub(crate) phase: u32,
    /// Barrier epoch the plan was armed at: a plan that outlives
    /// [`DeferredPlan::STALE_EPOCHS`] barriers is quiesced even if its
    /// phase never recurs and its pages are never re-invalidated (a
    /// tagged loop that simply ended), so it cannot linger armed until
    /// an unrelated fault flushes its stale pages into an exchange.
    pub(crate) armed_at: u64,
}

impl DeferredPlan {
    pub(crate) const STALE_EPOCHS: u64 = 16;
}

/// Persistent per-processor state (survives across [`Cluster::run`] calls).
#[derive(Debug)]
pub(crate) struct ProcInner {
    frames: Vec<Frame>,
    vc: Vc,
    dirty: Vec<u32>,
    /// Watch keys registered per page, indexed by page id (empty for
    /// unwatched pages; lookups are gated by `Frame::watched` anyway).
    watchers: Vec<Vec<usize>>,
    watch_flags: Vec<bool>,
    /// Pages that fired each watch since the last take (supports the
    /// paper's future-work extension: incremental page-set recompute).
    watch_dirty: Vec<Vec<u32>>,
    pub(crate) counters: ProcCounters,
    pub(crate) last_barrier_seen: Vc,
    /// The protocol decision layer (default: plain demand paging).
    pub(crate) policy: Box<dyn ProtocolPolicy>,
    /// Armed policy-deferred plans, at most one per phase (the quiesce
    /// heuristic). The epoch's first demand fault triggers them all in
    /// one merged exchange.
    pub(crate) deferred: Vec<DeferredPlan>,
    /// Update-push schedules subscribed so far, per phase (flat, sorted
    /// page vecs): the cumulative `(serving peer, pages)` union the
    /// writers have been taught. A push round covering pages beyond a
    /// peer's known set re-subscribes (one one-way `AdaptSub` message
    /// per grown peer).
    pub(crate) push_scheds: Vec<(u32, PushSched)>,
}

/// One phase's cumulative push subscriptions: each serving peer with
/// the sorted set of pages it has been taught to push.
pub(crate) type PushSched = Vec<(ProcId, Vec<u32>)>;

impl ProcInner {
    pub(crate) fn new(nprocs: usize) -> Self {
        ProcInner {
            frames: Vec::new(),
            vc: vec![0; nprocs],
            dirty: Vec::new(),
            watchers: Vec::new(),
            watch_flags: Vec::new(),
            watch_dirty: Vec::new(),
            counters: ProcCounters::default(),
            last_barrier_seen: vec![0; nprocs],
            policy: Box::new(StaticPolicy),
            deferred: Vec::new(),
            push_scheds: Vec::new(),
        }
    }

    pub(crate) fn ensure_frames(&mut self, npages: usize) {
        while self.frames.len() < npages {
            self.frames.push(Frame::new());
        }
    }

    /// Reset to the just-built state, surrendering page boxes to `give`
    /// but keeping every vector's capacity (and the frame table itself)
    /// for the next run — the per-processor half of
    /// [`crate::Cluster::recycle`].
    pub(crate) fn recycle(&mut self, give: &mut dyn FnMut(Box<[u8]>)) {
        for f in &mut self.frames {
            f.state = PageState::Invalid;
            if let Some(b) = f.data.take() {
                give(b);
            }
            if let Some(b) = f.twin.take() {
                give(b);
            }
            f.full_write = false;
            f.watch_protect = false;
            f.watched = false;
            f.applied.clear();
            f.pending.clear();
        }
        self.vc.fill(0);
        self.dirty.clear();
        self.watchers.clear();
        self.watch_flags.clear();
        self.watch_dirty.clear();
        self.counters = ProcCounters::default();
        self.last_barrier_seen.fill(0);
        self.policy = Box::new(StaticPolicy);
        self.deferred.clear();
        self.push_scheds.clear();
    }
}

/// A simulated processor inside [`Cluster::run`]: rank, page table, and
/// the typed accessors that stand in for hardware loads/stores to shared
/// memory.
pub struct TmkProc<'c> {
    pub(crate) cl: &'c Cluster,
    pub(crate) me: ProcId,
    pub(crate) nprocs: usize,
    pub(crate) page_size: usize,
    pub(crate) inner: Box<ProcInner>,
}

impl<'c> TmkProc<'c> {
    /// This processor's rank, `0..nprocs`.
    #[inline]
    pub fn rank(&self) -> ProcId {
        self.me
    }

    /// Number of processors in the cluster.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The consistency unit in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// This processor's accumulated protocol event counters.
    pub fn counters(&self) -> &ProcCounters {
        &self.inner.counters
    }

    /// Simulated clock of this processor.
    pub fn now(&self) -> SimTime {
        self.cl.net().clock(self.me)
    }

    /// Charge modeled compute time (the application's "real work").
    #[inline]
    pub fn compute(&self, dt: SimTime) {
        self.cl.net().advance(self.me, dt);
    }

    // ------------------------------------------------------------------
    // Typed accessors: the software MMU.
    // ------------------------------------------------------------------

    /// Read element `i` of `s`, faulting (and fetching) if the page is
    /// invalid.
    #[inline]
    pub fn read<T: Pod>(&mut self, s: &SharedSlice<T>, i: usize) -> T {
        let byte = s.byte_at(i);
        let page = byte / self.page_size;
        if self.inner.frames[page].state == PageState::Invalid {
            self.read_fault(page as u32);
        }
        let off = byte % self.page_size;
        let f = &self.inner.frames[page];
        T::load(&f.data.as_ref().unwrap()[off..])
    }

    /// Write element `i` of `s`, faulting (fetch + twin) as needed.
    #[inline]
    pub fn write<T: Pod>(&mut self, s: &SharedSlice<T>, i: usize, v: T) {
        let byte = s.byte_at(i);
        let page = byte / self.page_size;
        {
            let f = &self.inner.frames[page];
            if f.state != PageState::Write || f.watch_protect {
                self.write_fault(page as u32);
            }
        }
        let off = byte % self.page_size;
        let f = &mut self.inner.frames[page];
        v.store(&mut f.data.as_mut().unwrap()[off..]);
    }

    /// Read-modify-write of a single element.
    #[inline]
    pub fn update<T: Pod>(&mut self, s: &SharedSlice<T>, i: usize, f: impl FnOnce(T) -> T) {
        let v = self.read(s, i);
        self.write(s, i, f(v));
    }

    /// Bulk read `s[lo..lo+out.len()]` into `out`.
    pub fn read_slice<T: Pod>(&mut self, s: &SharedSlice<T>, lo: usize, out: &mut [T]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.read(s, lo + k);
        }
    }

    /// Bulk write `src` into `s[lo..]`.
    pub fn write_slice<T: Pod>(&mut self, s: &SharedSlice<T>, lo: usize, src: &[T]) {
        for (k, &v) in src.iter().enumerate() {
            self.write(s, lo + k, v);
        }
    }

    // ------------------------------------------------------------------
    // Fault paths.
    // ------------------------------------------------------------------

    #[cold]
    fn read_fault(&mut self, page: u32) {
        let net = self.cl.net();
        let _fs = net.scope(self.me, StallCat::FaultStall);
        net.trace(self.me, TraceEvent::FaultBegin { page, write: false });
        self.inner.counters.read_faults += 1;
        self.inner.policy.note_miss(page);
        self.compute(net.cost().page_fault());
        self.demand_fetch(page);
        net.trace(self.me, TraceEvent::FaultEnd { page });
    }

    /// Demand-service a fault on `page`. If policy-deferred plans are
    /// armed, the fault triggers them all: the predicted pages of every
    /// live plan (plus the faulting page, which rides along free of its
    /// own demand pair) are fetched in one merged aggregated exchange,
    /// billed per owning phase. Otherwise plain TreadMarks: one
    /// request/reply pair for this page alone.
    ///
    /// A triggered plan is **consumer-initiated by definition** — the
    /// transfer happens at a moment only the faulting processor knows —
    /// so deferral exists only in pull mode; one-way `AdaptPush`
    /// billing is reserved for eager barrier-time pushes, the only
    /// shape the writer-subscription model can honestly claim.
    fn demand_fetch(&mut self, page: u32) {
        if self.inner.deferred.is_empty() {
            self.fetch_pages(&[page], FetchClass::Demand);
            return;
        }
        let mut merged: Vec<u32> = Vec::new();
        for plan in std::mem::take(&mut self.inner.deferred) {
            let retained: Vec<u32> = plan
                .pages
                .iter()
                .copied()
                .filter(|&pg| self.page_invalid(pg) && !merged.contains(&pg))
                .collect();
            if retained.is_empty() {
                continue;
            }
            self.cl
                .net()
                .policy()
                .record_prefetch(self.me, plan.phase, retained.len());
            merged.extend(retained);
        }
        if merged.is_empty() {
            // Every predicted page turned out valid already: nothing of
            // the plans is left to move, so this is an ordinary fault.
            self.fetch_pages(&[page], FetchClass::Demand);
            return;
        }
        if !merged.contains(&page) {
            merged.push(page);
        }
        self.fetch_pages(&merged, FetchClass::Prefetch);
    }

    #[cold]
    fn write_fault(&mut self, page: u32) {
        let net = self.cl.net();
        let cost = net.cost();
        let _fs = net.scope(self.me, StallCat::FaultStall);
        net.trace(self.me, TraceEvent::FaultBegin { page, write: true });
        self.inner.counters.write_faults += 1;
        self.compute(cost.page_fault());
        // Validate's write-watch: the protection violation tells the
        // runtime the indirection array changed (paper §3.3).
        if self.inner.frames[page as usize].watch_protect {
            self.fire_watch(page);
            self.inner.frames[page as usize].watch_protect = false;
        }
        if self.inner.frames[page as usize].state == PageState::Invalid {
            self.inner.policy.note_miss(page);
            self.demand_fetch(page);
        }
        let page_size = self.page_size;
        let f = &mut self.inner.frames[page as usize];
        if f.state == PageState::Read {
            if !f.full_write && f.twin.is_none() {
                f.twin = Some(self.cl.take_page_copy(f.data.as_ref().unwrap()));
                self.inner.counters.twins_made += 1;
                self.inner.dirty.push(page);
                self.cl.net().advance(self.me, cost.twin(page_size));
                self.cl.net().trace(self.me, TraceEvent::TwinCreate { page });
            }
            f.state = PageState::Write;
        }
        self.cl.net().trace(self.me, TraceEvent::FaultEnd { page });
    }

    /// Create twins and enable write access ahead of time — `Validate`
    /// does this for `WRITE`/`READ&WRITE` descriptors so the computation
    /// loop takes no write faults (paper §3.2, `Create_twins`).
    pub fn pre_twin(&mut self, pages: &[u32]) {
        let cost = self.cl.net().cost();
        let page_size = self.page_size;
        for &page in pages {
            // Granting write access counts as a (preempted) write fault
            // for the indirection-array watch.
            if self.inner.frames[page as usize].watch_protect {
                self.fire_watch(page);
                self.inner.frames[page as usize].watch_protect = false;
            }
            let f = &mut self.inner.frames[page as usize];
            debug_assert!(
                f.state != PageState::Invalid,
                "pre_twin on invalid page {page}: fetch first"
            );
            if f.state == PageState::Read && !f.full_write && f.twin.is_none() {
                f.twin = Some(self.cl.take_page_copy(f.data.as_ref().unwrap()));
                self.inner.counters.twins_made += 1;
                self.inner.dirty.push(page);
                self.cl.net().advance(self.me, cost.twin(page_size));
                self.cl.net().trace(self.me, TraceEvent::TwinCreate { page });
                f.state = PageState::Write;
            }
        }
    }

    /// Declare that this processor will write `pages` in their entirety
    /// before the next release (`WRITE_ALL`): no twin is kept, no fetch is
    /// needed, and interval close publishes the whole page (paper §3.2).
    pub fn mark_full_write(&mut self, pages: &[u32]) {
        for &page in pages {
            if self.inner.frames[page as usize].watch_protect {
                self.fire_watch(page);
                self.inner.frames[page as usize].watch_protect = false;
            }
            let f = &mut self.inner.frames[page as usize];
            if f.data.is_none() {
                f.data = Some(self.cl.take_page_zeroed());
            }
            if !f.dirty() {
                self.inner.dirty.push(page);
            }
            // Whatever was pending is irrelevant: every byte will be
            // overwritten locally. Mark it applied so no fetch happens.
            let pending = std::mem::take(&mut f.pending);
            for (q, seq) in pending {
                if f.applied_of(q) < seq {
                    f.set_applied(q, seq);
                }
            }
            f.full_write = true;
            if let Some(t) = f.twin.take() {
                self.cl.recycle_page(t);
            }
            f.state = PageState::Write;
        }
    }

    // ------------------------------------------------------------------
    // Fetch: demand (one page) or aggregated (a schedule's worth).
    // ------------------------------------------------------------------

    /// Bring `pages` up to date. Invalid pages get their missing records
    /// fetched — one request/reply per peer for `Demand`, or one
    /// request/reply per peer *for the whole set* when `Aggregated`
    /// (the paper's communication aggregation).
    pub fn fetch_pages(&mut self, pages: &[u32], class: FetchClass) {
        self.fetch_pages_impl(pages, class, None);
    }

    /// An eager barrier-time update-push round predicted by `phase`:
    /// like [`TmkProc::fetch_pages`] with [`FetchClass::Push`], plus the
    /// explicit subscription cost model — if the phase's per-peer
    /// schedule changed since its last push round, one one-way
    /// `AdaptSub` message per changed peer teaches the writers the new
    /// schedule before the data moves.
    pub(crate) fn fetch_pages_push(&mut self, pages: &[u32], phase: u32) {
        self.fetch_pages_impl(pages, FetchClass::Push, Some(phase));
    }

    fn fetch_pages_impl(&mut self, pages: &[u32], class: FetchClass, push_phase: Option<u32>) {
        // Attribute the whole exchange by who initiated it: demand and
        // compiler-aggregated fetches are fault service, predicted
        // prefetch/push rounds are the adaptive engine's data motion.
        let _sc = self.cl.net().scope(
            self.me,
            match class {
                FetchClass::Demand | FetchClass::Aggregated => StallCat::FaultStall,
                FetchClass::Prefetch | FetchClass::Push => StallCat::PrefetchPush,
            },
        );
        // Phase 1: figure out what is needed, per page.
        struct Need {
            page: u32,
            records: Vec<Record>,
            master: bool,
        }
        // 1a: per invalid page, the highest pending seq per source —
        // kept as sparse `(proc, seq)` pairs (one per writer of the
        // page), not a dense nprocs-slot array per page.
        let mut needs: Vec<Need> = Vec::new();
        let mut uptos: Vec<Vec<(ProcId, u32)>> = Vec::new(); // parallel to `needs`
        for &page in pages {
            let f = &mut self.inner.frames[page as usize];
            if f.state != PageState::Invalid {
                continue;
            }
            let mut pend: Vec<(ProcId, u32)> = f.pending.drain(..).collect();
            pend.sort_unstable();
            pend.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 = b.1.max(a.1);
                    true
                } else {
                    false
                }
            });
            pend.retain(|&(q, seq)| seq > f.applied_of(q));
            needs.push(Need {
                page,
                records: Vec::new(),
                master: false,
            });
            uptos.push(pend);
        }
        // 1b: one store-lock round per *serving* processor resolves every
        // pending record of every page in the fetch (collect_batch),
        // instead of one lock round per (page, processor) pair. The flat
        // request list is grouped by server, so a 256-proc fetch visits
        // only the peers that actually hold records.
        let mut flat: Vec<(ProcId, usize, u32, u32, u32)> = Vec::new(); // (q, need, page, after, upto)
        for (i, n) in needs.iter().enumerate() {
            let f = &self.inner.frames[n.page as usize];
            for &(q, up) in &uptos[i] {
                flat.push((q, i, n.page, f.applied_of(q), up));
            }
        }
        flat.sort_unstable_by_key(|&(q, i, ..)| (q, i));
        let mut k = 0;
        while k < flat.len() {
            let q = flat[k].0;
            let end = k + flat[k..].iter().take_while(|e| e.0 == q).count();
            debug_assert_ne!(q, self.me, "own writes are always applied");
            let batch: Vec<(u32, u32, u32)> = flat[k..end]
                .iter()
                .map(|&(_, _, page, after, upto)| (page, after, upto))
                .collect();
            let collected = self.cl.store().collect_batch(q, &batch);
            for (&(_, i, ..), c) in flat[k..end].iter().zip(collected) {
                needs[i].records.extend(c.records);
                needs[i].master |= c.needs_master;
            }
            k = end;
        }
        // 1c: master-copy resolution (rare GC path) + pruning, per page.
        for (n, upto) in needs.iter_mut().zip(&uptos) {
            let page = n.page;
            let mut records = std::mem::take(&mut n.records);
            let mut master = n.master;
            if master {
                // Some needed records were folded into the master page.
                // The master snapshot replaces the WHOLE page as of the
                // fold horizon, so everything newer than the horizon that
                // this copy already reflected — other processors' applied
                // records and our own published intervals — must be
                // re-applied on top. Re-collect from the horizon, from
                // every processor including ourselves, bounded by our
                // vector clock (records we have not acquired yet must not
                // be applied — that would break release consistency).
                let horizon = self.cl.store().master_horizon();
                records.clear();
                let up_of = |q: ProcId| -> u32 {
                    match upto.binary_search_by_key(&q, |&(p, _)| p) {
                        Ok(i) => upto[i].1,
                        Err(_) => 0,
                    }
                };
                for (q, &h) in horizon.iter().enumerate().take(self.nprocs) {
                    let known = if q == self.me {
                        self.inner.vc[self.me]
                    } else {
                        self.inner.vc[q].max(up_of(q))
                    };
                    if known > h {
                        let c = self.cl.store().collect(q, page, h, known);
                        records.extend(c.records);
                    }
                }
            }
            // Prune: a Full snapshot subsumes everything it covers.
            if let Some(full) = records
                .iter()
                .filter(|r| r.payload.is_full())
                .max_by_key(|r| r.key())
                .cloned()
            {
                let before = records.len();
                records.retain(|r| {
                    r.seq > full.vc[r.proc] || (r.proc == full.proc && r.seq == full.seq)
                });
                let _ = before;
                if master {
                    // The master is needed only if it holds intervals the
                    // Full does not cover.
                    let horizon = self.cl.store().master_horizon();
                    master = !horizon.iter().zip(full.vc.iter()).all(|(&h, &v)| v >= h);
                }
            }
            records.sort_by_key(|r| r.key());
            n.records = records;
            n.master = master;
        }
        if needs.is_empty() {
            return;
        }

        // Phase 2: message accounting — group by serving processor. The
        // accumulator is a compact list over the peers actually serving
        // this exchange (typically a handful), not three dense
        // nprocs-slot arrays per fetch.
        const REQ_FIXED: usize = 16; // header + vc digest
        const REQ_PER_PAGE: usize = 8; // page id + applied seq
        struct PeerAcc {
            q: ProcId,
            req_pages: usize,
            resp_bytes: usize,
            pages: Vec<u32>,
        }
        fn acc(peers: &mut Vec<PeerAcc>, q: ProcId) -> &mut PeerAcc {
            let i = match peers.iter().position(|p| p.q == q) {
                Some(i) => i,
                None => {
                    peers.push(PeerAcc {
                        q,
                        req_pages: 0,
                        resp_bytes: 0,
                        pages: Vec::new(),
                    });
                    peers.len() - 1
                }
            };
            &mut peers[i]
        }
        let mut peers: Vec<PeerAcc> = Vec::new();
        for n in &needs {
            for r in &n.records {
                let a = acc(&mut peers, r.proc);
                a.req_pages += 1;
                a.resp_bytes += r.payload.wire_bytes();
                a.pages.push(n.page);
            }
            if n.master {
                let mgr = (n.page as usize) % self.nprocs;
                let a = acc(&mut peers, mgr);
                a.req_pages += 1;
                a.resp_bytes += self.page_size + 8 + 4 * self.nprocs;
                a.pages.push(n.page);
            }
        }
        // Deterministic leg order regardless of record arrival order.
        peers.sort_unstable_by_key(|p| p.q);
        if class == FetchClass::Push {
            // Update-push: the writers initiate — one one-way data
            // message per serving peer, no request leg on the wire. The
            // writers only know *what* to push because the consumer
            // subscribed them to its schedule: bill one one-way
            // subscription message per peer whose share of this phase's
            // schedule *grew* beyond what it was already taught (the
            // cumulative union). A steady-state plan subscribes once
            // and then rides free; a probe — a transient subset of the
            // subscribed schedule — costs nothing extra. Unsubscription
            // is lazy and unbilled: a writer briefly pushing pages a
            // demoted pattern no longer needs shows up as the pull
            // traffic the probe/demand path already counts.
            if let Some(phase) = push_phase {
                let scheds = &mut self.inner.push_scheds;
                let si = match scheds.iter().position(|(ph, _)| *ph == phase) {
                    Some(i) => i,
                    None => {
                        scheds.push((phase, Vec::new()));
                        scheds.len() - 1
                    }
                };
                let subscribed = &mut scheds[si].1;
                let mut newly: Vec<(ProcId, usize)> = Vec::new();
                for p in &peers {
                    let (q, pp) = (p.q, &p.pages);
                    if q == self.me || pp.is_empty() {
                        continue;
                    }
                    let known = match subscribed.iter_mut().find(|(oq, _)| *oq == q) {
                        Some((_, known)) => known,
                        None => {
                            subscribed.push((q, Vec::new()));
                            &mut subscribed.last_mut().unwrap().1
                        }
                    };
                    // `known` stays sorted: membership is a binary search
                    // even when a phase's cumulative schedule grows large.
                    let mut fresh = 0usize;
                    for &pg in pp {
                        if let Err(pos) = known.binary_search(&pg) {
                            known.insert(pos, pg);
                            fresh += 1;
                        }
                    }
                    if fresh > 0 {
                        newly.push((q, fresh));
                    }
                }
                if !newly.is_empty() {
                    let net = self.cl.net();
                    for &(q, npages) in &newly {
                        // One-way teach message: the consumer pays the
                        // injection (inside push), the writer absorbs
                        // it asynchronously for one interrupt-handler
                        // cost. Only commutative clock updates here —
                        // folding the arrival time in with a max would
                        // make simulated time depend on OS interleaving
                        // (several consumers subscribe concurrently).
                        let _arrival = net.push(self.me, MsgKind::AdaptSub, 16 + 4 * npages);
                        net.advance_remote(q, net.cost().handler());
                        net.trace(
                            self.me,
                            TraceEvent::Msg {
                                kind: MsgKind::AdaptSub,
                                peer: q as u32,
                                bytes: (16 + 4 * npages) as u32,
                                out: true,
                            },
                        );
                    }
                    net.policy().record_subscribe(self.me, phase, newly.len());
                }
            }
            let legs: Vec<(ProcId, MsgKind, usize)> = peers
                .iter()
                .filter(|p| p.q != self.me && p.req_pages > 0)
                .map(|p| (p.q, MsgKind::AdaptPush, p.resp_bytes))
                .collect();
            self.cl.net().push_round(self.me, &legs);
            self.cl.net().trace(
                self.me,
                TraceEvent::Fetch {
                    class: FetchKind::Push,
                    pages: needs.len() as u32,
                    peers: legs.len() as u32,
                    bytes: legs.iter().map(|&(_, _, b)| b as u64).sum(),
                },
            );
        } else {
            let (kreq, kresp) = match class {
                FetchClass::Demand => (MsgKind::DiffRequest, MsgKind::DiffReply),
                FetchClass::Aggregated => (MsgKind::AggRequest, MsgKind::AggReply),
                FetchClass::Prefetch => (MsgKind::AdaptRequest, MsgKind::AdaptReply),
                FetchClass::Push => unreachable!("handled by the push_round branch above"),
            };
            let legs: Vec<(ProcId, MsgKind, usize, MsgKind, usize)> = peers
                .iter()
                .filter(|p| p.q != self.me && p.req_pages > 0)
                .map(|p| {
                    (
                        p.q,
                        kreq,
                        REQ_FIXED + REQ_PER_PAGE * p.req_pages,
                        kresp,
                        p.resp_bytes,
                    )
                })
                .collect();
            // One parallel exchange round: a demand fault covers one page;
            // the aggregated classes cover a whole schedule's worth per
            // peer.
            self.cl.net().parallel_round(self.me, &legs);
            self.cl.net().trace(
                self.me,
                TraceEvent::Fetch {
                    class: match class {
                        FetchClass::Demand => FetchKind::Demand,
                        FetchClass::Aggregated => FetchKind::Aggregated,
                        _ => FetchKind::Prefetch,
                    },
                    pages: needs.len() as u32,
                    peers: legs.len() as u32,
                    bytes: legs.iter().map(|&(_, _, _, _, b)| b as u64).sum(),
                },
            );
        }

        // Phase 3: apply, master copies first, then records causally.
        let cost = self.cl.net().cost();
        let mut apply_time = SimTime::ZERO;
        for n in needs {
            let f = &mut self.inner.frames[n.page as usize];
            if f.data.is_none() {
                f.data = Some(self.cl.take_page_zeroed());
            }
            if n.master {
                let (mdata, horizon) = self.cl.store().master_fetch(n.page);
                // Uncommitted local writes (open interval) live only in
                // the data-vs-twin delta; preserve them across the
                // whole-page overwrite.
                let own_delta = f
                    .twin
                    .as_ref()
                    .map(|t| crate::diff::Diff::create(t, f.data.as_ref().unwrap()));
                let data = f.data.as_mut().unwrap();
                data.copy_from_slice(&mdata);
                if let Some(t) = f.twin.as_mut() {
                    t.copy_from_slice(&mdata);
                }
                if let Some(d) = own_delta {
                    d.apply(f.data.as_mut().unwrap());
                }
                self.cl.recycle_page(mdata);
                // The master is a snapshot *at the horizon*: the page
                // regresses to exactly that knowledge; newer records
                // (re-collected above) are applied on top.
                f.reset_applied_to(&horizon);
                apply_time += cost.diff_apply(self.page_size);
                self.inner.counters.master_fetches += 1;
            }
            for r in &n.records {
                if r.seq <= f.applied_of(r.proc) {
                    continue; // subsumed by the master copy
                }
                r.payload.apply(f.data.as_mut().unwrap());
                // Multiple-writer merge: keep our in-progress twin in sync
                // so our eventual diff contains only our own writes.
                if let Some(t) = f.twin.as_mut() {
                    r.payload.apply(t);
                }
                f.set_applied(r.proc, r.seq);
                apply_time += cost.diff_apply(r.payload.wire_bytes());
                self.inner.counters.records_applied += 1;
            }
            f.state = if f.dirty() {
                PageState::Write
            } else {
                PageState::Read
            };
            self.inner.counters.pages_fetched += 1;
        }
        self.cl.net().advance(self.me, apply_time);
    }

    // ------------------------------------------------------------------
    // Interval close + notice application (called by barrier/lock code).
    // ------------------------------------------------------------------

    /// Close the current interval: diff every dirty page, publish the
    /// records and the write notices. No-op if nothing was written.
    pub(crate) fn close_interval(&mut self) {
        if self.inner.dirty.is_empty() {
            return;
        }
        let cost = self.cl.net().cost();
        let mut dirty = std::mem::take(&mut self.inner.dirty);
        dirty.sort_unstable();
        dirty.dedup();
        self.inner.policy.note_interval_close(&dirty);

        // Build payloads first; only non-empty ones publish.
        let mut payloads: Vec<(u32, Payload)> = Vec::new();
        let mut scan_time = SimTime::ZERO;
        for &page in &dirty {
            let f = &mut self.inner.frames[page as usize];
            debug_assert!(f.dirty(), "page {page} on dirty list but clean");
            if f.full_write {
                payloads.push((page, Payload::Full(f.data.as_ref().unwrap().clone())));
                scan_time += cost.twin(self.page_size); // one copy
                self.inner.counters.fulls_published += 1;
            } else {
                let d = Diff::create(f.twin.as_ref().unwrap(), f.data.as_ref().unwrap());
                scan_time += cost.diff_create(self.page_size);
                if !d.is_empty() {
                    self.cl.net().trace(
                        self.me,
                        TraceEvent::DiffCreate {
                            page,
                            bytes: d.wire_bytes() as u32,
                        },
                    );
                    payloads.push((page, Payload::Diff(d)));
                    self.inner.counters.diffs_created += 1;
                }
            }
            if let Some(t) = f.twin.take() {
                self.cl.recycle_page(t);
            }
            f.full_write = false;
            // Re-protect: the next write in the new interval faults again.
            if f.state == PageState::Write {
                f.state = PageState::Read;
            }
        }
        self.cl.net().advance(self.me, scan_time);
        if payloads.is_empty() {
            return;
        }

        let seq = self.inner.vc[self.me] + 1;
        self.inner.vc[self.me] = seq;
        let vc: Arc<[u32]> = self.inner.vc.clone().into();
        let pages: Arc<[u32]> = payloads.iter().map(|&(p, _)| p).collect();
        for (page, payload) in payloads {
            self.inner.frames[page as usize].set_applied(self.me, seq);
            self.cl
                .store()
                .publish(self.me, page, seq, Arc::clone(&vc), payload);
        }
        // The record's clock ships as a delta against the last barrier
        // target — both ends of any later exchange know that base.
        let rec = IntervalRec::new(vc, pages, &self.inner.last_barrier_seen);
        self.cl.board().publish(self.me, rec);
        self.inner.counters.intervals_closed += 1;
    }

    /// Merge knowledge up to `target` (an acquire): apply write notices of
    /// every newly covered interval, invalidating local copies. With
    /// `collect_invalidated`, returns the pages invalidated by this
    /// acquire (sorted, deduplicated) for the protocol policy's epoch
    /// bookkeeping — barriers pass `true`; the lock path passes `false`
    /// and keeps its old zero-allocation acquire.
    pub(crate) fn apply_notices(&mut self, target: &[u32], collect_invalidated: bool) -> Vec<u32> {
        let me = self.me;
        let mut invalidated: Vec<u32> = Vec::new();
        for (q, &to) in target.iter().enumerate() {
            if q == me || to <= self.inner.vc[q] {
                continue;
            }
            let from = self.inner.vc[q];
            // Collect first (board lock), then mutate frames.
            let mut hits: Vec<(u32, u32)> = Vec::new(); // (page, seq)
            self.cl.board().for_range(q, from, to, |seq, rec| {
                for &page in rec.pages.iter() {
                    hits.push((page, seq));
                }
            });
            for (page, seq) in hits {
                let f = &mut self.inner.frames[page as usize];
                f.pending.push((q, seq));
                f.state = PageState::Invalid;
                if collect_invalidated {
                    invalidated.push(page);
                }
                if f.watched {
                    self.fire_watch(page);
                }
            }
            self.inner.vc[q] = to;
        }
        invalidated.sort_unstable();
        invalidated.dedup();
        invalidated
    }

    /// Barrier-path acquire: consume the leader's flat notice digest —
    /// `(page, proc, seq)` entries covering `(previous target, target]`
    /// across *all* processors, built once per barrier — instead of
    /// re-walking every peer's board per processor. Entries already
    /// merged through lock acquires (`seq ≤ vc[q]`) are skipped, so this
    /// applies exactly the intervals `apply_notices(target)` would:
    /// `vc[q] ≥ prev_target[q]` always holds after the previous barrier.
    pub(crate) fn apply_digest(&mut self, digest: &[(u32, u32, u32)], target: &[u32]) -> Vec<u32> {
        let me = self.me;
        let mut invalidated: Vec<u32> = Vec::new();
        for &(page, q, seq) in digest {
            let q = q as usize;
            if q == me || seq <= self.inner.vc[q] {
                continue;
            }
            let f = &mut self.inner.frames[page as usize];
            f.pending.push((q, seq));
            f.state = PageState::Invalid;
            invalidated.push(page);
            if f.watched {
                self.fire_watch(page);
            }
        }
        for (q, &to) in target.iter().enumerate() {
            if self.inner.vc[q] < to {
                self.inner.vc[q] = to;
            }
        }
        invalidated.sort_unstable();
        invalidated.dedup();
        invalidated
    }

    pub(crate) fn vc(&self) -> &[u32] {
        &self.inner.vc
    }

    // ------------------------------------------------------------------
    // Protocol policy (the adaptive decision layer).
    // ------------------------------------------------------------------

    /// Install a protocol policy on this processor. The policy persists
    /// across [`Cluster::run`] calls (like the page table); installing
    /// replaces any previous policy and its learned state — including
    /// the protocol layer's own per-policy state: armed deferred plans
    /// are dropped (the old engine that predicted them is gone) and the
    /// push-subscription schedules are forgotten, so a fresh push-mode
    /// policy is billed for teaching its writers from scratch.
    pub fn set_policy(&mut self, policy: Box<dyn ProtocolPolicy>) {
        self.inner.policy = policy;
        self.inner.deferred.clear();
        self.inner.push_scheds.clear();
    }

    /// The installed protocol policy (diagnostics).
    pub fn policy(&self) -> &dyn ProtocolPolicy {
        self.inner.policy.as_ref()
    }

    // ------------------------------------------------------------------
    // Watches (used by Validate to detect indirection-array changes).
    // ------------------------------------------------------------------

    /// Allocate a watch flag; `take_modified` reads-and-clears it.
    pub fn new_watch(&mut self) -> usize {
        self.inner.watch_flags.push(true); // born dirty: first Validate computes
        self.inner.watch_dirty.push(Vec::new());
        self.inner.watch_flags.len() - 1
    }

    /// Arm watch `key` on `pages`: local writes (via protection fault) and
    /// incoming write notices on these pages set the flag.
    pub fn watch_pages(&mut self, key: usize, pages: impl Iterator<Item = u32>) {
        for page in pages {
            let f = &mut self.inner.frames[page as usize];
            f.watched = true;
            f.watch_protect = true;
            let idx = page as usize;
            if self.inner.watchers.len() <= idx {
                self.inner.watchers.resize_with(idx + 1, Vec::new);
            }
            let w = &mut self.inner.watchers[idx];
            if !w.contains(&key) {
                w.push(key);
            }
        }
    }

    /// True if anything under `key`'s watch changed since the last call.
    pub fn take_modified(&mut self, key: usize) -> bool {
        self.inner.watch_dirty[key].clear();
        std::mem::replace(&mut self.inner.watch_flags[key], false)
    }

    /// Like [`TmkProc::take_modified`], but also reports *which* watched
    /// pages changed: `None` if nothing changed; `Some(pages)` with the
    /// dirtied pages (empty right after `new_watch`, meaning "everything"
    /// — no pages were being watched yet). This enables the incremental
    /// `Read_indices` the paper sketches as an extension (§3.2: "a more
    /// sophisticated version of this approach could ... incrementally
    /// recompute the page sets").
    pub fn take_modified_pages(&mut self, key: usize) -> Option<Vec<u32>> {
        if !std::mem::replace(&mut self.inner.watch_flags[key], false) {
            return None;
        }
        let mut pages = std::mem::take(&mut self.inner.watch_dirty[key]);
        pages.sort_unstable();
        pages.dedup();
        Some(pages)
    }

    fn fire_watch(&mut self, page: u32) {
        if let Some(keys) = self.inner.watchers.get(page as usize) {
            for &k in keys {
                self.inner.watch_flags[k] = true;
                self.inner.watch_dirty[k].push(page);
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection for tests.
    // ------------------------------------------------------------------

    /// Page state (test/diagnostic hook).
    pub fn page_state(&self, page: u32) -> PageState {
        self.inner.frames[page as usize].state
    }

    /// Is this page currently invalid (a fetch would move data)?
    #[inline]
    pub fn page_invalid(&self, page: u32) -> bool {
        self.inner.frames[page as usize].state == PageState::Invalid
    }

    /// The cluster's cost model (for charging modeled library work).
    pub fn cost(&self) -> &simnet::CostModel {
        self.cl.net().cost()
    }

    /// Pages currently invalid within a region (what a fetch would bring).
    pub fn invalid_pages_in<T: Pod>(&self, s: &SharedSlice<T>) -> Vec<u32> {
        s.pages(self.page_size)
            .filter(|&p| self.inner.frames[p as usize].state == PageState::Invalid)
            .collect()
    }
}
