//! Barriers: global synchronization + the consistency exchange.
//!
//! A TreadMarks barrier is a total exchange of consistency information:
//! every arriving processor closes its interval and sends its new write
//! notices to the barrier manager; the departure message carries everyone
//! else's notices. After a barrier, all vector clocks are equal.
//!
//! The thread rendezvous itself uses `std::sync::Barrier` in three
//! phases so the leader can (a) snapshot the global vector clock, charge
//! the 2(n−1) barrier messages, synchronize the simulated clocks, and run
//! record-store garbage collection while everyone is parked, and (b) no
//! processor can race ahead and publish new intervals while stragglers
//! still read the snapshot.

use std::sync::{Arc, Barrier};

use parking_lot::Mutex;
use simnet::{MsgKind, SimTime, StallCat, TraceEvent};

use crate::cluster::Cluster;
use crate::interval::Vc;
use crate::proc::TmkProc;

#[derive(Debug)]
pub(crate) struct BarrierCtl {
    rendezvous: Barrier,
    state: Mutex<BarrierState>,
}

#[derive(Debug)]
struct BarrierState {
    /// Vector clock all processors adopt at this barrier.
    target: Vc,
    /// Vector clock of the *previous* barrier — the GC fold horizon
    /// (records older than one full barrier epoch go to the master).
    prev: Vc,
    /// Flat write-notice digest of this barrier: `(page, proc, seq)` for
    /// every notice in `(prev target, target]`, built once by the leader
    /// and consumed by every processor in Phase B — the per-peer board
    /// re-walk this replaces was O(nprocs²) work per barrier.
    digest: Arc<[(u32, u32, u32)]>,
    epoch: u64,
}

impl BarrierCtl {
    pub(crate) fn new(nprocs: usize) -> Self {
        BarrierCtl {
            rendezvous: Barrier::new(nprocs),
            state: Mutex::new(BarrierState {
                target: vec![0; nprocs],
                prev: vec![0; nprocs],
                digest: Arc::new([]),
                epoch: 0,
            }),
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Back to the just-built state; the rendezvous itself is reusable.
    pub(crate) fn reset(&self) {
        let mut st = self.state.lock();
        st.target.fill(0);
        st.prev.fill(0);
        st.digest = Arc::new([]);
        st.epoch = 0;
    }
}

impl TmkProc<'_> {
    /// TreadMarks barrier: release (close interval), rendezvous, acquire
    /// (merge everyone's write notices). Equivalent to
    /// [`TmkProc::barrier_tagged`] with phase 0 — single-barrier loops
    /// need no tagging.
    pub fn barrier(&mut self) {
        self.barrier_tagged(0);
    }

    /// A barrier with an explicit **phase identity**: `phase` names the
    /// barrier *site* (the source location in the app's loop body), and
    /// must be stable across iterations. Multi-barrier apps — moldyn's
    /// rebuild / pipelined-reduction / position-update barriers, nbf's
    /// reduction rounds — tag each site so the protocol policy can keep
    /// its learned state per site: gap histories, promotion state, and
    /// quiesce streaks all key on `(page, phase)`, and the policy's
    /// deferred/quiesced/push traffic is billed against the owning
    /// phase. Tags are local bookkeeping (no cross-processor agreement
    /// is needed); the rendezvous itself is unchanged.
    pub fn barrier_tagged(&mut self, phase: u32) {
        // Everything the barrier charges to this processor's clock —
        // the interval close, the rendezvous jump, digest work — bills
        // as barrier wait; an eager prefetch issued at the epoch
        // boundary re-scopes itself to PrefetchPush underneath.
        let _bw = self.cl.net().scope(self.me, StallCat::BarrierWait);
        if self.cl.net().tracing() {
            let epoch = self.cl.barrier_ctl().epoch();
            self.cl
                .net()
                .trace(self.me, TraceEvent::BarrierEnter { epoch, phase });
        }
        self.close_interval();
        let cl: &Cluster = self.cl;
        let ctl = cl.barrier_ctl();

        // Phase A: everyone has closed and published.
        let leader = ctl.rendezvous.wait().is_leader();
        if leader {
            let net = cl.net();
            let nprocs = self.nprocs();
            let mut st = ctl.state.lock();
            let new_target: Vc = (0..nprocs).map(|q| cl.board().len(q)).collect();

            // Account the 2(n-1) barrier messages. Arrival messages carry
            // each processor's notices since the last barrier; departure
            // messages carry everyone else's. The same single pass over
            // the new intervals also builds the flat notice digest every
            // processor merges in Phase B.
            let manager = 0usize;
            let mut digest: Vec<(u32, u32, u32)> = Vec::new();
            let deltas: Vec<usize> = (0..nprocs)
                .map(|q| {
                    let mut bytes = 0usize;
                    cl.board().for_range(q, st.target[q], new_target[q], |seq, rec| {
                        bytes += rec.wire_bytes();
                        for &page in rec.pages.iter() {
                            digest.push((page, q as u32, seq));
                        }
                    });
                    bytes
                })
                .collect();
            let total: usize = deltas.iter().sum();
            // Metadata-scaling probe: the per-barrier notice payload,
            // counted once (not per fan-in/fan-out copy).
            net.add_notice_meta(total as u64);
            for (p, &delta) in deltas.iter().enumerate() {
                if p == manager {
                    continue;
                }
                net.count_only(p, MsgKind::Barrier, 1, 16 + delta);
                net.count_only(manager, MsgKind::Barrier, 1, 16 + (total - delta));
            }

            // Synchronize simulated clocks: everyone leaves at
            // max(arrivals) + one gather/scatter round + manager work.
            // (A one-processor "barrier" exchanges nothing.)
            if nprocs > 1 {
                let cost = net.cost();
                let t = net.clock_max()
                    + SimTime::from_us(2.0 * cost.msg_latency_us + cost.barrier_us)
                    + SimTime::from_us(cost.per_byte_us * total as f64);
                net.set_all_clocks(t);
            }

            // GC: fold records older than the previous barrier.
            let cur = st.target.clone();
            let prev = std::mem::replace(&mut st.prev, cur);
            cl.store().fold(&prev);

            st.target = new_target;
            st.digest = digest.into();
            st.epoch += 1;
            // The notice is a cluster-wide fact produced by whichever
            // thread won the rendezvous — pin it to proc 0's lane so the
            // trace does not depend on the host schedule. Proc 0 is
            // parked in the barrier (or *is* the leader), so its virtual
            // clock is stable here.
            net.trace(
                0,
                TraceEvent::BarrierNotice {
                    epoch: st.epoch,
                    phase,
                    bytes: total as u64,
                },
            );
        }

        // Phase B: snapshot is ready; merge notices from the shared
        // digest (one flat pass, no per-peer board walks).
        ctl.rendezvous.wait();
        let (target, digest, epoch) = {
            let st = ctl.state.lock();
            (st.target.clone(), Arc::clone(&st.digest), st.epoch)
        };
        let invalidated = self.apply_digest(&digest, &target);
        self.inner.counters.barriers += 1;
        self.inner.last_barrier_seen.copy_from_slice(&target);

        // A deferred plan whose pages are being re-invalidated is dead:
        // its window — "from the arming barrier to the next invalidation
        // of the predicted pages" — closed without a single touch.
        // Discarding it is the quiesce win — one whole exchange per peer
        // saved. Plans whose pages were *not* re-invalidated stay armed:
        // in a multi-barrier loop body the reads a phase predicts may
        // legitimately sit several (other-phase) barriers ahead. The
        // policy is told first, so the quiesced window reads as a free
        // probe rather than a covered need.
        // A plan also dies when its *own phase recurs*: the window it
        // covered ran from the arming barrier to the next barrier of
        // the same site, and that site is now here again — even if a
        // dissolved pattern means the pages were never re-invalidated.
        // Without this, a dead plan would linger armed until some
        // unrelated fault flushed its stale pages into an exchange.
        if !self.inner.deferred.is_empty() {
            let plans = std::mem::take(&mut self.inner.deferred);
            for mut plan in plans {
                let stale = epoch.saturating_sub(plan.armed_at)
                    >= crate::proc::DeferredPlan::STALE_EPOCHS;
                if plan.phase == phase || stale {
                    cl.net()
                        .policy()
                        .record_quiesced(self.me, plan.phase, plan.pages.len());
                    cl.net().trace(
                        self.me,
                        TraceEvent::PlanQuiesce {
                            phase: plan.phase,
                            pages: plan.pages.len() as u32,
                        },
                    );
                    self.inner.policy.note_quiesced(plan.phase, &plan.pages);
                    continue;
                }
                if !invalidated.is_empty() {
                    // Cross-phase partial close: only the pages this
                    // barrier re-invalidated have their windows over;
                    // the rest of the plan stays armed for the reads
                    // its phase still predicts.
                    let (dead, live): (Vec<u32>, Vec<u32>) = plan
                        .pages
                        .iter()
                        .partition(|pg| invalidated.binary_search(pg).is_ok());
                    if !dead.is_empty() {
                        cl.net()
                            .policy()
                            .record_quiesced(self.me, plan.phase, dead.len());
                        cl.net().trace(
                            self.me,
                            TraceEvent::PlanQuiesce {
                                phase: plan.phase,
                                pages: dead.len() as u32,
                            },
                        );
                        self.inner.policy.note_quiesced(plan.phase, &dead);
                        plan.pages = live;
                    }
                }
                if !plan.pages.is_empty() {
                    self.inner.deferred.push(plan);
                }
            }
        }

        // Epoch boundary for the protocol policy: it may answer the
        // just-applied invalidations with a batched prefetch — one
        // aggregated exchange per peer instead of a demand fault per
        // page — eager, deferred to the epoch's first fault, or as
        // writer-initiated update-push. The records it needs were
        // published before Phase A, so fetching inside the B→C window
        // reads a stable store.
        let dec = self
            .inner
            .policy
            .epoch_end(epoch, phase, &invalidated, cl.net().policy(), self.me);
        if cl.net().tracing() {
            for &(page, act) in &dec.events {
                cl.net().trace(
                    self.me,
                    TraceEvent::Policy {
                        page,
                        phase: dec.phase,
                        act,
                    },
                );
            }
        }
        let todo: Vec<u32> = dec
            .picks
            .into_iter()
            .filter(|&pg| self.page_invalid(pg))
            .collect();
        if !todo.is_empty() {
            if dec.defer {
                // At most one armed plan per phase, by construction:
                // the phase-recurrence rule above just discarded any
                // same-phase leftover.
                debug_assert!(
                    !self.inner.deferred.iter().any(|d| d.phase == dec.phase),
                    "same-phase plan survived its own phase's barrier"
                );
                cl.net().policy().record_deferred(self.me, dec.phase);
                cl.net().trace(
                    self.me,
                    TraceEvent::PlanDefer {
                        phase: dec.phase,
                        pages: todo.len() as u32,
                    },
                );
                self.inner.deferred.push(crate::proc::DeferredPlan {
                    pages: todo,
                    phase: dec.phase,
                    armed_at: epoch,
                });
            } else if dec.push {
                cl.net().policy().record_push(self.me, dec.phase, todo.len());
                self.fetch_pages_push(&todo, dec.phase);
            } else {
                cl.net()
                    .policy()
                    .record_prefetch(self.me, dec.phase, todo.len());
                self.fetch_pages(&todo, crate::proc::FetchClass::Prefetch);
            }
        }

        // Phase C: nobody publishes new intervals until all have merged.
        ctl.rendezvous.wait();
        cl.net()
            .trace(self.me, TraceEvent::BarrierExit { epoch, phase });
    }

    /// Collectively zero the simulated clocks and message counters — the
    /// paper's harnesses exclude initialization (data generation, initial
    /// partitioning) from the timed region. Must be called by all
    /// processors. Per-processor event counters are *not* cleared; use
    /// [`TmkProc::reset_counters`].
    pub fn start_timed_region(&mut self) {
        self.barrier();
        // Zero the clocks while every processor is parked between two
        // bare rendezvous (no protocol traffic): a processor racing
        // ahead into its next traced event (or clock read) mid-reset
        // would observe pre- or post-zero time depending on the host
        // schedule. The closing protocol barrier below is charged to
        // the freshly zeroed counters, exactly as before.
        let ctl = self.cl.barrier_ctl();
        if ctl.rendezvous.wait().is_leader() {
            self.cl.net().reset();
        }
        ctl.rendezvous.wait();
        self.barrier();
    }

    /// Clear this processor's protocol event counters.
    pub fn reset_counters(&mut self) {
        self.inner.counters = Default::default();
    }
}
