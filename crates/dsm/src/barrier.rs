//! Barriers: global synchronization + the consistency exchange.
//!
//! A TreadMarks barrier is a total exchange of consistency information:
//! every arriving processor closes its interval and sends its new write
//! notices to the barrier manager; the departure message carries everyone
//! else's notices. After a barrier, all vector clocks are equal.
//!
//! The thread rendezvous itself uses `std::sync::Barrier` in three
//! phases so the leader can (a) snapshot the global vector clock, charge
//! the 2(n−1) barrier messages, synchronize the simulated clocks, and run
//! record-store garbage collection while everyone is parked, and (b) no
//! processor can race ahead and publish new intervals while stragglers
//! still read the snapshot.

use std::sync::Barrier;

use parking_lot::Mutex;
use simnet::{MsgKind, SimTime};

use crate::cluster::Cluster;
use crate::interval::Vc;
use crate::proc::TmkProc;

#[derive(Debug)]
pub(crate) struct BarrierCtl {
    rendezvous: Barrier,
    state: Mutex<BarrierState>,
}

#[derive(Debug)]
struct BarrierState {
    /// Vector clock all processors adopt at this barrier.
    target: Vc,
    /// Vector clock of the *previous* barrier — the GC fold horizon
    /// (records older than one full barrier epoch go to the master).
    prev: Vc,
    epoch: u64,
}

impl BarrierCtl {
    pub(crate) fn new(nprocs: usize) -> Self {
        BarrierCtl {
            rendezvous: Barrier::new(nprocs),
            state: Mutex::new(BarrierState {
                target: vec![0; nprocs],
                prev: vec![0; nprocs],
                epoch: 0,
            }),
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }
}

impl TmkProc<'_> {
    /// TreadMarks barrier: release (close interval), rendezvous, acquire
    /// (merge everyone's write notices).
    pub fn barrier(&mut self) {
        self.close_interval();
        let cl: &Cluster = self.cl;
        let ctl = cl.barrier_ctl();

        // Phase A: everyone has closed and published.
        let leader = ctl.rendezvous.wait().is_leader();
        if leader {
            let net = cl.net();
            let nprocs = self.nprocs();
            let mut st = ctl.state.lock();
            let new_target: Vc = (0..nprocs).map(|q| cl.board().len(q)).collect();

            // Account the 2(n-1) barrier messages. Arrival messages carry
            // each processor's notices since the last barrier; departure
            // messages carry everyone else's.
            let manager = 0usize;
            let deltas: Vec<usize> = (0..nprocs)
                .map(|q| cl.board().range_bytes(q, st.target[q], new_target[q]))
                .collect();
            let total: usize = deltas.iter().sum();
            for (p, &delta) in deltas.iter().enumerate() {
                if p == manager {
                    continue;
                }
                net.count_only(p, MsgKind::Barrier, 1, 16 + delta);
                net.count_only(manager, MsgKind::Barrier, 1, 16 + (total - delta));
            }

            // Synchronize simulated clocks: everyone leaves at
            // max(arrivals) + one gather/scatter round + manager work.
            // (A one-processor "barrier" exchanges nothing.)
            if nprocs > 1 {
                let cost = net.cost();
                let t = net.clock_max()
                    + SimTime::from_us(2.0 * cost.msg_latency_us + cost.barrier_us)
                    + SimTime::from_us(cost.per_byte_us * total as f64);
                net.set_all_clocks(t);
            }

            // GC: fold records older than the previous barrier.
            let cur = st.target.clone();
            let prev = std::mem::replace(&mut st.prev, cur);
            cl.store().fold(&prev);

            st.target = new_target;
            st.epoch += 1;
        }

        // Phase B: snapshot is ready; merge notices.
        ctl.rendezvous.wait();
        let (target, epoch) = {
            let st = ctl.state.lock();
            (st.target.clone(), st.epoch)
        };
        let invalidated = self.apply_notices(&target, true);
        self.inner.counters.barriers += 1;
        self.inner.last_barrier_seen.copy_from_slice(&target);

        // A plan deferred at the previous barrier that no fault ever
        // triggered is dead: the epoch never touched the predicted
        // pages. Discarding it is the quiesce win — one whole exchange
        // per peer saved, most importantly at the run's final barrier
        // (whose "next iteration" never executes at all). The policy is
        // told first, so the epoch reads as a free probe rather than a
        // covered need.
        if let Some((plan, _)) = self.inner.deferred.take() {
            cl.net().policy().record_quiesced(self.me, plan.len());
            self.inner.policy.note_quiesced(&plan);
        }

        // Epoch boundary for the protocol policy: it may answer the
        // just-applied invalidations with a batched prefetch — one
        // aggregated exchange per peer instead of a demand fault per
        // page — eager, deferred to the epoch's first fault, or as
        // writer-initiated update-push. The records it needs were
        // published before Phase A, so fetching inside the B→C window
        // reads a stable store.
        let dec = self
            .inner
            .policy
            .epoch_end(epoch, &invalidated, cl.net().policy(), self.me);
        let todo: Vec<u32> = dec
            .picks
            .into_iter()
            .filter(|&pg| self.page_invalid(pg))
            .collect();
        if !todo.is_empty() {
            let class = if dec.push {
                crate::proc::FetchClass::Push
            } else {
                crate::proc::FetchClass::Prefetch
            };
            if dec.defer {
                cl.net().policy().record_deferred(self.me);
                self.inner.deferred = Some((todo, class));
            } else {
                if dec.push {
                    cl.net().policy().record_push(self.me, todo.len());
                } else {
                    cl.net().policy().record_prefetch(self.me, todo.len());
                }
                self.fetch_pages(&todo, class);
            }
        }

        // Phase C: nobody publishes new intervals until all have merged.
        ctl.rendezvous.wait();
    }

    /// Collectively zero the simulated clocks and message counters — the
    /// paper's harnesses exclude initialization (data generation, initial
    /// partitioning) from the timed region. Must be called by all
    /// processors. Per-processor event counters are *not* cleared; use
    /// [`TmkProc::reset_counters`].
    pub fn start_timed_region(&mut self) {
        self.barrier();
        if self.rank() == 0 {
            self.cl.net().reset();
        }
        self.barrier();
    }

    /// Clear this processor's protocol event counters.
    pub fn reset_counters(&mut self) {
        self.inner.counters = Default::default();
    }
}
