//! Diffs: run-length encodings of page modifications.
//!
//! A diff is produced by comparing a page word-by-word against its twin
//! (the pristine copy saved at the first write of the interval) and
//! collecting the modified runs. Applying a diff copies the runs into a
//! destination page. Two concurrent writers that touch disjoint words
//! produce diffs that can be applied in either order — the heart of the
//! multiple-writer protocol.

/// Comparison granularity in bytes. TreadMarks diffed 4-byte words, and
/// so do we: concurrent writers to *adjacent 4-byte elements* (e.g. two
/// processors writing neighbouring `i32` entries of a shared index
/// array) must produce disjoint diffs, or one writer's stale half-word
/// would clobber the other's update when the diffs merge.
pub const DIFF_WORD: usize = 4;

/// Wire-format overhead per diff run (offset + length), and per payload
/// (page id + interval id), counted toward the "Data" column.
const RUN_HEADER: usize = 4;
const PAYLOAD_HEADER: usize = 8;

/// One page's modifications relative to its twin.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    /// `(byte offset within page, modified bytes)`, offsets ascending,
    /// runs non-adjacent (maximally coalesced).
    runs: Vec<(u32, Box<[u8]>)>,
}

impl Diff {
    /// Compare `current` against `twin` and encode the modified runs.
    /// Both slices must be the same length, a multiple of [`DIFF_WORD`].
    pub fn create(twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), current.len());
        assert_eq!(current.len() % DIFF_WORD, 0);
        let mut runs = Vec::new();
        let nwords = current.len() / DIFF_WORD;
        let mut w = 0;
        while w < nwords {
            let off = w * DIFF_WORD;
            if twin[off..off + DIFF_WORD] != current[off..off + DIFF_WORD] {
                let start = w;
                while w < nwords {
                    let o = w * DIFF_WORD;
                    if twin[o..o + DIFF_WORD] == current[o..o + DIFF_WORD] {
                        break;
                    }
                    w += 1;
                }
                let so = start * DIFF_WORD;
                let eo = w * DIFF_WORD;
                runs.push((so as u32, current[so..eo].to_vec().into_boxed_slice()));
            } else {
                w += 1;
            }
        }
        Diff { runs }
    }

    /// Copy the modified runs into `dst` (a page-sized buffer).
    pub fn apply(&self, dst: &mut [u8]) {
        for (off, bytes) in &self.runs {
            let o = *off as usize;
            dst[o..o + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// No word differed between page and twin.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of coalesced modified runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Bytes this diff occupies on the wire (runs + per-run headers).
    pub fn wire_bytes(&self) -> usize {
        self.runs
            .iter()
            .map(|(_, b)| b.len() + RUN_HEADER)
            .sum::<usize>()
    }

    /// Does any run overlap `[lo, hi)` byte offsets?
    pub fn touches(&self, lo: usize, hi: usize) -> bool {
        self.runs
            .iter()
            .any(|(off, b)| (*off as usize) < hi && *off as usize + b.len() > lo)
    }
}

/// What an interval publishes for one dirtied page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Ordinary multiple-writer result: the diff against the twin.
    Diff(Diff),
    /// The page was written in its entirety (`WRITE_ALL` /
    /// `READ&WRITE_ALL` descriptors — paper §3.2): no twin was kept and
    /// the whole page is shipped. Because a full snapshot subsumes every
    /// earlier modification, a fetch that ends in a `Full` needs nothing
    /// older — the mechanism behind the paper's moldyn data reduction.
    Full(Box<[u8]>),
}

impl Payload {
    /// Bytes this payload occupies on the wire (header included).
    pub fn wire_bytes(&self) -> usize {
        PAYLOAD_HEADER
            + match self {
                Payload::Diff(d) => d.wire_bytes(),
                Payload::Full(p) => p.len(),
            }
    }

    /// Apply the modification to `dst` (a page-sized buffer).
    pub fn apply(&self, dst: &mut [u8]) {
        match self {
            Payload::Diff(d) => d.apply(dst),
            Payload::Full(p) => dst.copy_from_slice(p),
        }
    }

    /// A full snapshot makes everything before it redundant.
    pub fn is_full(&self) -> bool {
        matches!(self, Payload::Full(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn empty_diff_for_identical_pages() {
        let a = page(128);
        let d = Diff::create(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn roundtrip_single_word() {
        let twin = page(128);
        let mut cur = page(128);
        cur[40..48].copy_from_slice(&7.5f64.to_le_bytes());
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        let mut dst = twin.clone();
        d.apply(&mut dst);
        assert_eq!(dst, cur);
    }

    #[test]
    fn coalesces_adjacent_words() {
        let twin = page(256);
        let mut cur = page(256);
        for b in &mut cur[32..72] {
            *b = 0xAB; // ten adjacent modified words, one run
        }
        cur[160] = 0xCD; // one separate word
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.wire_bytes(), (40 + 4) + (4 + 4));
    }

    #[test]
    fn disjoint_diffs_commute() {
        let twin = page(128);
        let mut a = twin.clone();
        let mut b = twin.clone();
        a[0..8].copy_from_slice(&1.0f64.to_le_bytes());
        b[64..72].copy_from_slice(&2.0f64.to_le_bytes());
        let da = Diff::create(&twin, &a);
        let db = Diff::create(&twin, &b);

        let mut ab = twin.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = twin.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        assert_eq!(ab, ba);
        assert_eq!(&ab[0..8], &1.0f64.to_le_bytes());
        assert_eq!(&ab[64..72], &2.0f64.to_le_bytes());
    }

    #[test]
    fn touches_ranges() {
        let twin = page(128);
        let mut cur = twin.clone();
        cur[32..40].fill(9);
        let d = Diff::create(&twin, &cur);
        assert!(d.touches(32, 40));
        assert!(d.touches(0, 33));
        assert!(!d.touches(0, 32));
        assert!(!d.touches(40, 128));
    }

    #[test]
    fn full_payload_subsumes() {
        let mut p = page(64);
        p[8] = 3;
        let pay = Payload::Full(p.clone().into_boxed_slice());
        assert!(pay.is_full());
        assert_eq!(pay.wire_bytes(), 64 + 8);
        let mut dst = page(64);
        pay.apply(&mut dst);
        assert_eq!(dst, p);
    }

    #[test]
    fn whole_page_modified_is_one_run() {
        let twin = page(4096);
        let cur = vec![0xFFu8; 4096];
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        // A whole-page diff costs slightly less than a Full payload only in
        // headers; the paper's WRITE_ALL optimisation is about *how many*
        // of these get shipped, not their individual size.
        assert_eq!(d.wire_bytes(), 4096 + 4);
    }
}
