//! Intervals, vector clocks, and the write-notice board.
//!
//! A processor's execution is divided into *intervals*, closed at each
//! release (barrier arrival or lock release). Closing interval `seq`
//! publishes an [`IntervalRec`]: the processor's vector clock at that
//! point plus write notices (the pages dirtied). Acquires merge another
//! processor's knowledge: every interval newly covered by the merged
//! vector clock has its write notices applied, invalidating local copies
//! of those pages — the *lazy invalidate* protocol of §2.

use std::sync::Arc;

use parking_lot::RwLock;
use simnet::ProcId;

/// A vector clock: `vc[q]` = number of processor `q`'s intervals whose
/// notices this processor has seen (interval sequence numbers are
/// 1-based; `vc[q] == 0` means "none").
pub type Vc = Vec<u32>;

/// Does `vc` cover interval `seq` of processor `q`?
#[inline]
pub fn covers(vc: &[u32], q: ProcId, seq: u32) -> bool {
    vc[q] >= seq
}

/// A deterministic linear extension of happens-before.
///
/// If interval `a` happens-before `b` then `a.vc ≤ b.vc` pointwise and
/// strictly in `b`'s own component, so `Σ vc` strictly increases; sorting
/// records by `(Σ vc, proc, seq)` therefore orders causally-related
/// records correctly, and concurrent records (which under the
/// multiple-writer protocol touch disjoint words) deterministically.
#[inline]
pub fn vc_key(vc: &[u32], proc: ProcId, seq: u32) -> (u64, usize, u32) {
    (vc.iter().map(|&v| v as u64).sum(), proc, seq)
}

/// Clusters at or below this size ship the full dense vector clock on
/// the wire (`4 * nprocs` bytes); larger clusters switch to the sparse
/// delta encoding of [`CompactVc`]. Eight matches the paper's cluster
/// size, so the reviewed tables are unaffected by the sparse format.
pub const DENSE_VC_MAX: usize = 8;

/// Wire encoding of a vector clock relative to a shared `base` clock.
///
/// Both sides of a notice exchange already agree on the previous
/// barrier's target clock (every processor adopts it at departure), so
/// an interval only needs to ship the components that advanced past it:
/// the closing processor's own (always), plus any learned through lock
/// acquires since. At 256 processors an interval that advanced two
/// ranks costs 20 bytes instead of 1024.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactVc {
    /// Small cluster: the full clock, `4 * nprocs` wire bytes.
    Dense(Vec<u32>),
    /// Large cluster: `(rank, seq)` pairs for ranks with
    /// `vc[rank] > base[rank]`; 4-byte count header + 8 bytes per pair.
    Sparse(Vec<(u32, u32)>),
}

impl CompactVc {
    /// Encode `vc` as a delta against `base` (`base[q] ≤ vc[q]` pointwise).
    pub fn encode(vc: &[u32], base: &[u32]) -> CompactVc {
        debug_assert_eq!(vc.len(), base.len());
        if vc.len() <= DENSE_VC_MAX {
            return CompactVc::Dense(vc.to_vec());
        }
        let pairs = vc
            .iter()
            .zip(base)
            .enumerate()
            .filter(|(_, (&v, &b))| v > b)
            .map(|(q, (&v, _))| (q as u32, v))
            .collect();
        CompactVc::Sparse(pairs)
    }

    /// Reconstruct the full clock given the same `base` used to encode.
    pub fn decode(&self, base: &[u32]) -> Vc {
        match self {
            CompactVc::Dense(vc) => vc.clone(),
            CompactVc::Sparse(pairs) => {
                let mut vc = base.to_vec();
                for &(q, seq) in pairs {
                    vc[q as usize] = seq;
                }
                vc
            }
        }
    }

    /// Wire size of this encoding.
    pub fn wire_bytes(&self) -> usize {
        match self {
            CompactVc::Dense(vc) => vc.len() * 4,
            CompactVc::Sparse(pairs) => 4 + pairs.len() * 8,
        }
    }
}

/// What one closed interval publishes.
#[derive(Debug, Clone)]
pub struct IntervalRec {
    /// The closing processor's vector clock, including this interval
    /// (`vc[self] == seq`).
    pub vc: Arc<[u32]>,
    /// Write notices: pages dirtied during the interval.
    pub pages: Arc<[u32]>,
    /// Precomputed wire size of the clock under the [`CompactVc`]
    /// encoding against the closing processor's last barrier snapshot.
    vc_wire: u32,
}

impl IntervalRec {
    /// Build a record, computing the clock's wire size as the compact
    /// delta against `base` (the closing processor's view of the last
    /// barrier target; ranks advanced since — own component, lock
    /// acquires — form the sparse set).
    pub fn new(vc: Arc<[u32]>, pages: Arc<[u32]>, base: &[u32]) -> IntervalRec {
        let vc_wire = CompactVc::encode(&vc, base).wire_bytes() as u32;
        IntervalRec { vc, pages, vc_wire }
    }

    /// Approximate wire size of this record inside a notice exchange:
    /// the (compactly encoded) vector clock plus one page id per notice.
    pub fn wire_bytes(&self) -> usize {
        self.vc_wire as usize + self.pages.len() * 4
    }
}

/// The global registry of published intervals, indexed `[proc][seq-1]`.
///
/// In real TreadMarks this information is piggybacked on barrier and lock
/// messages; here it is a shared board read under `RwLock`, with the
/// equivalent messages/bytes charged by the barrier and lock managers.
#[derive(Debug)]
pub struct NoticeBoard {
    boards: Vec<RwLock<Vec<IntervalRec>>>,
}

impl NoticeBoard {
    /// An empty board for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        NoticeBoard {
            boards: (0..nprocs).map(|_| RwLock::new(Vec::new())).collect(),
        }
    }

    /// Publish `rec` as the next interval of `q`; returns its sequence
    /// number (1-based).
    pub fn publish(&self, q: ProcId, rec: IntervalRec) -> u32 {
        let mut b = self.boards[q].write();
        debug_assert_eq!(rec.vc[q] as usize, b.len() + 1, "seq/vc mismatch");
        b.push(rec);
        b.len() as u32
    }

    /// Number of intervals `q` has closed so far.
    pub fn len(&self, q: ProcId) -> u32 {
        self.boards[q].read().len() as u32
    }

    /// Has `q` closed no intervals yet?
    pub fn is_empty(&self, q: ProcId) -> bool {
        self.len(q) == 0
    }

    /// Visit `q`'s intervals with `from < seq ≤ to` in order.
    pub fn for_range(&self, q: ProcId, from: u32, to: u32, mut f: impl FnMut(u32, &IntervalRec)) {
        if to <= from {
            return;
        }
        let b = self.boards[q].read();
        for seq in (from + 1)..=to {
            f(seq, &b[(seq - 1) as usize]);
        }
    }

    /// Drop every published interval, keeping the boards' capacity
    /// (part of [`crate::Cluster::recycle`]).
    pub fn reset(&self) {
        for b in &self.boards {
            b.write().clear();
        }
    }

    /// Total wire bytes of `q`'s intervals in `(from, to]` — used to
    /// account barrier/lock message sizes.
    pub fn range_bytes(&self, q: ProcId, from: u32, to: u32) -> usize {
        let mut n = 0;
        self.for_range(q, from, to, |_, rec| n += rec.wire_bytes());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vc: Vec<u32>, pages: Vec<u32>) -> IntervalRec {
        let base = vec![0u32; vc.len()];
        IntervalRec::new(vc.into(), pages.into(), &base)
    }

    #[test]
    fn publish_and_read_back() {
        let nb = NoticeBoard::new(2);
        assert_eq!(nb.len(0), 0);
        let s1 = nb.publish(0, rec(vec![1, 0], vec![3, 4]));
        let s2 = nb.publish(0, rec(vec![2, 0], vec![5]));
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(nb.len(0), 2);

        let mut seen = Vec::new();
        nb.for_range(0, 0, 2, |seq, r| seen.push((seq, r.pages.to_vec())));
        assert_eq!(seen, vec![(1, vec![3, 4]), (2, vec![5])]);

        let mut seen2 = Vec::new();
        nb.for_range(0, 1, 2, |seq, _| seen2.push(seq));
        assert_eq!(seen2, vec![2]);
    }

    #[test]
    fn covers_basic() {
        let vc = vec![3, 0, 7];
        assert!(covers(&vc, 0, 3));
        assert!(!covers(&vc, 0, 4));
        assert!(!covers(&vc, 1, 1));
        assert!(covers(&vc, 2, 7));
    }

    #[test]
    fn vc_key_orders_happens_before() {
        // p0 closes interval 1; p1 sees it and closes its interval 1.
        let a = vc_key(&[1, 0], 0, 1);
        let b = vc_key(&[1, 1], 1, 1);
        assert!(a < b);
        // Concurrent intervals order deterministically by proc.
        let c = vc_key(&[1, 0], 0, 1);
        let d = vc_key(&[0, 1], 1, 1);
        assert!(c < d);
    }

    #[test]
    fn wire_bytes_counts_vc_and_pages() {
        let r = rec(vec![1, 0, 0], vec![10, 11]);
        assert_eq!(r.wire_bytes(), 3 * 4 + 2 * 4);
        let nb = NoticeBoard::new(3);
        nb.publish(0, r);
        assert_eq!(nb.range_bytes(0, 0, 1), 20);
        assert_eq!(nb.range_bytes(0, 1, 1), 0);
    }

    #[test]
    fn compact_vc_dense_at_small_nprocs() {
        // At ≤ DENSE_VC_MAX ranks the encoding is the full clock and the
        // wire size matches the historical `4 * nprocs` formula exactly.
        let vc = vec![3, 1, 0, 2];
        let base = vec![2, 1, 0, 2];
        let c = CompactVc::encode(&vc, &base);
        assert_eq!(c.wire_bytes(), 16);
        assert_eq!(c.decode(&base), vc);
    }

    #[test]
    fn compact_vc_sparse_above_dense_max() {
        let mut base = vec![0u32; 16];
        base[3] = 5;
        let mut vc = base.clone();
        vc[0] = 2; // own component advanced
        vc[7] = 9; // learned via a lock acquire
        let c = CompactVc::encode(&vc, &base);
        // 4-byte count header + two (rank, seq) pairs.
        assert_eq!(c.wire_bytes(), 4 + 2 * 8);
        assert_eq!(c.decode(&base), vc);
        // Unchanged clock encodes to the bare header.
        let none = CompactVc::encode(&base, &base);
        assert_eq!(none.wire_bytes(), 4);
        assert_eq!(none.decode(&base), base);
    }

    #[test]
    fn interval_rec_wire_uses_sparse_encoding_at_scale() {
        let nprocs = 64;
        let mut base = vec![0u32; nprocs];
        base[10] = 4;
        let mut vc = base.clone();
        vc[0] = 1;
        let r = IntervalRec::new(vc.into(), vec![42u32, 43].into(), &base);
        // One advanced rank: 4 + 8 clock bytes + 2 page ids.
        assert_eq!(r.wire_bytes(), 12 + 8);
    }
}
