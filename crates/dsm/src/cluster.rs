//! The cluster: configuration, the shared-heap allocator, and the SPMD
//! launcher.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{CostModel, Net, NetReport, SimTime};

use crate::barrier::BarrierCtl;
use crate::heap::{Pod, SharedSlice};
use crate::interval::NoticeBoard;
use crate::lock::LockMgr;
use crate::pagepool::PagePool;
use crate::proc::{ProcInner, TmkProc};
use crate::store::DiffStore;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Number of simulated processors.
    pub nprocs: usize,
    /// Consistency unit. The SP2 of the paper used 4 KB pages.
    pub page_size: usize,
    /// Communication cost model for the simulated interconnect.
    pub cost: CostModel,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig {
            nprocs: 8,
            page_size: 4096,
            cost: CostModel::default(),
        }
    }
}

impl DsmConfig {
    /// The default configuration at a given cluster size.
    pub fn with_nprocs(nprocs: usize) -> Self {
        DsmConfig {
            nprocs,
            ..Default::default()
        }
    }
}

/// A simulated TreadMarks cluster.
///
/// Usage mirrors a TreadMarks program: allocate shared memory, then run
/// the SPMD body on every processor.
///
/// ```
/// use dsm::{Cluster, DsmConfig};
///
/// let cl = Cluster::new(DsmConfig::with_nprocs(4));
/// let data = cl.alloc::<f64>(1024);
/// cl.run(|p| {
///     let me = p.rank();
///     let chunk = data.len() / p.nprocs();
///     for i in me * chunk..(me + 1) * chunk {
///         p.write(&data, i, me as f64);
///     }
///     p.barrier();
///     // every processor can now read everyone's writes
///     let v = p.read(&data, (p.nprocs() - 1) * chunk);
///     assert_eq!(v, (p.nprocs() - 1) as f64);
/// });
/// ```
#[derive(Debug)]
pub struct Cluster {
    cfg: DsmConfig,
    net: Net,
    board: NoticeBoard,
    store: DiffStore,
    barrier: BarrierCtl,
    locks: LockMgr,
    alloc_next: Mutex<usize>,
    slots: Vec<Mutex<Option<Box<ProcInner>>>>,
    /// Free page-sized boxes, fed by [`Cluster::recycle`] and drained by
    /// the fault paths — repeated runs on a recycled cluster stop
    /// allocating page frames and twins. Shared with the diff store, so
    /// master copies and master-fetch replies cycle through the same
    /// free-list (see [`crate::pagepool::PagePool`]).
    page_pool: Arc<PagePool>,
}

impl Cluster {
    /// Build a cluster (heap empty, all clocks zero). Panics if the
    /// page size is not a power of two of at least 64 bytes.
    pub fn new(cfg: DsmConfig) -> Self {
        assert!(cfg.page_size.is_power_of_two(), "page size: power of two");
        assert!(cfg.page_size >= 64, "page size too small");
        let nprocs = cfg.nprocs;
        let page_size = cfg.page_size;
        let page_pool = Arc::new(PagePool::new(page_size));
        Cluster {
            net: Net::new(nprocs, cfg.cost.clone()),
            board: NoticeBoard::new(nprocs),
            store: DiffStore::with_pool(nprocs, page_size, Arc::clone(&page_pool)),
            cfg,
            barrier: BarrierCtl::new(nprocs),
            locks: LockMgr::default(),
            alloc_next: Mutex::new(0),
            slots: (0..nprocs)
                .map(|_| Mutex::new(Some(Box::new(ProcInner::new(nprocs)))))
                .collect(),
            page_pool,
        }
    }

    /// Reset all protocol, heap, and accounting state so the cluster is
    /// observably indistinguishable from a fresh [`Cluster::new`] with
    /// the same configuration — but with every page frame, twin, diff
    /// store, and barrier board allocation retained for reuse. Panics if
    /// called while a [`Cluster::run`] is in flight. The scenario label
    /// survives (callers re-stamp it per run anyway).
    pub fn recycle(&self) {
        let heap_pages = self.alloc_next.lock().div_ceil(self.cfg.page_size);
        self.net.reset();
        self.board.reset();
        self.store.reset();
        self.barrier.reset();
        self.locks.reset();
        *self.alloc_next.lock() = 0;
        for slot in &self.slots {
            let mut guard = slot.lock();
            let inner = guard
                .as_mut()
                .expect("recycle() while a run() is in flight");
            inner.recycle(&mut |b| self.page_pool.give(b));
        }
        // Backstop: everything a run can hold live is bounded by frames
        // (nprocs × pages) + twins (nprocs × pages) + masters (pages);
        // trim anything beyond it so one paging-heavy job's high-water
        // mark is not pinned forever.
        let cap = heap_pages * (2 * self.cfg.nprocs + 1) + 64;
        self.page_pool.trim(cap);
    }

    /// A zeroed page-sized box, reusing a pooled frame when available.
    pub(crate) fn take_page_zeroed(&self) -> Box<[u8]> {
        self.page_pool.take_zeroed()
    }

    /// A page-sized box holding a copy of `src` (twin creation).
    pub(crate) fn take_page_copy(&self, src: &[u8]) -> Box<[u8]> {
        self.page_pool.take_copy(src)
    }

    /// Return a page-sized box to the pool (dropped if mis-sized).
    pub(crate) fn recycle_page(&self, b: Box<[u8]>) {
        self.page_pool.give(b);
    }

    /// Pooled free frames (diagnostics for reuse tests).
    pub fn pooled_pages(&self) -> usize {
        self.page_pool.len()
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    /// The consistency unit in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Allocate `n` elements of shared memory (the `Tmk_malloc` analogue).
    ///
    /// Regions are page-aligned, as TreadMarks programs align their large
    /// arrays; false sharing in the experiments comes from *partitions
    /// within* an array not landing on page boundaries (nbf 64×1000),
    /// not from unrelated arrays colliding.
    pub fn alloc<T: Pod>(&self, n: usize) -> SharedSlice<T> {
        let mut next = self.alloc_next.lock();
        let base = (*next).next_multiple_of(self.cfg.page_size);
        *next = base + n * T::SIZE;
        SharedSlice::new(base, n)
    }

    /// Total pages allocated so far.
    pub fn heap_pages(&self) -> usize {
        self.alloc_next.lock().div_ceil(self.cfg.page_size)
    }

    /// Run the SPMD body `f` on every simulated processor (one OS thread
    /// each). May be called repeatedly; processor protocol state persists
    /// across calls.
    ///
    /// The caller's thread allowance (see `vendor/rayon`) is divided
    /// evenly among the processor threads, mirroring
    /// `chaos::ChaosWorld::run`: intra-processor parallelism (the
    /// sharded `PageSet::finish` bitmap fill) only engages when the
    /// allowance exceeds the processor count, so a `serve` job never
    /// uses more OS threads than the tokens it holds.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(&mut TmkProc) + Sync,
    {
        let npages = self.heap_pages();
        let share = rayon::ThreadPoolBuilder::new()
            .num_threads((rayon::current_num_threads() / self.cfg.nprocs).max(1))
            .build()
            .expect("shim pools cannot fail to build");
        let share = &share;
        std::thread::scope(|s| {
            for rank in 0..self.cfg.nprocs {
                let f = &f;
                s.spawn(move || {
                    let mut inner = self.slots[rank]
                        .lock()
                        .take()
                        .expect("processor state in use — nested run()?");
                    inner.ensure_frames(npages);
                    let mut p = TmkProc {
                        cl: self,
                        me: rank,
                        nprocs: self.cfg.nprocs,
                        page_size: self.cfg.page_size,
                        inner,
                    };
                    share.install(|| f(&mut p));
                    // Batched fetches deferred near the body's end that
                    // nothing triggered are the quiesce win: the
                    // exchanges the eager policy would have wasted on an
                    // iteration that never executes. Record and drop
                    // them (billed to each plan's owning phase) so the
                    // report sees them and a later run() starts clean.
                    for plan in std::mem::take(&mut p.inner.deferred) {
                        self.net
                            .policy()
                            .record_quiesced(rank, plan.phase, plan.pages.len());
                        self.net.trace(
                            rank,
                            simnet::TraceEvent::PlanQuiesce {
                                phase: plan.phase,
                                pages: plan.pages.len() as u32,
                            },
                        );
                        p.inner.policy.note_quiesced(plan.phase, &plan.pages);
                    }
                    *self.slots[rank].lock() = Some(p.inner);
                });
            }
        });
    }

    /// The simulated parallel execution time so far.
    pub fn elapsed(&self) -> SimTime {
        self.net.clock_max()
    }

    /// Message/byte totals so far.
    pub fn report(&self) -> NetReport {
        self.net.report()
    }

    /// The simulated interconnect (clocks, counters, cost model).
    pub fn net(&self) -> &Net {
        &self.net
    }

    pub(crate) fn board(&self) -> &NoticeBoard {
        &self.board
    }

    pub(crate) fn store(&self) -> &DiffStore {
        &self.store
    }

    pub(crate) fn barrier_ctl(&self) -> &BarrierCtl {
        &self.barrier
    }

    pub(crate) fn lock_mgr(&self) -> &LockMgr {
        &self.locks
    }

    /// Barrier epochs completed (diagnostics).
    pub fn barrier_epoch(&self) -> u64 {
        self.barrier.epoch()
    }

    /// Retained (unfolded) diff records (memory-bound diagnostics).
    pub fn retained_records(&self) -> usize {
        self.store.retained_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let cl = Cluster::new(DsmConfig::with_nprocs(2));
        let a = cl.alloc::<f64>(100);
        let b = cl.alloc::<f64>(10);
        assert_eq!(a.base_byte() % 4096, 0);
        assert_eq!(b.base_byte() % 4096, 0);
        assert!(b.base_byte() >= a.base_byte() + 100 * 8);
        assert_eq!(cl.heap_pages(), 2);
    }

    #[test]
    fn single_proc_read_write() {
        let cl = Cluster::new(DsmConfig::with_nprocs(1));
        let s = cl.alloc::<f64>(16);
        cl.run(|p| {
            p.write(&s, 3, 1.5);
            assert_eq!(p.read(&s, 3), 1.5);
            assert_eq!(p.read(&s, 0), 0.0, "shared memory starts zeroed");
            p.barrier();
            assert_eq!(p.read(&s, 3), 1.5, "own writes survive the barrier");
        });
        assert_eq!(cl.report().messages, 0, "one processor never communicates");
    }

    #[test]
    fn producer_consumer_via_barrier() {
        let cl = Cluster::new(DsmConfig::with_nprocs(2));
        let s = cl.alloc::<f64>(8);
        cl.run(|p| {
            if p.rank() == 0 {
                p.write(&s, 0, 42.0);
            }
            p.barrier();
            assert_eq!(p.read(&s, 0), 42.0);
            p.barrier();
        });
        let rep = cl.report();
        // p1 demand-faults once: one diff request + one reply, plus
        // 2 barriers × 2(n-1) barrier messages.
        assert_eq!(rep.messages, 2 + 2 * 2);
        assert!(cl.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn state_persists_across_runs() {
        let cl = Cluster::new(DsmConfig::with_nprocs(2));
        let s = cl.alloc::<f64>(4);
        cl.run(|p| {
            if p.rank() == 0 {
                p.write(&s, 1, 7.0);
            }
            p.barrier();
        });
        cl.run(|p| {
            assert_eq!(p.read(&s, 1), 7.0);
        });
    }
}
