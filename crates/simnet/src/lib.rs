//! # simnet — simulated cluster substrate
//!
//! The paper evaluates on an 8-processor IBM SP2 connected by the SP2
//! high-performance switch. This crate replaces that hardware with an
//! in-process model that the DSM (`dsm`), the aggregated-prefetch runtime
//! (`sdsm-core`), and the CHAOS baseline (`chaos`) all share, so the
//! comparison between systems is apples-to-apples:
//!
//! * **Simulated processors** are OS threads. Each owns a monotone
//!   *logical clock* ([`Net::clock`]) measured in nanoseconds of simulated
//!   time.
//! * **Every protocol message** is accounted — count and payload bytes —
//!   per sending processor and per [`MsgKind`]. The paper's "Messages" and
//!   "Data" columns are read directly from these counters.
//! * **Time** is charged through a [`CostModel`] (LogGP-flavoured:
//!   per-message latency, per-byte cost, interrupt-handler cost) whose
//!   default constants are calibrated against the 1997 SP2 numbers quoted
//!   in the paper (see `cost.rs`).
//!
//! Nothing in this crate knows about pages, diffs, or schedules; it only
//! moves simulated time forward and counts traffic.

mod cost;
mod net;
mod stats;
mod time;
pub mod trace;

pub use cost::CostModel;
pub use net::{with_loss, CatScope, Net, ProcId};
pub use stats::{MsgKind, NetReport, PhasePolicyRow, PolicyReport, PolicyStats, Stats};
pub use time::SimTime;
pub use trace::{
    with_trace_sink, FetchKind, PolicyAct, SpanTag, StallCat, StallRow, TraceEvent, TraceSink,
};
