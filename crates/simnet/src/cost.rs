//! The cost model: how many microseconds of simulated time each primitive
//! operation takes.
//!
//! The defaults are calibrated so the *sequential* applications land near
//! the paper's numbers (moldyn 16 384 molecules / 40 steps ≈ 267 s when the
//! interaction list is rebuilt once; nbf 64×1024 / 10 steps ≈ 78 s) and the
//! communication-bound deltas have the right magnitude (per-message cost in
//! the 10²-µs range, bandwidth in the tens of MB/s — user-level UDP over
//! the SP2 switch as TreadMarks 1.0.1 used it).
//!
//! Absolute values are *modeled*, not measured; the reproduction targets
//! the shape of the comparison (see DESIGN.md §2, §5). All constants are
//! public so benches can run ablations over them.

use crate::SimTime;

/// Cost constants, in microseconds unless noted.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- network ----
    /// Fixed cost of putting one message on the wire (send + receive side
    /// software overhead + switch latency).
    pub msg_latency_us: f64,
    /// Per-byte transmission cost. 0.025 µs/B ≈ 40 MB/s.
    pub per_byte_us: f64,
    /// Cost charged to a processor for fielding a remote request
    /// (TreadMarks services requests in a SIGIO handler; this models the
    /// stolen cycles).
    pub handler_us: f64,

    // ---- virtual-memory protocol ----
    /// Taking a protection violation and entering the user-level handler.
    pub page_fault_us: f64,
    /// Making a twin (copy) of one page, per byte.
    pub twin_per_byte_us: f64,
    /// Comparing a page against its twin and run-length encoding the
    /// result, per byte scanned.
    pub diff_create_per_byte_us: f64,
    /// Applying a diff, per byte of diff payload.
    pub diff_apply_per_byte_us: f64,
    /// Fixed per-barrier manager overhead (on top of message costs).
    pub barrier_us: f64,

    // ---- run-time library work ----
    /// `Validate` scanning one indirection-array element and folding its
    /// target page into the page set (paper §5.1.1: 0.6 s for ~2 M entries
    /// over 40 iterations on 8 processors).
    pub index_scan_us: f64,
    /// CHAOS inspector: hashing one indirection entry for duplicate
    /// elimination (paper §4: "Because of the time to hash the indirection
    /// array ... the inspector can be expensive").
    pub hash_us: f64,
    /// CHAOS inspector: one translation-table lookup (local part).
    pub translate_us: f64,
    /// CHAOS executor: packing/unpacking one byte of gather/scatter data.
    pub pack_per_byte_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration notes (1997 SP2, TreadMarks over UDP/IP):
        // * TreadMarks' own SP2 studies put a page fetch at ~1.5 ms and a
        //   barrier at 1-2 ms — so user-level message latency ≈ 600 µs,
        //   not the raw switch latency.
        // * Effective DSM bandwidth ~20 MB/s → 0.05 µs/byte.
        // * CHAOS inspector: paper §5.1.1 reports 4.6 s per processor for
        //   two calls over ~272 k indirection entries per processor per
        //   call → ≈ 8 µs per hashed entry; §5.2.1's nbf numbers agree
        //   (5.2 s for ~820 k entries).
        // * Validate's indirection scan: 0.6 s over 2×~272 k entries per
        //   processor (moldyn, §5.1.1) → ≈ 0.3 µs/entry; nbf's 0.3 s for
        //   819 k entries → ≈ 0.35 µs/entry. We use 0.3.
        CostModel {
            msg_latency_us: 600.0,
            per_byte_us: 0.05,
            handler_us: 150.0,
            page_fault_us: 100.0,
            twin_per_byte_us: 0.010,
            diff_create_per_byte_us: 0.015,
            diff_apply_per_byte_us: 0.010,
            barrier_us: 100.0,
            index_scan_us: 0.3,
            hash_us: 8.0,
            translate_us: 0.35,
            pack_per_byte_us: 0.004,
        }
    }
}

impl CostModel {
    /// Time for one one-way message of `bytes` payload.
    #[inline]
    pub fn wire(&self, bytes: usize) -> SimTime {
        SimTime::from_us(self.msg_latency_us + self.per_byte_us * bytes as f64)
    }

    /// Requester-side cost of a round trip: request out, remote handler
    /// runs, reply back. Payload costs for both directions.
    #[inline]
    pub fn round_trip(&self, req_bytes: usize, resp_bytes: usize) -> SimTime {
        SimTime::from_us(
            2.0 * self.msg_latency_us
                + self.per_byte_us * (req_bytes + resp_bytes) as f64
                + self.handler_us,
        )
    }

    #[inline]
    pub fn handler(&self) -> SimTime {
        SimTime::from_us(self.handler_us)
    }

    #[inline]
    pub fn page_fault(&self) -> SimTime {
        SimTime::from_us(self.page_fault_us)
    }

    #[inline]
    pub fn twin(&self, page_size: usize) -> SimTime {
        SimTime::from_us(self.twin_per_byte_us * page_size as f64)
    }

    #[inline]
    pub fn diff_create(&self, page_size: usize) -> SimTime {
        SimTime::from_us(self.diff_create_per_byte_us * page_size as f64)
    }

    #[inline]
    pub fn diff_apply(&self, payload: usize) -> SimTime {
        SimTime::from_us(self.diff_apply_per_byte_us * payload as f64)
    }

    #[inline]
    pub fn index_scan(&self, entries: usize) -> SimTime {
        SimTime::from_us(self.index_scan_us * entries as f64)
    }

    #[inline]
    pub fn inspector_hash(&self, entries: usize) -> SimTime {
        SimTime::from_us(self.hash_us * entries as f64)
    }

    #[inline]
    pub fn translate(&self, lookups: usize) -> SimTime {
        SimTime::from_us(self.translate_us * lookups as f64)
    }

    #[inline]
    pub fn pack(&self, bytes: usize) -> SimTime {
        SimTime::from_us(self.pack_per_byte_us * bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let m = CostModel::default();
        // A round trip must cost more than two one-way messages' latency.
        assert!(m.round_trip(0, 0) > SimTime::from_us(2.0 * m.msg_latency_us));
        // Bandwidth term: 4 KB at 0.025 µs/B = 102.4 µs.
        let page = m.wire(4096) - m.wire(0);
        assert_eq!(page, SimTime::from_us(4096.0 * m.per_byte_us));
    }

    #[test]
    fn hash_dominates_index_scan() {
        // The paper's core asymmetry: the CHAOS inspector is an order of
        // magnitude more expensive per entry than Validate's page-set scan.
        let m = CostModel::default();
        assert!(m.hash_us + m.translate_us > 8.0 * m.index_scan_us);
    }

    #[test]
    fn costs_scale_linearly() {
        let m = CostModel::default();
        assert_eq!(m.index_scan(10).as_ns(), 10 * m.index_scan(1).as_ns());
        assert_eq!(m.pack(1000).as_ns(), 10 * m.pack(100).as_ns());
    }
}
