//! The cluster: per-processor logical clocks plus traffic accounting.
//!
//! Clock discipline (DESIGN.md §5):
//!
//! * A processor's own thread advances its clock with [`Net::advance`]
//!   (modeled compute) and the `charge_*` helpers (protocol actions).
//! * A *request/response* exchange charges the full round trip to the
//!   requester and an interrupt-handler cost to the server (TreadMarks
//!   services requests in a SIGIO handler, stealing cycles from whatever
//!   the server was computing).
//! * One-way pushes (CHAOS gather/scatter) produce an *arrival time* the
//!   receiver folds in with [`Net::await_until`].
//! * Barriers synchronize all clocks to the maximum (plus cost) — done by
//!   the caller (the DSM / CHAOS runtimes) using [`Net::clock_max`] and
//!   [`Net::set_all_clocks`] between two thread rendezvous.
//!
//! All clock updates are commutative atomics (`fetch_add` / `fetch_max`),
//! so simulated times are independent of OS thread interleaving.
//!
//! **Stall attribution** rides on the same discipline: every clock
//! mutation also bills the identical nanoseconds to one [`StallCat`]
//! bucket of the processor whose clock moved (the current scoped
//! category for own-thread advances and waits, [`StallCat::BarrierWait`]
//! for the barrier jump, [`StallCat::Handler`] for remote interrupt
//! service), so per-processor bucket sums equal the clocks *exactly* —
//! see [`crate::trace`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::stats::{PolicyReport, PolicyStats};
use crate::trace::{self, StallCat, StallRow, TraceEvent, TraceSink};
use crate::{CostModel, MsgKind, NetReport, SimTime, Stats};

/// A simulated processor's rank, `0..nprocs`.
pub type ProcId = usize;

/// The simulated cluster shared by every runtime in this workspace.
#[derive(Debug)]
pub struct Net {
    nprocs: usize,
    cost: CostModel,
    clocks: Vec<AtomicU64>,
    stats: Stats,
    policy: PolicyStats,
    /// Cumulative barrier write-notice payload bytes, counted once per
    /// barrier by the leader (not per fan-in/fan-out copy) — the
    /// metadata-scaling probe `table_synth` asserts on. The per-copy
    /// traffic stays in [`Stats`] under `MsgKind::Barrier`.
    notice_meta: AtomicU64,
    /// Scenario label stamped into every captured [`NetReport`] — set by
    /// scenario-matrix harnesses (`table_synth`) so a report identifies
    /// the workload it measured.
    label: Mutex<Option<String>>,
    /// Per-processor stall-attribution buckets, flat
    /// `[proc][StallCat]`. Every clock mutation adds its exact delta to
    /// one bucket, so `Σ tallies[p] == clocks[p]` at all times.
    tallies: Vec<AtomicU64>,
    /// Per-processor *virtual* clocks: the real clock minus remote
    /// [`StallCat::Handler`] charges. Deterministic for
    /// barrier-structured programs — the timestamp source for traces.
    vtimes: Vec<AtomicU64>,
    /// Per-processor current stall category (`StallCat as u8`), scoped
    /// by the owning thread via [`Net::scope`].
    cats: Vec<AtomicU8>,
    /// Event sink, adopted at construction from
    /// [`crate::with_trace_sink`] (or set via [`Net::set_trace_sink`]).
    sink: Option<Arc<dyn TraceSink>>,
    /// `sink.is_some()`, cached so the disabled [`Net::trace`] path is
    /// a single predictable branch.
    trace_on: bool,
    /// Opt-in lossy-link model: drop probability in per-mille (0 = the
    /// model is off and every traffic helper takes its loss-free path
    /// untouched). Set via [`Net::set_loss`] or adopted at construction
    /// from [`with_loss`].
    loss_pm: AtomicU32,
    /// Seed of the deterministic drop stream.
    loss_seed: AtomicU64,
    /// Per-processor draw counters: a drop decision is a pure function
    /// of (seed, calling proc, that proc's draw index), never of
    /// arrival order, so lossy runs are deterministic across thread
    /// schedules just like loss-free ones.
    loss_ctr: Vec<AtomicU64>,
    /// Collective re-inspection passes (CHAOS re-paying its inspector
    /// after a partition rebalance invalidated the amortized schedule).
    /// Counted once per collective by the rank-0 caller.
    reinspections: AtomicU64,
}

thread_local! {
    /// The loss setting the next [`Net::new`] on this thread adopts —
    /// set by [`with_loss`] so harnesses can make a run lossy without
    /// plumbing the knob through every workload constructor.
    static PENDING_LOSS: Cell<Option<(u64, u32)>> = const { Cell::new(None) };
}

/// Run `f` with `(seed, per_mille)` as the pending loss model: every
/// cluster *constructed on this thread* inside `f` starts with that
/// lossy-link setting (mirror of [`crate::with_trace_sink`]). The
/// previous pending setting is restored on exit, even on panic.
pub fn with_loss<R>(seed: u64, per_mille: u32, f: impl FnOnce() -> R) -> R {
    let prev = PENDING_LOSS.with(|c| c.replace(Some((seed, per_mille))));
    struct Restore(Option<(u64, u32)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            PENDING_LOSS.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// SplitMix64-style mixer for the drop stream (self-contained so the
/// loss model shares no state with the workload RNGs).
#[inline]
fn loss_mix(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Net {
    pub fn new(nprocs: usize, cost: CostModel) -> Self {
        assert!(nprocs >= 1, "need at least one processor");
        let sink = trace::pending_sink();
        let (loss_seed, loss_pm) = PENDING_LOSS.with(|c| c.get()).unwrap_or((0, 0));
        assert!(loss_pm <= 1000, "loss probability is per-mille (0..=1000)");
        Net {
            nprocs,
            cost,
            clocks: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            stats: Stats::new(nprocs),
            policy: PolicyStats::new(nprocs),
            notice_meta: AtomicU64::new(0),
            label: Mutex::new(None),
            tallies: (0..nprocs * StallCat::COUNT)
                .map(|_| AtomicU64::new(0))
                .collect(),
            vtimes: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            cats: (0..nprocs).map(|_| AtomicU8::new(0)).collect(),
            trace_on: sink.is_some(),
            sink,
            loss_pm: AtomicU32::new(loss_pm),
            loss_seed: AtomicU64::new(loss_seed),
            loss_ctr: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            reinspections: AtomicU64::new(0),
        }
    }

    /// Switch the lossy-link model on (`per_mille` in 1..=1000) or off
    /// (`per_mille == 0`). Drops are deterministic per `seed`: every
    /// message attempt draws from the calling processor's own stream,
    /// a dropped message is retried once (the retry always lands), and
    /// the retry is billed as a duplicate message + bytes on the
    /// original sender plus a timeout/resend wait under
    /// [`StallCat::Retry`] on the caller — so `check_conservation`
    /// still holds and delivered payloads are never perturbed.
    pub fn set_loss(&self, seed: u64, per_mille: u32) {
        assert!(per_mille <= 1000, "loss probability is per-mille (0..=1000)");
        self.loss_seed.store(seed, Ordering::Relaxed);
        self.loss_pm.store(per_mille, Ordering::Relaxed);
    }

    /// The current loss setting `(seed, per_mille)`; `per_mille == 0`
    /// means the model is off.
    pub fn loss(&self) -> (u64, u32) {
        (
            self.loss_seed.load(Ordering::Relaxed),
            self.loss_pm.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn loss_on(&self) -> bool {
        self.loss_pm.load(Ordering::Relaxed) != 0
    }

    /// Deterministic drop decision for the next message attempt made
    /// from processor `caller`'s thread. Only called when the model is
    /// on, so loss-free runs never touch the draw counters.
    #[inline]
    fn loss_dropped(&self, caller: ProcId) -> bool {
        let k = self.loss_ctr[caller].fetch_add(1, Ordering::Relaxed);
        let seed = self.loss_seed.load(Ordering::Relaxed);
        let pm = self.loss_pm.load(Ordering::Relaxed);
        loss_mix(seed ^ ((caller as u64 + 1) << 32), k) % 1000 < u64::from(pm)
    }

    /// Bill one dropped message of `bytes` payload: the original
    /// sender `from` re-sends it (duplicate message + bytes in
    /// [`Stats`]), and `caller` — the side whose thread is executing
    /// the exchange — waits out the timeout + retransmission, billed
    /// to [`StallCat::Retry`] on both the real and virtual clock.
    fn bill_retry(&self, caller: ProcId, from: ProcId, kind: MsgKind, bytes: usize) {
        self.stats.record(from, kind, bytes);
        let dt = SimTime::from_us(
            2.0 * self.cost.msg_latency_us + self.cost.per_byte_us * bytes as f64,
        );
        self.clocks[caller].fetch_add(dt.0, Ordering::Relaxed);
        self.vtimes[caller].fetch_add(dt.0, Ordering::Relaxed);
        self.bill(caller, StallCat::Retry, dt.0);
    }

    /// Count one collective re-inspection pass (called by rank 0 of
    /// the collective, once per stale-schedule event).
    #[inline]
    pub fn add_reinspection(&self) {
        self.reinspections.fetch_add(1, Ordering::Relaxed);
    }

    /// Collective re-inspection passes since the last reset.
    pub fn reinspections(&self) -> u64 {
        self.reinspections.load(Ordering::Relaxed)
    }

    /// Install (or clear) the event sink. Construction-time adoption
    /// via [`crate::with_trace_sink`] is the usual route; this exists
    /// for owners that build the `Net` before choosing a sink.
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.trace_on = sink.is_some();
        self.sink = sink;
    }

    /// Add `bytes` of barrier notice metadata (leader-side, once per
    /// barrier).
    #[inline]
    pub fn add_notice_meta(&self, bytes: u64) {
        self.notice_meta.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Cumulative barrier notice metadata bytes since the last reset.
    pub fn notice_meta_bytes(&self) -> u64 {
        self.notice_meta.load(Ordering::Relaxed)
    }

    /// Tag this cluster with a scenario label; subsequent
    /// [`Net::report`] captures carry it. Survives [`Net::reset`] (the
    /// scenario does not change when counters are zeroed).
    pub fn set_label(&self, label: &str) {
        *self.label.lock().unwrap() = Some(label.to_string());
    }

    /// The current scenario label, if any.
    pub fn label(&self) -> Option<String> {
        self.label.lock().unwrap().clone()
    }

    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Policy-decision counters (adaptive protocol engines).
    #[inline]
    pub fn policy(&self) -> &PolicyStats {
        &self.policy
    }

    // ---- clocks ----

    #[inline]
    pub fn clock(&self, p: ProcId) -> SimTime {
        SimTime(self.clocks[p].load(Ordering::Relaxed))
    }

    /// Bill `dt` nanoseconds to one of `p`'s stall buckets.
    #[inline]
    fn bill(&self, p: ProcId, cat: StallCat, dt: u64) {
        self.tallies[p * StallCat::COUNT + cat as usize].fetch_add(dt, Ordering::Relaxed);
    }

    /// Bill `dt` to `p`'s *current* scoped category.
    #[inline]
    fn bill_current(&self, p: ProcId, dt: u64) {
        let cat = StallCat::from_u8(self.cats[p].load(Ordering::Relaxed));
        self.bill(p, cat, dt);
    }

    /// Advance `p`'s clock by modeled compute time (own thread only —
    /// billed to the current scoped category and to the deterministic
    /// virtual clock).
    #[inline]
    pub fn advance(&self, p: ProcId, dt: SimTime) {
        self.clocks[p].fetch_add(dt.0, Ordering::Relaxed);
        self.vtimes[p].fetch_add(dt.0, Ordering::Relaxed);
        self.bill_current(p, dt.0);
    }

    /// Charge `p` remote interrupt-handler service *from another
    /// processor's thread* (the SIGIO cost of serving a request).
    /// Billed to [`StallCat::Handler`] and excluded from the virtual
    /// clock, which is what keeps trace timestamps deterministic.
    #[inline]
    pub fn advance_remote(&self, p: ProcId, dt: SimTime) {
        self.clocks[p].fetch_add(dt.0, Ordering::Relaxed);
        self.bill(p, StallCat::Handler, dt.0);
    }

    /// `p` blocks (logically) until at least `t` — e.g. a message arrival.
    /// The wait (if any) is billed to `p`'s current scoped category.
    #[inline]
    pub fn await_until(&self, p: ProcId, t: SimTime) {
        let prev = self.clocks[p].fetch_max(t.0, Ordering::Relaxed);
        if t.0 > prev {
            self.bill_current(p, t.0 - prev);
            // The virtual clock advances by exactly the same delta the
            // real clock did (not fetch_max: handler charges may already
            // have pushed the clock past `t` while vtime excludes them).
            self.vtimes[p].fetch_add(t.0 - prev, Ordering::Relaxed);
        }
    }

    /// Maximum clock over all processors (the parallel execution time).
    pub fn clock_max(&self) -> SimTime {
        SimTime(
            self.clocks
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        )
    }

    /// Set every clock to `t` (barrier departure). Monotone by `fetch_max`
    /// so a racing `advance` cannot move a clock backwards. Each
    /// processor's jump is billed to [`StallCat::BarrierWait`], and the
    /// virtual clocks re-synchronize here — the barrier departure time
    /// is deterministic, because every charge of the closing interval
    /// lands before the rendezvous that computes it.
    pub fn set_all_clocks(&self, t: SimTime) {
        for (p, c) in self.clocks.iter().enumerate() {
            let prev = c.fetch_max(t.0, Ordering::Relaxed);
            if t.0 > prev {
                self.bill(p, StallCat::BarrierWait, t.0 - prev);
            }
            self.vtimes[p].fetch_max(t.0, Ordering::Relaxed);
        }
    }

    pub fn reset(&self) {
        for c in &self.clocks {
            c.store(0, Ordering::Relaxed);
        }
        for t in &self.tallies {
            t.store(0, Ordering::Relaxed);
        }
        for v in &self.vtimes {
            v.store(0, Ordering::Relaxed);
        }
        for c in &self.cats {
            c.store(StallCat::Compute as u8, Ordering::Relaxed);
        }
        self.stats.reset();
        self.policy.reset();
        self.notice_meta.store(0, Ordering::Relaxed);
        // The loss *setting* survives (like the label: the scenario does
        // not change when counters are zeroed) but the draw streams
        // restart, so a timed region is deterministic on its own.
        for c in &self.loss_ctr {
            c.store(0, Ordering::Relaxed);
        }
        self.reinspections.store(0, Ordering::Relaxed);
    }

    // ---- stall attribution and tracing ----

    /// Enter stall category `cat` on processor `p` until the returned
    /// guard drops (categories nest; the guard restores the previous
    /// one). Call only from `p`'s own thread.
    #[inline]
    pub fn scope(&self, p: ProcId, cat: StallCat) -> CatScope<'_> {
        let prev = self.cats[p].swap(cat as u8, Ordering::Relaxed);
        CatScope { net: self, p, prev }
    }

    /// Processor `p`'s deterministic virtual time (clock minus remote
    /// handler charges) — the trace timestamp source.
    #[inline]
    pub fn vtime(&self, p: ProcId) -> SimTime {
        SimTime(self.vtimes[p].load(Ordering::Relaxed))
    }

    /// Snapshot every processor's stall-attribution row. Exact (each
    /// row sums to its clock) whenever the cluster is quiescent.
    pub fn stall_rows(&self) -> Vec<StallRow> {
        (0..self.nprocs)
            .map(|p| {
                let mut row = StallRow {
                    clock: self.clocks[p].load(Ordering::Relaxed),
                    ..Default::default()
                };
                for (i, c) in row.cats.iter_mut().enumerate() {
                    *c = self.tallies[p * StallCat::COUNT + i].load(Ordering::Relaxed);
                }
                row
            })
            .collect()
    }

    /// Is an event sink installed?
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace_on
    }

    /// Record `ev` on processor `p`'s lane, stamped with its virtual
    /// time. A single predictable branch when no sink is installed.
    #[inline]
    pub fn trace(&self, p: ProcId, ev: TraceEvent) {
        if self.trace_on {
            self.trace_slow(p, ev);
        }
    }

    #[cold]
    fn trace_slow(&self, p: ProcId, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(p, self.vtime(p), ev);
        }
    }

    // ---- traffic ----

    /// A request/response pair between `requester` and `server`.
    ///
    /// Charges the requester the round trip plus `server_work`, charges the
    /// server the interrupt-handler cost, and counts two messages. This is
    /// TreadMarks' demand-fetch shape: the paper (§5.2.1) attributes part
    /// of CHAOS's edge on nbf exactly to this two-message pattern.
    #[allow(clippy::too_many_arguments)]
    pub fn request_response(
        &self,
        requester: ProcId,
        server: ProcId,
        kind_req: MsgKind,
        req_bytes: usize,
        kind_resp: MsgKind,
        resp_bytes: usize,
        server_work: SimTime,
    ) {
        debug_assert_ne!(requester, server, "local access is not a message");
        self.stats.record(requester, kind_req, req_bytes);
        self.stats.record(server, kind_resp, resp_bytes);
        let rt = self.cost.round_trip(req_bytes, resp_bytes) + server_work;
        self.advance(requester, rt);
        self.advance_remote(server, self.cost.handler());
        if self.loss_on() {
            if self.loss_dropped(requester) {
                self.bill_retry(requester, requester, kind_req, req_bytes);
            }
            if self.loss_dropped(requester) {
                self.bill_retry(requester, server, kind_resp, resp_bytes);
            }
        }
        if self.trace_on {
            self.trace_slow(
                requester,
                TraceEvent::Msg {
                    kind: kind_req,
                    peer: server as u32,
                    bytes: req_bytes as u32,
                    out: true,
                },
            );
            self.trace_slow(
                requester,
                TraceEvent::Msg {
                    kind: kind_resp,
                    peer: server as u32,
                    bytes: resp_bytes as u32,
                    out: false,
                },
            );
        }
    }

    /// A one-way push from `from`; returns the arrival time at the
    /// destination. The receiver should fold this in via [`Net::await_until`]
    /// at its matching receive point. Charges the sender the injection
    /// overhead (half the latency) plus per-byte cost. No [`TraceEvent::Msg`]
    /// is emitted here — the destination is unknown at this layer; the
    /// runtimes that route pushes emit it at their send sites.
    pub fn push(&self, from: ProcId, kind: MsgKind, bytes: usize) -> SimTime {
        self.stats.record(from, kind, bytes);
        let inject = SimTime::from_us(
            0.5 * self.cost.msg_latency_us + self.cost.per_byte_us * bytes as f64,
        );
        self.advance(from, inject);
        if self.loss_on() && self.loss_dropped(from) {
            // The drop delays the sender's injection point, so the
            // arrival computed below already includes the resend.
            self.bill_retry(from, from, kind, bytes);
        }
        self.clock(from) + SimTime::from_us(0.5 * self.cost.msg_latency_us)
    }

    /// Count messages without clock effects (used where the caller has
    /// already charged an aggregate time, e.g. barrier traffic).
    #[inline]
    pub fn count_only(&self, from: ProcId, kind: MsgKind, n: u64, bytes: usize) {
        self.stats.record_n(from, kind, n, bytes);
    }

    /// One *parallel* fetch round: the requester sends requests to several
    /// servers at once and waits for all replies (TreadMarks issues its
    /// diff requests concurrently, and `Validate` aggregates one exchange
    /// per peer). The requester pays the latency/handler once, plus the
    /// per-byte cost of everything it sends and receives; each server pays
    /// one interrupt handler.
    ///
    /// `legs`: `(server, req_kind, req_bytes, resp_kind, resp_bytes)`.
    pub fn parallel_round(
        &self,
        requester: ProcId,
        legs: &[(ProcId, MsgKind, usize, MsgKind, usize)],
    ) {
        if legs.is_empty() {
            return;
        }
        let mut bytes = 0usize;
        for &(server, kreq, breq, kresp, bresp) in legs {
            debug_assert_ne!(requester, server);
            self.stats.record(requester, kreq, breq);
            self.stats.record(server, kresp, bresp);
            self.advance_remote(server, self.cost.handler());
            bytes += breq + bresp;
        }
        self.advance(
            requester,
            SimTime::from_us(
                2.0 * self.cost.msg_latency_us
                    + self.cost.handler_us
                    + self.cost.per_byte_us * bytes as f64,
            ),
        );
        if self.loss_on() {
            for &(server, kreq, breq, kresp, bresp) in legs {
                if self.loss_dropped(requester) {
                    self.bill_retry(requester, requester, kreq, breq);
                }
                if self.loss_dropped(requester) {
                    self.bill_retry(requester, server, kresp, bresp);
                }
            }
        }
        if self.trace_on {
            for &(server, kreq, breq, kresp, bresp) in legs {
                self.trace_slow(
                    requester,
                    TraceEvent::Msg {
                        kind: kreq,
                        peer: server as u32,
                        bytes: breq as u32,
                        out: true,
                    },
                );
                self.trace_slow(
                    requester,
                    TraceEvent::Msg {
                        kind: kresp,
                        peer: server as u32,
                        bytes: bresp as u32,
                        out: false,
                    },
                );
            }
        }
    }

    /// One *parallel* round of writer-initiated one-way pushes arriving
    /// at `to` — the update-push half of a predicted exchange. Each
    /// sending peer pays one interrupt handler (it assembled and
    /// injected the push); the receiver pays a single one-way latency
    /// plus handler plus the per-byte cost of everything it absorbs.
    /// Exactly half the messages of [`Net::parallel_round`]: the request
    /// leg does not exist.
    ///
    /// `legs`: `(sender, kind, bytes)`.
    pub fn push_round(&self, to: ProcId, legs: &[(ProcId, MsgKind, usize)]) {
        if legs.is_empty() {
            return;
        }
        let mut bytes = 0usize;
        for &(from, kind, b) in legs {
            debug_assert_ne!(from, to, "local data is not a message");
            self.stats.record(from, kind, b);
            self.advance_remote(from, self.cost.handler());
            bytes += b;
        }
        self.advance(
            to,
            SimTime::from_us(
                self.cost.msg_latency_us
                    + self.cost.handler_us
                    + self.cost.per_byte_us * bytes as f64,
            ),
        );
        if self.loss_on() {
            for &(from, kind, b) in legs {
                if self.loss_dropped(to) {
                    self.bill_retry(to, from, kind, b);
                }
            }
        }
        if self.trace_on {
            for &(from, kind, b) in legs {
                self.trace_slow(
                    to,
                    TraceEvent::Msg {
                        kind,
                        peer: from as u32,
                        bytes: b as u32,
                        out: false,
                    },
                );
            }
        }
    }

    /// Message/byte totals plus the per-processor stall-attribution
    /// rows (unlike [`NetReport::capture`], which has no clock access
    /// and leaves them empty).
    pub fn report(&self) -> NetReport {
        let mut rep = NetReport::capture(&self.stats);
        rep.label = self.label();
        rep.stalls = self.stall_rows();
        rep
    }

    pub fn policy_report(&self) -> PolicyReport {
        PolicyReport::capture(&self.policy)
    }
}

/// RAII guard of one processor's scoped stall category — restores the
/// previous category on drop (see [`Net::scope`]).
#[must_use = "dropping the scope immediately restores the previous category"]
#[derive(Debug)]
pub struct CatScope<'a> {
    net: &'a Net,
    p: ProcId,
    prev: u8,
}

impl Drop for CatScope<'_> {
    fn drop(&mut self) {
        self.net.cats[self.p].store(self.prev, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Net {
        Net::new(n, CostModel::default())
    }

    #[test]
    fn advance_and_max() {
        let n = net(3);
        n.advance(0, SimTime(100));
        n.advance(1, SimTime(250));
        assert_eq!(n.clock(0), SimTime(100));
        assert_eq!(n.clock_max(), SimTime(250));
        n.set_all_clocks(SimTime(300));
        assert_eq!(n.clock(0), SimTime(300));
        assert_eq!(n.clock(2), SimTime(300));
    }

    #[test]
    fn set_all_clocks_is_monotone() {
        let n = net(2);
        n.advance(0, SimTime(500));
        n.set_all_clocks(SimTime(100));
        // Cannot move proc 0 backwards.
        assert_eq!(n.clock(0), SimTime(500));
        assert_eq!(n.clock(1), SimTime(100));
    }

    #[test]
    fn request_response_charges_both_sides() {
        let n = net(2);
        n.request_response(
            0,
            1,
            MsgKind::DiffRequest,
            16,
            MsgKind::DiffReply,
            4096,
            SimTime::ZERO,
        );
        assert_eq!(n.stats().total_messages(), 2);
        assert_eq!(n.stats().total_bytes(), 16 + 4096);
        assert_eq!(n.clock(0), n.cost().round_trip(16, 4096));
        assert_eq!(n.clock(1), n.cost().handler());
    }

    #[test]
    fn push_and_await() {
        let n = net(2);
        let arrival = n.push(0, MsgKind::Gather, 1000);
        assert!(arrival > n.clock(0));
        n.await_until(1, arrival);
        assert_eq!(n.clock(1), arrival);
        assert_eq!(n.stats().messages_of(MsgKind::Gather), 1);
    }

    #[test]
    fn await_until_never_rewinds() {
        let n = net(1);
        n.advance(0, SimTime(1000));
        n.await_until(0, SimTime(10));
        assert_eq!(n.clock(0), SimTime(1000));
    }

    #[test]
    fn scenario_label_stamps_reports_and_survives_reset() {
        let n = net(1);
        assert_eq!(n.report().label, None);
        n.set_label("uniform/static/p4");
        n.reset();
        assert_eq!(n.report().label.as_deref(), Some("uniform/static/p4"));
        assert_eq!(n.label().as_deref(), Some("uniform/static/p4"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let n = net(2);
        n.advance(0, SimTime(5));
        n.count_only(1, MsgKind::Other, 4, 40);
        n.reset();
        assert_eq!(n.clock_max(), SimTime::ZERO);
        assert_eq!(n.stats().total_messages(), 0);
        for row in n.reset_probe_rows() {
            assert_eq!(row.total(), 0);
            assert_eq!(row.clock, 0);
        }
    }

    impl Net {
        fn reset_probe_rows(&self) -> Vec<StallRow> {
            self.stall_rows()
        }

        /// Test helper: assert every processor's stall buckets sum to
        /// its clock exactly.
        pub(super) fn assert_conserved(&self) {
            for (p, row) in self.stall_rows().iter().enumerate() {
                assert_eq!(
                    row.total(),
                    row.clock,
                    "proc {p}: stall buckets sum to {} but clock is {}",
                    row.total(),
                    row.clock
                );
            }
        }
    }

    #[test]
    fn every_clock_mutation_is_attributed() {
        let n = net(3);
        n.advance(0, SimTime(100)); // Compute (default scope)
        {
            let _g = n.scope(0, StallCat::FaultStall);
            n.advance(0, SimTime(40));
            n.await_until(0, SimTime(200)); // 60 ns wait inside the scope
        }
        n.advance(0, SimTime(10)); // back to Compute
        n.advance_remote(1, SimTime(7)); // Handler, cross-thread
        n.set_all_clocks(SimTime(300)); // BarrierWait fills the gaps
        n.assert_conserved();
        let rows = n.stall_rows();
        assert_eq!(rows[0].get(StallCat::Compute), 110);
        assert_eq!(rows[0].get(StallCat::FaultStall), 100);
        assert_eq!(rows[0].get(StallCat::BarrierWait), 300 - 210);
        assert_eq!(rows[1].get(StallCat::Handler), 7);
        assert_eq!(rows[1].get(StallCat::BarrierWait), 293);
        assert_eq!(rows[2].get(StallCat::BarrierWait), 300);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let n = net(1);
        let outer = n.scope(0, StallCat::BarrierWait);
        {
            let _inner = n.scope(0, StallCat::PrefetchPush);
            n.advance(0, SimTime(5));
        }
        n.advance(0, SimTime(3));
        drop(outer);
        n.advance(0, SimTime(2));
        let row = &n.stall_rows()[0];
        assert_eq!(row.get(StallCat::PrefetchPush), 5);
        assert_eq!(row.get(StallCat::BarrierWait), 3);
        assert_eq!(row.get(StallCat::Compute), 2);
        n.assert_conserved();
    }

    #[test]
    fn traffic_helpers_conserve_and_split_handler_from_vtime() {
        let n = net(4);
        n.request_response(0, 1, MsgKind::DiffRequest, 16, MsgKind::DiffReply, 4096, SimTime::ZERO);
        n.parallel_round(
            2,
            &[
                (1, MsgKind::AggRequest, 8, MsgKind::AggReply, 64),
                (3, MsgKind::AggRequest, 8, MsgKind::AggReply, 64),
            ],
        );
        n.push_round(3, &[(0, MsgKind::AdaptPush, 128)]);
        let arrival = n.push(0, MsgKind::Gather, 256);
        n.await_until(1, arrival);
        n.assert_conserved();
        // The served side's handler charges are excluded from vtime...
        assert_eq!(
            n.vtime(1).as_ns() + n.stall_rows()[1].get(StallCat::Handler),
            n.clock(1).as_ns()
        );
        // ...and a barrier re-synchronizes vtime with the clock.
        n.set_all_clocks(n.clock_max());
        for p in 0..4 {
            assert_eq!(n.vtime(p), n.clock(p), "proc {p} resynced");
        }
        n.assert_conserved();
    }

    #[test]
    fn trace_events_reach_an_installed_sink_with_vtime_stamps() {
        use crate::trace::{with_trace_sink, TraceSink};
        use std::sync::Mutex as StdMutex;

        #[derive(Debug, Default)]
        struct Rec(StdMutex<Vec<(ProcId, u64, TraceEvent)>>);
        impl TraceSink for Rec {
            fn record(&self, p: ProcId, t: SimTime, ev: TraceEvent) {
                self.0.lock().unwrap().push((p, t.as_ns(), ev));
            }
        }

        let sink = Arc::new(Rec::default());
        let n = with_trace_sink(sink.clone(), || net(2));
        assert!(n.tracing());
        n.advance(0, SimTime(50));
        n.trace(0, TraceEvent::FaultBegin { page: 3, write: true });
        n.request_response(0, 1, MsgKind::DiffRequest, 16, MsgKind::DiffReply, 512, SimTime::ZERO);
        let got = sink.0.lock().unwrap();
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1, 50, "stamped with the virtual clock");
        assert_eq!(got[0].2, TraceEvent::FaultBegin { page: 3, write: true });
        // The request/response emitted both legs on the requester lane.
        assert_eq!(got.len(), 3);
        assert!(matches!(got[1].2, TraceEvent::Msg { out: true, peer: 1, .. }));
        assert!(matches!(got[2].2, TraceEvent::Msg { out: false, peer: 1, .. }));
    }

    #[test]
    fn untraced_net_ignores_trace_calls() {
        let n = net(1);
        assert!(!n.tracing());
        n.trace(0, TraceEvent::FaultEnd { page: 1 }); // must be a no-op
        assert_eq!(n.clock(0), SimTime::ZERO);
    }
}

#[cfg(test)]
mod parallel_round_tests {
    use super::*;

    #[test]
    fn parallel_round_charges_latency_once() {
        let n = Net::new(4, CostModel::default());
        // Three legs with zero payload: requester pays ONE round trip's
        // latency+handler, not three.
        n.parallel_round(
            0,
            &[
                (1, MsgKind::AggRequest, 0, MsgKind::AggReply, 0),
                (2, MsgKind::AggRequest, 0, MsgKind::AggReply, 0),
                (3, MsgKind::AggRequest, 0, MsgKind::AggReply, 0),
            ],
        );
        assert_eq!(n.clock(0), n.cost().round_trip(0, 0));
        // Each server paid one handler.
        for q in 1..4 {
            assert_eq!(n.clock(q), n.cost().handler());
        }
        assert_eq!(n.stats().total_messages(), 6);
    }

    #[test]
    fn parallel_round_bytes_serialize_at_requester() {
        let n = Net::new(3, CostModel::default());
        n.parallel_round(
            0,
            &[
                (1, MsgKind::AggRequest, 100, MsgKind::AggReply, 4096),
                (2, MsgKind::AggRequest, 100, MsgKind::AggReply, 4096),
            ],
        );
        let bytes = 2 * (100 + 4096);
        let want = SimTime::from_us(
            2.0 * n.cost().msg_latency_us
                + n.cost().handler_us
                + n.cost().per_byte_us * bytes as f64,
        );
        assert_eq!(n.clock(0), want);
        assert_eq!(n.stats().total_bytes(), bytes as u64);
    }

    #[test]
    fn empty_round_is_free() {
        let n = Net::new(2, CostModel::default());
        n.parallel_round(0, &[]);
        assert_eq!(n.clock_max(), SimTime::ZERO);
        assert_eq!(n.stats().total_messages(), 0);
    }

    #[test]
    fn lossy_push_round_still_counts_fewer_messages_than_lossy_pull() {
        // Half the droppable messages means push cannot degrade past
        // request/reply under the same loss stream shape.
        let pull = Net::new(3, CostModel::default());
        pull.set_loss(7, 500);
        let push = Net::new(3, CostModel::default());
        push.set_loss(7, 500);
        for _ in 0..50 {
            pull.parallel_round(
                0,
                &[
                    (1, MsgKind::AdaptRequest, 24, MsgKind::AdaptReply, 4096),
                    (2, MsgKind::AdaptRequest, 24, MsgKind::AdaptReply, 4096),
                ],
            );
            push.push_round(
                0,
                &[(1, MsgKind::AdaptPush, 4096), (2, MsgKind::AdaptPush, 4096)],
            );
        }
        assert!(pull.stats().total_messages() > 200, "pull retries happened");
        assert!(push.stats().total_messages() > 100, "push retries happened");
        assert!(push.stats().total_messages() < pull.stats().total_messages());
        pull.assert_conserved();
        push.assert_conserved();
    }

    #[test]
    fn push_round_counts_half_the_messages_of_a_parallel_round() {
        let pull = Net::new(3, CostModel::default());
        pull.parallel_round(
            0,
            &[
                (1, MsgKind::AdaptRequest, 24, MsgKind::AdaptReply, 4096),
                (2, MsgKind::AdaptRequest, 24, MsgKind::AdaptReply, 4096),
            ],
        );
        let push = Net::new(3, CostModel::default());
        push.push_round(
            0,
            &[
                (1, MsgKind::AdaptPush, 4096),
                (2, MsgKind::AdaptPush, 4096),
            ],
        );
        assert_eq!(pull.stats().total_messages(), 4);
        assert_eq!(push.stats().total_messages(), 2);
        // The data leg is identical; only the request bytes disappear.
        assert_eq!(push.stats().bytes_of(MsgKind::AdaptPush), 2 * 4096);
        // Messages are attributed to the *writers* (they initiate).
        assert_eq!(push.stats().messages_of(MsgKind::AdaptPush), 2);
        // One-way: the receiver's latency is below the pull round trip.
        assert!(push.clock(0) < pull.clock(0));
        // Empty rounds stay free.
        push.push_round(0, &[]);
        assert_eq!(push.stats().total_messages(), 2);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;

    /// A fixed traffic pattern exercising every droppable primitive.
    fn drive(n: &Net) {
        let np = n.nprocs();
        for _ in 0..4 {
            for p in 0..np {
                let q = (p + 1) % np;
                n.request_response(
                    p,
                    q,
                    MsgKind::DiffRequest,
                    16,
                    MsgKind::DiffReply,
                    4096,
                    SimTime::ZERO,
                );
            }
            n.parallel_round(
                0,
                &[(1, MsgKind::AggRequest, 8, MsgKind::AggReply, 512)],
            );
            n.push_round(1, &[(0, MsgKind::AdaptPush, 256)]);
            let arrival = n.push(0, MsgKind::Gather, 128);
            n.await_until(1, arrival);
            n.set_all_clocks(n.clock_max());
        }
    }

    fn fingerprint(n: &Net) -> (u64, u64, Vec<StallRow>) {
        (
            n.stats().total_messages(),
            n.stats().total_bytes(),
            n.stall_rows(),
        )
    }

    #[test]
    fn retry_billing_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let n = Net::new(4, CostModel::default());
            n.set_loss(seed, 250);
            drive(&n);
            fingerprint(&n)
        };
        assert_eq!(run(42), run(42), "same seed, same bills");
        assert_ne!(run(42), run(43), "the seed actually steers the drops");
    }

    #[test]
    fn retry_conservation_holds_across_cluster_sizes() {
        for np in [4usize, 8, 64] {
            let n = Net::new(np, CostModel::default());
            n.set_loss(9, 300);
            drive(&n);
            n.assert_conserved();
            let retry: u64 = n
                .stall_rows()
                .iter()
                .map(|r| r.get(StallCat::Retry))
                .sum();
            assert!(retry > 0, "p{np}: no retries billed at 30% loss");
        }
    }

    #[test]
    fn zero_loss_is_byte_identical_to_the_no_loss_path() {
        let bare = Net::new(4, CostModel::default());
        drive(&bare);
        let zeroed = Net::new(4, CostModel::default());
        zeroed.set_loss(12345, 0);
        drive(&zeroed);
        assert_eq!(fingerprint(&bare), fingerprint(&zeroed));
        for p in 0..4 {
            assert_eq!(bare.clock(p), zeroed.clock(p));
            assert_eq!(bare.vtime(p), zeroed.vtime(p));
        }
        assert_eq!(
            bare.stall_rows()
                .iter()
                .map(|r| r.get(StallCat::Retry))
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn with_loss_scopes_the_pending_setting() {
        let n = with_loss(77, 125, || Net::new(2, CostModel::default()));
        assert_eq!(n.loss(), (77, 125));
        let bare = Net::new(2, CostModel::default());
        assert_eq!(bare.loss(), (0, 0), "restored outside the scope");
    }

    #[test]
    fn reset_restarts_the_drop_stream_but_keeps_the_setting() {
        let n = Net::new(2, CostModel::default());
        n.set_loss(5, 400);
        drive(&n);
        let first = fingerprint(&n);
        n.reset();
        assert_eq!(n.loss(), (5, 400));
        assert_eq!(n.reinspections(), 0);
        drive(&n);
        assert_eq!(fingerprint(&n), first, "replay after reset is identical");
    }

    #[test]
    fn reinspection_counter_counts_and_resets() {
        let n = Net::new(2, CostModel::default());
        n.add_reinspection();
        n.add_reinspection();
        assert_eq!(n.reinspections(), 2);
        n.reset();
        assert_eq!(n.reinspections(), 0);
    }
}
