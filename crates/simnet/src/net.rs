//! The cluster: per-processor logical clocks plus traffic accounting.
//!
//! Clock discipline (DESIGN.md §5):
//!
//! * A processor's own thread advances its clock with [`Net::advance`]
//!   (modeled compute) and the `charge_*` helpers (protocol actions).
//! * A *request/response* exchange charges the full round trip to the
//!   requester and an interrupt-handler cost to the server (TreadMarks
//!   services requests in a SIGIO handler, stealing cycles from whatever
//!   the server was computing).
//! * One-way pushes (CHAOS gather/scatter) produce an *arrival time* the
//!   receiver folds in with [`Net::await_until`].
//! * Barriers synchronize all clocks to the maximum (plus cost) — done by
//!   the caller (the DSM / CHAOS runtimes) using [`Net::clock_max`] and
//!   [`Net::set_all_clocks`] between two thread rendezvous.
//!
//! All clock updates are commutative atomics (`fetch_add` / `fetch_max`),
//! so simulated times are independent of OS thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::stats::{PolicyReport, PolicyStats};
use crate::{CostModel, MsgKind, NetReport, SimTime, Stats};

/// A simulated processor's rank, `0..nprocs`.
pub type ProcId = usize;

/// The simulated cluster shared by every runtime in this workspace.
#[derive(Debug)]
pub struct Net {
    nprocs: usize,
    cost: CostModel,
    clocks: Vec<AtomicU64>,
    stats: Stats,
    policy: PolicyStats,
    /// Cumulative barrier write-notice payload bytes, counted once per
    /// barrier by the leader (not per fan-in/fan-out copy) — the
    /// metadata-scaling probe `table_synth` asserts on. The per-copy
    /// traffic stays in [`Stats`] under `MsgKind::Barrier`.
    notice_meta: AtomicU64,
    /// Scenario label stamped into every captured [`NetReport`] — set by
    /// scenario-matrix harnesses (`table_synth`) so a report identifies
    /// the workload it measured.
    label: Mutex<Option<String>>,
}

impl Net {
    pub fn new(nprocs: usize, cost: CostModel) -> Self {
        assert!(nprocs >= 1, "need at least one processor");
        Net {
            nprocs,
            cost,
            clocks: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            stats: Stats::new(nprocs),
            policy: PolicyStats::new(nprocs),
            notice_meta: AtomicU64::new(0),
            label: Mutex::new(None),
        }
    }

    /// Add `bytes` of barrier notice metadata (leader-side, once per
    /// barrier).
    #[inline]
    pub fn add_notice_meta(&self, bytes: u64) {
        self.notice_meta.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Cumulative barrier notice metadata bytes since the last reset.
    pub fn notice_meta_bytes(&self) -> u64 {
        self.notice_meta.load(Ordering::Relaxed)
    }

    /// Tag this cluster with a scenario label; subsequent
    /// [`Net::report`] captures carry it. Survives [`Net::reset`] (the
    /// scenario does not change when counters are zeroed).
    pub fn set_label(&self, label: &str) {
        *self.label.lock().unwrap() = Some(label.to_string());
    }

    /// The current scenario label, if any.
    pub fn label(&self) -> Option<String> {
        self.label.lock().unwrap().clone()
    }

    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Policy-decision counters (adaptive protocol engines).
    #[inline]
    pub fn policy(&self) -> &PolicyStats {
        &self.policy
    }

    // ---- clocks ----

    #[inline]
    pub fn clock(&self, p: ProcId) -> SimTime {
        SimTime(self.clocks[p].load(Ordering::Relaxed))
    }

    /// Advance `p`'s clock by modeled compute time.
    #[inline]
    pub fn advance(&self, p: ProcId, dt: SimTime) {
        self.clocks[p].fetch_add(dt.0, Ordering::Relaxed);
    }

    /// `p` blocks (logically) until at least `t` — e.g. a message arrival.
    #[inline]
    pub fn await_until(&self, p: ProcId, t: SimTime) {
        self.clocks[p].fetch_max(t.0, Ordering::Relaxed);
    }

    /// Maximum clock over all processors (the parallel execution time).
    pub fn clock_max(&self) -> SimTime {
        SimTime(
            self.clocks
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        )
    }

    /// Set every clock to `t` (barrier departure). Monotone by `fetch_max`
    /// so a racing `advance` cannot move a clock backwards.
    pub fn set_all_clocks(&self, t: SimTime) {
        for c in &self.clocks {
            c.fetch_max(t.0, Ordering::Relaxed);
        }
    }

    pub fn reset(&self) {
        for c in &self.clocks {
            c.store(0, Ordering::Relaxed);
        }
        self.stats.reset();
        self.policy.reset();
        self.notice_meta.store(0, Ordering::Relaxed);
    }

    // ---- traffic ----

    /// A request/response pair between `requester` and `server`.
    ///
    /// Charges the requester the round trip plus `server_work`, charges the
    /// server the interrupt-handler cost, and counts two messages. This is
    /// TreadMarks' demand-fetch shape: the paper (§5.2.1) attributes part
    /// of CHAOS's edge on nbf exactly to this two-message pattern.
    #[allow(clippy::too_many_arguments)]
    pub fn request_response(
        &self,
        requester: ProcId,
        server: ProcId,
        kind_req: MsgKind,
        req_bytes: usize,
        kind_resp: MsgKind,
        resp_bytes: usize,
        server_work: SimTime,
    ) {
        debug_assert_ne!(requester, server, "local access is not a message");
        self.stats.record(requester, kind_req, req_bytes);
        self.stats.record(server, kind_resp, resp_bytes);
        let rt = self.cost.round_trip(req_bytes, resp_bytes) + server_work;
        self.advance(requester, rt);
        self.advance(server, self.cost.handler());
    }

    /// A one-way push from `from`; returns the arrival time at the
    /// destination. The receiver should fold this in via [`Net::await_until`]
    /// at its matching receive point. Charges the sender the injection
    /// overhead (half the latency) plus per-byte cost.
    pub fn push(&self, from: ProcId, kind: MsgKind, bytes: usize) -> SimTime {
        self.stats.record(from, kind, bytes);
        let inject = SimTime::from_us(
            0.5 * self.cost.msg_latency_us + self.cost.per_byte_us * bytes as f64,
        );
        self.advance(from, inject);
        self.clock(from) + SimTime::from_us(0.5 * self.cost.msg_latency_us)
    }

    /// Count messages without clock effects (used where the caller has
    /// already charged an aggregate time, e.g. barrier traffic).
    #[inline]
    pub fn count_only(&self, from: ProcId, kind: MsgKind, n: u64, bytes: usize) {
        self.stats.record_n(from, kind, n, bytes);
    }

    /// One *parallel* fetch round: the requester sends requests to several
    /// servers at once and waits for all replies (TreadMarks issues its
    /// diff requests concurrently, and `Validate` aggregates one exchange
    /// per peer). The requester pays the latency/handler once, plus the
    /// per-byte cost of everything it sends and receives; each server pays
    /// one interrupt handler.
    ///
    /// `legs`: `(server, req_kind, req_bytes, resp_kind, resp_bytes)`.
    pub fn parallel_round(
        &self,
        requester: ProcId,
        legs: &[(ProcId, MsgKind, usize, MsgKind, usize)],
    ) {
        if legs.is_empty() {
            return;
        }
        let mut bytes = 0usize;
        for &(server, kreq, breq, kresp, bresp) in legs {
            debug_assert_ne!(requester, server);
            self.stats.record(requester, kreq, breq);
            self.stats.record(server, kresp, bresp);
            self.advance(server, self.cost.handler());
            bytes += breq + bresp;
        }
        self.advance(
            requester,
            SimTime::from_us(
                2.0 * self.cost.msg_latency_us
                    + self.cost.handler_us
                    + self.cost.per_byte_us * bytes as f64,
            ),
        );
    }

    /// One *parallel* round of writer-initiated one-way pushes arriving
    /// at `to` — the update-push half of a predicted exchange. Each
    /// sending peer pays one interrupt handler (it assembled and
    /// injected the push); the receiver pays a single one-way latency
    /// plus handler plus the per-byte cost of everything it absorbs.
    /// Exactly half the messages of [`Net::parallel_round`]: the request
    /// leg does not exist.
    ///
    /// `legs`: `(sender, kind, bytes)`.
    pub fn push_round(&self, to: ProcId, legs: &[(ProcId, MsgKind, usize)]) {
        if legs.is_empty() {
            return;
        }
        let mut bytes = 0usize;
        for &(from, kind, b) in legs {
            debug_assert_ne!(from, to, "local data is not a message");
            self.stats.record(from, kind, b);
            self.advance(from, self.cost.handler());
            bytes += b;
        }
        self.advance(
            to,
            SimTime::from_us(
                self.cost.msg_latency_us
                    + self.cost.handler_us
                    + self.cost.per_byte_us * bytes as f64,
            ),
        );
    }

    pub fn report(&self) -> NetReport {
        let mut rep = NetReport::capture(&self.stats);
        rep.label = self.label();
        rep
    }

    pub fn policy_report(&self) -> PolicyReport {
        PolicyReport::capture(&self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Net {
        Net::new(n, CostModel::default())
    }

    #[test]
    fn advance_and_max() {
        let n = net(3);
        n.advance(0, SimTime(100));
        n.advance(1, SimTime(250));
        assert_eq!(n.clock(0), SimTime(100));
        assert_eq!(n.clock_max(), SimTime(250));
        n.set_all_clocks(SimTime(300));
        assert_eq!(n.clock(0), SimTime(300));
        assert_eq!(n.clock(2), SimTime(300));
    }

    #[test]
    fn set_all_clocks_is_monotone() {
        let n = net(2);
        n.advance(0, SimTime(500));
        n.set_all_clocks(SimTime(100));
        // Cannot move proc 0 backwards.
        assert_eq!(n.clock(0), SimTime(500));
        assert_eq!(n.clock(1), SimTime(100));
    }

    #[test]
    fn request_response_charges_both_sides() {
        let n = net(2);
        n.request_response(
            0,
            1,
            MsgKind::DiffRequest,
            16,
            MsgKind::DiffReply,
            4096,
            SimTime::ZERO,
        );
        assert_eq!(n.stats().total_messages(), 2);
        assert_eq!(n.stats().total_bytes(), 16 + 4096);
        assert_eq!(n.clock(0), n.cost().round_trip(16, 4096));
        assert_eq!(n.clock(1), n.cost().handler());
    }

    #[test]
    fn push_and_await() {
        let n = net(2);
        let arrival = n.push(0, MsgKind::Gather, 1000);
        assert!(arrival > n.clock(0));
        n.await_until(1, arrival);
        assert_eq!(n.clock(1), arrival);
        assert_eq!(n.stats().messages_of(MsgKind::Gather), 1);
    }

    #[test]
    fn await_until_never_rewinds() {
        let n = net(1);
        n.advance(0, SimTime(1000));
        n.await_until(0, SimTime(10));
        assert_eq!(n.clock(0), SimTime(1000));
    }

    #[test]
    fn scenario_label_stamps_reports_and_survives_reset() {
        let n = net(1);
        assert_eq!(n.report().label, None);
        n.set_label("uniform/static/p4");
        n.reset();
        assert_eq!(n.report().label.as_deref(), Some("uniform/static/p4"));
        assert_eq!(n.label().as_deref(), Some("uniform/static/p4"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let n = net(2);
        n.advance(0, SimTime(5));
        n.count_only(1, MsgKind::Other, 4, 40);
        n.reset();
        assert_eq!(n.clock_max(), SimTime::ZERO);
        assert_eq!(n.stats().total_messages(), 0);
    }
}

#[cfg(test)]
mod parallel_round_tests {
    use super::*;

    #[test]
    fn parallel_round_charges_latency_once() {
        let n = Net::new(4, CostModel::default());
        // Three legs with zero payload: requester pays ONE round trip's
        // latency+handler, not three.
        n.parallel_round(
            0,
            &[
                (1, MsgKind::AggRequest, 0, MsgKind::AggReply, 0),
                (2, MsgKind::AggRequest, 0, MsgKind::AggReply, 0),
                (3, MsgKind::AggRequest, 0, MsgKind::AggReply, 0),
            ],
        );
        assert_eq!(n.clock(0), n.cost().round_trip(0, 0));
        // Each server paid one handler.
        for q in 1..4 {
            assert_eq!(n.clock(q), n.cost().handler());
        }
        assert_eq!(n.stats().total_messages(), 6);
    }

    #[test]
    fn parallel_round_bytes_serialize_at_requester() {
        let n = Net::new(3, CostModel::default());
        n.parallel_round(
            0,
            &[
                (1, MsgKind::AggRequest, 100, MsgKind::AggReply, 4096),
                (2, MsgKind::AggRequest, 100, MsgKind::AggReply, 4096),
            ],
        );
        let bytes = 2 * (100 + 4096);
        let want = SimTime::from_us(
            2.0 * n.cost().msg_latency_us
                + n.cost().handler_us
                + n.cost().per_byte_us * bytes as f64,
        );
        assert_eq!(n.clock(0), want);
        assert_eq!(n.stats().total_bytes(), bytes as u64);
    }

    #[test]
    fn empty_round_is_free() {
        let n = Net::new(2, CostModel::default());
        n.parallel_round(0, &[]);
        assert_eq!(n.clock_max(), SimTime::ZERO);
        assert_eq!(n.stats().total_messages(), 0);
    }

    #[test]
    fn push_round_counts_half_the_messages_of_a_parallel_round() {
        let pull = Net::new(3, CostModel::default());
        pull.parallel_round(
            0,
            &[
                (1, MsgKind::AdaptRequest, 24, MsgKind::AdaptReply, 4096),
                (2, MsgKind::AdaptRequest, 24, MsgKind::AdaptReply, 4096),
            ],
        );
        let push = Net::new(3, CostModel::default());
        push.push_round(
            0,
            &[
                (1, MsgKind::AdaptPush, 4096),
                (2, MsgKind::AdaptPush, 4096),
            ],
        );
        assert_eq!(pull.stats().total_messages(), 4);
        assert_eq!(push.stats().total_messages(), 2);
        // The data leg is identical; only the request bytes disappear.
        assert_eq!(push.stats().bytes_of(MsgKind::AdaptPush), 2 * 4096);
        // Messages are attributed to the *writers* (they initiate).
        assert_eq!(push.stats().messages_of(MsgKind::AdaptPush), 2);
        // One-way: the receiver's latency is below the pull round trip.
        assert!(push.clock(0) < pull.clock(0));
        // Empty rounds stay free.
        push.push_round(0, &[]);
        assert_eq!(push.stats().total_messages(), 2);
    }
}
