//! Message and byte accounting.
//!
//! Counters are per (sending processor × message kind) so the table
//! harnesses can report both the paper's aggregate "Messages"/"Data"
//! columns and a per-protocol breakdown.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ProcId;

/// Category of a protocol message, for breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MsgKind {
    /// DSM: request for diffs of one page (base TreadMarks demand fetch).
    DiffRequest,
    /// DSM: reply carrying diffs / full pages.
    DiffReply,
    /// DSM: aggregated request for many pages at once (`Validate`).
    AggRequest,
    /// DSM: aggregated reply.
    AggReply,
    /// DSM: aggregated prefetch request issued by a runtime-adaptive
    /// protocol policy at a barrier (no compiler hints involved).
    AdaptRequest,
    /// DSM: adaptive-prefetch reply.
    AdaptReply,
    /// DSM: writer-initiated update push (adaptive update-push mode) —
    /// one one-way data message per writer/consumer pair, no request
    /// leg at all.
    AdaptPush,
    /// DSM: barrier arrival/departure traffic (write notices ride along).
    Barrier,
    /// DSM: lock acquire/forward/grant traffic.
    Lock,
    /// CHAOS: inspector translation-table traffic.
    Translate,
    /// CHAOS: inspector schedule exchange.
    Schedule,
    /// CHAOS: executor gather (owner → consumer data push).
    Gather,
    /// CHAOS: executor scatter (consumer → owner contributions).
    Scatter,
    /// Application-level broadcast/reduction outside the DSM (rare).
    Other,
}

impl MsgKind {
    pub const COUNT: usize = 14;

    pub const ALL: [MsgKind; MsgKind::COUNT] = [
        MsgKind::DiffRequest,
        MsgKind::DiffReply,
        MsgKind::AggRequest,
        MsgKind::AggReply,
        MsgKind::AdaptRequest,
        MsgKind::AdaptReply,
        MsgKind::AdaptPush,
        MsgKind::Barrier,
        MsgKind::Lock,
        MsgKind::Translate,
        MsgKind::Schedule,
        MsgKind::Gather,
        MsgKind::Scatter,
        MsgKind::Other,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            MsgKind::DiffRequest => "diff-req",
            MsgKind::DiffReply => "diff-rep",
            MsgKind::AggRequest => "agg-req",
            MsgKind::AggReply => "agg-rep",
            MsgKind::AdaptRequest => "adapt-req",
            MsgKind::AdaptReply => "adapt-rep",
            MsgKind::AdaptPush => "adapt-push",
            MsgKind::Barrier => "barrier",
            MsgKind::Lock => "lock",
            MsgKind::Translate => "translate",
            MsgKind::Schedule => "schedule",
            MsgKind::Gather => "gather",
            MsgKind::Scatter => "scatter",
            MsgKind::Other => "other",
        }
    }
}

/// Lock-free counters: `[proc][kind]` message counts and payload bytes.
#[derive(Debug)]
pub struct Stats {
    msgs: Vec<[AtomicU64; MsgKind::COUNT]>,
    bytes: Vec<[AtomicU64; MsgKind::COUNT]>,
}

impl Stats {
    pub fn new(nprocs: usize) -> Self {
        let make = || {
            (0..nprocs)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect::<Vec<_>>()
        };
        Stats {
            msgs: make(),
            bytes: make(),
        }
    }

    /// Record one message of `payload` bytes sent by `from`.
    #[inline]
    pub fn record(&self, from: ProcId, kind: MsgKind, payload: usize) {
        self.msgs[from][kind.index()].fetch_add(1, Ordering::Relaxed);
        self.bytes[from][kind.index()].fetch_add(payload as u64, Ordering::Relaxed);
    }

    /// Record `n` messages totalling `payload` bytes.
    #[inline]
    pub fn record_n(&self, from: ProcId, kind: MsgKind, n: u64, payload: usize) {
        self.msgs[from][kind.index()].fetch_add(n, Ordering::Relaxed);
        self.bytes[from][kind.index()].fetch_add(payload as u64, Ordering::Relaxed);
    }

    pub fn total_messages(&self) -> u64 {
        self.msgs
            .iter()
            .flat_map(|a| a.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes
            .iter()
            .flat_map(|a| a.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        self.msgs
            .iter()
            .map(|a| a[kind.index()].load(Ordering::Relaxed))
            .sum()
    }

    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes
            .iter()
            .map(|a| a[kind.index()].load(Ordering::Relaxed))
            .sum()
    }

    pub fn reset(&self) {
        for row in self.msgs.iter().chain(self.bytes.iter()) {
            for c in row {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Per-epoch policy-decision counters for runtime-adaptive protocol
/// engines: how often the engine chose batched prefetch over demand
/// paging, and how its per-page modes churned. Plain (static-policy)
/// runs never touch these, so they stay zero and cost nothing.
///
/// Counters are per processor, like [`Stats`], and lock-free.
#[derive(Debug)]
pub struct PolicyStats {
    epochs: Vec<AtomicU64>,
    prefetch_rounds: Vec<AtomicU64>,
    prefetch_pages: Vec<AtomicU64>,
    push_rounds: Vec<AtomicU64>,
    push_pages: Vec<AtomicU64>,
    deferred_plans: Vec<AtomicU64>,
    quiesced_plans: Vec<AtomicU64>,
    quiesced_pages: Vec<AtomicU64>,
    promotions: Vec<AtomicU64>,
    demotions: Vec<AtomicU64>,
    probes: Vec<AtomicU64>,
}

impl PolicyStats {
    pub fn new(nprocs: usize) -> Self {
        let make = || (0..nprocs).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        PolicyStats {
            epochs: make(),
            prefetch_rounds: make(),
            prefetch_pages: make(),
            push_rounds: make(),
            push_pages: make(),
            deferred_plans: make(),
            quiesced_plans: make(),
            quiesced_pages: make(),
            promotions: make(),
            demotions: make(),
            probes: make(),
        }
    }

    /// One barrier epoch observed by `p`'s policy.
    #[inline]
    pub fn record_epoch(&self, p: ProcId) {
        self.epochs[p].fetch_add(1, Ordering::Relaxed);
    }

    /// `p` issued one aggregated prefetch exchange covering `pages` pages.
    #[inline]
    pub fn record_prefetch(&self, p: ProcId, pages: usize) {
        self.prefetch_rounds[p].fetch_add(1, Ordering::Relaxed);
        self.prefetch_pages[p].fetch_add(pages as u64, Ordering::Relaxed);
    }

    /// `p` absorbed one round of writer-initiated update pushes covering
    /// `pages` pages (update-push mode: no request leg on the wire).
    #[inline]
    pub fn record_push(&self, p: ProcId, pages: usize) {
        self.push_rounds[p].fetch_add(1, Ordering::Relaxed);
        self.push_pages[p].fetch_add(pages as u64, Ordering::Relaxed);
    }

    /// `p`'s policy deferred its batched fetch to the epoch's first
    /// demand fault instead of issuing it eagerly at the barrier.
    #[inline]
    pub fn record_deferred(&self, p: ProcId) {
        self.deferred_plans[p].fetch_add(1, Ordering::Relaxed);
    }

    /// A deferred plan of `pages` pages at `p` was discarded untriggered
    /// — the epoch (typically the run's final barrier) never touched the
    /// predicted pages, so the whole exchange was saved.
    #[inline]
    pub fn record_quiesced(&self, p: ProcId, pages: usize) {
        self.quiesced_plans[p].fetch_add(1, Ordering::Relaxed);
        self.quiesced_pages[p].fetch_add(pages as u64, Ordering::Relaxed);
    }

    /// `n` pages switched from demand paging to batched prefetch at `p`.
    #[inline]
    pub fn record_promotions(&self, p: ProcId, n: u64) {
        self.promotions[p].fetch_add(n, Ordering::Relaxed);
    }

    /// `n` pages fell back from batched prefetch to demand paging at `p`.
    #[inline]
    pub fn record_demotions(&self, p: ProcId, n: u64) {
        self.demotions[p].fetch_add(n, Ordering::Relaxed);
    }

    /// `n` prefetch-mode pages were left to demand-fault this epoch to
    /// re-validate that they are still worth prefetching.
    #[inline]
    pub fn record_probes(&self, p: ProcId, n: u64) {
        self.probes[p].fetch_add(n, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        for row in [
            &self.epochs,
            &self.prefetch_rounds,
            &self.prefetch_pages,
            &self.push_rounds,
            &self.push_pages,
            &self.deferred_plans,
            &self.quiesced_plans,
            &self.quiesced_pages,
            &self.promotions,
            &self.demotions,
            &self.probes,
        ] {
            for c in row.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Frozen totals of [`PolicyStats`] (summed over processors).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyReport {
    /// Barrier epochs the policies observed (summed over processors).
    pub epochs: u64,
    /// Aggregated prefetch exchanges issued.
    pub prefetch_rounds: u64,
    /// Pages covered by those exchanges.
    pub prefetch_pages: u64,
    /// Writer-initiated update-push rounds absorbed (no request leg).
    pub push_rounds: u64,
    /// Pages covered by those push rounds.
    pub push_pages: u64,
    /// Batched fetches deferred to the epoch's first demand fault.
    pub deferred_plans: u64,
    /// Deferred plans discarded untriggered (the quiesce win: one whole
    /// exchange per peer saved, typically at the run's final barrier).
    pub quiesced_plans: u64,
    /// Pages covered by those quiesced plans.
    pub quiesced_pages: u64,
    /// Demand → prefetch mode switches.
    pub promotions: u64,
    /// Prefetch → demand mode switches.
    pub demotions: u64,
    /// Probe epochs (prefetch withheld to re-validate the pattern).
    pub probes: u64,
}

impl PolicyReport {
    pub fn capture(stats: &PolicyStats) -> Self {
        let sum = |v: &Vec<AtomicU64>| v.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        PolicyReport {
            epochs: sum(&stats.epochs),
            prefetch_rounds: sum(&stats.prefetch_rounds),
            prefetch_pages: sum(&stats.prefetch_pages),
            push_rounds: sum(&stats.push_rounds),
            push_pages: sum(&stats.push_pages),
            deferred_plans: sum(&stats.deferred_plans),
            quiesced_plans: sum(&stats.quiesced_plans),
            quiesced_pages: sum(&stats.quiesced_pages),
            promotions: sum(&stats.promotions),
            demotions: sum(&stats.demotions),
            probes: sum(&stats.probes),
        }
    }

    /// Did any adaptive decision actually happen?
    pub fn is_active(&self) -> bool {
        self.promotions > 0 || self.prefetch_rounds > 0 || self.push_rounds > 0
    }
}

/// A frozen snapshot of the counters, for reports and table rows.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    pub messages: u64,
    pub bytes: u64,
    pub per_kind: Vec<(MsgKind, u64, u64)>,
    /// Scenario label of the cluster the snapshot came from (set via
    /// `Net::set_label` by scenario-matrix harnesses), `None` elsewhere.
    pub label: Option<String>,
}

impl NetReport {
    pub fn capture(stats: &Stats) -> Self {
        NetReport {
            messages: stats.total_messages(),
            bytes: stats.total_bytes(),
            per_kind: MsgKind::ALL
                .iter()
                .map(|&k| (k, stats.messages_of(k), stats.bytes_of(k)))
                .filter(|&(_, m, b)| m > 0 || b > 0)
                .collect(),
            label: None,
        }
    }

    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1e6
    }

    pub fn messages_per_kind(&self, kind: MsgKind) -> u64 {
        self.per_kind
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .map_or(0, |&(_, m, _)| m)
    }

    pub fn bytes_per_kind(&self, kind: MsgKind) -> u64 {
        self.per_kind
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .map_or(0, |&(_, _, b)| b)
    }

    /// Difference between two snapshots (for per-phase accounting).
    pub fn delta(&self, earlier: &NetReport) -> NetReport {
        let mut per_kind = Vec::new();
        for &(k, m, b) in &self.per_kind {
            let (m0, b0) = earlier
                .per_kind
                .iter()
                .find(|&&(k0, _, _)| k0 == k)
                .map(|&(_, m0, b0)| (m0, b0))
                .unwrap_or((0, 0));
            if m > m0 || b > b0 {
                per_kind.push((k, m - m0, b - b0));
            }
        }
        NetReport {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            per_kind,
            label: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let s = Stats::new(2);
        s.record(0, MsgKind::DiffRequest, 16);
        s.record(1, MsgKind::DiffReply, 4096);
        s.record_n(0, MsgKind::Barrier, 3, 120);
        assert_eq!(s.total_messages(), 5);
        assert_eq!(s.total_bytes(), 16 + 4096 + 120);
        assert_eq!(s.messages_of(MsgKind::Barrier), 3);
        assert_eq!(s.bytes_of(MsgKind::DiffReply), 4096);
    }

    #[test]
    fn report_delta() {
        let s = Stats::new(1);
        s.record(0, MsgKind::Gather, 100);
        let before = NetReport::capture(&s);
        s.record(0, MsgKind::Gather, 50);
        s.record(0, MsgKind::Scatter, 10);
        let after = NetReport::capture(&s);
        let d = after.delta(&before);
        assert_eq!(d.messages, 2);
        assert_eq!(d.bytes, 60);
        assert_eq!(d.per_kind.len(), 2);
    }

    #[test]
    fn reset_clears() {
        let s = Stats::new(1);
        s.record(0, MsgKind::Other, 9);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn policy_counters_roundtrip() {
        let s = PolicyStats::new(2);
        s.record_epoch(0);
        s.record_epoch(1);
        s.record_prefetch(0, 12);
        s.record_prefetch(1, 3);
        s.record_push(0, 5);
        s.record_deferred(1);
        s.record_quiesced(1, 4);
        s.record_promotions(0, 4);
        s.record_demotions(1, 1);
        s.record_probes(0, 2);
        let r = PolicyReport::capture(&s);
        assert_eq!(r.epochs, 2);
        assert_eq!(r.prefetch_rounds, 2);
        assert_eq!(r.prefetch_pages, 15);
        assert_eq!(r.push_rounds, 1);
        assert_eq!(r.push_pages, 5);
        assert_eq!(r.deferred_plans, 1);
        assert_eq!(r.quiesced_plans, 1);
        assert_eq!(r.quiesced_pages, 4);
        assert_eq!(r.promotions, 4);
        assert_eq!(r.demotions, 1);
        assert_eq!(r.probes, 2);
        assert!(r.is_active());
        s.reset();
        let z = PolicyReport::capture(&s);
        assert_eq!(z, PolicyReport::default());
        assert!(!z.is_active());
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let mut seen = [false; MsgKind::COUNT];
        for k in MsgKind::ALL {
            assert!(!seen[k.index()], "duplicate index {}", k.index());
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
