//! Message and byte accounting.
//!
//! Counters are per (sending processor × message kind) so the table
//! harnesses can report both the paper's aggregate "Messages"/"Data"
//! columns and a per-protocol breakdown.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::ProcId;

/// Category of a protocol message, for breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MsgKind {
    /// DSM: request for diffs of one page (base TreadMarks demand fetch).
    DiffRequest,
    /// DSM: reply carrying diffs / full pages.
    DiffReply,
    /// DSM: aggregated request for many pages at once (`Validate`).
    AggRequest,
    /// DSM: aggregated reply.
    AggReply,
    /// DSM: aggregated prefetch request issued by a runtime-adaptive
    /// protocol policy at a barrier (no compiler hints involved).
    AdaptRequest,
    /// DSM: adaptive-prefetch reply.
    AdaptReply,
    /// DSM: writer-initiated update push (adaptive update-push mode) —
    /// one one-way data message per writer/consumer pair, no request
    /// leg at all.
    AdaptPush,
    /// DSM: one-way push-schedule subscription — a consumer in
    /// update-push mode teaching a writer which pages to push at its
    /// barriers. Sent once per peer per *changed* schedule, so a stable
    /// per-phase plan subscribes once and then rides free.
    AdaptSub,
    /// DSM: barrier arrival/departure traffic (write notices ride along).
    Barrier,
    /// DSM: lock acquire/forward/grant traffic.
    Lock,
    /// CHAOS: inspector translation-table traffic.
    Translate,
    /// CHAOS: inspector schedule exchange.
    Schedule,
    /// CHAOS: executor gather (owner → consumer data push).
    Gather,
    /// CHAOS: executor scatter (consumer → owner contributions).
    Scatter,
    /// Application-level broadcast/reduction outside the DSM (rare).
    Other,
}

impl MsgKind {
    pub const COUNT: usize = 15;

    pub const ALL: [MsgKind; MsgKind::COUNT] = [
        MsgKind::DiffRequest,
        MsgKind::DiffReply,
        MsgKind::AggRequest,
        MsgKind::AggReply,
        MsgKind::AdaptRequest,
        MsgKind::AdaptReply,
        MsgKind::AdaptPush,
        MsgKind::AdaptSub,
        MsgKind::Barrier,
        MsgKind::Lock,
        MsgKind::Translate,
        MsgKind::Schedule,
        MsgKind::Gather,
        MsgKind::Scatter,
        MsgKind::Other,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            MsgKind::DiffRequest => "diff-req",
            MsgKind::DiffReply => "diff-rep",
            MsgKind::AggRequest => "agg-req",
            MsgKind::AggReply => "agg-rep",
            MsgKind::AdaptRequest => "adapt-req",
            MsgKind::AdaptReply => "adapt-rep",
            MsgKind::AdaptPush => "adapt-push",
            MsgKind::AdaptSub => "adapt-sub",
            MsgKind::Barrier => "barrier",
            MsgKind::Lock => "lock",
            MsgKind::Translate => "translate",
            MsgKind::Schedule => "schedule",
            MsgKind::Gather => "gather",
            MsgKind::Scatter => "scatter",
            MsgKind::Other => "other",
        }
    }
}

/// Lock-free counters: `[proc][kind]` message counts and payload bytes.
#[derive(Debug)]
pub struct Stats {
    msgs: Vec<[AtomicU64; MsgKind::COUNT]>,
    bytes: Vec<[AtomicU64; MsgKind::COUNT]>,
}

impl Stats {
    pub fn new(nprocs: usize) -> Self {
        let make = || {
            (0..nprocs)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect::<Vec<_>>()
        };
        Stats {
            msgs: make(),
            bytes: make(),
        }
    }

    /// Record one message of `payload` bytes sent by `from`.
    #[inline]
    pub fn record(&self, from: ProcId, kind: MsgKind, payload: usize) {
        self.msgs[from][kind.index()].fetch_add(1, Ordering::Relaxed);
        self.bytes[from][kind.index()].fetch_add(payload as u64, Ordering::Relaxed);
    }

    /// Record `n` messages totalling `payload` bytes.
    #[inline]
    pub fn record_n(&self, from: ProcId, kind: MsgKind, n: u64, payload: usize) {
        self.msgs[from][kind.index()].fetch_add(n, Ordering::Relaxed);
        self.bytes[from][kind.index()].fetch_add(payload as u64, Ordering::Relaxed);
    }

    pub fn total_messages(&self) -> u64 {
        self.msgs
            .iter()
            .flat_map(|a| a.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes
            .iter()
            .flat_map(|a| a.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        self.msgs
            .iter()
            .map(|a| a[kind.index()].load(Ordering::Relaxed))
            .sum()
    }

    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes
            .iter()
            .map(|a| a[kind.index()].load(Ordering::Relaxed))
            .sum()
    }

    pub fn reset(&self) {
        for row in self.msgs.iter().chain(self.bytes.iter()) {
            for c in row {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Per-epoch policy-decision counters for runtime-adaptive protocol
/// engines: how often the engine chose batched prefetch over demand
/// paging, and how its per-page modes churned. Plain (static-policy)
/// runs never touch these, so they stay zero and cost nothing.
///
/// Counters are per processor, like [`Stats`], and lock-free. Since
/// plans carry a **phase identity** (the barrier site that issued
/// them), every decision is additionally broken down per phase in a
/// side table sharded per recording processor — each shard's mutex is
/// uncontended (only its own processor locks it), so 256 processors
/// recording an epoch simultaneously never serialize on one global
/// lock; [`PolicyReport::capture`] merges the shards field-wise.
#[derive(Debug)]
pub struct PolicyStats {
    epochs: Vec<AtomicU64>,
    prefetch_rounds: Vec<AtomicU64>,
    prefetch_pages: Vec<AtomicU64>,
    push_rounds: Vec<AtomicU64>,
    push_pages: Vec<AtomicU64>,
    deferred_plans: Vec<AtomicU64>,
    quiesced_plans: Vec<AtomicU64>,
    quiesced_pages: Vec<AtomicU64>,
    subscriptions: Vec<AtomicU64>,
    promotions: Vec<AtomicU64>,
    demotions: Vec<AtomicU64>,
    probes: Vec<AtomicU64>,
    /// Per-phase breakdown of the decision stream, sharded by recording
    /// processor (phases are app-level barrier-site tags; shards merge
    /// at capture).
    phases: Vec<Mutex<BTreeMap<u32, PhasePolicyRow>>>,
}

impl PolicyStats {
    pub fn new(nprocs: usize) -> Self {
        let make = || (0..nprocs).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        PolicyStats {
            epochs: make(),
            prefetch_rounds: make(),
            prefetch_pages: make(),
            push_rounds: make(),
            push_pages: make(),
            deferred_plans: make(),
            quiesced_plans: make(),
            quiesced_pages: make(),
            subscriptions: make(),
            promotions: make(),
            demotions: make(),
            probes: make(),
            phases: (0..nprocs).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    fn phase_row(&self, p: ProcId, phase: u32, f: impl FnOnce(&mut PhasePolicyRow)) {
        let mut map = self.phases[p].lock().unwrap();
        let row = map.entry(phase).or_insert_with(|| PhasePolicyRow {
            phase,
            ..Default::default()
        });
        f(row);
    }

    /// One barrier epoch (tagged `phase`) observed by `p`'s policy.
    #[inline]
    pub fn record_epoch(&self, p: ProcId, phase: u32) {
        self.epochs[p].fetch_add(1, Ordering::Relaxed);
        self.phase_row(p, phase, |r| r.epochs += 1);
    }

    /// `p` issued one plan's worth of aggregated prefetch covering
    /// `pages` pages, on behalf of `phase`. Rounds count *plans fired*,
    /// not wire exchanges: when one fault triggers several phases'
    /// deferred plans they merge into a single exchange, and a plan
    /// partially quiesced at a cross-phase barrier can contribute both
    /// a quiesce record and, later, a round for its live remainder.
    #[inline]
    pub fn record_prefetch(&self, p: ProcId, phase: u32, pages: usize) {
        self.prefetch_rounds[p].fetch_add(1, Ordering::Relaxed);
        self.prefetch_pages[p].fetch_add(pages as u64, Ordering::Relaxed);
        self.phase_row(p, phase, |r| {
            r.prefetch_rounds += 1;
            r.prefetch_pages += pages as u64;
        });
    }

    /// `p` absorbed one round of writer-initiated update pushes covering
    /// `pages` pages (update-push mode: no request leg on the wire),
    /// predicted by `phase`'s plan.
    #[inline]
    pub fn record_push(&self, p: ProcId, phase: u32, pages: usize) {
        self.push_rounds[p].fetch_add(1, Ordering::Relaxed);
        self.push_pages[p].fetch_add(pages as u64, Ordering::Relaxed);
        self.phase_row(p, phase, |r| {
            r.push_rounds += 1;
            r.push_pages += pages as u64;
        });
    }

    /// `p`'s policy deferred `phase`'s batched fetch to the epoch's
    /// first demand fault instead of issuing it eagerly at the barrier.
    #[inline]
    pub fn record_deferred(&self, p: ProcId, phase: u32) {
        self.deferred_plans[p].fetch_add(1, Ordering::Relaxed);
        self.phase_row(p, phase, |r| r.deferred_plans += 1);
    }

    /// A deferred plan of `pages` pages owned by `phase` at `p` was
    /// discarded untriggered — its window closed (or the run ended)
    /// without anything touching the predicted pages, so the exchange
    /// was saved. A plan whose pages' windows close at *different*
    /// barriers (cross-phase page sharing) quiesces in parts and can
    /// contribute more than one record here.
    #[inline]
    pub fn record_quiesced(&self, p: ProcId, phase: u32, pages: usize) {
        self.quiesced_plans[p].fetch_add(1, Ordering::Relaxed);
        self.quiesced_pages[p].fetch_add(pages as u64, Ordering::Relaxed);
        self.phase_row(p, phase, |r| {
            r.quiesced_plans += 1;
            r.quiesced_pages += pages as u64;
        });
    }

    /// `p` (a push-mode consumer) sent `peers` one-way subscription
    /// messages because `phase`'s push schedule changed.
    #[inline]
    pub fn record_subscribe(&self, p: ProcId, phase: u32, peers: usize) {
        self.subscriptions[p].fetch_add(peers as u64, Ordering::Relaxed);
        self.phase_row(p, phase, |r| r.subscriptions += peers as u64);
    }

    /// `n` pages switched from demand paging to batched prefetch at `p`.
    #[inline]
    pub fn record_promotions(&self, p: ProcId, n: u64) {
        self.promotions[p].fetch_add(n, Ordering::Relaxed);
    }

    /// `n` pages fell back from batched prefetch to demand paging at `p`.
    #[inline]
    pub fn record_demotions(&self, p: ProcId, n: u64) {
        self.demotions[p].fetch_add(n, Ordering::Relaxed);
    }

    /// `n` prefetch-mode pages were left to demand-fault this epoch to
    /// re-validate that they are still worth prefetching.
    #[inline]
    pub fn record_probes(&self, p: ProcId, n: u64) {
        self.probes[p].fetch_add(n, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        for row in [
            &self.epochs,
            &self.prefetch_rounds,
            &self.prefetch_pages,
            &self.push_rounds,
            &self.push_pages,
            &self.deferred_plans,
            &self.quiesced_plans,
            &self.quiesced_pages,
            &self.subscriptions,
            &self.promotions,
            &self.demotions,
            &self.probes,
        ] {
            for c in row.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
        for shard in &self.phases {
            shard.lock().unwrap().clear();
        }
    }
}

/// One phase's share of the policy-decision stream — the per-plan
/// breakdown that shows *which barrier site* earned each quiesce or
/// push round (summed over processors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhasePolicyRow {
    /// The barrier-site tag this row describes.
    pub phase: u32,
    /// Barrier epochs carrying this tag.
    pub epochs: u64,
    /// Aggregated prefetch exchanges issued by this phase's plans.
    pub prefetch_rounds: u64,
    /// Pages covered by those exchanges.
    pub prefetch_pages: u64,
    /// Writer-initiated push rounds predicted by this phase.
    pub push_rounds: u64,
    /// Pages covered by those push rounds.
    pub push_pages: u64,
    /// Plans this phase deferred to a first fault.
    pub deferred_plans: u64,
    /// Deferred plans of this phase discarded untriggered.
    pub quiesced_plans: u64,
    /// Pages covered by those quiesced plans.
    pub quiesced_pages: u64,
    /// One-way push-schedule subscription messages this phase cost.
    pub subscriptions: u64,
}

/// Frozen totals of [`PolicyStats`] (summed over processors).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyReport {
    /// Barrier epochs the policies observed (summed over processors).
    pub epochs: u64,
    /// Aggregated prefetch exchanges issued.
    pub prefetch_rounds: u64,
    /// Pages covered by those exchanges.
    pub prefetch_pages: u64,
    /// Writer-initiated update-push rounds absorbed (no request leg).
    pub push_rounds: u64,
    /// Pages covered by those push rounds.
    pub push_pages: u64,
    /// Batched fetches deferred to the epoch's first demand fault.
    pub deferred_plans: u64,
    /// Deferred plans discarded untriggered (the quiesce win: one whole
    /// exchange per peer saved, typically at the run's final barrier).
    pub quiesced_plans: u64,
    /// Pages covered by those quiesced plans.
    pub quiesced_pages: u64,
    /// One-way push-schedule subscription messages (update-push mode:
    /// one per peer per *changed* per-phase schedule).
    pub subscriptions: u64,
    /// Demand → prefetch mode switches.
    pub promotions: u64,
    /// Prefetch → demand mode switches.
    pub demotions: u64,
    /// Probe epochs (prefetch withheld to re-validate the pattern).
    pub probes: u64,
    /// Per-phase breakdown of the decision stream, sorted by phase tag.
    /// Untagged runs put everything in phase 0.
    pub per_phase: Vec<PhasePolicyRow>,
}

impl PolicyReport {
    pub fn capture(stats: &PolicyStats) -> Self {
        let sum = |v: &Vec<AtomicU64>| v.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        // Merge the per-processor phase shards field-wise; BTreeMap keeps
        // the rows sorted by phase tag, as the report promises.
        let mut merged: BTreeMap<u32, PhasePolicyRow> = BTreeMap::new();
        for shard in &stats.phases {
            for (&phase, row) in shard.lock().unwrap().iter() {
                let e = merged.entry(phase).or_insert_with(|| PhasePolicyRow {
                    phase,
                    ..Default::default()
                });
                e.epochs += row.epochs;
                e.prefetch_rounds += row.prefetch_rounds;
                e.prefetch_pages += row.prefetch_pages;
                e.push_rounds += row.push_rounds;
                e.push_pages += row.push_pages;
                e.deferred_plans += row.deferred_plans;
                e.quiesced_plans += row.quiesced_plans;
                e.quiesced_pages += row.quiesced_pages;
                e.subscriptions += row.subscriptions;
            }
        }
        PolicyReport {
            epochs: sum(&stats.epochs),
            prefetch_rounds: sum(&stats.prefetch_rounds),
            prefetch_pages: sum(&stats.prefetch_pages),
            push_rounds: sum(&stats.push_rounds),
            push_pages: sum(&stats.push_pages),
            deferred_plans: sum(&stats.deferred_plans),
            quiesced_plans: sum(&stats.quiesced_plans),
            quiesced_pages: sum(&stats.quiesced_pages),
            subscriptions: sum(&stats.subscriptions),
            promotions: sum(&stats.promotions),
            demotions: sum(&stats.demotions),
            probes: sum(&stats.probes),
            per_phase: merged.into_values().collect(),
        }
    }

    /// This report's row for `phase`, if the phase made any decisions.
    pub fn phase(&self, phase: u32) -> Option<&PhasePolicyRow> {
        self.per_phase.iter().find(|r| r.phase == phase)
    }

    /// Accumulate `other` into `self` field-wise, merging the per-phase
    /// breakdowns by tag. Associative and commutative, so concurrent
    /// runs (the serve driver's workers) can each fold their own jobs'
    /// reports locally and the partial sums merge in any order into one
    /// report — no global lock anywhere on the hot path.
    pub fn merge(&mut self, other: &PolicyReport) {
        self.epochs += other.epochs;
        self.prefetch_rounds += other.prefetch_rounds;
        self.prefetch_pages += other.prefetch_pages;
        self.push_rounds += other.push_rounds;
        self.push_pages += other.push_pages;
        self.deferred_plans += other.deferred_plans;
        self.quiesced_plans += other.quiesced_plans;
        self.quiesced_pages += other.quiesced_pages;
        self.subscriptions += other.subscriptions;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.probes += other.probes;
        for row in &other.per_phase {
            match self.per_phase.binary_search_by_key(&row.phase, |r| r.phase) {
                Ok(i) => {
                    let e = &mut self.per_phase[i];
                    e.epochs += row.epochs;
                    e.prefetch_rounds += row.prefetch_rounds;
                    e.prefetch_pages += row.prefetch_pages;
                    e.push_rounds += row.push_rounds;
                    e.push_pages += row.push_pages;
                    e.deferred_plans += row.deferred_plans;
                    e.quiesced_plans += row.quiesced_plans;
                    e.quiesced_pages += row.quiesced_pages;
                    e.subscriptions += row.subscriptions;
                }
                Err(i) => self.per_phase.insert(i, *row),
            }
        }
    }

    /// Did any adaptive decision actually happen?
    pub fn is_active(&self) -> bool {
        self.promotions > 0 || self.prefetch_rounds > 0 || self.push_rounds > 0
    }
}

/// A frozen snapshot of the counters, for reports and table rows.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    pub messages: u64,
    pub bytes: u64,
    pub per_kind: Vec<(MsgKind, u64, u64)>,
    /// Scenario label of the cluster the snapshot came from (set via
    /// `Net::set_label` by scenario-matrix harnesses), `None` elsewhere.
    pub label: Option<String>,
    /// Per-proc stall-attribution rows (one per rank, indexed by
    /// `ProcId`), filled by [`crate::Net::report`]; empty when the
    /// snapshot was assembled from bare [`Stats`] counters.
    pub stalls: Vec<crate::trace::StallRow>,
}

impl NetReport {
    pub fn capture(stats: &Stats) -> Self {
        NetReport {
            messages: stats.total_messages(),
            bytes: stats.total_bytes(),
            per_kind: MsgKind::ALL
                .iter()
                .map(|&k| (k, stats.messages_of(k), stats.bytes_of(k)))
                .filter(|&(_, m, b)| m > 0 || b > 0)
                .collect(),
            label: None,
            stalls: Vec::new(),
        }
    }

    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1e6
    }

    pub fn messages_per_kind(&self, kind: MsgKind) -> u64 {
        self.per_kind
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .map_or(0, |&(_, m, _)| m)
    }

    pub fn bytes_per_kind(&self, kind: MsgKind) -> u64 {
        self.per_kind
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .map_or(0, |&(_, _, b)| b)
    }

    /// Accumulate `other` into `self`: totals add, per-kind rows merge
    /// by kind (kept in [`MsgKind::ALL`] order). Labels: a merged report
    /// keeps its own label only while every contribution agrees —
    /// merging reports of different scenarios produces an unlabelled
    /// aggregate rather than mislabelling it. Associative and
    /// commutative, so concurrent runs can be folded worker-locally and
    /// the partials merged in any order without a global lock.
    pub fn merge(&mut self, other: &NetReport) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        for &(k, m, b) in &other.per_kind {
            match self.per_kind.iter_mut().find(|&&mut (k0, _, _)| k0 == k) {
                Some(row) => {
                    row.1 += m;
                    row.2 += b;
                }
                None => {
                    let pos = self
                        .per_kind
                        .iter()
                        .position(|&(k0, _, _)| k0.index() > k.index())
                        .unwrap_or(self.per_kind.len());
                    self.per_kind.insert(pos, (k, m, b));
                }
            }
        }
        if self.label != other.label {
            self.label = None;
        }
        // Stall rows merge rank-wise (element-wise bucket adds), extending
        // to the longer cluster — commutative and associative like the
        // per-kind rows, so worker-local partial folds stay order-free.
        if self.stalls.len() < other.stalls.len() {
            self.stalls
                .resize(other.stalls.len(), crate::trace::StallRow::default());
        }
        for (row, o) in self.stalls.iter_mut().zip(&other.stalls) {
            row.merge(o);
        }
    }

    /// Difference between two snapshots (for per-phase accounting).
    pub fn delta(&self, earlier: &NetReport) -> NetReport {
        let mut per_kind = Vec::new();
        for &(k, m, b) in &self.per_kind {
            let (m0, b0) = earlier
                .per_kind
                .iter()
                .find(|&&(k0, _, _)| k0 == k)
                .map(|&(_, m0, b0)| (m0, b0))
                .unwrap_or((0, 0));
            if m > m0 || b > b0 {
                per_kind.push((k, m - m0, b - b0));
            }
        }
        NetReport {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            per_kind,
            label: self.label.clone(),
            stalls: self
                .stalls
                .iter()
                .enumerate()
                .map(|(p, row)| match earlier.stalls.get(p) {
                    Some(e) => row.delta(e),
                    None => *row,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let s = Stats::new(2);
        s.record(0, MsgKind::DiffRequest, 16);
        s.record(1, MsgKind::DiffReply, 4096);
        s.record_n(0, MsgKind::Barrier, 3, 120);
        assert_eq!(s.total_messages(), 5);
        assert_eq!(s.total_bytes(), 16 + 4096 + 120);
        assert_eq!(s.messages_of(MsgKind::Barrier), 3);
        assert_eq!(s.bytes_of(MsgKind::DiffReply), 4096);
    }

    #[test]
    fn report_delta() {
        let s = Stats::new(1);
        s.record(0, MsgKind::Gather, 100);
        let before = NetReport::capture(&s);
        s.record(0, MsgKind::Gather, 50);
        s.record(0, MsgKind::Scatter, 10);
        let after = NetReport::capture(&s);
        let d = after.delta(&before);
        assert_eq!(d.messages, 2);
        assert_eq!(d.bytes, 60);
        assert_eq!(d.per_kind.len(), 2);
    }

    #[test]
    fn reset_clears() {
        let s = Stats::new(1);
        s.record(0, MsgKind::Other, 9);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn policy_counters_roundtrip() {
        let s = PolicyStats::new(2);
        s.record_epoch(0, 1);
        s.record_epoch(1, 2);
        s.record_prefetch(0, 1, 12);
        s.record_prefetch(1, 2, 3);
        s.record_push(0, 1, 5);
        s.record_deferred(1, 2);
        s.record_quiesced(1, 2, 4);
        s.record_subscribe(0, 1, 3);
        s.record_promotions(0, 4);
        s.record_demotions(1, 1);
        s.record_probes(0, 2);
        let r = PolicyReport::capture(&s);
        assert_eq!(r.epochs, 2);
        assert_eq!(r.prefetch_rounds, 2);
        assert_eq!(r.prefetch_pages, 15);
        assert_eq!(r.push_rounds, 1);
        assert_eq!(r.push_pages, 5);
        assert_eq!(r.deferred_plans, 1);
        assert_eq!(r.quiesced_plans, 1);
        assert_eq!(r.quiesced_pages, 4);
        assert_eq!(r.subscriptions, 3);
        assert_eq!(r.promotions, 4);
        assert_eq!(r.demotions, 1);
        assert_eq!(r.probes, 2);
        assert!(r.is_active());
        // The per-phase breakdown splits the same stream by plan owner.
        assert_eq!(r.per_phase.len(), 2);
        let p1 = r.phase(1).unwrap();
        assert_eq!(
            (p1.epochs, p1.prefetch_rounds, p1.prefetch_pages, p1.push_rounds, p1.subscriptions),
            (1, 1, 12, 1, 3)
        );
        let p2 = r.phase(2).unwrap();
        assert_eq!(
            (p2.prefetch_pages, p2.deferred_plans, p2.quiesced_plans, p2.quiesced_pages),
            (3, 1, 1, 4)
        );
        assert!(r.phase(7).is_none());
        s.reset();
        let z = PolicyReport::capture(&s);
        assert_eq!(z, PolicyReport::default());
        assert!(!z.is_active());
    }

    #[test]
    fn net_report_merge_adds_and_orders_kinds() {
        let s = Stats::new(1);
        s.record(0, MsgKind::DiffRequest, 16);
        s.record(0, MsgKind::Barrier, 8);
        let mut a = NetReport::capture(&s);
        a.label = Some("cell-a".into());
        let t = Stats::new(1);
        t.record(0, MsgKind::DiffRequest, 4);
        t.record(0, MsgKind::AggReply, 100);
        let mut b = NetReport::capture(&t);
        b.label = Some("cell-a".into());
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.messages, 4);
        assert_eq!(ab.bytes, 128);
        assert_eq!(ab.messages_per_kind(MsgKind::DiffRequest), 2);
        assert_eq!(ab.bytes_per_kind(MsgKind::AggReply), 100);
        // Rows stay in MsgKind::ALL order after an out-of-order insert.
        let idx: Vec<usize> = ab.per_kind.iter().map(|&(k, _, _)| k.index()).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        // Same label: kept. Commutativity: b.merge(a) gives equal totals.
        assert_eq!(ab.label.as_deref(), Some("cell-a"));
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!((ba.messages, ba.bytes, ba.per_kind), (ab.messages, ab.bytes, ab.per_kind));
        // Conflicting labels merge to None.
        let mut c = a.clone();
        c.label = Some("cell-b".into());
        c.merge(&b);
        assert_eq!(c.label, None);
    }

    #[test]
    fn policy_report_merge_adds_and_merges_phases() {
        let s = PolicyStats::new(1);
        s.record_epoch(0, 1);
        s.record_prefetch(0, 1, 4);
        s.record_promotions(0, 2);
        let a = PolicyReport::capture(&s);
        let t = PolicyStats::new(1);
        t.record_epoch(0, 2);
        t.record_push(0, 2, 3);
        t.record_epoch(0, 1);
        t.record_quiesced(0, 1, 2);
        let b = PolicyReport::capture(&t);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.epochs, 3);
        assert_eq!(ab.prefetch_pages, 4);
        assert_eq!(ab.push_pages, 3);
        assert_eq!(ab.promotions, 2);
        assert_eq!(ab.per_phase.len(), 2);
        let p1 = ab.phase(1).unwrap();
        assert_eq!((p1.epochs, p1.prefetch_pages, p1.quiesced_pages), (2, 4, 2));
        assert_eq!(ab.phase(2).unwrap().push_pages, 3);
        // Commutative.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba, ab);
        // Merging a default report is the identity.
        let mut id = ab.clone();
        id.merge(&PolicyReport::default());
        assert_eq!(id, ab);
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let mut seen = [false; MsgKind::COUNT];
        for k in MsgKind::ALL {
            assert!(!seen[k.index()], "duplicate index {}", k.index());
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
