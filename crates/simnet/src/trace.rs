//! Structured simulated-time tracing and stall attribution.
//!
//! Two layers share this module, both stamped exclusively with
//! [`SimTime`] (never wall clock):
//!
//! * **Stall attribution** is always on: every clock mutation in
//!   [`crate::Net`] also adds the same nanoseconds to one of the
//!   [`StallCat`] buckets of the processor whose clock moved, so the
//!   per-processor bucket sums equal the final clocks *exactly* — an
//!   accounting identity, not a sampling estimate. The buckets travel
//!   in [`crate::NetReport::stalls`] and merge element-wise, so the
//!   serve driver's concurrent folds preserve the conservation law.
//! * **Event tracing** is opt-in and zero-overhead when disabled: a
//!   cluster built without a sink never takes the traced branch (one
//!   predictable `bool` test per would-be event). A sink installed via
//!   [`with_trace_sink`] (or [`crate::Net::set_trace_sink`]) receives
//!   every [`TraceEvent`] from the *acting* thread, timestamped with
//!   that processor's deterministic virtual time.
//!
//! ## Determinism
//!
//! Event timestamps use the per-processor *virtual* clock — the real
//! simulated clock minus asynchronously-billed remote interrupt
//! service ([`StallCat::Handler`]), which is the one charge another
//! thread applies at a schedule-dependent instant. The virtual clock
//! re-synchronizes with the real clock at every barrier (all handler
//! charges of an interval land before its closing rendezvous), so for
//! barrier-structured programs a given seed yields byte-identical
//! traces across runs and thread schedules. Lock-ordering races are
//! inherently schedule-dependent and excluded from that claim.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::net::ProcId;
use crate::{MsgKind, SimTime};

/// Where a processor's simulated nanoseconds went. Every clock
/// mutation in [`crate::Net`] bills exactly one category, so the sum
/// over categories equals the final clock to the nanosecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum StallCat {
    /// Modeled application compute (the default; any un-scoped charge).
    Compute = 0,
    /// Demand page faults: the fetch round trip, twin creation, and
    /// diff application on the faulting processor.
    FaultStall = 1,
    /// Barrier rendezvous: the clock-synchronization jump to the
    /// barrier departure time, plus the scoped digest work around it.
    BarrierWait = 2,
    /// Lock acquisition: grant forwarding, release-time waits, and the
    /// interval close on release.
    LockWait = 3,
    /// Predicted exchanges: adaptive prefetch rounds and update-push
    /// rounds (both directions of the predicted data motion).
    PrefetchPush = 4,
    /// The CHAOS inspector: access dedup, translation, and schedule
    /// exchange.
    Inspector = 5,
    /// CHAOS executor communication: gather/scatter pack, exchange,
    /// and unpack.
    Exchange = 6,
    /// Remote interrupt service billed *to this processor by another's
    /// request* (the TreadMarks SIGIO handler cost). Kept separate so
    /// the remaining categories are deterministic per processor.
    Handler = 7,
    /// Lossy-link retransmission: the timeout + resend penalty a
    /// processor pays when the opt-in loss model ([`crate::Net::set_loss`])
    /// drops one of its messages. Zero on every loss-free run.
    Retry = 8,
}

impl StallCat {
    /// Number of categories (array dimension of [`StallRow::cats`]).
    pub const COUNT: usize = 9;

    /// Every category, in `repr` order.
    pub const ALL: [StallCat; StallCat::COUNT] = [
        StallCat::Compute,
        StallCat::FaultStall,
        StallCat::BarrierWait,
        StallCat::LockWait,
        StallCat::PrefetchPush,
        StallCat::Inspector,
        StallCat::Exchange,
        StallCat::Handler,
        StallCat::Retry,
    ];

    /// Stable snake_case name (used by the JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            StallCat::Compute => "compute",
            StallCat::FaultStall => "fault_stall",
            StallCat::BarrierWait => "barrier_wait",
            StallCat::LockWait => "lock_wait",
            StallCat::PrefetchPush => "prefetch_push",
            StallCat::Inspector => "inspector",
            StallCat::Exchange => "exchange",
            StallCat::Handler => "handler",
            StallCat::Retry => "retry",
        }
    }

    #[inline]
    pub(crate) fn from_u8(v: u8) -> StallCat {
        // COUNT is not a power of two, so no mask trick: decode by
        // table lookup, falling back to the default category for any
        // byte that never came from a valid `StallCat as u8`.
        Self::ALL
            .get(v as usize)
            .copied()
            .unwrap_or(StallCat::Compute)
    }
}

/// One processor's stall-attribution row: nanoseconds per category
/// plus the clock they must sum to. Rows add element-wise, so folded
/// reports keep the conservation law (`total() == clock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallRow {
    /// Nanoseconds billed per category, indexed by `StallCat as usize`.
    pub cats: [u64; StallCat::COUNT],
    /// The processor's clock at capture, in nanoseconds.
    pub clock: u64,
}

impl StallRow {
    /// Nanoseconds in one category.
    #[inline]
    pub fn get(&self, cat: StallCat) -> u64 {
        self.cats[cat as usize]
    }

    /// Sum over all categories — equals [`StallRow::clock`] exactly
    /// for any row captured from a quiescent [`crate::Net`].
    pub fn total(&self) -> u64 {
        self.cats.iter().sum()
    }

    /// Element-wise accumulate (used by [`crate::NetReport::merge`]).
    pub fn merge(&mut self, other: &StallRow) {
        for (a, b) in self.cats.iter_mut().zip(&other.cats) {
            *a += b;
        }
        self.clock += other.clock;
    }

    /// Element-wise saturating difference (interval deltas).
    pub fn delta(&self, earlier: &StallRow) -> StallRow {
        let mut out = StallRow::default();
        for (i, o) in out.cats.iter_mut().enumerate() {
            *o = self.cats[i].saturating_sub(earlier.cats[i]);
        }
        out.clock = self.clock.saturating_sub(earlier.clock);
        out
    }
}

/// The protocol action a policy decision event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAct {
    /// A page's gap history locked onto a cycle; prefetching begins.
    Promote,
    /// The lock was lost; the page falls back to demand paging.
    Demote,
    /// A prediction was withheld to test whether the pattern is alive.
    Probe,
}

impl PolicyAct {
    pub fn name(self) -> &'static str {
        match self {
            PolicyAct::Promote => "promote",
            PolicyAct::Demote => "demote",
            PolicyAct::Probe => "probe",
        }
    }
}

/// Which protocol path issued a page fetch (mirror of the DSM's fetch
/// classes, kept here so `simnet` stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// A demand miss (single page).
    Demand,
    /// Compiler-directed aggregation (`Validate`).
    Aggregated,
    /// Runtime-adaptive prefetch at a barrier.
    Prefetch,
    /// Writer-initiated update push.
    Push,
}

impl FetchKind {
    pub fn name(self) -> &'static str {
        match self {
            FetchKind::Demand => "demand",
            FetchKind::Aggregated => "aggregated",
            FetchKind::Prefetch => "prefetch",
            FetchKind::Push => "push",
        }
    }
}

/// A CHAOS inspector/executor span label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanTag {
    /// The whole inspector pass.
    Inspect,
    /// The duplicate-elimination pass inside it (the section the
    /// inspector may run on sharded worker threads; the span is one
    /// event pair per inspection regardless of the thread count, so
    /// traces stay byte-identical across `RAYON_SHIM_THREADS`).
    Dedup,
    /// The global→(owner, offset) translation batch inside it.
    Translate,
    /// Executor gather (owners push referenced elements).
    Gather,
    /// Executor scatter-add (ghost contributions return to owners).
    Scatter,
    /// A mid-run re-inspection: the amortized schedule went stale (a
    /// partition rebalance) and the inspector pass is paid again.
    Reinspect,
}

impl SpanTag {
    pub fn name(self) -> &'static str {
        match self {
            SpanTag::Inspect => "inspect",
            SpanTag::Dedup => "dedup",
            SpanTag::Translate => "translate",
            SpanTag::Gather => "gather",
            SpanTag::Scatter => "scatter",
            SpanTag::Reinspect => "reinspect",
        }
    }
}

/// One structured trace event. `Copy` on purpose: recording must not
/// allocate (the serve heap assertions run with tracing disabled, but
/// the enabled path stays allocation-free per event too — only the
/// sink's ring buffers hold memory, sized at sink construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A demand fault began on `page` (`write` = write fault).
    FaultBegin { page: u32, write: bool },
    /// The fault on `page` was serviced.
    FaultEnd { page: u32 },
    /// A twin (pristine copy) of `page` was created before writing.
    TwinCreate { page: u32 },
    /// The interval close diffed `page` against its twin.
    DiffCreate { page: u32, bytes: u32 },
    /// One fetch round: `pages` pages from `peers` peers, `bytes` of
    /// diff payload, issued by the named protocol path.
    Fetch {
        class: FetchKind,
        pages: u32,
        peers: u32,
        bytes: u64,
    },
    /// This processor arrived at barrier `epoch` (site tag `phase`).
    BarrierEnter { epoch: u64, phase: u32 },
    /// The barrier leader folded `bytes` of write-notice metadata.
    BarrierNotice { epoch: u64, phase: u32, bytes: u64 },
    /// This processor departed barrier `epoch`.
    BarrierExit { epoch: u64, phase: u32 },
    /// Lock acquisition began.
    LockAcquire { lock: u32 },
    /// The lock was granted.
    LockAcquired { lock: u32 },
    /// The lock was released.
    LockRelease { lock: u32 },
    /// An adaptive-policy decision on `(page, phase)`.
    Policy { page: u32, phase: u32, act: PolicyAct },
    /// A predicted batch of `pages` pages was deferred to first fault.
    PlanDefer { phase: u32, pages: u32 },
    /// A deferred plan of `pages` pages was discarded untriggered.
    PlanQuiesce { phase: u32, pages: u32 },
    /// A named span opened on this processor.
    SpanBegin { tag: SpanTag },
    /// The most recent span with this tag closed.
    SpanEnd { tag: SpanTag },
    /// A message was sent to (`out`) or received from (`!out`) `peer`.
    Msg {
        kind: MsgKind,
        peer: u32,
        bytes: u32,
        out: bool,
    },
}

/// A trace consumer. [`crate::Net`] calls [`TraceSink::record`] from
/// the acting processor's own thread, so a sink keeping one lane per
/// processor needs no cross-lane ordering to be deterministic.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Record `ev`, stamped with processor `p`'s virtual time `t`.
    fn record(&self, p: ProcId, t: SimTime, ev: TraceEvent);
}

thread_local! {
    /// The sink the next [`crate::Net::new`] on this thread adopts —
    /// set by [`with_trace_sink`] so harnesses can trace a run without
    /// plumbing a sink through every workload constructor.
    static PENDING_SINK: RefCell<Option<Arc<dyn TraceSink>>> =
        const { RefCell::new(None) };
}

/// Run `f` with `sink` installed as the pending trace sink: every
/// cluster *constructed on this thread* inside `f` traces into it.
/// (The DSM and CHAOS runtimes build their `Net` on the calling
/// thread, so wrapping a workload run is enough.) The previous pending
/// sink is restored on exit, even on panic.
pub fn with_trace_sink<R>(sink: Arc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
    let prev = PENDING_SINK.with(|s| s.borrow_mut().replace(sink));
    struct Restore(Option<Arc<dyn TraceSink>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            PENDING_SINK.with(|s| *s.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The sink [`with_trace_sink`] installed on this thread, if any.
pub(crate) fn pending_sink() -> Option<Arc<dyn TraceSink>> {
    PENDING_SINK.with(|s| s.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct Probe(Mutex<Vec<(ProcId, u64)>>);
    impl TraceSink for Probe {
        fn record(&self, p: ProcId, t: SimTime, _ev: TraceEvent) {
            self.0.lock().unwrap().push((p, t.as_ns()));
        }
    }

    #[test]
    fn stall_row_merge_and_delta_preserve_conservation() {
        let mut a = StallRow::default();
        a.cats[StallCat::Compute as usize] = 70;
        a.cats[StallCat::FaultStall as usize] = 30;
        a.clock = 100;
        let mut b = StallRow::default();
        b.cats[StallCat::BarrierWait as usize] = 40;
        b.clock = 40;
        assert_eq!(a.total(), a.clock);
        let snap = a;
        a.merge(&b);
        assert_eq!(a.total(), 140);
        assert_eq!(a.total(), a.clock);
        let d = a.delta(&snap);
        assert_eq!(d.get(StallCat::BarrierWait), 40);
        assert_eq!(d.total(), d.clock);
    }

    #[test]
    fn category_names_are_distinct_and_round_trip() {
        let mut names: Vec<&str> = StallCat::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StallCat::COUNT);
        for cat in StallCat::ALL {
            assert_eq!(StallCat::from_u8(cat as u8), cat);
        }
    }

    #[test]
    fn with_trace_sink_scopes_the_pending_sink() {
        assert!(pending_sink().is_none());
        let probe = Arc::new(Probe::default());
        with_trace_sink(probe.clone(), || {
            let got = pending_sink().expect("sink pending inside the scope");
            got.record(1, SimTime(5), TraceEvent::FaultEnd { page: 9 });
        });
        assert!(pending_sink().is_none(), "restored on exit");
        assert_eq!(probe.0.lock().unwrap().as_slice(), &[(1, 5)]);
    }
}
