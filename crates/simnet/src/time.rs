//! Simulated time, represented as integer nanoseconds.
//!
//! Integer nanoseconds (rather than `f64` seconds) keep the simulation
//! bit-deterministic under atomic `fetch_max`/`fetch_add` updates from
//! multiple threads: additions commute exactly, so the per-processor
//! clocks are independent of thread scheduling.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds (the unit the cost model is expressed in).
    /// Rounds to the nearest nanosecond; deterministic for a given input.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimTime((us * 1e3).round() as u64)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_us_rounds_to_ns() {
        assert_eq!(SimTime::from_us(1.0), SimTime(1_000));
        assert_eq!(SimTime::from_us(0.0004), SimTime(0));
        assert_eq!(SimTime::from_us(0.0006), SimTime(1));
        assert_eq!(SimTime::from_us(1_000_000.0), SimTime(1_000_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(5);
        let b = SimTime(3);
        assert_eq!(a + b, SimTime(8));
        assert_eq!(a - b, SimTime(2));
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let total: SimTime = [a, b, SimTime(2)].into_iter().sum();
        assert_eq!(total, SimTime(10));
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime(1_500_000_000).to_string(), "1.500s");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_us(123.456);
        assert!((t.as_us_f64() - 123.456).abs() < 1e-3);
        assert_eq!(SimTime::from_ns(t.as_ns()), t);
    }
}
