//! The pinned reusable-scratch acceptance test, in its own process so
//! the [`serve::alloc::Counting`] global allocator's counters see only
//! this test's traffic. One test function on purpose: the counters are
//! process-global, and a second test running on a sibling thread would
//! bleed allocations into the measurement windows.

use apps::workload::run_matrix;
use serve::{serve, ServeConfig, Stop};
use synth::{Dynamics, Prepared, Structure, SynthConfig};

#[global_allocator]
static ALLOC: serve::alloc::Counting = serve::alloc::Counting;

fn quick_cell() -> SynthConfig {
    let mut cfg = SynthConfig::quick(Structure::Uniform, Dynamics::PeriodicRemap { period: 3 });
    cfg.n = 512;
    cfg.refs = 1024;
    cfg.iters = 6;
    cfg
}

#[test]
fn warm_cells_are_strictly_cheaper_than_cold() {
    assert!(serve::alloc::allocations() > 0, "counting allocator not installed");
    let prep = Prepared::new(quick_cell());

    // Cold reference: reuse off, every run builds fresh clusters. The
    // first run also warms the process (thread-local report buffers,
    // lazy statics), so measure the second.
    run_matrix(&prep);
    let a0 = serve::alloc::allocations();
    run_matrix(&prep);
    let cold = serve::alloc::allocations() - a0;

    // Warm: first reuse run checks fresh clusters out of an empty pool
    // and checks them back in recycled; the *next* run is the steady
    // state the serve driver lives in.
    prep.set_reuse(true);
    run_matrix(&prep);
    let b0 = serve::alloc::allocations();
    run_matrix(&prep);
    let warm = serve::alloc::allocations() - b0;

    assert!(
        warm < cold,
        "recycled-scratch run allocated {warm} times, cold run {cold} — reuse is not cheaper"
    );

    // And the driver's own steady-state check: with one worker and the
    // counting allocator live, net heap growth after warmup must stay
    // flat (the driver debug-asserts a ≤ 64 KiB bound internally).
    let out = serve(
        &[quick_cell()],
        &ServeConfig {
            workers: 1,
            stop: Stop::Jobs(8),
            thread_budget: 64,
            check_allocs: true,
            // Tracing disabled: the worker loop must stay allocation-free
            // per job — the trace ring buffers only exist behind the
            // `Some` arm, so `None` here keeps the 0 B/job measurement
            // honest (asserted below).
            trace: None,
        },
    );
    assert_eq!(out.jobs_done, 8);
    if cfg!(debug_assertions) {
        let growth = out
            .steady_growth
            .expect("debug build with counting allocator must measure steady growth");
        // With tracing disabled the steady window allocates nothing new —
        // measured growth is actually *negative* (pooled buffers shed a
        // little capacity), so the bound below is pure wiggle room, not
        // a budget. A positive-per-job leak (even 1 KiB/job) would blow
        // through it immediately.
        assert!(
            growth <= 64 * 1024,
            "steady-state heap grew by {growth} B over 8 jobs"
        );
    }
}
