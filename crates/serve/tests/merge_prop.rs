//! Property: serving a random grid concurrently produces *exactly* the
//! statistics of serving it sequentially — the merged per-variant
//! message/byte totals, the folded per-kind [`NetReport`]s, and the
//! folded adaptive [`PolicyReport`] are all bitwise-identical to a
//! one-job-at-a-time reference fold. This is the commutativity claim
//! behind the serve driver's lock-free accounting: worker-local
//! partials merged in scheduler-dependent order must lose nothing.
//!
//! Cells draw `nprocs` from {4, 8, 64} — the 64-processor draw pushes
//! interval clocks past `DENSE_VC_MAX` into the sparse delta encoding,
//! so the merge contract is also soaked on the scale regime. Soak runs
//! raise the case count with `PROPTEST_CASES` (CI uses ≥ 256); failing
//! draws replay via `PROPTEST_TEST`/`PROPTEST_SEED`.

use apps::workload::{run_matrix, Variant};
use proptest::prelude::*;
use serve::{serve, ServeConfig, Stop};
use simnet::{NetReport, PolicyReport};
use synth::{Dynamics, Prepared, Structure, SynthConfig};

/// A proptest-sized cell. The 64-processor draw grows the element count
/// so every processor still owns ≥ 2 value pages (with one page per
/// peer the aggregation paths have nothing to merge and the scenario
/// degenerates), and drops iterations to keep the case affordable.
fn cell(structure: Structure, dynamics: Dynamics, nprocs: usize, seed: u64) -> SynthConfig {
    let mut cfg = SynthConfig::quick(structure, dynamics);
    if nprocs == 64 {
        cfg.n = 1024; // 128 pages of 64 B → 2 per processor
        cfg.refs = 1536;
        cfg.iters = 2;
        cfg.page_size = 64;
    } else {
        cfg.n = 256; // 16 pages of 128 B → ≥ 2 per processor
        cfg.refs = 512;
        cfg.iters = 3;
        cfg.page_size = 128;
    }
    cfg.nprocs = nprocs;
    cfg.seed = seed;
    cfg
}

fn structures() -> impl Strategy<Value = Structure> {
    proptest::sample::select(vec![
        Structure::Uniform,
        Structure::PowerLaw { alpha: 2.0 },
        Structure::Banded { width: 16 },
    ])
}

fn dynamics() -> impl Strategy<Value = Dynamics> {
    proptest::sample::select(vec![
        Dynamics::Static,
        Dynamics::PeriodicRemap { period: 2 },
        Dynamics::Alternating,
    ])
}

/// {4, 8, 64}, weighted toward the cheap draws: a 64-processor case
/// costs ~4 s on a small host (five 6-variant matrix passes, each
/// spawning 64 OS threads per parallel run — thread churn, not
/// compute), an order of magnitude more than a 4-processor one. It
/// gets 1/16 of the draws — ~4 sparse-clock cases at the default
/// 64-case count, ~16 at the CI soak's 256 — so the scale regime is
/// exercised without dominating the wall clock.
fn nprocs() -> impl Strategy<Value = usize> {
    let mut pool = vec![4, 4, 4, 4, 8, 8, 8, 8];
    pool.extend([4, 4, 4, 8, 8, 8, 8, 64]);
    proptest::sample::select(pool)
}

/// The sequential reference: run the same round-robin job sequence one
/// at a time on cold scenarios and fold with the same merge operations.
struct Fold {
    messages: [u64; 6],
    bytes: [u64; 6],
    nets: [Option<NetReport>; 6],
    policy: Option<PolicyReport>,
}

fn fold_sequential(cells: &[SynthConfig], jobs: usize) -> Fold {
    let preps: Vec<Prepared> = cells.iter().map(|c| Prepared::new(c.clone())).collect();
    let mut fold = Fold {
        messages: [0; 6],
        bytes: [0; 6],
        nets: Default::default(),
        policy: None,
    };
    for j in 0..jobs {
        let m = run_matrix(&preps[j % preps.len()]);
        for run in &m.runs {
            let i = Variant::ALL.iter().position(|&v| v == run.variant).unwrap();
            fold.messages[i] += run.report.messages;
            fold.bytes[i] += run.report.bytes;
            if let Some(net) = &run.report.net {
                match &mut fold.nets[i] {
                    Some(acc) => acc.merge(net),
                    slot => *slot = Some(net.clone()),
                }
            }
            if let Some(pol) = &run.report.policy {
                match &mut fold.policy {
                    Some(acc) => acc.merge(pol),
                    slot => *slot = Some(pol.clone()),
                }
            }
        }
    }
    fold
}

proptest! {
    #[test]
    fn concurrent_serve_totals_equal_the_sequential_fold(
        structure in structures(),
        dyn_ in dynamics(),
        np in nprocs(),
        extra_cell in proptest::sample::select(vec![false, true]),
        seed in 0u64..1_000_000,
    ) {
        let mut cells = vec![cell(structure.clone(), dyn_.clone(), np, seed)];
        if extra_cell {
            // A second, always-cheap cell so multi-cell merges (and
            // label-conflict handling in NetReport::merge) are covered.
            cells.push(cell(structure, Dynamics::Static, 4, seed ^ 0xA5A5));
        }
        // cells + 1 jobs: every cell served at least once, the first
        // served twice — repeated-cell merging is covered while the
        // dominant cost (run_matrix passes) stays affordable per case.
        let jobs = cells.len() + 1;

        let out = serve(&cells, &ServeConfig {
            workers: 2,
            stop: Stop::Jobs(jobs),
            thread_budget: 64,
            check_allocs: false,
            trace: None,
        });
        let want = fold_sequential(&cells, jobs);

        prop_assert_eq!(out.jobs_done, jobs as u64);
        prop_assert_eq!(out.hist.count(), jobs as u64);
        for (i, v) in Variant::ALL.into_iter().enumerate() {
            let got = out.totals(v);
            prop_assert_eq!(
                (got.messages, got.bytes),
                (want.messages[i], want.bytes[i]),
                "{:?}: totals diverged from sequential fold", v
            );
            prop_assert_eq!(
                &got.net, &want.nets[i],
                "{:?}: merged NetReport diverged from sequential fold", v
            );
        }
        prop_assert_eq!(
            &out.policy, &want.policy,
            "merged PolicyReport diverged from sequential fold"
        );
    }
}
