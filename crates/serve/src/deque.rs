//! The work-stealing job pool: a shared injector deque plus one local
//! deque per worker.
//!
//! Workers drain their own queue first, refill from the injector in
//! batches (amortizing the shared lock over `BATCH` jobs), and steal
//! half of the fullest peer's queue when both run dry. Locks are plain
//! mutexes — on a simulation host the per-job work is milliseconds, so
//! the queue discipline (batching + steal-half) matters and lock-free
//! rings would not; the shared injector lock is touched once per batch,
//! not once per job.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Jobs a worker moves injector → local queue per refill.
const BATCH: usize = 8;

/// See module docs.
#[derive(Debug)]
pub struct JobPool<T> {
    injector: Mutex<VecDeque<T>>,
    locals: Vec<Mutex<VecDeque<T>>>,
}

impl<T> JobPool<T> {
    /// A pool with `workers` local queues.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        JobPool {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Number of local queues (= workers).
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Push jobs onto the shared injector.
    pub fn inject(&self, jobs: impl IntoIterator<Item = T>) {
        self.injector.lock().extend(jobs);
    }

    /// Jobs currently queued anywhere (racy snapshot; exact once all
    /// workers have stopped).
    pub fn queued(&self) -> usize {
        self.injector.lock().len()
            + self
                .locals
                .iter()
                .map(|l| l.lock().len())
                .sum::<usize>()
    }

    /// Next job for worker `me`: own queue, else a batch from the
    /// injector, else half of the fullest peer's queue. `None` means
    /// every queue was momentarily empty.
    pub fn pop(&self, me: usize) -> Option<T> {
        self.pop_reporting(me).map(|(job, _)| job)
    }

    /// [`JobPool::pop`] that also reports where the job came from:
    /// `Some((victim, moved))` when the worker's own queue and the
    /// injector were both dry and `moved` jobs were stolen from
    /// `victim`'s deque, `None` when the job was local or injected.
    pub fn pop_reporting(&self, me: usize) -> Option<(T, Option<(usize, usize)>)> {
        if let Some(job) = self.locals[me].lock().pop_front() {
            return Some((job, None));
        }
        // Refill from the injector: keep one, queue the rest locally.
        {
            let mut inj = self.injector.lock();
            if !inj.is_empty() {
                let take = BATCH.min(inj.len());
                let mut batch = inj.drain(..take);
                let first = batch.next();
                let rest: Vec<T> = batch.collect();
                drop(inj);
                if !rest.is_empty() {
                    self.locals[me].lock().extend(rest);
                }
                return first.map(|job| (job, None));
            }
        }
        self.steal(me)
    }

    /// Steal half (rounded up) of the fullest peer's queue; returns one
    /// job plus the steal's `(victim, moved)` provenance and keeps the
    /// rest locally.
    fn steal(&self, me: usize) -> Option<(T, Option<(usize, usize)>)> {
        let victim = (0..self.locals.len())
            .filter(|&q| q != me)
            .max_by_key(|&q| self.locals[q].lock().len())?;
        let stolen: Vec<T> = {
            let mut v = self.locals[victim].lock();
            let take = v.len().div_ceil(2);
            v.drain(..take).collect()
        };
        let moved = stolen.len();
        let mut it = stolen.into_iter();
        let first = it.next()?;
        let rest: Vec<T> = it.collect();
        if !rest.is_empty() {
            self.locals[me].lock().extend(rest);
        }
        Some((first, Some((victim, moved))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_job_is_served_exactly_once() {
        let pool = JobPool::new(3);
        pool.inject(0..100);
        assert_eq!(pool.queued(), 100);
        let mut seen = Vec::new();
        // Round-robin the workers so batches and steals both happen.
        let mut w = 0;
        while let Some(j) = pool.pop(w) {
            seen.push(j);
            w = (w + 1) % 3;
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn steal_takes_from_a_loaded_peer() {
        let pool = JobPool::new(2);
        pool.inject(0..BATCH as u32);
        // Worker 0 takes the whole injector batch into its local queue.
        let first = pool.pop(0).unwrap();
        assert_eq!(first, 0);
        // Worker 1 finds the injector empty and steals from worker 0 —
        // and the reporting pop names the victim and the haul.
        let (stolen, from) = pool.pop_reporting(1).unwrap();
        assert!(stolen > 0);
        let (victim, moved) = from.expect("job was stolen, not local");
        assert_eq!(victim, 0);
        assert!(moved >= 1, "steal-half moved {moved} jobs");
        assert!(pool.queued() > 0, "steal keeps the remainder queued");
    }

    #[test]
    fn concurrent_workers_drain_cleanly() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = JobPool::new(4);
        pool.inject(0..1000u64);
        let sum = AtomicU64::new(0);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            for w in 0..4 {
                let (pool, sum, served) = (&pool, &sum, &served);
                s.spawn(move || {
                    while let Some(j) = pool.pop(w) {
                        sum.fetch_add(j, Ordering::Relaxed);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
