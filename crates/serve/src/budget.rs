//! The worker-thread budget: a counting semaphore over simulated-
//! processor tokens.
//!
//! Every cell job runs its cluster portion with `cell.nprocs` OS
//! threads (one per simulated processor, via `std::thread::scope`), so
//! the pool's true thread count is `Σ nprocs` over concurrently running
//! cells — a handful of 64-processor cells would oversubscribe the host
//! by hundreds of threads. A worker acquires `nprocs` tokens before
//! running a cell and releases them after; requests larger than the
//! whole budget are clamped so a single paper-scale cell can always
//! run (alone), it just cannot run *beside* anything.

use parking_lot::{Condvar, Mutex};

/// See module docs.
#[derive(Debug)]
pub struct ThreadBudget {
    capacity: usize,
    free: Mutex<usize>,
    cv: Condvar,
}

impl ThreadBudget {
    /// A budget of `capacity` simulated-processor tokens.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "budget must admit at least one token");
        ThreadBudget {
            capacity,
            free: Mutex::new(capacity),
            cv: Condvar::new(),
        }
    }

    /// Total tokens.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until `n` tokens (clamped to the capacity) are free, take
    /// them, and return a guard that releases on drop.
    pub fn acquire(&self, n: usize) -> BudgetGuard<'_> {
        let n = n.clamp(1, self.capacity);
        let mut free = self.free.lock();
        while *free < n {
            self.cv.wait(&mut free);
        }
        *free -= n;
        BudgetGuard { budget: self, n }
    }

    /// Take up to `n` tokens without blocking — whatever is free right
    /// now, possibly zero. Spare tokens widen a job's thread allowance
    /// (intra-cell parallelism) opportunistically; a job must never
    /// *wait* for spares it can run without, so there is no blocking
    /// variant.
    pub fn try_acquire_up_to(&self, n: usize) -> BudgetGuard<'_> {
        let mut free = self.free.lock();
        let take = n.min(*free);
        *free -= take;
        BudgetGuard {
            budget: self,
            n: take,
        }
    }

    /// Tokens currently free (diagnostic snapshot).
    pub fn available(&self) -> usize {
        *self.free.lock()
    }

    fn release(&self, n: usize) {
        // Empty guards (a `try_acquire_up_to` that found nothing free)
        // must not wake every waiting worker for no token.
        if n == 0 {
            return;
        }
        let mut free = self.free.lock();
        *free += n;
        debug_assert!(*free <= self.capacity, "over-release");
        self.cv.notify_all();
    }
}

/// Tokens held by one running cell; released on drop.
#[derive(Debug)]
pub struct BudgetGuard<'a> {
    budget: &'a ThreadBudget,
    n: usize,
}

impl BudgetGuard<'_> {
    /// Tokens this guard holds.
    pub fn tokens(&self) -> usize {
        self.n
    }
}

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        self.budget.release(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn acquire_release_roundtrip_and_clamp() {
        let b = ThreadBudget::new(8);
        let g = b.acquire(4);
        assert_eq!((g.tokens(), b.available()), (4, 4));
        // Oversized request clamps to the whole budget instead of
        // deadlocking forever.
        drop(g);
        let g = b.acquire(64);
        assert_eq!((g.tokens(), b.available()), (8, 0));
        drop(g);
        assert_eq!(b.available(), 8);
    }

    #[test]
    fn try_acquire_takes_what_is_free_never_blocks() {
        let b = ThreadBudget::new(8);
        let g = b.acquire(6);
        let spare = b.try_acquire_up_to(4);
        assert_eq!((spare.tokens(), b.available()), (2, 0));
        let none = b.try_acquire_up_to(3);
        assert_eq!(none.tokens(), 0, "empty budget yields an empty guard");
        drop(spare);
        drop(none);
        drop(g);
        assert_eq!(b.available(), 8);
    }

    #[test]
    fn concurrent_holders_never_exceed_capacity() {
        let b = ThreadBudget::new(6);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..12 {
                let (b, in_flight, peak) = (&b, &in_flight, &peak);
                s.spawn(move || {
                    let want = 1 + (i % 3);
                    let g = b.acquire(want);
                    let now = in_flight.fetch_add(g.tokens(), Ordering::SeqCst) + g.tokens();
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    in_flight.fetch_sub(g.tokens(), Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 6, "budget exceeded");
        assert_eq!(b.available(), 6);
    }
}
