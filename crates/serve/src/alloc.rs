//! A counting global-allocator wrapper, for the reusable-scratch
//! allocation assertions.
//!
//! A test (or bench) binary installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: serve::alloc::Counting = serve::alloc::Counting;
//! ```
//!
//! and the process-wide counters here light up; binaries that do not
//! install it read zeros everywhere, so the driver's debug-only
//! steady-state check degrades to a no-op instead of a false failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOCED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);

/// See module docs: `std::alloc::System` plus three relaxed counters.
pub struct Counting;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            ALLOCED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            ALLOCED.fetch_add(new_size as u64, Ordering::Relaxed);
            FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }
}

/// Is a [`Counting`] allocator live in this process (any traffic seen)?
pub fn active() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

/// Heap allocations performed so far (count of alloc/realloc calls).
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes currently outstanding: allocated minus freed. Signed — a
/// thread may free buffers another allocated.
pub fn net_bytes() -> i64 {
    let a = ALLOCED.load(Ordering::Relaxed);
    let f = FREED.load(Ordering::Relaxed);
    a as i64 - f as i64
}
