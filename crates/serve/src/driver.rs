//! The serve driver: scenario-matrix-as-a-service.
//!
//! [`serve`] turns the repo's one-shot six-variant contract check into
//! sustained traffic. Each *job* is one full [`run_matrix`] pass over
//! one grid cell — sequential reference plus the five parallel
//! variants, cross-checked bitwise — and a bounded pool of executor
//! threads pulls jobs from a work-stealing [`JobPool`] until either a
//! job count is exhausted or a wall-clock window closes.
//!
//! Correctness is part of the service contract, not a separate test
//! run: before serving, the driver runs every cell **cold** once and
//! pins its per-variant message/byte totals as goldens; every served
//! (warm, recycled-scratch) job is then asserted against them, so a
//! single stale field in `Cluster::recycle` fails the throughput run
//! loudly rather than skewing a benchmark silently.
//!
//! Statistics stay worker-local on the hot path — a latency
//! [`Histogram`], per-variant [`NetReport`] folds, and a merged
//! [`PolicyReport`] per worker — and are merged once at the end, so
//! serving adds no shared lock beyond the job queues themselves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apps::workload::{run_matrix, Variant, WorkloadMatrix};
use simnet::{NetReport, PolicyReport};
use synth::{Prepared, SynthConfig};
use trace::{ServeEvent, ServeTrace};

use crate::alloc;
use crate::budget::ThreadBudget;
use crate::deque::JobPool;
use crate::hist::Histogram;

/// How the serve run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// Serve exactly this many jobs (cells round-robin), then stop.
    Jobs(usize),
    /// Keep refilling the queue until this much wall-clock time has
    /// passed; jobs still queued at the deadline are abandoned.
    Window(Duration),
}

/// Configuration of one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor threads pulling jobs.
    pub workers: usize,
    /// When to stop.
    pub stop: Stop,
    /// Total simulated-processor tokens live at once. Each job holds
    /// `cell.nprocs` tokens while running (that is how many OS threads
    /// its cluster spins up), so this caps the process's true thread
    /// count at roughly `budget + workers`.
    pub thread_budget: usize,
    /// Debug-only steady-state heap check (needs `workers == 1`, a
    /// [`crate::alloc::Counting`] global allocator, and debug
    /// assertions; silently skipped otherwise). After every cell has
    /// been served twice warm, net heap growth must stay flat.
    pub check_allocs: bool,
    /// Optional job-lifecycle trace: job start/done, deque steals, and
    /// cluster recycles land on per-worker [`ServeTrace`] lanes. `None`
    /// (the default) is the zero-cost path — the worker loop takes one
    /// untaken branch per job and allocates nothing.
    pub trace: Option<Arc<ServeTrace>>,
}

impl ServeConfig {
    /// A small job-count run: `jobs` jobs on `workers` workers with a
    /// budget that admits one paper-scale cell or several small ones.
    pub fn jobs(workers: usize, jobs: usize) -> Self {
        ServeConfig {
            workers,
            stop: Stop::Jobs(jobs),
            thread_budget: 64,
            check_allocs: false,
            trace: None,
        }
    }

    /// A wall-clock window run.
    pub fn window(workers: usize, window: Duration) -> Self {
        ServeConfig {
            workers,
            stop: Stop::Window(window),
            thread_budget: 64,
            check_allocs: false,
            trace: None,
        }
    }
}

/// Merged totals of one variant across every served job.
#[derive(Debug, Clone)]
pub struct VariantTotals {
    pub variant: Variant,
    /// Simulated messages summed over jobs.
    pub messages: u64,
    /// Simulated bytes summed over jobs.
    pub bytes: u64,
    /// Merged per-kind breakdown ([`NetReport::merge`] fold); `None`
    /// for the sequential reference, which exchanges nothing.
    pub net: Option<NetReport>,
}

/// Everything a serve run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Jobs completed (each one a full six-variant matrix).
    pub jobs_done: u64,
    /// Wall-clock time of the serving phase (goldens excluded).
    pub wall: Duration,
    /// Per-job latency in nanoseconds, merged over workers.
    pub hist: Histogram,
    /// One entry per [`Variant::ALL`] element, in that order.
    pub per_variant: Vec<VariantTotals>,
    /// Merged adaptive-policy counters over every served job.
    pub policy: Option<PolicyReport>,
    /// Distinct grid cells served.
    pub cells: usize,
    pub workers: usize,
    /// Net heap growth (bytes) across the steady-state region, when the
    /// debug allocation check ran; `None` when it could not.
    pub steady_growth: Option<i64>,
}

impl ServeOutcome {
    /// Sustained throughput: matrix jobs per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        self.jobs_done as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The `q`-quantile of per-job latency.
    pub fn latency(&self, q: f64) -> Duration {
        Duration::from_nanos(self.hist.quantile(q))
    }

    /// Totals of one variant.
    pub fn totals(&self, v: Variant) -> &VariantTotals {
        self.per_variant
            .iter()
            .find(|t| t.variant == v)
            .expect("variant present")
    }

    /// Human-readable block for the `table_serve` harness.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "served {} jobs over {} cells on {} workers in {:.2} s",
            self.jobs_done,
            self.cells,
            self.workers,
            self.wall.as_secs_f64()
        );
        let _ = writeln!(
            s,
            "throughput {:7.2} cells/s   latency p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms",
            self.cells_per_sec(),
            self.latency(0.50).as_secs_f64() * 1e3,
            self.latency(0.95).as_secs_f64() * 1e3,
            self.latency(0.99).as_secs_f64() * 1e3,
        );
        let _ = writeln!(s, "{:<14} {:>14} {:>14}", "variant", "messages", "MB");
        for t in &self.per_variant {
            if t.variant == Variant::Seq {
                continue;
            }
            let _ = writeln!(
                s,
                "{:<14} {:>14} {:>14.1}",
                t.variant.label(),
                t.messages,
                t.bytes as f64 / 1e6
            );
        }
        if let Some(p) = &self.policy {
            let _ = writeln!(
                s,
                "adaptive: {} prefetch rounds / {} push rounds over {} epochs",
                p.prefetch_rounds, p.push_rounds, p.epochs
            );
        }
        if let Some(g) = self.steady_growth {
            let _ = writeln!(s, "steady-state heap growth: {g} B");
        }
        s
    }
}

/// Per-cell golden: the cold run's (messages, bytes) per variant.
struct Golden {
    rows: Vec<(Variant, u64, u64)>,
}

impl Golden {
    fn capture(m: &WorkloadMatrix) -> Self {
        Golden {
            rows: m
                .runs
                .iter()
                .map(|r| (r.variant, r.report.messages, r.report.bytes))
                .collect(),
        }
    }

    fn check(&self, label: &str, m: &WorkloadMatrix) {
        for (want, run) in self.rows.iter().zip(&m.runs) {
            assert_eq!(want.0, run.variant, "{label}: variant order changed");
            assert_eq!(
                (want.1, want.2),
                (run.report.messages, run.report.bytes),
                "{label}/{:?}: warm run diverged from cold golden",
                run.variant
            );
        }
    }
}

/// One worker's locally accumulated statistics.
struct Tally {
    jobs: u64,
    hist: Histogram,
    /// Indexed like [`Variant::ALL`].
    messages: [u64; 6],
    bytes: [u64; 6],
    nets: [Option<NetReport>; 6],
    policy: Option<PolicyReport>,
}

impl Tally {
    fn new() -> Self {
        Tally {
            jobs: 0,
            hist: Histogram::new(),
            messages: [0; 6],
            bytes: [0; 6],
            nets: Default::default(),
            policy: None,
        }
    }

    fn absorb(&mut self, m: &WorkloadMatrix) {
        self.jobs += 1;
        for run in &m.runs {
            let i = Variant::ALL
                .iter()
                .position(|&v| v == run.variant)
                .expect("known variant");
            self.messages[i] += run.report.messages;
            self.bytes[i] += run.report.bytes;
            if let Some(net) = &run.report.net {
                match &mut self.nets[i] {
                    Some(acc) => acc.merge(net),
                    slot => *slot = Some(net.clone()),
                }
            }
            if let Some(pol) = &run.report.policy {
                match &mut self.policy {
                    Some(acc) => acc.merge(pol),
                    slot => *slot = Some(pol.clone()),
                }
            }
        }
    }

    fn merge(&mut self, other: Tally) {
        self.jobs += other.jobs;
        self.hist.merge(&other.hist);
        for i in 0..6 {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
        }
        for (acc, net) in self.nets.iter_mut().zip(other.nets) {
            if let Some(net) = net {
                match acc {
                    Some(a) => a.merge(&net),
                    slot => *slot = Some(net),
                }
            }
        }
        if let Some(pol) = other.policy {
            match &mut self.policy {
                Some(a) => a.merge(&pol),
                slot => *slot = Some(pol),
            }
        }
    }
}

/// Run the scenario-matrix service over `cells` and fold the results.
///
/// Every cell is first run cold (fresh clusters, no pooling) to pin its
/// golden per-variant totals; then the reusable-scratch path is enabled
/// and the workers serve jobs until [`ServeConfig::stop`] says stop.
/// Panics if any served job's bitwise contract or message totals differ
/// from the cold goldens.
pub fn serve(cells: &[SynthConfig], cfg: &ServeConfig) -> ServeOutcome {
    assert!(!cells.is_empty(), "need at least one grid cell");
    assert!(cfg.workers >= 1, "need at least one worker");

    // Shared setup per cell, built once: world + plan + CHAOS tables.
    let preps: Vec<Prepared> = cells.iter().map(|c| Prepared::new(c.clone())).collect();
    // Cold reference pass — also the last fresh-cluster run; everything
    // after goes through the recycled-scratch pool.
    let goldens: Vec<Golden> = preps
        .iter()
        .map(|p| Golden::capture(&run_matrix(p)))
        .collect();
    for p in &preps {
        p.set_reuse(true);
    }

    let pool: JobPool<usize> = JobPool::new(cfg.workers);
    let budget = ThreadBudget::new(cfg.thread_budget);
    let deadline = match cfg.stop {
        Stop::Jobs(n) => {
            pool.inject((0..n).map(|j| j % cells.len()));
            None
        }
        Stop::Window(w) => Some(Instant::now() + w),
    };
    // Seed a window-mode queue with one round per worker.
    if deadline.is_some() {
        for _ in 0..cfg.workers {
            pool.inject(0..cells.len());
        }
    }

    // Steady state begins once every cell has been served twice warm
    // (pools and pooled buffers hot).
    let warmup_jobs = 2 * cells.len() as u64;
    let served = AtomicU64::new(0);
    let track_allocs = cfg.check_allocs && cfg.workers == 1 && cfg!(debug_assertions);
    let tr: Option<&ServeTrace> = cfg.trace.as_deref();

    let start = Instant::now();
    let mut steady_growth = None;
    let mut total = Tally::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|me| {
                let (pool, budget, preps, goldens, served) =
                    (&pool, &budget, &preps, &goldens, &served);
                s.spawn(move || {
                    let mut tally = Tally::new();
                    let mut baseline: Option<i64> = None;
                    let mut jobno: u32 = 0;
                    loop {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                break;
                            }
                        }
                        let (cell, stolen) = match pool.pop_reporting(me) {
                            Some(c) => c,
                            None => match deadline {
                                // Window mode: the queue ran dry before
                                // the deadline — refill and go again.
                                Some(_) => {
                                    pool.inject(0..preps.len());
                                    continue;
                                }
                                None => break,
                            },
                        };
                        let prep = &preps[cell];
                        if let Some(t) = tr {
                            if let Some((victim, moved)) = stolen {
                                t.record(
                                    me,
                                    ServeEvent::Steal {
                                        victim: victim as u32,
                                        jobs: moved as u32,
                                    },
                                );
                            }
                            t.record(
                                me,
                                ServeEvent::JobStart {
                                    job: jobno,
                                    cell: cell as u32,
                                },
                            );
                        }
                        let nprocs = prep.cfg().nprocs;
                        let _tokens = budget.acquire(nprocs);
                        // Spare tokens (never waited for) widen this
                        // job's thread allowance: the cluster `run`s
                        // divide `nprocs + spares` across `nprocs`
                        // processor threads, so intra-cell parallelism
                        // engages exactly when the service is
                        // under-subscribed and idle tokens exist. One
                        // token ≙ one OS thread either way — the
                        // budget's cap on true thread count holds.
                        let spare = budget.try_acquire_up_to(
                            nprocs.saturating_mul(rayon::current_num_threads().saturating_sub(1)),
                        );
                        let pool = rayon::ThreadPoolBuilder::new()
                            .num_threads(nprocs + spare.tokens())
                            .build()
                            .expect("shim pools cannot fail to build");
                        let t0 = Instant::now();
                        let matrix = pool.install(|| run_matrix(prep));
                        drop(spare);
                        let ns = t0.elapsed().as_nanos() as u64;
                        goldens[cell].check(&matrix.label, &matrix);
                        if let Some(t) = tr {
                            // The job's simulated cost: the slowest
                            // variant's parallel time.
                            let sim_ns = matrix
                                .runs
                                .iter()
                                .map(|r| r.report.time.0)
                                .max()
                                .unwrap_or(0);
                            t.record(me, ServeEvent::JobDone { job: jobno, sim_ns });
                            // Warm jobs run off recycled clusters and
                            // return them to the pool on completion.
                            t.record(
                                me,
                                ServeEvent::Recycle {
                                    procs: prep.cfg().nprocs as u32,
                                },
                            );
                            jobno += 1;
                        }
                        tally.hist.record(ns);
                        tally.absorb(&matrix);
                        let done = served.fetch_add(1, Ordering::Relaxed) + 1;
                        if track_allocs && alloc::active() && done == warmup_jobs {
                            baseline = Some(alloc::net_bytes());
                        }
                    }
                    let growth = baseline.map(|b| alloc::net_bytes() - b);
                    (tally, growth)
                })
            })
            .collect();
        for h in handles {
            let (tally, growth) = h.join().expect("serve worker panicked");
            total.merge(tally);
            if growth.is_some() {
                steady_growth = growth;
            }
        }
    });
    let wall = start.elapsed();

    if let Some(g) = steady_growth {
        // Zero per-job growth in steady state: the total may wiggle by
        // a few pooled buffers' worth of capacity, but must not scale
        // with jobs served.
        debug_assert!(
            g <= 64 * 1024,
            "steady-state heap grew by {g} B over {} jobs — a recycle path is leaking",
            total.jobs.saturating_sub(warmup_jobs)
        );
    }

    let per_variant = Variant::ALL
        .iter()
        .enumerate()
        .map(|(i, &variant)| VariantTotals {
            variant,
            messages: total.messages[i],
            bytes: total.bytes[i],
            net: total.nets[i].take(),
        })
        .collect();
    ServeOutcome {
        jobs_done: total.jobs,
        wall,
        hist: total.hist,
        per_variant,
        policy: total.policy,
        cells: cells.len(),
        workers: cfg.workers,
        steady_growth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::{Dynamics, Structure};

    fn tiny(seed: u64, dynamics: Dynamics) -> SynthConfig {
        let mut cfg = SynthConfig::quick(Structure::Uniform, dynamics);
        cfg.n = 192;
        cfg.refs = 384;
        cfg.iters = 4;
        cfg.page_size = 128;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn serves_the_requested_job_count_with_stats() {
        let cells = [
            tiny(1, Dynamics::Static),
            tiny(2, Dynamics::PeriodicRemap { period: 2 }),
        ];
        let out = serve(&cells, &ServeConfig::jobs(2, 9));
        assert_eq!(out.jobs_done, 9);
        assert_eq!(out.hist.count(), 9);
        assert_eq!(out.cells, 2);
        // 9 jobs × 6 variants each produced totals; seq exchanged
        // nothing, every parallel variant exchanged something.
        assert_eq!(out.totals(Variant::Seq).messages, 0);
        assert!(out.totals(Variant::Seq).net.is_none());
        for v in Variant::PARALLEL {
            let t = out.totals(v);
            assert!(t.messages > 0, "{v:?} total empty");
            let net = t.net.as_ref().expect("parallel variants carry nets");
            assert_eq!(net.messages, t.messages, "{v:?} net/total mismatch");
            assert_eq!(net.bytes, t.bytes, "{v:?} net/total mismatch");
        }
        // The adaptive variant ran, so policy counters merged.
        assert!(out.policy.is_some());
        let p50 = out.latency(0.5);
        assert!(p50 > Duration::ZERO && p50 <= out.latency(0.99));
        assert!(out.cells_per_sec() > 0.0);
        let text = out.summary();
        assert!(text.contains("9 jobs"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn job_totals_scale_linearly_with_serves() {
        // Totals of k jobs of one deterministic cell = k × one job's.
        let cells = [tiny(7, Dynamics::Static)];
        let one = serve(&cells, &ServeConfig::jobs(1, 1));
        let three = serve(&cells, &ServeConfig::jobs(2, 3));
        for v in Variant::ALL {
            assert_eq!(one.totals(v).messages * 3, three.totals(v).messages);
            assert_eq!(one.totals(v).bytes * 3, three.totals(v).bytes);
        }
    }

    #[test]
    fn serve_trace_sees_every_job_and_recycle() {
        let cells = [tiny(5, Dynamics::Static)];
        let tr = Arc::new(ServeTrace::new(2, 256));
        let mut cfg = ServeConfig::jobs(2, 6);
        cfg.trace = Some(tr.clone());
        let out = serve(&cells, &cfg);
        assert_eq!(out.jobs_done, 6);
        let (jobs, _steals, recycles) = tr.totals();
        assert_eq!(jobs, 6, "one JobDone per served job");
        assert_eq!(recycles, 6, "every warm job returns its clusters");
        let json = tr.to_chrome_json();
        assert!(json.contains("\"sim_ns\""));
        // Tracing is an observer: totals match the untraced run.
        let plain = serve(&cells, &ServeConfig::jobs(2, 6));
        for v in Variant::ALL {
            assert_eq!(out.totals(v).messages, plain.totals(v).messages);
            assert_eq!(out.totals(v).bytes, plain.totals(v).bytes);
        }
    }

    #[test]
    fn window_mode_keeps_serving_until_the_deadline() {
        let cells = [tiny(3, Dynamics::Static)];
        let out = serve(&cells, &ServeConfig::window(2, Duration::from_millis(300)));
        assert!(out.jobs_done >= 1, "window served nothing");
        assert!(out.wall >= Duration::from_millis(300));
    }

    #[test]
    #[should_panic(expected = "need at least one grid cell")]
    fn empty_grid_is_rejected() {
        serve(&[], &ServeConfig::jobs(1, 1));
    }
}
