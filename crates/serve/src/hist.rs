//! A streaming log-bucketed latency histogram (HDR-style).
//!
//! Fixed memory (one `u64` per bucket), O(1) record, mergeable — each
//! executor thread records into its own histogram and the driver folds
//! them at the end, so the hot path never touches a shared lock. Values
//! land in a bucket of width `2^(msb-4)`, i.e. quantiles carry at most
//! ~6% relative error (16 sub-buckets per power of two) — plenty for
//! p50/p95/p99 over cell latencies spanning microseconds to seconds.

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Enough octaves for any u64 nanosecond count.
const NBUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// See module docs. Values are unitless `u64`s; the serve driver feeds
/// nanoseconds.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn index_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) & (SUB - 1);
    ((shift + 1) as u64 * SUB + sub) as usize
}

/// Lower edge of bucket `i` (the value [`index_of`] maps back from).
fn value_of(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = (i / SUB) as u32 - 1;
    let sub = i % SUB;
    (SUB + sub) << shift
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NBUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.total += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower edge — the
    /// value `X` such that at least `q` of observations are `<= X` up
    /// to bucket resolution. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return value_of(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(lower_edge, upper_edge, count)` rows
    /// in ascending order — the full log-bucket histogram for machine
    /// consumption (`table_serve --json`). Edges are half-open
    /// `[lower, upper)` in the recorded unit; the final octave's upper
    /// edge saturates at `u64::MAX`. Row counts sum to [`Histogram::count`].
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let hi = if i + 1 < NBUCKETS {
                    value_of(i + 1)
                } else {
                    u64::MAX
                };
                (value_of(i), hi, n)
            })
            .collect()
    }

    /// Fold `other` into `self` (bucket-wise; exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_value_roundtrip() {
        for v in [0u64, 1, 15, 16, 17, 100, 1023, 1024, 1 << 20, u64::MAX] {
            let i = index_of(v);
            assert!(i < NBUCKETS, "index {i} out of range for {v}");
            let lo = value_of(i);
            assert!(lo <= v, "bucket edge {lo} above value {v}");
            // Next bucket's edge is above v (bucket really contains v).
            if i + 1 < NBUCKETS {
                assert!(value_of(i + 1) > v, "value {v} beyond bucket {i}");
            }
        }
        // Edges are monotone.
        for i in 1..NBUCKETS {
            assert!(value_of(i) > value_of(i - 1), "edge order at {i}");
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs..1ms in ns
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "quantiles ordered");
        // ≤ ~6.25% bucket error plus the ramp's own granularity.
        assert!((p50 as f64 - 500_000.0).abs() < 65_000.0, "p50={p50}");
        assert!((p95 as f64 - 950_000.0).abs() < 65_000.0, "p95={p95}");
        assert!(p99 <= 1_000_000 && p99 as f64 > 900_000.0, "p99={p99}");
        assert!((h.mean() - 500_500_000.0 / 1000.0).abs() < 1.0);
    }

    #[test]
    fn nonzero_buckets_cover_every_observation() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17, 900, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let rows = h.nonzero_buckets();
        assert_eq!(rows.iter().map(|&(_, _, n)| n).sum::<u64>(), h.count());
        for &(lo, hi, n) in &rows {
            assert!(lo < hi, "degenerate bucket [{lo},{hi})");
            assert!(n > 0);
        }
        // Rows are ascending and disjoint.
        for w in rows.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
        // The recorded values each land inside some row.
        for v in [0u64, 3, 17, 900, 1 << 30] {
            assert!(
                rows.iter().any(|&(lo, hi, _)| lo <= v && v < hi),
                "{v} not covered"
            );
        }
        // u64::MAX lands in the open-ended overflow bucket.
        assert_eq!(rows.last().unwrap().1, u64::MAX, "max covered");
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            let x = v * v + 7;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
