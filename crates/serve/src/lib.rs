//! # serve — scenario-matrix-as-a-service
//!
//! The repo's contract check — [`apps::workload::run_matrix`] running
//! one workload as all six system variants and asserting bitwise
//! agreement — is a one-shot affair everywhere else: build the world,
//! run the matrix, print a table, exit. This crate turns it into a
//! **service**: a bounded pool of executor threads pulls cell jobs
//! (a [`synth::SynthConfig`] grid cell) from a work-stealing queue,
//! runs each through the full six-variant matrix, and keeps going —
//! for a fixed job count or a wall-clock window — while recording
//! per-job latency into a streaming histogram and folding per-variant
//! message statistics without a global lock.
//!
//! What sustained serving buys over one-shot runs:
//!
//! * **Soak coverage.** Every job re-asserts the six-way bitwise
//!   contract *and* is checked against cold-run golden message totals,
//!   so protocol state that survives a run (a stale diff log, an
//!   unreset barrier board) surfaces as a loud failure on job two.
//! * **A throughput figure.** Sustained cells/sec and p50/p95/p99
//!   latency over the grid is a single number that moves when anything
//!   in the stack — twin creation, diff encoding, barrier folding —
//!   gets slower, making it a regression canary the per-variant message
//!   counts cannot be (those are pinned exactly).
//! * **An allocation regime.** Serving the same cells repeatedly makes
//!   "zero per-job heap growth" a checkable property; the
//!   reusable-scratch paths (`dsm::ClusterPool`, pooled report buffers)
//!   exist so the steady state recycles rather than reallocates.
//!
//! The moving parts, bottom-up: [`hist::Histogram`] (log-bucketed
//! mergeable latency percentiles), [`deque::JobPool`] (injector +
//! per-worker steal queues), [`budget::ThreadBudget`] (a semaphore over
//! simulated-processor tokens capping true OS-thread count), and
//! [`driver::serve`] (goldens, workers, merged [`ServeOutcome`]).

pub mod alloc;
pub mod budget;
pub mod deque;
pub mod driver;
pub mod hist;

pub use budget::{BudgetGuard, ThreadBudget};
pub use deque::JobPool;
pub use driver::{serve, ServeConfig, ServeOutcome, Stop, VariantTotals};
pub use hist::Histogram;
