//! moldyn on the DSM: base TreadMarks (pure demand paging) and the
//! compiler-optimized build (`Validate` aggregation) — the `Tmk base` /
//! `Tmk optimized` rows of Table 1.
//!
//! Program structure (paper §5.1): molecules are assigned to processors
//! with the RCB partitioner and *remapped* so each processor's molecules
//! are contiguous. Each step:
//!
//! 1. (on rebuild steps) every processor reads all positions and
//!    rebuilds its section of the shared interaction list;
//! 2. `ComputeForces`: each processor walks its list section, reading
//!    `x` through the indirection and accumulating into a private
//!    `local_forces` (the Figure-2 transformation);
//! 3. the shared `forces` array is updated in a *pipelined* fashion in
//!    `nprocs` barrier-separated rounds — each round a processor updates
//!    1/nprocs of the data, the first writer of a chunk overwriting
//!    (`WRITE_ALL`) and the rest accumulating (`READ&WRITE_ALL`), with
//!    the chunk's *owner* going last;
//! 4. owners integrate positions from their force chunk.
//!
//! The optimized build takes its `INDIRECT` descriptor from `fcc`
//! compiling the paper's Figure-1 source — the compiler genuinely drives
//! the run-time.

use parking_lot::Mutex;
use rsd::{Dim, Env, Rsd};
use sdsm_core::{validate, AccessType, Cluster, Desc, DsmConfig, RegionRef, Validator};
use simnet::SimTime;

use chaos::{rcb_partition, Partition};

use super::geometry::{build_interaction_list_for, pair_force, MoldynWorld};
use super::{MoldynConfig, DT};
use crate::report::{RunReport, SystemKind};
use crate::work;

/// Which Tmk build to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmkMode {
    /// Unmodified TreadMarks: demand paging only.
    Base,
    /// Compiler-inserted `Validate`: aggregation + prefetch + `*_ALL`.
    Optimized,
    /// Runtime-adaptive aggregation (`adapt` crate): same program as
    /// `Base`, but each processor carries an [`adapt::AdaptivePolicy`]
    /// that learns the access pattern and batches predictable fetches.
    Adaptive,
    /// The adaptive engine in **update-push** mode: same predictor as
    /// `Adaptive`, but each predicted exchange is a single one-way
    /// writer push per peer instead of a request/reply pair.
    Push,
}

impl TmkMode {
    pub fn system_kind(self) -> SystemKind {
        match self {
            TmkMode::Base => SystemKind::TmkBase,
            TmkMode::Optimized => SystemKind::TmkOpt,
            TmkMode::Adaptive => SystemKind::TmkAdaptive,
            TmkMode::Push => SystemKind::TmkPush,
        }
    }

    /// Does this mode install the runtime-adaptive engine?
    pub fn is_adaptive(self) -> bool {
        matches!(self, TmkMode::Adaptive | TmkMode::Push)
    }
}

/// Run moldyn on the simulated DSM. Returns the Table-1 row and the
/// final positions in *original* numbering for verification.
pub fn run_tmk(
    cfg: &MoldynConfig,
    world: &MoldynWorld,
    mode: TmkMode,
    seq_time: SimTime,
) -> (RunReport, Vec<[f64; 3]>) {
    let nprocs = cfg.nprocs;
    let n = cfg.n;

    // --- untimed setup: partition, remap, compile ---
    let part = rcb_partition(&world.pos, nprocs);
    let pos_new: Vec<[f64; 3]> = (0..n).map(|k| world.pos[part.old_of[k] as usize]).collect();

    // Compile Figure 1; the optimized build uses the emitted site.
    let compiled = fcc::compile(fcc::fixtures::MOLDYN_SOURCE).expect("figure-1 source compiles");
    let site = compiled
        .sites
        .iter()
        .find(|s| s.unit == "computeforces")
        .expect("ComputeForces Validate site")
        .clone();
    assert_eq!(site.reductions[0].local, "local_forces");

    // Interaction-list capacity per processor (the 1997 program sized
    // this statically too).
    let per_proc_counts: Vec<usize> = (0..nprocs)
        .map(|p| {
            let r = part.range_of(p);
            build_interaction_list_for(&pos_new, world.cutoff, world.box_l, r.start, r.end).len()
        })
        .collect();
    let cap_pp = per_proc_counts.iter().max().unwrap() * 3 / 2 + 64;
    let cap_total = cap_pp * nprocs;

    let cl = Cluster::new(DsmConfig {
        nprocs,
        page_size: cfg.page_size,
        cost: cfg.cost.clone(),
    });
    let x = cl.alloc::<f64>(3 * n);
    let forces = cl.alloc::<f64>(3 * n);
    let ilist = cl.alloc::<i32>(2 * cap_total);
    let npairs = cl.alloc::<i64>(nprocs);

    let rebuilds = cfg.rebuild_steps();
    let cap = crate::harness::Capture::new(nprocs);

    cl.run(|p| {
        if mode.is_adaptive() {
            p.set_policy(super::adaptive_run::policy(mode));
        }
        let me = p.rank();
        let my_mols = part.range_of(me);
        let rc2 = world.cutoff * world.cutoff;
        let mut v = Validator::new();
        let mut local = vec![0.0f64; 3 * n]; // private local_forces (Figure 2)
        let mut xbuf = vec![0.0f64; 3 * n]; // private position snapshot for rebuilds
        let mut my_npairs;

        // --- untimed initialization: positions + initial list build ---
        for i in my_mols.clone() {
            for (d, &c) in pos_new[i].iter().enumerate() {
                p.write(&x, 3 * i + d, c);
            }
        }
        // First invalidation of the coordinate pages — the same pages
        // the position-update barrier re-invalidates every step, so it
        // carries that site's tag and starts that phase's event axis.
        p.barrier_tagged(crate::phases::UPDATE);
        my_npairs = rebuild_list(
            p, &part, me, &x, &ilist, &npairs, cap_pp, world, &mut xbuf, mode, &mut v, n,
        );
        // Phase tags name the barrier *sites* of the step loop so the
        // adaptive engine learns one plan per site (crate::phases); the
        // init-time rebuild barrier shares the in-loop rebuild site.
        p.barrier_tagged(crate::phases::REBUILD);

        p.start_timed_region();
        p.reset_counters();

        for step in 1..=cfg.steps {
            // ---- (maybe) rebuild the interaction list ----
            if rebuilds.contains(&step) {
                my_npairs = rebuild_list(
                    p, &part, me, &x, &ilist, &npairs, cap_pp, world, &mut xbuf, mode, &mut v,
                    n,
                );
                p.barrier_tagged(crate::phases::REBUILD);
            }

            // ---- ComputeForces (the Figure-2 transformation) ----
            let my_start_pairs = me * cap_pp;
            if mode == TmkMode::Optimized {
                // Bind the compiler's symbolic section to this processor:
                // num_interactions = my count, offset by my list section.
                let sd = &site.descriptors[0];
                let env = Env::new().bind("num_interactions", my_npairs as i64);
                let mut sec = sd.section.eval(&env).expect("bound section");
                sec.dims[1].lo += my_start_pairs as i64;
                sec.dims[1].hi += my_start_pairs as i64;
                validate(
                    p,
                    &mut v,
                    &[Desc::Indirect {
                        data: molecule_region(&x),
                        ind: ilist,
                        ind_dims: vec![2, cap_total],
                        section: sec,
                        access: AccessType::Read,
                        sched: 1,
                    }],
                );
            }
            for l in local.iter_mut() {
                *l = 0.0;
            }
            p.compute(work::t(work::ZERO_US, 3 * n));
            for k in 0..my_npairs {
                let flat = 2 * (my_start_pairs + k);
                let n1 = p.read(&ilist, flat) as usize - 1; // 1-based entries
                let n2 = p.read(&ilist, flat + 1) as usize - 1;
                let xi = read3(p, &x, n1);
                let xj = read3(p, &x, n2);
                let f = pair_force(&xi, &xj, rc2);
                for d in 0..3 {
                    local[3 * n1 + d] += f[d];
                    local[3 * n2 + d] -= f[d];
                }
            }
            p.compute(work::t(work::MOLDYN_PAIR_US, my_npairs));

            // ---- pipelined reduction, owner last ----
            for s in 0..p.nprocs() {
                let chunk = (me + s + 1) % p.nprocs();
                let mr = part.range_of(chunk);
                let (elo, ehi) = (3 * mr.start, 3 * mr.end);
                if mode == TmkMode::Optimized {
                    let access = if s == 0 {
                        AccessType::WriteAll
                    } else {
                        AccessType::ReadWriteAll
                    };
                    validate(
                        p,
                        &mut v,
                        &[Desc::Direct {
                            data: RegionRef::of(&forces),
                            section: Rsd::new(vec![Dim::dense(elo as i64 + 1, ehi as i64)]),
                            access,
                            sched: 100 + chunk as u32,
                        }],
                    );
                }
                // `e` is simultaneously the shared-array and private-array
                // index (owner-computes), so the range loop is the honest form.
                #[allow(clippy::needless_range_loop)]
                if s == 0 {
                    for e in elo..ehi {
                        p.write(&forces, e, local[e]);
                    }
                } else {
                    for e in elo..ehi {
                        let cur = p.read(&forces, e);
                        p.write(&forces, e, cur + local[e]);
                    }
                }
                p.barrier_tagged(crate::phases::PIPELINE + s as u32);
            }

            // ---- position update (owner) ----
            let (elo, ehi) = (3 * my_mols.start, 3 * my_mols.end);
            if mode == TmkMode::Optimized {
                validate(
                    p,
                    &mut v,
                    &[Desc::Direct {
                        data: region3(&x),
                        section: Rsd::new(vec![Dim::dense(elo as i64 + 1, ehi as i64)]),
                        access: AccessType::ReadWriteAll,
                        sched: 200,
                    }],
                );
            }
            for e in elo..ehi {
                let f = p.read(&forces, e);
                let cur = p.read(&x, e);
                p.write(&x, e, cur + DT * f);
            }
            p.compute(work::t(work::MOLDYN_UPDATE_US, my_mols.len()));
            p.barrier_tagged(crate::phases::UPDATE);
        }

        // Capture the timed region before any result extraction.
        cap.freeze_tmk(me, &cl);
        cap.set_scan(me, v.scan_seconds());
        p.barrier();
    });

    // Policy decisions of the timed region (extraction reads below do
    // not touch these counters).
    let policy = mode.is_adaptive().then(|| cl.net().policy_report());

    // --- untimed result extraction ---
    let final_x: Mutex<Vec<[f64; 3]>> = Mutex::new(vec![[0.0; 3]; n]);
    cl.run(|p| {
        if p.rank() == 0 {
            let mut out = final_x.lock();
            for k in 0..n {
                let orig = part.old_of[k] as usize;
                for d in 0..3 {
                    out[orig][d] = p.read(&x, 3 * k + d);
                }
            }
        }
    });
    let final_x = final_x.into_inner();

    let checksum = final_x.iter().flatten().map(|v| v.abs()).sum();
    (
        cap.report(mode.system_kind(), seq_time, checksum, policy),
        final_x,
    )
}

/// One processor's share of a list (re)build: read every position
/// through the DSM, scan candidate pairs (charged at the 1997 O(N²)
/// cost), and write this processor's section of the shared list.
#[allow(clippy::too_many_arguments)]
fn rebuild_list(
    p: &mut sdsm_core::TmkProc,
    part: &Partition,
    me: usize,
    x: &sdsm_core::SharedSlice<f64>,
    ilist: &sdsm_core::SharedSlice<i32>,
    npairs: &sdsm_core::SharedSlice<i64>,
    cap_pp: usize,
    world: &MoldynWorld,
    xbuf: &mut [f64],
    mode: TmkMode,
    v: &mut Validator,
    n: usize,
) -> usize {
    let my_mols = part.range_of(me);
    if mode == TmkMode::Optimized {
        // Regular read of the whole coordinate array: aggregate the fetch.
        validate(
            p,
            v,
            &[Desc::Direct {
                data: region3(x),
                section: Rsd::dense1(1, 3 * n as i64),
                access: AccessType::Read,
                sched: 300,
            }],
        );
    }
    for (e, slot) in xbuf.iter_mut().enumerate() {
        *slot = p.read(x, e);
    }
    let pos: Vec<[f64; 3]> = (0..n)
        .map(|i| [xbuf[3 * i], xbuf[3 * i + 1], xbuf[3 * i + 2]])
        .collect();
    let list = build_interaction_list_for(&pos, world.cutoff, world.box_l, my_mols.start, my_mols.end);
    // Charged at the 1997 naive O(N²/2) scan, divided evenly: production
    // triangular loops balance the rows (Newton's-third-law pairing), so
    // every processor performs ~N²/2P pair tests regardless of which
    // rows' pairs it records. The recorded pair set is unchanged.
    let tested = n * (n - 1) / 2 / p.nprocs();
    p.compute(work::t(work::MOLDYN_PAIRTEST_US, tested));

    assert!(
        list.len() <= cap_pp,
        "interaction list overflow: {} > {}",
        list.len(),
        cap_pp
    );
    let my_start = me * cap_pp;
    if mode == TmkMode::Optimized {
        // Pre-twin this processor's list section (regular WRITE).
        validate(
            p,
            v,
            &[Desc::Direct {
                data: RegionRef::of(ilist),
                section: Rsd::dense1(
                    2 * my_start as i64 + 1,
                    2 * (my_start + list.len().max(1)) as i64,
                ),
                access: AccessType::Write,
                sched: 400,
            }],
        );
    }
    for (k, &(i, j)) in list.iter().enumerate() {
        let flat = 2 * (my_start + k);
        p.write(ilist, flat, i as i32 + 1); // 1-based, Fortran-style
        p.write(ilist, flat + 1, j as i32 + 1);
    }
    p.write(npairs, me, list.len() as i64);
    list.len()
}

#[inline]
fn read3(p: &mut sdsm_core::TmkProc, x: &sdsm_core::SharedSlice<f64>, i: usize) -> [f64; 3] {
    [
        p.read(x, 3 * i),
        p.read(x, 3 * i + 1),
        p.read(x, 3 * i + 2),
    ]
}

/// Element view of the coordinate array (for DIRECT sections).
fn region3(x: &sdsm_core::SharedSlice<f64>) -> RegionRef {
    RegionRef::of(x)
}

/// Molecule-grained view of the coordinate array: the indirection targets
/// are molecule numbers, and one molecule is three f64s (24 bytes, which
/// may straddle a page boundary — Read_indices handles the split).
fn molecule_region(x: &sdsm_core::SharedSlice<f64>) -> RegionRef {
    RegionRef {
        base: x.base_byte(),
        len: x.len() / 3,
        elem: 24,
    }
}
