//! moldyn on CHAOS: the hand-coded inspector/executor build — the
//! `CHAOS` row of Table 1.
//!
//! Following paper §5.1: the RCB partitioner assigns molecules (this
//! partition lasts the whole run); the translation table is
//! **distributed** ("We were unable to use a replicated translation
//! table, owing to the amount of memory that it required"); the
//! inspector runs once at start-up (untimed, like the paper's) and again
//! after every interaction-list rebuild (timed); the executor gathers
//! remote `x` values before the force loop and scatters force
//! contributions back after it.

use parking_lot::Mutex;
use simnet::{MsgKind, SimTime};

use chaos::{inspector, rcb_partition, ChaosWorld, Ghosted, TTable, TTableCache, TTableKind};

use super::geometry::{build_interaction_list_for, pair_force, MoldynWorld};
use super::{MoldynConfig, DT};
use crate::report::{RunReport, SystemKind};
use crate::work;

/// Run moldyn under CHAOS. Returns the Table-1 row and final positions
/// (original numbering).
pub fn run_chaos(
    cfg: &MoldynConfig,
    world: &MoldynWorld,
    seq_time: SimTime,
) -> (RunReport, Vec<[f64; 3]>) {
    let nprocs = cfg.nprocs;
    let n = cfg.n;

    // Partition + remap (untimed, as in the paper).
    let part = rcb_partition(&world.pos, nprocs);
    let pos_new: Vec<[f64; 3]> = (0..n).map(|k| world.pos[part.old_of[k] as usize]).collect();
    // Build the table over the *remapped* block layout: element k (new
    // numbering) lives on its owner at offset k - start.
    let remapped_part = {
        let owner: Vec<usize> = (0..n).map(|k| part.owner_of_new(k)).collect();
        chaos::Partition::from_owners(owner, nprocs)
    };
    let tt = TTable::new(TTableKind::Distributed, &remapped_part);

    let w = ChaosWorld::new(nprocs, cfg.cost.clone());
    let rebuilds = cfg.rebuild_steps();

    let cap = crate::harness::Capture::new(nprocs);
    let finals: Mutex<Vec<(usize, Vec<[f64; 3]>)>> = Mutex::new(Vec::new());

    w.run(|cp| {
        let me = cp.rank();
        let my_range = part.range_of(me);
        let rc2 = world.cutoff * world.cutoff;
        let mut cache = TTableCache::new();

        // Owned blocks (remapped/new numbering, locally dense).
        let mut x_own: Vec<[f64; 3]> = pos_new[my_range.clone()].to_vec();
        let nloc = x_own.len();

        // Position snapshot used for list building (allgather).
        let mut pos_snap = pos_new.clone();

        // --- untimed: initial list + inspector ---
        let mut pairs =
            build_interaction_list_for(&pos_snap, world.cutoff, world.box_l, my_range.start, my_range.end);
        let t0 = cp.now();
        let mut sched = inspector(
            cp,
            &tt,
            &mut cache,
            pairs.iter().flat_map(|&(i, j)| [i, j]),
        );
        cap.set_untimed_inspector(me, (cp.now() - t0).as_secs_f64());
        let mut locs: Vec<(chaos::Loc, chaos::Loc)> = resolve(&pairs, &tt, &sched, me);

        cp.start_timed_region();
        let mut inspector_in_region = 0.0f64;

        for step in 1..=cfg.steps {
            if rebuilds.contains(&step) {
                // Rebuild: allgather positions, rebuild my pairs, re-run
                // the inspector (this is what the paper charges CHAOS
                // for: "CHAOS suffers from having to rerun the
                // inspector").
                allgather_x(cp, &part, &x_own, &mut pos_snap);
                pairs = build_interaction_list_for(
                    &pos_snap,
                    world.cutoff,
                    world.box_l,
                    my_range.start,
                    my_range.end,
                );
                // Balanced triangular scan (see the Tmk build's note).
                let tested = n * (n - 1) / 2 / cp.nprocs();
                cp.compute(work::t(work::MOLDYN_PAIRTEST_US, tested));
                let t0 = cp.now();
                sched = inspector(cp, &tt, &mut cache, pairs.iter().flat_map(|&(i, j)| [i, j]));
                inspector_in_region += (cp.now() - t0).as_secs_f64();
                locs = resolve(&pairs, &tt, &sched, me);
            }

            // --- gather remote x; zero forces; compute; scatter ---
            // The schedule is molecule-granular; payloads are triples.
            let mut xg = Ghosted {
                owned: flatten(&x_own),
                ghosts: vec![0.0; 3 * sched.ghost_count()],
            };
            gather3(cp, &sched, &mut xg);

            let mut fg = Ghosted {
                owned: vec![0.0; 3 * nloc],
                ghosts: vec![0.0; 3 * sched.ghost_count()],
            };
            // Paper §5.1: "each processor uses the schedule created by
            // the inspector to gather remote values of x and forces
            // before the main loop. Both x and forces are modified
            // elsewhere, necessitating the gather." Our kernel subset has
            // no "elsewhere" writes (owners just zeroed the array), so
            // the gathered values are zeros — but the communication is
            // part of the CHAOS program the paper measures, and the
            // ghost slots must be (re)zeroed before accumulation either
            // way.
            gather3(cp, &sched, &mut fg);
            fg.ghosts.iter_mut().for_each(|g| *g = 0.0);
            for (k, &(i, j)) in pairs.iter().enumerate() {
                let (li, lj) = locs[k];
                let xi = get3(&xg, li);
                let xj = get3(&xg, lj);
                let f = pair_force(&xi, &xj, rc2);
                add3(&mut fg, li, f, 1.0);
                add3(&mut fg, lj, f, -1.0);
                let _ = (i, j);
            }
            cp.compute(work::t(work::MOLDYN_PAIR_US, pairs.len()));
            scatter3(cp, &sched, &mut fg);

            // --- owner integrates positions ---
            for (l, xi) in x_own.iter_mut().enumerate() {
                for (d, c) in xi.iter_mut().enumerate() {
                    *c += DT * fg.owned[3 * l + d];
                }
            }
            cp.compute(work::t(work::MOLDYN_UPDATE_US, nloc));
            cp.sync();
        }

        cap.freeze_chaos(cp);
        cap.set_inspector(me, inspector_in_region);
        finals.lock().push((me, x_own));
    });

    // Reassemble final positions in original numbering.
    let mut final_x = vec![[0.0f64; 3]; n];
    for (me, block) in finals.into_inner() {
        let r = part.range_of(me);
        for (off, v) in block.into_iter().enumerate() {
            final_x[part.old_of[r.start + off] as usize] = v;
        }
    }

    let checksum = final_x.iter().flatten().map(|v| v.abs()).sum();
    (
        cap.report(SystemKind::Chaos, seq_time, checksum, None),
        final_x,
    )
}

/// Pre-resolve every pair's two molecule locations (owned / ghost).
fn resolve(
    pairs: &[(u32, u32)],
    tt: &TTable,
    sched: &chaos::CommSchedule,
    me: usize,
) -> Vec<(chaos::Loc, chaos::Loc)> {
    pairs
        .iter()
        .map(|&(i, j)| {
            let (oi, offi) = tt.translate_free(i);
            let (oj, offj) = tt.translate_free(j);
            (sched.locate(me, oi, offi), sched.locate(me, oj, offj))
        })
        .collect()
}

#[inline]
fn get3(g: &Ghosted, loc: chaos::Loc) -> [f64; 3] {
    let b = match loc {
        chaos::Loc::Own(o) => 3 * o as usize,
        chaos::Loc::Ghost(gi) => 3 * gi as usize,
    };
    match loc {
        chaos::Loc::Own(_) => [g.owned[b], g.owned[b + 1], g.owned[b + 2]],
        chaos::Loc::Ghost(_) => [g.ghosts[b], g.ghosts[b + 1], g.ghosts[b + 2]],
    }
}

#[inline]
fn add3(g: &mut Ghosted, loc: chaos::Loc, f: [f64; 3], sign: f64) {
    let b = match loc {
        chaos::Loc::Own(o) => 3 * o as usize,
        chaos::Loc::Ghost(gi) => 3 * gi as usize,
    };
    let dst = match loc {
        chaos::Loc::Own(_) => &mut g.owned,
        chaos::Loc::Ghost(_) => &mut g.ghosts,
    };
    for d in 0..3 {
        dst[b + d] += sign * f[d];
    }
}

fn flatten(v: &[[f64; 3]]) -> Vec<f64> {
    v.iter().flatten().copied().collect()
}

/// Gather molecule triples according to the (molecule-granular) schedule.
fn gather3(cp: &mut chaos::ChaosProc, sched: &chaos::CommSchedule, data: &mut Ghosted) {
    // Expand ghost storage to triples.
    data.ghosts.resize(3 * sched.ghost_count(), 0.0);
    let me = cp.rank();
    let cost = cp.net().cost().clone();
    let mut out = Vec::new();
    let mut packed = 0usize;
    for q in 0..cp.nprocs() {
        let list = sched.send(q);
        if q == me || list.is_empty() {
            continue;
        }
        let mut vals = Vec::with_capacity(3 * list.len());
        for &o in list {
            let b = 3 * o as usize;
            vals.extend_from_slice(&data.owned[b..b + 3]);
        }
        packed += vals.len() * 8;
        out.push((q, vals));
    }
    cp.compute(cost.pack(packed));
    let incoming = cp.exchange_f64(MsgKind::Gather, out);
    for (from, vals) in incoming {
        let start = 3 * sched.ghost_starts[from] as usize;
        data.ghosts[start..start + vals.len()].copy_from_slice(&vals);
    }
    cp.compute(cost.pack(packed));
}

/// Scatter-add molecule triples back to their owners.
fn scatter3(cp: &mut chaos::ChaosProc, sched: &chaos::CommSchedule, data: &mut Ghosted) {
    let me = cp.rank();
    let cost = cp.net().cost().clone();
    let mut out = Vec::new();
    let mut packed = 0usize;
    for q in 0..cp.nprocs() {
        let list = sched.recv(q);
        if q == me || list.is_empty() {
            continue;
        }
        let start = 3 * sched.ghost_starts[q] as usize;
        let vals: Vec<f64> = data.ghosts[start..start + 3 * list.len()].to_vec();
        packed += vals.len() * 8;
        out.push((q, vals));
    }
    cp.compute(cost.pack(packed));
    let incoming = cp.exchange_f64(MsgKind::Scatter, out);
    for (from, vals) in incoming {
        let list = sched.send(from);
        for (k, &o) in list.iter().enumerate() {
            let b = 3 * o as usize;
            for d in 0..3 {
                data.owned[b + d] += vals[3 * k + d];
            }
        }
    }
    cp.compute(cost.pack(packed));
}

/// All-to-all broadcast of owned position blocks (used by the rebuild:
/// every processor needs every position to scan its candidate pairs).
fn allgather_x(
    cp: &mut chaos::ChaosProc,
    part: &chaos::Partition,
    x_own: &[[f64; 3]],
    snap: &mut [[f64; 3]],
) {
    let me = cp.rank();
    let flat = flatten(x_own);
    let out: Vec<(usize, Vec<f64>)> = (0..cp.nprocs())
        .filter(|&q| q != me)
        .map(|q| (q, flat.clone()))
        .collect();
    let incoming = cp.exchange_f64(MsgKind::Gather, out);
    // Own block.
    let r = part.range_of(me);
    snap[r.clone()].copy_from_slice(x_own);
    for (from, vals) in incoming {
        let r = part.range_of(from);
        for (off, chunk) in vals.chunks_exact(3).enumerate() {
            snap[r.start + off] = [chunk[0], chunk[1], chunk[2]];
        }
    }
}
