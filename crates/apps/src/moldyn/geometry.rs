//! Workload generation and the shared physics kernel.
//!
//! All four builds (sequential, Tmk base, Tmk optimized, CHAOS) use the
//! same seeded geometry, the same interaction-list construction, and the
//! same pair force, so their results agree to summation-order tolerance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::MoldynConfig;

/// The generated molecular system.
#[derive(Debug, Clone)]
pub struct MoldynWorld {
    /// Initial positions (original numbering).
    pub pos: Vec<[f64; 3]>,
    /// Edge length of the (open, non-periodic) box.
    pub box_l: f64,
    /// Cutoff radius.
    pub cutoff: f64,
}

/// Perturbed-lattice positions: deterministic for a given seed.
pub fn gen_positions(cfg: &MoldynConfig) -> MoldynWorld {
    let side = (cfg.n as f64).cbrt().ceil() as usize;
    let box_l = side as f64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pos = Vec::with_capacity(cfg.n);
    'outer: for gx in 0..side {
        for gy in 0..side {
            for gz in 0..side {
                if pos.len() == cfg.n {
                    break 'outer;
                }
                let jitter = |r: &mut StdRng| r.gen_range(-0.3..0.3);
                pos.push([
                    gx as f64 + 0.5 + jitter(&mut rng),
                    gy as f64 + 0.5 + jitter(&mut rng),
                    gz as f64 + 0.5 + jitter(&mut rng),
                ]);
            }
        }
    }
    MoldynWorld {
        pos,
        box_l,
        cutoff: box_l * cfg.cutoff_frac,
    }
}

/// Build the interaction list: all pairs `(i, j)`, `i < j`, within the
/// cutoff. Cell-list construction keeps the *wall-clock* cost near
/// O(N); the 1997 code's O(N²/2) pair scan is what the *simulated* cost
/// model charges (see `work::MOLDYN_PAIRTEST_US`). Pairs come out sorted
/// by `(i, j)` — deterministic for every consumer.
pub fn build_interaction_list(pos: &[[f64; 3]], cutoff: f64, box_l: f64) -> Vec<(u32, u32)> {
    build_interaction_list_for(pos, cutoff, box_l, 0, pos.len())
}

/// The sub-list of interactions whose first (lower-numbered) molecule
/// lies in `[first, last)` — what one processor builds in the parallel
/// versions. Concatenating the per-processor lists over a partition of
/// the index space equals [`build_interaction_list`].
pub fn build_interaction_list_for(
    pos: &[[f64; 3]],
    cutoff: f64,
    box_l: f64,
    first: usize,
    last: usize,
) -> Vec<(u32, u32)> {
    let ncell = (box_l / cutoff).floor().max(1.0) as i64;
    let cell_of = |p: &[f64; 3]| -> (i64, i64, i64) {
        let c = |v: f64| ((v / box_l * ncell as f64) as i64).clamp(0, ncell - 1);
        (c(p[0]), c(p[1]), c(p[2]))
    };
    // Bucket all molecules.
    let mut buckets: std::collections::HashMap<(i64, i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, p) in pos.iter().enumerate() {
        buckets.entry(cell_of(p)).or_default().push(i as u32);
    }
    let rc2 = cutoff * cutoff;
    let mut list = Vec::new();
    for i in first..last {
        let pi = &pos[i];
        let (cx, cy, cz) = cell_of(pi);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let Some(cands) = buckets.get(&(cx + dx, cy + dy, cz + dz)) else {
                        continue;
                    };
                    for &j in cands {
                        if (j as usize) <= i {
                            continue;
                        }
                        let pj = &pos[j as usize];
                        let d0 = pi[0] - pj[0];
                        let d1 = pi[1] - pj[1];
                        let d2 = pi[2] - pj[2];
                        if d0 * d0 + d1 * d1 + d2 * d2 < rc2 {
                            list.push((i as u32, j));
                        }
                    }
                }
            }
        }
    }
    list.sort_unstable();
    list
}

/// The pair force kernel — identical in every build. A smooth, bounded,
/// deterministic stand-in for the CHARMM non-bonded force: attractive ∝
/// displacement × (rc² − r²), clamped to zero beyond the cutoff (pairs
/// drift while the list is stale, exactly as in the original programs).
#[inline]
pub fn pair_force(xi: &[f64; 3], xj: &[f64; 3], rc2: f64) -> [f64; 3] {
    let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    let w = (rc2 - r2).max(0.0) * 5e-4;
    [d[0] * w, d[1] * w, d[2] * w]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> MoldynWorld {
        gen_positions(&MoldynConfig::small())
    }

    use super::super::MoldynConfig;

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.pos.len(), 512);
        // All molecules inside the box.
        for p in &a.pos {
            for &c in p {
                assert!(c > -0.5 && c < a.box_l + 0.5);
            }
        }
    }

    #[test]
    fn cell_list_matches_naive() {
        let w = small_world();
        let fast = build_interaction_list(&w.pos, w.cutoff, w.box_l);
        let rc2 = w.cutoff * w.cutoff;
        let mut naive = Vec::new();
        for i in 0..w.pos.len() {
            for j in i + 1..w.pos.len() {
                let (a, b) = (&w.pos[i], &w.pos[j]);
                let r2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
                if r2 < rc2 {
                    naive.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(fast, naive);
    }

    #[test]
    fn per_range_lists_concatenate() {
        let w = small_world();
        let whole = build_interaction_list(&w.pos, w.cutoff, w.box_l);
        let mut parts = Vec::new();
        for k in 0..4 {
            let lo = k * 128;
            parts.extend(build_interaction_list_for(&w.pos, w.cutoff, w.box_l, lo, lo + 128));
        }
        assert_eq!(whole, parts);
    }

    #[test]
    fn force_is_antisymmetric_and_cut() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 3.0];
        let rc2 = 4.0;
        let fab = pair_force(&a, &b, rc2);
        let fba = pair_force(&b, &a, rc2);
        for d in 0..3 {
            assert_eq!(fab[d], -fba[d]);
        }
        // Beyond cutoff: exactly zero.
        let far = [9.0, 2.0, 3.0];
        assert_eq!(pair_force(&a, &far, rc2), [0.0; 3]);
    }

    #[test]
    fn paper_scale_interaction_density() {
        // The paper-scale workload must land near ~1.1M interactions
        // (that is what the cost calibration assumes) — checked here at
        // reduced scale via density: partners/molecule ≈ (4/3)π rc³.
        let w = small_world();
        let list = build_interaction_list(&w.pos, w.cutoff, w.box_l);
        let per_mol = 2.0 * list.len() as f64 / w.pos.len() as f64;
        let expect = 4.0 / 3.0 * std::f64::consts::PI * w.cutoff.powi(3);
        assert!(
            per_mol > 0.4 * expect && per_mol < 1.2 * expect,
            "density {per_mol} vs {expect}"
        );
    }
}
