//! The sequential moldyn reference: real physics, modeled time.

use simnet::SimTime;

use super::geometry::{build_interaction_list, pair_force, MoldynWorld};
use super::{MoldynConfig, DT};
use crate::report::{RunReport, SystemKind};
use crate::work;

/// Result of the sequential run: the report plus the final positions
/// (original numbering) used to verify every parallel build.
pub struct SeqResult {
    pub report: RunReport,
    pub x: Vec<[f64; 3]>,
}

/// Run moldyn sequentially. The timed region covers the `steps`
/// simulation steps including in-loop list rebuilds, but not the initial
/// build — matching the paper's measurement ("data initialization ... not
/// timed", while Table 1's sequential times grow ~100 s per in-loop
/// rebuild).
pub fn run_seq(cfg: &MoldynConfig, world: &MoldynWorld) -> SeqResult {
    let mut x = world.pos.clone();
    let rc2 = world.cutoff * world.cutoff;
    let mut list = build_interaction_list(&x, world.cutoff, world.box_l);
    let rebuilds = cfg.rebuild_steps();

    let mut time = SimTime::ZERO;
    let mut forces = vec![[0.0f64; 3]; cfg.n];
    for step in 1..=cfg.steps {
        if rebuilds.contains(&step) {
            list = build_interaction_list(&x, world.cutoff, world.box_l);
            time += work::t(work::MOLDYN_PAIRTEST_US, cfg.n * (cfg.n - 1) / 2);
        }
        // ComputeForces
        forces.iter_mut().for_each(|f| *f = [0.0; 3]);
        time += work::t(work::ZERO_US, 3 * cfg.n);
        for &(i, j) in &list {
            let f = pair_force(&x[i as usize], &x[j as usize], rc2);
            for d in 0..3 {
                forces[i as usize][d] += f[d];
                forces[j as usize][d] -= f[d];
            }
        }
        time += work::t(work::MOLDYN_PAIR_US, list.len());
        // Position update
        for (xi, fi) in x.iter_mut().zip(&forces) {
            for d in 0..3 {
                xi[d] += DT * fi[d];
            }
        }
        time += work::t(work::MOLDYN_UPDATE_US, cfg.n);
    }

    let checksum = x.iter().flatten().map(|v| v.abs()).sum();
    SeqResult {
        report: RunReport {
            system: SystemKind::Sequential,
            time,
            seq_time: time,
            messages: 0,
            bytes: 0,
            inspector_s: 0.0,
            untimed_inspector_s: 0.0,
            validate_scan_s: 0.0,
            checksum,
            policy: None,
            net: None,
        },
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::super::gen_positions;
    use super::*;

    #[test]
    fn sequential_is_deterministic() {
        let cfg = MoldynConfig::small();
        let w = gen_positions(&cfg);
        let a = run_seq(&cfg, &w);
        let b = run_seq(&cfg, &w);
        assert_eq!(a.x, b.x);
        assert_eq!(a.report.time, b.report.time);
        assert!(a.report.checksum > 0.0);
    }

    #[test]
    fn molecules_actually_move() {
        let cfg = MoldynConfig::small();
        let w = gen_positions(&cfg);
        let r = run_seq(&cfg, &w);
        let moved = r
            .x
            .iter()
            .zip(&w.pos)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            moved > cfg.n / 2,
            "most molecules must move ({moved}/{})",
            cfg.n
        );
    }

    #[test]
    fn more_rebuilds_cost_more_time() {
        let w = gen_positions(&MoldynConfig::small());
        let mut cfg1 = MoldynConfig::small();
        cfg1.update_interval = 5; // 1 rebuild over 6 steps
        let mut cfg3 = MoldynConfig::small();
        cfg3.update_interval = 2; // rebuilds at 3, 5
        let t1 = run_seq(&cfg1, &w).report.time;
        let t3 = run_seq(&cfg3, &w).report.time;
        assert!(t3 > t1);
    }

    #[test]
    fn paper_scale_sequential_time() {
        // Full 16384-molecule run is too slow for a unit test; verify the
        // model composition at 1/8 linear scale and extrapolate: the time
        // formula is exact (counts × constants), so checking the counts
        // at small scale suffices. Here: time > 0 and speedup base.
        let cfg = MoldynConfig::small();
        let w = gen_positions(&cfg);
        let r = run_seq(&cfg, &w);
        assert!(r.report.time > SimTime::ZERO);
        assert_eq!(r.report.messages, 0);
    }
}
