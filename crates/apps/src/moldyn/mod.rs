//! moldyn — molecular dynamics with a periodically rebuilt interaction
//! list (paper §5.1, Figure 1, Table 1).

mod adaptive_run;
mod chaos_run;
mod geometry;
mod seq;
mod tmk;

pub use adaptive_run::{knobs as adaptive_knobs, run_adaptive, run_push};
pub use chaos_run::run_chaos;
pub use geometry::{build_interaction_list, gen_positions, pair_force, MoldynWorld};
pub use seq::run_seq;
pub use tmk::{run_tmk, TmkMode};

use simnet::CostModel;

/// Integration step size: small enough that the stale interaction list
/// stays physically sensible between rebuilds, large enough that every
/// position changes every step (so x pages really invalidate, as in the
/// paper's runs).
pub const DT: f64 = 1e-3;

/// Configuration of one moldyn experiment.
#[derive(Debug, Clone)]
pub struct MoldynConfig {
    /// Number of molecules (paper: 16384).
    pub n: usize,
    /// Simulation steps (paper: 40).
    pub steps: usize,
    /// Rebuild the interaction list when `(step-1) % update_interval == 0`
    /// (steps count from 1; the initial build is untimed initialization).
    /// Paper Table 1: 20, 15, 11 → 1, 2, 3 timed rebuilds over 40 steps.
    pub update_interval: usize,
    pub nprocs: usize,
    /// Cutoff radius as a fraction of the box edge. 1/8 reproduces the
    /// paper's workload character: each processor's interaction
    /// neighbourhood reaches 30–50% of all molecules (§5.1: "between 31%
    /// and 53% of the molecules interact"), and every processor
    /// contributes to every RCB octant's force pages.
    pub cutoff_frac: f64,
    pub seed: u64,
    pub page_size: usize,
    pub cost: CostModel,
}

impl MoldynConfig {
    /// The paper's Table 1 configuration.
    pub fn paper(update_interval: usize) -> Self {
        MoldynConfig {
            n: 16384,
            steps: 40,
            update_interval,
            nprocs: 8,
            cutoff_frac: 0.125,
            seed: 42,
            page_size: 4096,
            cost: CostModel::default(),
        }
    }

    /// A laptop-scale configuration for tests (same structure, ~1s).
    pub fn small() -> Self {
        MoldynConfig {
            n: 512,
            steps: 6,
            update_interval: 3,
            nprocs: 4,
            cutoff_frac: 0.3,
            seed: 7,
            page_size: 1024,
            cost: CostModel::default(),
        }
    }

    /// Steps at which the list is rebuilt (timed region).
    pub fn rebuild_steps(&self) -> Vec<usize> {
        (1..=self.steps)
            .filter(|&s| s > 1 && (s - 1) % self.update_interval == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_schedule_matches_table1() {
        // "varying the number of times the interaction list is updated
        //  from 1 through 3" over 40 steps at intervals 20/15/11.
        assert_eq!(MoldynConfig::paper(20).rebuild_steps(), vec![21]);
        assert_eq!(MoldynConfig::paper(15).rebuild_steps(), vec![16, 31]);
        assert_eq!(MoldynConfig::paper(11).rebuild_steps(), vec![12, 23, 34]);
    }
}
