//! moldyn under the runtime-adaptive engine — the fourth system variant.
//!
//! Same SPMD program as the `Tmk base` build (no `Validate` calls, no
//! compiler involvement): each processor installs an
//! [`adapt::AdaptivePolicy`] and the protocol layer does the rest. The
//! pattern the engine learns here is moldyn's whole story: between list
//! rebuilds, every step re-reads the *same* 30–50% of the coordinate
//! pages through the interaction list, and the pipelined force
//! reduction touches the same chunk pages every `nprocs + 1` barriers.
//! Both repeat, so both get promoted to batched barrier-time prefetch
//! within two steps.

use simnet::SimTime;

use super::geometry::MoldynWorld;
use super::tmk::{run_tmk, TmkMode};
use super::MoldynConfig;
use crate::report::RunReport;

/// moldyn's adaptive knobs. The interaction list is rebuilt every
/// `update_interval` steps, which shifts part of the read set; the
/// default two-window promotion re-learns a shifted page in two steps,
/// and the probe cadence retires pages that left the working set.
pub fn knobs() -> adapt::AdaptConfig {
    adapt::AdaptConfig::default()
}

/// The policy instance each processor installs (called from the shared
/// SPMD body in `tmk.rs` when the mode is [`TmkMode::Adaptive`] or
/// [`TmkMode::Push`] — the latter flips the engine to update-push).
pub(super) fn policy(mode: TmkMode) -> Box<dyn adapt::ProtocolPolicy> {
    let mut k = knobs();
    k.push = mode == TmkMode::Push;
    Box::new(adapt::AdaptivePolicy::new(k))
}

/// Run moldyn under the adaptive engine. Returns the table row (with
/// [`RunReport::policy`] filled) and the final positions in original
/// numbering.
pub fn run_adaptive(
    cfg: &MoldynConfig,
    world: &MoldynWorld,
    seq_time: SimTime,
) -> (RunReport, Vec<[f64; 3]>) {
    run_tmk(cfg, world, TmkMode::Adaptive, seq_time)
}

/// Run moldyn with the adaptive engine in update-push mode: the same
/// predictor, with each predicted exchange a single writer push per
/// peer instead of a request/reply pair.
pub fn run_push(
    cfg: &MoldynConfig,
    world: &MoldynWorld,
    seq_time: SimTime,
) -> (RunReport, Vec<[f64; 3]>) {
    run_tmk(cfg, world, TmkMode::Push, seq_time)
}

#[cfg(test)]
mod tests {
    use super::super::{gen_positions, run_seq};
    use super::*;

    #[test]
    fn adaptive_is_bitwise_identical_to_base_and_cuts_messages() {
        let cfg = MoldynConfig::small();
        let world = gen_positions(&cfg);
        let seq = run_seq(&cfg, &world);
        let (base, xb) = run_tmk(&cfg, &world, TmkMode::Base, seq.report.time);
        let (ad, xa) = run_adaptive(&cfg, &world, seq.report.time);
        // The policy only moves fetches earlier; the physics is
        // untouched, so agreement is exact — not a tolerance.
        assert_eq!(xa, xb, "adaptive must be bitwise identical to base");
        assert!(
            ad.messages < base.messages,
            "adaptive {} !< base {}",
            ad.messages,
            base.messages
        );
        assert!(ad.time < base.time, "batched fetches must also be faster");
        let pol = ad.policy.expect("adaptive run reports policy decisions");
        assert!(pol.promotions > 0, "the stable read set must be learned");
        assert!(pol.prefetch_rounds > 0);
    }

    #[test]
    fn adaptive_deterministic_across_runs() {
        let cfg = MoldynConfig::small();
        let world = gen_positions(&cfg);
        let seq = run_seq(&cfg, &world);
        let (r1, x1) = run_adaptive(&cfg, &world, seq.report.time);
        let (r2, x2) = run_adaptive(&cfg, &world, seq.report.time);
        assert_eq!(x1, x2);
        assert_eq!((r1.messages, r1.bytes, r1.time), (r2.messages, r2.bytes, r2.time));
        assert_eq!(r1.policy, r2.policy, "decision stream is deterministic");
    }
}
