//! The `Workload` trait: one contract every application — moldyn, nbf,
//! umesh, and every synthetic scenario from the `synth` crate —
//! implements, plus the generic five-variant runner that replaces the
//! per-app copy-pasted table harnesses.
//!
//! A workload is "a deterministic irregular computation that can run as
//! any of the six system variants and hand back a flattened final
//! state for cross-checking". The runner ([`run_matrix`]) runs the
//! sequential reference first, feeds its simulated time to the five
//! parallel variants, and enforces the repo's agreement contract:
//!
//! * the four Tmk builds (base / optimized / adaptive / update-push)
//!   are **always** bitwise identical — the protocol layers only move
//!   fetches earlier or later (or flip who initiates the exchange),
//!   never change data;
//! * against the sequential reference, each workload declares its
//!   [`CheckMode`]: `Bitwise` where the parallel reduction replays the
//!   sequential accumulation order (umesh, all synth scenarios),
//!   `Tolerance` where a pipelined reduction reassociates floating-point
//!   addition (moldyn, nbf).

use simnet::SimTime;

use crate::moldyn::{self, MoldynConfig, MoldynWorld, TmkMode};
use crate::nbf::{self, NbfConfig, NbfWorld};
use crate::report::{table_header, RunReport, SystemKind};
use crate::umesh::{self, Mesh, UmeshConfig};

/// The six system variants of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Seq,
    TmkBase,
    TmkOpt,
    TmkAdaptive,
    /// The adaptive engine in update-push mode: same predictor as
    /// `TmkAdaptive`, one one-way writer push per predicted exchange.
    TmkPush,
    Chaos,
}

impl Variant {
    pub const ALL: [Variant; 6] = [
        Variant::Seq,
        Variant::TmkBase,
        Variant::TmkOpt,
        Variant::TmkAdaptive,
        Variant::TmkPush,
        Variant::Chaos,
    ];

    /// The five parallel variants, in table order.
    pub const PARALLEL: [Variant; 5] = [
        Variant::TmkBase,
        Variant::TmkOpt,
        Variant::TmkAdaptive,
        Variant::TmkPush,
        Variant::Chaos,
    ];

    /// The Tmk protocol family — always bitwise-identical to each
    /// other, whatever the workload's contract vs sequential.
    pub const TMK: [Variant; 4] = [
        Variant::TmkBase,
        Variant::TmkOpt,
        Variant::TmkAdaptive,
        Variant::TmkPush,
    ];

    pub fn system_kind(self) -> SystemKind {
        match self {
            Variant::Seq => SystemKind::Sequential,
            Variant::TmkBase => SystemKind::TmkBase,
            Variant::TmkOpt => SystemKind::TmkOpt,
            Variant::TmkAdaptive => SystemKind::TmkAdaptive,
            Variant::TmkPush => SystemKind::TmkPush,
            Variant::Chaos => SystemKind::Chaos,
        }
    }

    pub fn label(self) -> &'static str {
        self.system_kind().label()
    }
}

/// Agreement contract between a parallel variant and the sequential
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckMode {
    /// Every variant replays the sequential accumulation order: results
    /// must be bit-for-bit equal.
    Bitwise,
    /// A pipelined reduction reassociates floating-point addition:
    /// results agree to `|g - w| <= tol + tol·|w|`.
    Tolerance(f64),
}

/// One deterministic irregular computation, runnable as all five
/// variants.
pub trait Workload {
    /// Scenario label for reports (e.g. `"moldyn n=512 p4"` or
    /// `"synth uniform/remap3/p4"`).
    fn label(&self) -> String;

    /// Run one variant. `seq_time` is the sequential reference time (for
    /// the speedup column; ignored when `v == Variant::Seq`). Returns the
    /// table row and the flattened final state for cross-checking.
    fn run(&self, v: Variant, seq_time: SimTime) -> (RunReport, Vec<f64>);

    /// Agreement contract vs the sequential reference.
    fn check_mode(&self) -> CheckMode {
        CheckMode::Tolerance(1e-9)
    }
}

/// One completed variant run.
pub struct VariantRun {
    pub variant: Variant,
    pub report: RunReport,
    pub x: Vec<f64>,
}

/// All five runs of one workload, cross-checked.
pub struct WorkloadMatrix {
    pub label: String,
    /// Sequential first, then [`Variant::PARALLEL`] in order.
    pub runs: Vec<VariantRun>,
}

impl WorkloadMatrix {
    pub fn get(&self, v: Variant) -> &VariantRun {
        self.runs
            .iter()
            .find(|r| r.variant == v)
            .expect("variant present")
    }

    /// Paper-style block for table harnesses.
    pub fn print(&self) {
        println!(
            "\n{}  (seq = {:.1} s)",
            self.label,
            self.get(Variant::Seq).report.time.as_secs_f64()
        );
        println!("{}", table_header());
        for r in &self.runs {
            if r.variant != Variant::Seq {
                println!("{}", r.report.row());
            }
        }
    }
}

fn assert_close(label: &str, variant: Variant, got: &[f64], want: &[f64], tol: f64) {
    assert_eq!(got.len(), want.len(), "{label}/{variant:?}: state length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol + tol * w.abs(),
            "{label}/{variant:?}: element {i} diverged from sequential: {g} vs {w}"
        );
    }
}

/// Run the sequential reference and all four parallel variants of `w`,
/// enforcing the agreement contract. Panics on any violation — this is
/// the cross-check every table harness and test goes through.
pub fn run_matrix(w: &(impl Workload + ?Sized)) -> WorkloadMatrix {
    let label = w.label();
    let (seq_report, seq_x) = w.run(Variant::Seq, SimTime::ZERO);
    let seq_time = seq_report.time;
    let mut runs = vec![VariantRun {
        variant: Variant::Seq,
        report: seq_report,
        x: seq_x,
    }];
    for v in Variant::PARALLEL {
        let (report, x) = w.run(v, seq_time);
        match w.check_mode() {
            CheckMode::Bitwise => {
                assert_eq!(
                    x, runs[0].x,
                    "{label}/{v:?}: must be bitwise identical to sequential"
                );
            }
            CheckMode::Tolerance(tol) => assert_close(&label, v, &x, &runs[0].x, tol),
        }
        runs.push(VariantRun {
            variant: v,
            report,
            x,
        });
    }
    // The Tmk family is bitwise-identical regardless of the seq
    // contract: the protocol layers (compiler aggregation, adaptive
    // prefetch, update-push) only move fetches, never change data.
    let matrix = WorkloadMatrix { label, runs };
    let base = &matrix.get(Variant::TmkBase).x;
    for v in Variant::TMK.into_iter().filter(|&v| v != Variant::TmkBase) {
        assert_eq!(
            &matrix.get(v).x,
            base,
            "{}/{v:?}: Tmk builds must be bitwise identical",
            matrix.label
        );
    }
    matrix
}

fn flatten3(x: &[[f64; 3]]) -> Vec<f64> {
    x.iter().flatten().copied().collect()
}

// ---------------------------------------------------------------------------
// The three classic applications as workloads. Each delegates to the
// app's public entry points, so the trait harness reproduces the direct
// calls' message counts exactly.

/// moldyn as a [`Workload`].
pub struct MoldynWorkload {
    pub cfg: MoldynConfig,
    pub world: MoldynWorld,
}

impl MoldynWorkload {
    pub fn new(cfg: MoldynConfig) -> Self {
        let world = moldyn::gen_positions(&cfg);
        MoldynWorkload { cfg, world }
    }
}

impl Workload for MoldynWorkload {
    fn label(&self) -> String {
        format!(
            "moldyn n={} rebuild@{} p{}",
            self.cfg.n, self.cfg.update_interval, self.cfg.nprocs
        )
    }

    fn run(&self, v: Variant, seq_time: SimTime) -> (RunReport, Vec<f64>) {
        match v {
            Variant::Seq => {
                let r = moldyn::run_seq(&self.cfg, &self.world);
                let x = flatten3(&r.x);
                (r.report, x)
            }
            Variant::TmkBase => {
                let (r, x) = moldyn::run_tmk(&self.cfg, &self.world, TmkMode::Base, seq_time);
                (r, flatten3(&x))
            }
            Variant::TmkOpt => {
                let (r, x) = moldyn::run_tmk(&self.cfg, &self.world, TmkMode::Optimized, seq_time);
                (r, flatten3(&x))
            }
            Variant::TmkAdaptive => {
                let (r, x) = moldyn::run_adaptive(&self.cfg, &self.world, seq_time);
                (r, flatten3(&x))
            }
            Variant::TmkPush => {
                let (r, x) = moldyn::run_push(&self.cfg, &self.world, seq_time);
                (r, flatten3(&x))
            }
            Variant::Chaos => {
                let (r, x) = moldyn::run_chaos(&self.cfg, &self.world, seq_time);
                (r, flatten3(&x))
            }
        }
    }
}

/// nbf as a [`Workload`].
pub struct NbfWorkload {
    pub cfg: NbfConfig,
    pub world: NbfWorld,
}

impl NbfWorkload {
    pub fn new(cfg: NbfConfig) -> Self {
        let world = nbf::gen_world(&cfg);
        NbfWorkload { cfg, world }
    }
}

impl Workload for NbfWorkload {
    fn label(&self) -> String {
        format!("nbf n={} p{}", self.cfg.n, self.cfg.nprocs)
    }

    fn run(&self, v: Variant, seq_time: SimTime) -> (RunReport, Vec<f64>) {
        match v {
            Variant::Seq => {
                let r = nbf::run_seq(&self.cfg, &self.world);
                let x = r.x.clone();
                (r.report, x)
            }
            Variant::TmkBase => nbf::run_tmk(&self.cfg, &self.world, TmkMode::Base, seq_time),
            Variant::TmkOpt => nbf::run_tmk(&self.cfg, &self.world, TmkMode::Optimized, seq_time),
            Variant::TmkAdaptive => nbf::run_adaptive(&self.cfg, &self.world, seq_time),
            Variant::TmkPush => nbf::run_push(&self.cfg, &self.world, seq_time),
            Variant::Chaos => nbf::run_chaos(&self.cfg, &self.world, seq_time),
        }
    }
}

/// umesh as a [`Workload`]. Its fixed-order owner-side reduction makes
/// the contract bitwise against the sequential reference.
pub struct UmeshWorkload {
    pub cfg: UmeshConfig,
    pub mesh: Mesh,
}

impl UmeshWorkload {
    pub fn new(cfg: UmeshConfig) -> Self {
        let mesh = umesh::gen_mesh(&cfg);
        UmeshWorkload { cfg, mesh }
    }
}

impl Workload for UmeshWorkload {
    fn label(&self) -> String {
        format!("umesh {}x{} p{}", self.cfg.side, self.cfg.side, self.cfg.nprocs)
    }

    fn check_mode(&self) -> CheckMode {
        CheckMode::Bitwise
    }

    fn run(&self, v: Variant, seq_time: SimTime) -> (RunReport, Vec<f64>) {
        match v {
            Variant::Seq => {
                let r = umesh::run_seq(&self.cfg, &self.mesh);
                let x = r.x.clone();
                (r.report, x)
            }
            Variant::TmkBase => umesh::run_tmk(&self.cfg, &self.mesh, TmkMode::Base, seq_time),
            Variant::TmkOpt => umesh::run_tmk(&self.cfg, &self.mesh, TmkMode::Optimized, seq_time),
            Variant::TmkAdaptive => umesh::run_adaptive(&self.cfg, &self.mesh, seq_time),
            Variant::TmkPush => umesh::run_push(&self.cfg, &self.mesh, seq_time),
            Variant::Chaos => umesh::run_chaos(&self.cfg, &self.mesh, seq_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels_match_system_kinds() {
        assert_eq!(Variant::Seq.label(), "seq");
        assert_eq!(Variant::TmkBase.label(), "Tmk base");
        assert_eq!(Variant::TmkPush.label(), "Tmk push");
        assert_eq!(Variant::Chaos.label(), "CHAOS");
        assert_eq!(Variant::ALL.len(), 6);
        assert_eq!(Variant::PARALLEL.len(), 5);
        assert!(!Variant::PARALLEL.contains(&Variant::Seq));
        assert!(Variant::TMK.iter().all(|v| Variant::PARALLEL.contains(v)));
    }

    #[test]
    fn umesh_matrix_runs_and_cross_checks() {
        let w = UmeshWorkload::new(UmeshConfig::small());
        let m = run_matrix(&w);
        assert_eq!(m.runs.len(), 6);
        // The runner already asserted bitwise agreement; spot-check the
        // protocol shape survives the trait indirection.
        assert!(
            m.get(Variant::TmkOpt).report.messages < m.get(Variant::TmkBase).report.messages
        );
    }
}
