//! # apps — the paper's two irregular applications, in four builds each
//!
//! * **moldyn** (§5.1): a CHARMM-like molecular dynamics kernel. An
//!   interaction list of all molecule pairs within a cutoff radius is the
//!   indirection array; it is rebuilt periodically as molecules move.
//! * **nbf** (§5.2): the GROMOS non-bonded-force kernel. Concatenated
//!   per-molecule partner lists form a *static* indirection array.
//!
//! A third workload, **umesh** (unstructured-mesh edge relaxation),
//! fills the remaining corner of the design space: a static *pair*
//! list.
//!
//! Each application comes as:
//!
//! 1. a **sequential** reference ([`moldyn::run_seq`], [`nbf::run_seq`]),
//! 2. **Tmk base** — plain demand-paged DSM,
//! 3. **Tmk optimized** — compiler-inserted `Validate` (the descriptors
//!    come from `fcc` compiling the paper's Figure-1 sources),
//! 4. **Tmk adaptive** — the runtime-adaptive engine (`adapt` crate):
//!    no compiler hints, the protocol learns the pattern
//!    ([`moldyn::run_adaptive`], [`nbf::run_adaptive`],
//!    [`umesh::run_adaptive`]),
//! 5. **CHAOS** — hand-coded inspector/executor.
//!
//! All four compute identical physics from identical seeded workloads, so
//! results cross-check to floating-point reordering tolerance, while
//! simulated time, messages, and data reproduce Tables 1 and 2.
//!
//! ## Modeled compute costs
//!
//! Real arithmetic runs at native speed; *simulated* time is charged per
//! unit of work ([`work`]), calibrated so the sequential programs land on
//! the paper's timings (moldyn ≈ 267 s at one rebuild; nbf 64×1024 ≈
//! 78 s — see `work.rs`).

pub mod harness;
pub mod moldyn;
pub mod nbf;
pub mod phases;
pub mod umesh;
pub mod report;
pub mod work;
pub mod workload;

pub use report::{RunReport, SystemKind};
pub use workload::{run_matrix, CheckMode, Variant, Workload, WorkloadMatrix};
