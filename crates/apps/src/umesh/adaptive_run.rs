//! umesh under the runtime-adaptive engine — the fourth system variant.
//!
//! The mesh is static and the owner-side reduction reads the same
//! remote endpoint pages every sweep, so the "invalidate → fault"
//! pattern is perfectly periodic from the second sweep on: the engine
//! promotes the whole ghost-page set and the per-sweep demand traffic
//! collapses into one exchange per neighbouring partition — CHAOS's
//! gather shape, discovered without an inspector.

use simnet::SimTime;

use super::{run_tmk, Mesh, TmkMode, UmeshConfig};
use crate::report::RunReport;

/// umesh's adaptive knobs: a static mesh cannot dissolve the pattern,
/// so probes are pure re-validation; the default cadence is fine.
pub fn knobs() -> adapt::AdaptConfig {
    adapt::AdaptConfig::default()
}

pub(super) fn policy(mode: TmkMode) -> Box<dyn adapt::ProtocolPolicy> {
    let mut k = knobs();
    k.push = mode == TmkMode::Push;
    Box::new(adapt::AdaptivePolicy::new(k))
}

/// Run umesh under the adaptive engine. Returns the table row (with
/// [`RunReport::policy`] filled) and the final node values.
pub fn run_adaptive(cfg: &UmeshConfig, mesh: &Mesh, seq_time: SimTime) -> (RunReport, Vec<f64>) {
    run_tmk(cfg, mesh, TmkMode::Adaptive, seq_time)
}

/// Run umesh with the adaptive engine in update-push mode.
pub fn run_push(cfg: &UmeshConfig, mesh: &Mesh, seq_time: SimTime) -> (RunReport, Vec<f64>) {
    run_tmk(cfg, mesh, TmkMode::Push, seq_time)
}

#[cfg(test)]
mod tests {
    use super::super::{gen_mesh, run_seq};
    use super::*;

    #[test]
    fn adaptive_matches_base_bitwise_with_fewer_messages() {
        let cfg = UmeshConfig::small();
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let (base, xb) = run_tmk(&cfg, &mesh, TmkMode::Base, seq.report.time);
        let (ad, xa) = run_adaptive(&cfg, &mesh, seq.report.time);
        assert_eq!(xa, xb, "adaptive must be bitwise identical to base");
        assert!(
            ad.messages <= base.messages,
            "adaptive {} must never exceed base {}",
            ad.messages,
            base.messages
        );
        let pol = ad.policy.expect("policy report");
        assert!(pol.epochs > 0);
    }
}
