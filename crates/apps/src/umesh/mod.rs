//! umesh — unstructured-mesh edge relaxation, the third classic irregular
//! workload (the paper's related work compares on "unstructured"; its
//! introduction motivates exactly this class of code).
//!
//! A static mesh: `n` nodes on a jittered 2-D grid, edges = 4-neighbour
//! grid links plus a seeded sprinkle of long-range links. Each sweep
//! computes a flux per edge from the endpoint values — through the edge
//! list as indirection array — accumulates into both endpoints, and
//! relaxes the node values. Structure-wise this is nbf with a *pair*
//! list (like moldyn) but a *static* one (like nbf), so it exercises the
//! remaining corner of the design space.
//!
//! ## Deterministic reduction: fixed-order owner-side accumulation
//!
//! Every parallel build accumulates a node's fluxes **on the node's
//! owner, in global edge order**: the owner of node `i` walks `i`'s
//! incident edges (sorted as the global edge list is sorted), computes
//! each flux itself from the coherent start-of-sweep values, and applies
//! the contributions in exactly the order the sequential sweep does.
//! Each edge is therefore computed by up to two processors — a modest
//! compute duplication that buys a *bitwise* contract: seq, Tmk base,
//! Tmk optimized, Tmk adaptive, and CHAOS all produce identical bit
//! patterns, extending the bitwise cross-check to the third workload.
//! (The earlier owner-last pipelined reduction merged per-processor
//! partial sums, which reassociates floating-point addition and only
//! agreed to 1e-9.)

mod adaptive_run;

pub use adaptive_run::{knobs as adaptive_knobs, run_adaptive, run_push};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsd::{Dim, Rsd};
use sdsm_core::{validate, AccessType, Cluster, Desc, DsmConfig, RegionRef, Validator};
use simnet::{CostModel, SimTime};

use chaos::{block_partition, gather, inspector, ChaosWorld, Ghosted, TTable, TTableCache, TTableKind};

use crate::report::{RunReport, SystemKind};
use crate::work;
pub use crate::moldyn::TmkMode;

/// Relaxation weight per sweep.
pub const KAPPA: f64 = 0.05;

/// Modeled cost of one edge-flux evaluation. Mesh kernels of this era
/// computed a nontrivial per-edge stencil (upwinding, limiters); 25 µs
/// keeps the workload compute-bound at the 1997 cost scale, like the
/// paper's two applications. Charged per *incident visit* — the
/// owner-side reduction evaluates an edge once per distinct endpoint
/// owner, so cross-partition edges cost it twice.
pub const EDGE_US: f64 = 25.0;

#[derive(Debug, Clone)]
pub struct UmeshConfig {
    /// Grid side (nodes = side²).
    pub side: usize,
    /// Extra long-range edges as a fraction of grid edges.
    pub longrange_frac: f64,
    pub sweeps: usize,
    pub nprocs: usize,
    pub seed: u64,
    pub page_size: usize,
    pub cost: CostModel,
}

impl UmeshConfig {
    pub fn small() -> Self {
        UmeshConfig {
            side: 32,
            longrange_frac: 0.05,
            sweeps: 4,
            nprocs: 4,
            seed: 11,
            page_size: 1024,
            cost: CostModel::default(),
        }
    }

    pub fn medium() -> Self {
        UmeshConfig {
            side: 128,
            longrange_frac: 0.05,
            sweeps: 10,
            nprocs: 8,
            seed: 11,
            page_size: 4096,
            cost: CostModel::default(),
        }
    }

    pub fn n(&self) -> usize {
        self.side * self.side
    }
}

/// The generated mesh: initial node values and the edge list (0-based
/// endpoint pairs, `a < b`, sorted — deterministic for a given seed).
#[derive(Debug, Clone)]
pub struct Mesh {
    pub x0: Vec<f64>,
    pub edges: Vec<(u32, u32)>,
}

pub fn gen_mesh(cfg: &UmeshConfig) -> Mesh {
    let side = cfg.side;
    let n = cfg.n();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let a = (r * side + c) as u32;
            if c + 1 < side {
                edges.push((a, a + 1));
            }
            if r + 1 < side {
                edges.push((a, a + side as u32));
            }
        }
    }
    let extra = (edges.len() as f64 * cfg.longrange_frac) as usize;
    for _ in 0..extra {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Mesh { x0, edges }
}

/// Per-node incident edges, in global (sorted) edge order — the order in
/// which the sequential sweep touches each node's accumulator. This is
/// the fixed order every owner-side reduction replays.
fn incident_lists(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<(u32, u32)>> {
    let mut inc: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        inc[a as usize].push((a, b));
        inc[b as usize].push((a, b));
    }
    inc
}

/// One node's contribution from one incident edge, exactly as the
/// sequential sweep applies it.
#[inline]
fn accumulate(acc: &mut f64, node: u32, a: u32, flux: f64) {
    if node == a {
        *acc -= flux;
    } else {
        *acc += flux;
    }
}

/// One relaxation sweep over plain slices (the shared physics kernel).
fn sweep(x: &[f64], edges: &[(u32, u32)], acc: &mut [f64]) {
    acc.iter_mut().for_each(|a| *a = 0.0);
    for &(a, b) in edges {
        let flux = (x[a as usize] - x[b as usize]) * KAPPA;
        acc[a as usize] -= flux;
        acc[b as usize] += flux;
    }
}

pub struct SeqResult {
    pub report: RunReport,
    pub x: Vec<f64>,
}

pub fn run_seq(cfg: &UmeshConfig, mesh: &Mesh) -> SeqResult {
    let n = cfg.n();
    let mut x = mesh.x0.clone();
    let mut acc = vec![0.0f64; n];
    let mut time = SimTime::ZERO;
    for _ in 0..cfg.sweeps {
        sweep(&x, &mesh.edges, &mut acc);
        for (xi, a) in x.iter_mut().zip(&acc) {
            *xi += a;
        }
        time += work::t(EDGE_US, mesh.edges.len()) + work::t(work::ZERO_US, 2 * n);
    }
    let checksum = x.iter().map(|v| v.abs()).sum();
    SeqResult {
        report: RunReport {
            system: SystemKind::Sequential,
            time,
            seq_time: time,
            messages: 0,
            bytes: 0,
            inspector_s: 0.0,
            untimed_inspector_s: 0.0,
            validate_scan_s: 0.0,
            checksum,
            policy: None,
            net: None,
        },
        x,
    }
}

/// umesh on the DSM (base / optimized / adaptive). Nodes are
/// BLOCK-partitioned by grid row (spatial locality); each sweep, every
/// processor reads its nodes' incident endpoints through the shared
/// edge list, accumulates owner-side in global edge order, and updates
/// only its own block — one barrier per sweep, bitwise-equal results.
pub fn run_tmk(
    cfg: &UmeshConfig,
    mesh: &Mesh,
    mode: TmkMode,
    seq_time: SimTime,
) -> (RunReport, Vec<f64>) {
    let n = cfg.n();
    let nprocs = cfg.nprocs;
    let part = block_partition(n, nprocs);
    let incident = incident_lists(n, &mesh.edges);

    // Per-processor incident sections: Σ deg(i) entries over owned nodes.
    let flat_counts: Vec<usize> = (0..nprocs)
        .map(|q| part.range_of(q).map(|i| incident[i].len()).sum())
        .collect();
    let cap_pp = flat_counts.iter().copied().max().unwrap() + 1;

    let cl = Cluster::new(DsmConfig {
        nprocs,
        page_size: cfg.page_size,
        cost: cfg.cost.clone(),
    });
    let x = cl.alloc::<f64>(n);
    let ilist = cl.alloc::<i32>(2 * cap_pp * nprocs);

    let cap = crate::harness::Capture::new(nprocs);

    cl.run(|p| {
        if mode.is_adaptive() {
            p.set_policy(adaptive_run::policy(mode));
        }
        let me = p.rank();
        let my = part.range_of(me);
        let my_flat = flat_counts[me];
        let my_start = me * cap_pp;
        let mut v = if mode == TmkMode::Optimized {
            Validator::incremental()
        } else {
            Validator::new()
        };
        let mut acc = vec![0.0f64; my.len()];

        // untimed init: own block of x, own incident section of the list
        for i in my.clone() {
            p.write(&x, i, mesh.x0[i]);
        }
        let mut k = my_start;
        for i in my.clone() {
            for &(a, b) in &incident[i] {
                p.write(&ilist, 2 * k, a as i32 + 1);
                p.write(&ilist, 2 * k + 1, b as i32 + 1);
                k += 1;
            }
        }
        // The init barrier is the first invalidation of the same pages
        // the sweep barrier re-invalidates every iteration — same site,
        // same tag, so the phase's event axis starts here (exactly the
        // axis the untagged engine saw).
        p.barrier_tagged(crate::phases::UPDATE);
        p.start_timed_region();
        p.reset_counters();

        for _sweep in 0..cfg.sweeps {
            if mode == TmkMode::Optimized && my_flat > 0 {
                validate(
                    p,
                    &mut v,
                    &[
                        // The endpoint reads, through the static list.
                        Desc::Indirect {
                            data: RegionRef::of(&x),
                            ind: ilist,
                            ind_dims: vec![2, cap_pp * nprocs],
                            section: Rsd::new(vec![
                                Dim::dense(1, 2),
                                Dim::dense(my_start as i64 + 1, (my_start + my_flat) as i64),
                            ]),
                            access: AccessType::Read,
                            sched: 1,
                        },
                        // The owner-side x update over my block.
                        Desc::Direct {
                            data: RegionRef::of(&x),
                            section: Rsd::dense1(my.start as i64 + 1, my.end as i64),
                            access: AccessType::ReadWriteAll,
                            sched: 2,
                        },
                    ],
                );
            }
            // Fixed-order owner-side accumulation: node by node, each
            // node's incident edges in global edge order.
            acc.iter_mut().for_each(|a| *a = 0.0);
            let mut k = my_start;
            for (li, i) in my.clone().enumerate() {
                for _ in 0..incident[i].len() {
                    let a = p.read(&ilist, 2 * k) as u32 - 1;
                    let b = p.read(&ilist, 2 * k + 1) as u32 - 1;
                    let flux = (p.read(&x, a as usize) - p.read(&x, b as usize)) * KAPPA;
                    accumulate(&mut acc[li], i as u32, a, flux);
                    k += 1;
                }
            }
            p.compute(work::t(EDGE_US, my_flat) + work::t(work::ZERO_US, 2 * my.len()));

            // Owner-only update: all fluxes were computed from the
            // coherent start-of-sweep values, so writing now is safe —
            // other processors still read their own (pre-update) copies
            // until the barrier's write notices arrive.
            for (li, i) in my.clone().enumerate() {
                let cur = p.read(&x, i);
                p.write(&x, i, cur + acc[li]);
            }
            // One barrier site per sweep — tagging it keeps the phase
            // bookkeeping uniform across the classic apps (the learned
            // behavior is identical to the untagged single-site case).
            p.barrier_tagged(crate::phases::UPDATE);
        }

        cap.freeze_tmk(me, &cl);
        cap.set_scan(me, v.scan_seconds());
        p.barrier();
    });

    let policy = mode.is_adaptive().then(|| cl.net().policy_report());

    let final_x: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n]);
    cl.run(|p| {
        if p.rank() == 0 {
            let mut out = final_x.lock();
            for i in 0..n {
                out[i] = p.read(&x, i);
            }
        }
    });
    let final_x = final_x.into_inner();
    let checksum = final_x.iter().map(|v| v.abs()).sum();
    (
        cap.report(mode.system_kind(), seq_time, checksum, policy),
        final_x,
    )
}

/// umesh under CHAOS: inspector once (static mesh), gather endpoint
/// values, accumulate owner-side in the same fixed order. The owner of
/// a node computes all of its fluxes itself, so no scatter phase is
/// needed — and the result is bitwise identical to the other builds.
pub fn run_chaos(cfg: &UmeshConfig, mesh: &Mesh, seq_time: SimTime) -> (RunReport, Vec<f64>) {
    let n = cfg.n();
    let nprocs = cfg.nprocs;
    let part = block_partition(n, nprocs);
    let tt = TTable::new(TTableKind::Replicated, &part);
    let incident = incident_lists(n, &mesh.edges);

    let w = ChaosWorld::new(nprocs, cfg.cost.clone());
    let cap = crate::harness::Capture::new(nprocs);
    let finals: Mutex<Vec<(usize, Vec<f64>)>> = Mutex::new(Vec::new());

    w.run(|cp| {
        let me = cp.rank();
        let my = part.range_of(me);
        let mut cache = TTableCache::new();
        let mut x_own: Vec<f64> = mesh.x0[my.clone()].to_vec();
        let my_flat: usize = my.clone().map(|i| incident[i].len()).sum();

        let t0 = cp.now();
        let sched = inspector(
            cp,
            &tt,
            &mut cache,
            my.clone()
                .flat_map(|i| incident[i].iter().flat_map(|&(a, b)| [a, b])),
        );
        cap.set_untimed_inspector(me, (cp.now() - t0).as_secs_f64());
        let locs: Vec<(chaos::Loc, chaos::Loc)> = my
            .clone()
            .flat_map(|i| incident[i].iter().copied())
            .map(|(a, b)| {
                let (oa, fa) = tt.translate_free(a);
                let (ob, fb) = tt.translate_free(b);
                (sched.locate(me, oa, fa), sched.locate(me, ob, fb))
            })
            .collect();

        cp.start_timed_region();
        for _ in 0..cfg.sweeps {
            let mut xg = Ghosted::new(x_own.clone(), &sched);
            gather(cp, &sched, &mut xg);
            let mut k = 0usize;
            let mut acc = vec![0.0f64; my.len()];
            for (li, i) in my.clone().enumerate() {
                for &(a, _) in &incident[i] {
                    let (la, lb) = locs[k];
                    let flux = (xg.get(la) - xg.get(lb)) * KAPPA;
                    accumulate(&mut acc[li], i as u32, a, flux);
                    k += 1;
                }
            }
            cp.compute(work::t(EDGE_US, my_flat) + work::t(work::ZERO_US, 2 * my.len()));
            for (xi, a) in x_own.iter_mut().zip(&acc) {
                *xi += a;
            }
            cp.sync();
        }
        cap.freeze_chaos(cp);
        finals.lock().push((me, x_own));
    });

    let mut final_x = vec![0.0f64; n];
    for (me, block) in finals.into_inner() {
        final_x[part.range_of(me)].copy_from_slice(&block);
    }
    let checksum = final_x.iter().map(|v| v.abs()).sum();
    (
        cap.report(SystemKind::Chaos, seq_time, checksum, None),
        final_x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_generation_structure() {
        let cfg = UmeshConfig::small();
        let m = gen_mesh(&cfg);
        assert_eq!(m.x0.len(), 1024);
        // Grid edges: 2·side·(side-1) = 1984, plus some long-range.
        assert!(m.edges.len() >= 1984);
        for &(a, b) in &m.edges {
            assert!(a < b, "edges normalized");
            assert!((b as usize) < cfg.n());
        }
        // Deterministic.
        assert_eq!(gen_mesh(&cfg).edges, m.edges);
    }

    #[test]
    fn incident_lists_preserve_global_order() {
        let cfg = UmeshConfig::small();
        let m = gen_mesh(&cfg);
        let inc = incident_lists(cfg.n(), &m.edges);
        // Every incident list is a subsequence of the sorted edge list.
        for list in &inc {
            for w in list.windows(2) {
                assert!(w[0] < w[1], "incident edges in global order");
            }
        }
        // Degrees sum to 2·edges.
        let deg: usize = inc.iter().map(Vec::len).sum();
        assert_eq!(deg, 2 * m.edges.len());
    }

    #[test]
    fn all_variants_agree() {
        let cfg = UmeshConfig::small();
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let (base, xb) = run_tmk(&cfg, &mesh, TmkMode::Base, seq.report.time);
        let (opt, xo) = run_tmk(&cfg, &mesh, TmkMode::Optimized, seq.report.time);
        let (ad, xa) = run_adaptive(&cfg, &mesh, seq.report.time);
        let (chaos, xc) = run_chaos(&cfg, &mesh, seq.report.time);
        // Fixed-order owner-side accumulation: the contract is bitwise,
        // not a tolerance — every build replays the sequential order.
        for (label, x) in [("base", &xb), ("opt", &xo), ("adaptive", &xa), ("chaos", &xc)] {
            assert_eq!(x, &seq.x, "{label} must be bitwise identical to seq");
        }
        // At this tiny scale communication dominates compute (a page
        // fetch costs more than a whole sweep's work), so we assert the
        // protocol shape rather than absolute speedups.
        assert!(opt.messages < base.messages);
        assert!(opt.time < base.time);
        assert!(chaos.messages < base.messages);
        assert!(
            ad.messages <= base.messages,
            "adaptive must never send more than base"
        );
    }

    #[test]
    fn static_mesh_schedule_computed_once() {
        let cfg = UmeshConfig::small();
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let (rep, _) = run_tmk(&cfg, &mesh, TmkMode::Optimized, seq.report.time);
        // The edge list never changes: one Read_indices pass total, so
        // the per-processor scan time is tiny relative to the sweep work.
        assert!(rep.validate_scan_s < seq.report.time.as_secs_f64() / 10.0);
    }

    #[test]
    fn relaxation_converges() {
        // Diffusion must shrink the value spread monotonically-ish.
        let mut cfg = UmeshConfig::small();
        cfg.sweeps = 30;
        let mesh = gen_mesh(&cfg);
        let seq = run_seq(&cfg, &mesh);
        let spread = |v: &[f64]| {
            let mx = v.iter().cloned().fold(f64::MIN, f64::max);
            let mn = v.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        assert!(spread(&seq.x) < spread(&mesh.x0) * 0.9);
    }
}
