//! Barrier-phase tags for the classic applications.
//!
//! A *phase* names a barrier **site** — the source location of a
//! barrier in the app's loop body — and must be stable across
//! iterations of that loop (`dsm::TmkProc::barrier_tagged`). The
//! adaptive engine keys its gap histories, promotion state, and quiesce
//! streaks per `(page, phase)`, so multi-barrier apps that alternate
//! sites (moldyn's position-update barrier vs its pipelined-reduction
//! rounds) build one clean plan per site instead of aliasing them all
//! on the raw barrier stream.
//!
//! Tags are per-processor bookkeeping; no cross-processor agreement is
//! needed, and untagged barriers (phase 0) keep the single-site
//! behavior. The pipelined reduction tags each *round* as its own site
//! ([`PIPELINE`]` + round`): a round's barrier always precedes the same
//! chunk's reads in the next round, so per-round identity is what makes
//! the chunk plans identical epoch over epoch.

/// The owner position/coordinate-update barrier at the end of a step
/// (moldyn, nbf) or sweep (umesh) — the site whose plan covers the next
/// step's coordinate reads, and the run's final barrier.
pub const UPDATE: u32 = 1;

/// The barrier after an interaction-list rebuild (moldyn).
pub const REBUILD: u32 = 2;

/// Base tag of the pipelined-reduction rounds: the barrier ending round
/// `s` is `PIPELINE + s` (moldyn, nbf; `nprocs` rounds per step).
pub const PIPELINE: u32 = 8;
