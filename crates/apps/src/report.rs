//! Run reports: the numbers that become the rows of Tables 1 and 2.

use simnet::{NetReport, PolicyReport, SimTime};

/// Which system produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    Sequential,
    Chaos,
    TmkBase,
    TmkOpt,
    /// The fourth variant: runtime-adaptive aggregation, no compiler.
    TmkAdaptive,
    /// The fifth variant: the adaptive engine in update-push mode —
    /// writers push predicted diffs at the barrier, eliminating the
    /// request half of each predicted exchange.
    TmkPush,
}

impl SystemKind {
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Sequential => "seq",
            SystemKind::Chaos => "CHAOS",
            SystemKind::TmkBase => "Tmk base",
            SystemKind::TmkOpt => "Tmk optimized",
            SystemKind::TmkAdaptive => "Tmk adaptive",
            SystemKind::TmkPush => "Tmk push",
        }
    }
}

/// One table row (plus the in-text extras the paper quotes).
#[derive(Debug, Clone)]
pub struct RunReport {
    pub system: SystemKind,
    /// Simulated execution time of the timed region.
    pub time: SimTime,
    /// Matching sequential time (for the speedup column).
    pub seq_time: SimTime,
    pub messages: u64,
    pub bytes: u64,
    /// Total per-processor-average seconds spent in the CHAOS inspector
    /// *within the timed region* (the paper's tables exclude the initial
    /// inspector; this field captures re-runs after list rebuilds).
    pub inspector_s: f64,
    /// Per-processor-average seconds the inspector cost *outside* the
    /// timed region (the paper quotes these in the text).
    pub untimed_inspector_s: f64,
    /// Per-processor-average seconds Validate spent scanning the
    /// indirection array (both regions).
    pub validate_scan_s: f64,
    /// Physics checksum (Σ|x| at the end), for cross-variant comparison.
    pub checksum: f64,
    /// Policy-decision counters of the timed region — present only for
    /// the adaptive build (`None` everywhere else).
    pub policy: Option<PolicyReport>,
    /// Full per-kind message/byte breakdown of the timed region, when
    /// the runner captured one (parallel variants via [`crate::harness::Capture`];
    /// `None` for sequential runs, which exchange nothing). The serve
    /// driver folds these with [`NetReport::merge`] so concurrent cells
    /// accumulate per-variant totals without a global lock.
    pub net: Option<NetReport>,
}

impl RunReport {
    pub fn speedup(&self) -> f64 {
        self.seq_time.as_secs_f64() / self.time.as_secs_f64().max(1e-12)
    }

    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1e6
    }

    /// Paper-style table row: `label  time  speedup  messages  MB`.
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>9.1} {:>8.1} {:>10} {:>9.0}",
            self.system.label(),
            self.time.as_secs_f64(),
            self.speedup(),
            self.messages,
            self.megabytes()
        )
    }
}

/// Print a paper-style table header.
pub fn table_header() -> String {
    format!(
        "{:<14} {:>9} {:>8} {:>10} {:>9}",
        "System", "Time(s)", "Speedup", "Messages", "Data(MB)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_row_format() {
        let r = RunReport {
            system: SystemKind::Chaos,
            time: SimTime::from_us(10e6),
            seq_time: SimTime::from_us(60e6),
            messages: 1234,
            bytes: 5_000_000,
            inspector_s: 0.0,
            untimed_inspector_s: 1.0,
            validate_scan_s: 0.0,
            checksum: 1.0,
            policy: None,
            net: None,
        };
        assert!((r.speedup() - 6.0).abs() < 1e-9);
        assert!((r.megabytes() - 5.0).abs() < 1e-12);
        let row = r.row();
        assert!(row.contains("CHAOS"));
        assert!(row.contains("1234"));
    }
}
