//! Shared run-report capture: the bookkeeping every parallel runner
//! (Tmk and CHAOS alike) used to copy-paste — the rank-0 timed-region
//! snapshot, the per-processor second counters, and the final
//! [`RunReport`] assembly. Pure bookkeeping: nothing here touches the
//! protocol, so extracting it cannot change a message count.
//!
//! The per-processor second buffers are pooled per thread: a serving
//! workload builds one `Capture` per job, and in steady state the
//! buffers cycle through the pool instead of the allocator (part of the
//! reusable-scratch path the `serve` crate's allocation tests pin).

use std::cell::RefCell;

use parking_lot::Mutex;
use simnet::{NetReport, PolicyReport, SimTime};

use crate::report::{RunReport, SystemKind};

thread_local! {
    /// Retired per-proc second buffers, reused by the next
    /// [`Capture::new`] on this thread.
    static BUF_POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Retained buffers per thread: each capture holds three, and a worker
/// builds captures one at a time, so a handful covers steady state.
const MAX_POOLED_BUFS: usize = 12;

fn take_buf(nprocs: usize) -> Vec<f64> {
    let mut v = BUF_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    v.clear();
    v.resize(nprocs, 0.0);
    v
}

fn give_buf(v: Vec<f64>) {
    BUF_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_BUFS {
            pool.push(v);
        }
    });
}

/// Capture state for one parallel run. Create it before `cl.run` /
/// `w.run`, have rank 0 call a `freeze_*` method at the end of the timed
/// region (before any untimed result extraction), and turn it into the
/// table row with [`Capture::report`].
pub struct Capture {
    timed: Mutex<Option<(SimTime, u64, u64)>>,
    net: Mutex<Option<NetReport>>,
    scan: Mutex<Vec<f64>>,
    insp_timed: Mutex<Vec<f64>>,
    insp_untimed: Mutex<Vec<f64>>,
    nprocs: usize,
}

impl Capture {
    pub fn new(nprocs: usize) -> Self {
        Capture {
            timed: Mutex::new(None),
            net: Mutex::new(None),
            scan: Mutex::new(take_buf(nprocs)),
            insp_timed: Mutex::new(take_buf(nprocs)),
            insp_untimed: Mutex::new(take_buf(nprocs)),
            nprocs,
        }
    }

    /// Rank 0 snapshots the DSM cluster's timed region (elapsed simulated
    /// time, messages, bytes). Call from inside the SPMD body, after the
    /// final barrier of the timed region.
    pub fn freeze_tmk(&self, me: usize, cl: &sdsm_core::Cluster) {
        if me == 0 {
            let rep = cl.report();
            *self.timed.lock() = Some((cl.elapsed(), rep.messages, rep.bytes));
            *self.net.lock() = Some(rep);
        }
    }

    /// Rank 0 snapshots a CHAOS world's timed region.
    pub fn freeze_chaos(&self, cp: &chaos::ChaosProc) {
        if cp.rank() == 0 {
            let rep = cp.net().report();
            *self.timed.lock() = Some((cp.net().clock_max(), rep.messages, rep.bytes));
            *self.net.lock() = Some(rep);
        }
    }

    /// Record processor `me`'s Validate indirection-scan seconds.
    pub fn set_scan(&self, me: usize, secs: f64) {
        self.scan.lock()[me] = secs;
    }

    /// Record processor `me`'s in-timed-region inspector seconds.
    pub fn set_inspector(&self, me: usize, secs: f64) {
        self.insp_timed.lock()[me] = secs;
    }

    /// Record processor `me`'s untimed (setup) inspector seconds.
    pub fn set_untimed_inspector(&self, me: usize, secs: f64) {
        self.insp_untimed.lock()[me] = secs;
    }

    /// Assemble the table row. Panics if no `freeze_*` call happened.
    pub fn report(
        self,
        system: SystemKind,
        seq_time: SimTime,
        checksum: f64,
        policy: Option<PolicyReport>,
    ) -> RunReport {
        let (time, messages, bytes) = self.timed.into_inner().expect("timed region captured");
        let avg = |v: Vec<f64>| {
            let a = v.iter().sum::<f64>() / self.nprocs as f64;
            give_buf(v);
            a
        };
        RunReport {
            system,
            time,
            seq_time,
            messages,
            bytes,
            inspector_s: avg(self.insp_timed.into_inner()),
            untimed_inspector_s: avg(self.insp_untimed.into_inner()),
            validate_scan_s: avg(self.scan.into_inner()),
            checksum,
            policy,
            net: self.net.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_averages_per_proc_seconds() {
        let c = Capture::new(4);
        *c.timed.lock() = Some((SimTime::from_us(5e6), 100, 2000));
        c.set_scan(0, 2.0);
        c.set_scan(1, 2.0);
        c.set_inspector(2, 4.0);
        c.set_untimed_inspector(3, 8.0);
        let r = c.report(SystemKind::TmkOpt, SimTime::from_us(10e6), 1.0, None);
        assert_eq!(r.messages, 100);
        assert_eq!(r.bytes, 2000);
        assert!((r.validate_scan_s - 1.0).abs() < 1e-12);
        assert!((r.inspector_s - 1.0).abs() < 1e-12);
        assert!((r.untimed_inspector_s - 2.0).abs() < 1e-12);
        assert!((r.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "timed region captured")]
    fn report_without_freeze_panics() {
        let c = Capture::new(1);
        let _ = c.report(SystemKind::TmkBase, SimTime::ZERO, 0.0, None);
    }

    #[test]
    fn buffers_cycle_through_the_thread_pool() {
        // Drain whatever earlier tests on this thread pooled.
        while BUF_POOL.with(|p| p.borrow_mut().pop()).is_some() {}
        let c = Capture::new(8);
        *c.timed.lock() = Some((SimTime::ZERO, 0, 0));
        let _ = c.report(SystemKind::TmkBase, SimTime::ZERO, 0.0, None);
        assert_eq!(BUF_POOL.with(|p| p.borrow().len()), 3);
        // The next capture reuses them (pool drains), even at another
        // cluster size — buffers are resized, not reallocated.
        let c = Capture::new(4);
        assert_eq!(BUF_POOL.with(|p| p.borrow().len()), 0);
        assert_eq!(c.scan.lock().len(), 4);
    }
}
