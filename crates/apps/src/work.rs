//! Modeled per-operation compute costs (microseconds), calibrated against
//! the paper's *sequential* timings — see EXPERIMENTS.md for the full
//! derivation. These model the 1997 thin-node SP2 (66 MHz POWER2); the
//! real Rust arithmetic runs at native speed and only these charges enter
//! the simulated clocks.

use simnet::SimTime;

/// moldyn: one interaction-list entry (load pair, distance, force,
/// two accumulations). Calibration: paper sequential times are
/// 267.2/365.8/467.3 s for 1/2/3 list rebuilds over 40 steps, so the
/// force phase is ≈ (267.2 − rebuild)/40 ≈ 4.15 s/step over ≈ 1.1 M
/// interactions → ≈ 3.8 µs each.
pub const MOLDYN_PAIR_US: f64 = 3.8;

/// moldyn: testing one candidate pair during the O(N²/2) interaction-list
/// rebuild. Calibration: the per-rebuild delta in the sequential times is
/// ≈ 100 s over 16384²/2 pair tests → 0.75 µs.
pub const MOLDYN_PAIRTEST_US: f64 = 0.75;

/// moldyn: integrating one molecule's position from its force.
pub const MOLDYN_UPDATE_US: f64 = 0.4;

/// nbf: one partner interaction. Calibration: 78.3 s / 10 steps /
/// (65536×100) pairs ≈ 1.19 µs (and 32×1024 then gives 39 s ≈ the
/// paper's 39.1 s).
pub const NBF_PAIR_US: f64 = 1.19;

/// nbf: per-molecule position update.
pub const NBF_UPDATE_US: f64 = 0.15;

/// Zeroing one f64 of a private accumulation array.
pub const ZERO_US: f64 = 0.008;

#[inline]
pub fn t(us_per: f64, count: usize) -> SimTime {
    SimTime::from_us(us_per * count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moldyn_seq_calibration_reproduces_paper_scale() {
        // 40 steps × 1.09M pairs × 3.8µs + one rebuild ≈ 267 s.
        let force_phase = t(MOLDYN_PAIR_US, 1_090_000 * 40);
        let rebuild = t(MOLDYN_PAIRTEST_US, 16384 * 16384 / 2);
        let total = (force_phase + rebuild).as_secs_f64();
        assert!((230.0..300.0).contains(&total), "{total}");
        // Extra rebuilds move it by ~100 s, as in Table 1's seq column.
        assert!((90.0..115.0).contains(&rebuild.as_secs_f64()));
    }

    #[test]
    fn nbf_seq_calibration_reproduces_paper_scale() {
        let t64 = t(NBF_PAIR_US, 65536 * 100 * 10).as_secs_f64();
        let t32 = t(NBF_PAIR_US, 32768 * 100 * 10).as_secs_f64();
        assert!((70.0..90.0).contains(&t64), "{t64}");
        assert!((35.0..45.0).contains(&t32), "{t32}");
    }
}
